//! Ablations of the design choices DESIGN.md calls out.
//!
//! * `statealyzer_input` — §3.1's claim that feeding StateAlyzer the
//!   packet slice instead of the whole program "reduces the amount of
//!   code to process".
//! * `loop_bound` — §3.2's loop bounding: path count and time as the
//!   unroll bound grows.
//! * `slice_kind` — dynamic vs. static slicing cost (Figure 1's
//!   dynamic-slice view).
//! * `solver` — the SMT-lite fragment's check cost on NF-shaped
//!   conjunctions.

use nf_support::bench::Harness;
use nf_packet::wire::{parse_ipv4, TcpFlags};
use nf_packet::Packet;
use nfactor_core::Pipeline;
use nfl_lang::BinOp;
use nfl_slicer::statealyzer::{statealyzer, StateAlyzerInput};
use nfl_symex::{PathLimits, Solver, SymExec, SymVal};

fn bench_statealyzer_input(h: &mut Harness) {
    let mut g = h.benchmark_group("ablation/statealyzer_input");
    let src = nf_corpus::snort::source(100);
    let syn = Pipeline::builder()
        .name("snort")
        .build()
        .unwrap()
        .synthesize(&src).unwrap();
    let info = nfl_lang::types::check(&syn.nf_loop.program).unwrap();
    for (label, input) in [
        ("whole_program", StateAlyzerInput::WholeProgram),
        ("packet_slice", StateAlyzerInput::PacketSlice),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| statealyzer(&syn.nf_loop, &syn.packet_slice.stmts, &info, input))
        });
    }
    // Also report the statement-count reduction once.
    let whole = statealyzer(
        &syn.nf_loop,
        &syn.packet_slice.stmts,
        &info,
        StateAlyzerInput::WholeProgram,
    );
    let sliced = statealyzer(
        &syn.nf_loop,
        &syn.packet_slice.stmts,
        &info,
        StateAlyzerInput::PacketSlice,
    );
    eprintln!(
        "[ablation] statealyzer examined {} stmts (whole) vs {} (slice)",
        whole.stmts_examined, sliced.stmts_examined
    );
    g.finish();
}

fn bench_loop_bound(h: &mut Harness) {
    let mut g = h.benchmark_group("ablation/loop_bound");
    // An NF with a bounded retry loop whose unrolling multiplies paths.
    let src = r#"
        config N = 3;
        state acc = 0;
        fn cb(pkt: packet) {
            for i in 0..4 {
                if pkt.ip.ttl > i {
                    acc = acc + 1;
                }
            }
            if pkt.ip.ttl > 0 { send(pkt); }
        }
        fn main() { sniff(cb); }
    "#;
    let p = nfl_lang::parse_and_check(src).unwrap();
    let pl = nfl_analysis::normalize::normalize(&p).unwrap();
    for bound in [1usize, 2, 4, 8] {
        g.bench_with_input(bound.to_string(), &bound, |b, &bound| {
            b.iter(|| {
                SymExec::new(&pl)
                    .with_limits(PathLimits {
                        loop_bound: bound,
                        ..PathLimits::default()
                    })
                    .explore()
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_slice_kind(h: &mut Harness) {
    let mut g = h.benchmark_group("ablation/slice_kind");
    let src = nf_corpus::fig1_lb::source();
    let syn = Pipeline::builder()
        .name("lb")
        .build()
        .unwrap()
        .synthesize(&src).unwrap();
    // Static: PDG + backward reachability.
    g.bench_function("static", |b| {
        b.iter(|| {
            let boundary =
                nfl_analysis::pdg::default_boundary(&syn.nf_loop.program, &syn.nf_loop.func);
            let pdg =
                nfl_analysis::pdg::Pdg::build(&syn.nf_loop.program, &syn.nf_loop.func, &boundary);
            nfl_slicer::static_slice::packet_slice(&pdg, &syn.nf_loop.program, &syn.nf_loop.func)
        })
    });
    // Dynamic: interpret one packet, slice its trace.
    let pkt = Packet::tcp(
        parse_ipv4("10.0.0.1").unwrap(),
        1234,
        parse_ipv4("3.3.3.3").unwrap(),
        80,
        TcpFlags::syn(),
    );
    g.bench_function("dynamic", |b| {
        b.iter(|| {
            let mut interp = nfl_interp::Interp::new(&syn.nf_loop).unwrap();
            let run = interp.process(&pkt).unwrap();
            nfl_slicer::dynamic::dynamic_slice_of_output(&syn.nf_loop.program, &run.trace)
        })
    });
    g.finish();
}

fn bench_solver(h: &mut Harness) {
    let mut g = h.benchmark_group("ablation/solver");
    let solver = Solver;
    // NF-shaped conjunction: field equalities, intervals, mask, residue.
    let var = |n: &str| SymVal::Var(n.to_string());
    let cs: Vec<SymVal> = vec![
        SymVal::bin(BinOp::Eq, var("pkt.tcp.dport"), SymVal::Int(80)),
        SymVal::bin(BinOp::Gt, var("pkt.ip.ttl"), SymVal::Int(1)),
        SymVal::bin(
            BinOp::Ne,
            SymVal::bin(BinOp::BitAnd, var("pkt.tcp.flags"), SymVal::Int(2)),
            SymVal::Int(0),
        ),
        SymVal::bin(
            BinOp::Eq,
            SymVal::bin(
                BinOp::Mod,
                SymVal::Hash(Box::new(var("pkt.ip.src"))),
                SymVal::Int(2),
            ),
            SymVal::Int(0),
        ),
    ];
    g.bench_function("check_sat", |b| b.iter(|| solver.check(&cs)));
    let mut unsat = cs.clone();
    unsat.push(SymVal::bin(
        BinOp::Eq,
        var("pkt.tcp.dport"),
        SymVal::Int(81),
    ));
    g.bench_function("check_unsat", |b| b.iter(|| solver.check(&unsat)));
    g.bench_function("model_gen", |b| {
        b.iter(|| solver.model(&cs, |_| (0, 65535)).unwrap())
    });
    g.finish();
}

fn main() {
    let mut h = Harness::from_args("ablations");
    bench_statealyzer_input(&mut h);
    bench_loop_bound(&mut h);
    bench_slice_kind(&mut h);
    bench_solver(&mut h);
    h.finish();
}
