//! Compiled-backend speedup: per-packet dispatch throughput of the
//! three backends stepped directly (no sharding, no rings) on the
//! firewall — the concrete interpreter, the model evaluator, and the
//! model lowered to the `nf-compile` decision-tree engine.
//!
//! The compiled engine replaces the model evaluator's per-packet work
//! — linear entry scans, `BTreeMap<String, _>` state lookups, repeated
//! state-predicate evaluation — with a binary-searched field-test tree
//! over a dense slot/map arena, so its step loop is where the speedup
//! must show. The acceptance gate lives here: compiled must clear 5x
//! the interpreter's throughput or the bench aborts loudly.

use nf_packet::{Packet, PacketGen};
use nf_support::json::Value;
use nfactor_core::accuracy::initial_model_state;
use nfactor_core::Pipeline;
use nfl_interp::Interp;
use std::time::Instant;

const PACKETS: usize = 4000;
const REPEATS: usize = 5;

fn median(mut spans: Vec<u64>) -> u64 {
    spans.sort_unstable();
    spans[spans.len() / 2]
}

/// Time `REPEATS` full passes of `step` over the stream (after one
/// warmup pass) and return the median span in nanoseconds.
fn time_backend(packets: &[Packet], mut step: impl FnMut(&Packet)) -> u64 {
    for p in packets {
        step(p);
    }
    let mut spans = Vec::with_capacity(REPEATS);
    for _ in 0..REPEATS {
        let t0 = Instant::now();
        for p in packets {
            step(p);
        }
        spans.push(t0.elapsed().as_nanos() as u64);
    }
    median(spans)
}

fn main() {
    let src = nf_corpus::firewall::source();
    let packets = PacketGen::new(0xC0DE).batch(PACKETS);

    let syn = Pipeline::builder()
        .name("firewall")
        .build()
        .expect("pipeline")
        .synthesize(&src)
        .expect("synthesize");
    let interp0 = Interp::new(&syn.nf_loop).expect("interp");
    let init = initial_model_state(&syn, &interp0);

    let t0 = Instant::now();
    let prog = nf_compile::compile(&syn.model, &init).expect("compile");
    let compile_ns = t0.elapsed().as_nanos() as u64;
    eprintln!(
        "compile/firewall: lowered in {:.1} us ({} entries, {} nodes)",
        compile_ns as f64 / 1e3,
        prog.entry_count(),
        prog.node_count()
    );

    let mut interp = interp0;
    let interp_ns = time_backend(&packets, |p| {
        interp.process(p).expect("interp step");
    });

    let mut ms = init.clone();
    let model = &syn.model;
    let model_ns = time_backend(&packets, |p| {
        ms.step(model, p).expect("model step");
    });

    let mut cs = nf_compile::CompiledState::new(&prog);
    let compiled_ns = time_backend(&packets, |p| {
        cs.step(&prog, p).expect("compiled step");
    });

    let kpps = |span_ns: u64| PACKETS as f64 / (span_ns as f64 / 1e9) / 1e3;
    let mut results = Vec::new();
    for (label, span_ns) in [
        ("interp", interp_ns),
        ("model", model_ns),
        ("compiled", compiled_ns),
    ] {
        let speedup = interp_ns as f64 / span_ns as f64;
        eprintln!(
            "compile/firewall {label}: {:.3} ms / {PACKETS} pkts, {:.0} kpkt/s, {speedup:.2}x vs interp",
            span_ns as f64 / 1e6,
            kpps(span_ns)
        );
        results.push(Value::Object(vec![
            ("backend".into(), Value::Str(label.into())),
            ("span_ns".into(), Value::Int(span_ns as i64)),
            ("throughput_kpps".into(), Value::Float(kpps(span_ns))),
            ("speedup_vs_interp".into(), Value::Float(speedup)),
        ]));
    }

    let speedup = interp_ns as f64 / compiled_ns as f64;
    assert!(
        speedup >= 5.0,
        "compiled backend reached only {speedup:.2}x the interpreter (need >= 5x)"
    );

    let report = Value::Object(vec![
        ("bench".into(), Value::Str("compile".into())),
        ("nf".into(), Value::Str("firewall".into())),
        ("packets".into(), Value::Int(PACKETS as i64)),
        ("repeats_median".into(), Value::Int(REPEATS as i64)),
        ("compile_ns".into(), Value::Int(compile_ns as i64)),
        ("tree_nodes".into(), Value::Int(prog.node_count() as i64)),
        ("table_entries".into(), Value::Int(prog.entry_count() as i64)),
        ("compiled_speedup_vs_interp".into(), Value::Float(speedup)),
        ("results".into(), Value::Array(results)),
    ]);
    let dir = std::env::var("NF_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_compile.json");
    match std::fs::write(&path, report.render_pretty()) {
        Ok(()) => eprintln!("bench compile: report -> {}", path.display()),
        Err(e) => eprintln!("bench compile: could not write {}: {e}", path.display()),
    }
}
