//! Incremental-lint benchmark: cold (fresh engine, full 8-NF corpus)
//! vs warm (long-lived engine, one trailing-comment edit, full corpus
//! re-lint). The warm path must revalidate memoized queries instead of
//! re-deriving them, so this target *gates* on a ≥5× warm speedup and
//! on the warm recompute profile (exactly one re-parse, nothing
//! downstream) — a regression in the red-green machinery fails the
//! bench run, not just a number in a JSON file.

use nf_query::Engine;
use nf_support::bench::Harness;
use nf_support::json::Value;
use nf_trace::Tracer;

/// The warm re-lint must beat the cold corpus lint by at least this
/// factor (in practice it is orders of magnitude; 5× leaves headroom
/// for noisy CI machines).
const MIN_WARM_SPEEDUP: f64 = 5.0;

fn bench_incr(h: &mut Harness) {
    let corpus = nf_corpus::default_corpus();
    let mut g = h.benchmark_group("incr");
    g.sample_size(10);
    g.bench_function("cold-8nf", |b| {
        b.iter(|| {
            let mut engine = Engine::new();
            for nf in &corpus {
                engine.set_source(nf.name, &nf.source);
            }
            for nf in &corpus {
                engine.lint_report(nf.name);
            }
            engine.revision()
        })
    });
    // Warm: the engine outlives the timed region; each iteration is a
    // fresh trailing-comment edit to one NF followed by a full-corpus
    // re-lint — the editor loop `nfactor lint --watch` runs.
    let mut engine = Engine::new();
    for nf in &corpus {
        engine.set_source(nf.name, &nf.source);
    }
    for nf in &corpus {
        engine.lint_report(nf.name);
    }
    let mut edit = 0u64;
    g.bench_function("warm-edit-8nf", |b| {
        b.iter(|| {
            edit += 1;
            let edited = format!("{}\n// warm edit {edit}\n", corpus[0].source);
            engine.set_source(corpus[0].name, &edited);
            for nf in &corpus {
                engine.lint_report(nf.name);
            }
            engine.revision()
        })
    });
    g.finish();
}

fn mean_ns(report: &Value, name: &str) -> Option<f64> {
    report
        .get("results")?
        .as_array()?
        .iter()
        .find(|r| r.get("name").and_then(|n| n.as_str()) == Some(name))
        .and_then(|r| match r.get("mean_ns") {
            Some(Value::Float(f)) => Some(*f),
            Some(Value::Int(i)) => Some(*i as f64),
            _ => None,
        })
}

/// Hard gate 1: warm must be ≥ [`MIN_WARM_SPEEDUP`]× faster than cold.
fn enforce_speedup_gate(h: &Harness) {
    let report = h.report_json();
    let (Some(cold), Some(warm)) = (
        mean_ns(&report, "incr/cold-8nf"),
        mean_ns(&report, "incr/warm-edit-8nf"),
    ) else {
        eprintln!("incr: speedup gate skipped (filtered run)");
        return;
    };
    let speedup = cold / warm;
    eprintln!(
        "incr: cold {:.3} ms, warm {:.3} ms -> {speedup:.1}x warm speedup (gate: >= {MIN_WARM_SPEEDUP}x)",
        cold / 1e6,
        warm / 1e6
    );
    assert!(
        speedup >= MIN_WARM_SPEEDUP,
        "incremental warm re-lint is only {speedup:.2}x faster than cold (need >= {MIN_WARM_SPEEDUP}x)"
    );
}

/// Hard gate 2: a warm edit recomputes exactly one parse and derives
/// nothing downstream (the early cutoff fires on the unchanged program
/// fingerprint).
fn enforce_recompute_profile() {
    let corpus = nf_corpus::default_corpus();
    let mut engine = Engine::with_tracer(Tracer::enabled());
    for nf in &corpus {
        engine.set_source(nf.name, &nf.source);
    }
    for nf in &corpus {
        engine.lint_report(nf.name);
    }
    let counter = |e: &Engine, n: &str| e.tracer().metrics().counter(n).unwrap_or(0);
    let downstream = [
        "query.normalize.recompute",
        "query.types.recompute",
        "query.boundary.recompute",
        "query.cfg.recompute",
        "query.pdg.recompute",
        "query.dom.recompute",
        "query.postdom.recompute",
        "query.slice.recompute",
        "query.statealyzer.recompute",
        "query.ctx.recompute",
        "query.pass.sharding.recompute",
        "query.report.recompute",
    ];
    let parse_before = counter(&engine, "query.parse.recompute");
    let down_before: Vec<u64> = downstream.iter().map(|n| counter(&engine, n)).collect();

    let edited = format!("{}\n// profile edit\n", corpus[0].source);
    engine.set_source(corpus[0].name, &edited);
    for nf in &corpus {
        engine.lint_report(nf.name);
    }

    assert_eq!(
        counter(&engine, "query.parse.recompute"),
        parse_before + 1,
        "warm edit should re-run exactly one parse"
    );
    let down_after: Vec<u64> = downstream.iter().map(|n| counter(&engine, n)).collect();
    assert_eq!(
        down_after,
        down_before,
        "warm edit recomputed downstream queries — early cutoff broken"
    );
    eprintln!("incr: recompute profile OK (1 parse, 0 derived queries)");
}

fn main() {
    let mut h = Harness::from_args("incr");
    bench_incr(&mut h);
    enforce_recompute_profile();
    enforce_speedup_gate(&h);
    h.finish();
}
