//! Micro-bench for `nfactor lint`: full-report lint time per corpus NF,
//! plus the two dominant phases (context build vs. pass execution) at
//! growing snort scales — the lint must stay cheap enough to run on
//! every build, which `scripts/verify.sh` does.

use nf_support::bench::Harness;
use nfl_lint::{AnalysisCtx, PassManager};

/// End-to-end lint (parse + check + context + passes + render) over the
/// small corpus NFs.
fn bench_lint_corpus(h: &mut Harness) {
    let mut g = h.benchmark_group("lint/corpus");
    g.sample_size(20);
    for (name, src) in [
        ("fig1-lb", nf_corpus::fig1_lb::source()),
        ("nat", nf_corpus::nat::source()),
        ("firewall", nf_corpus::firewall::source()),
        ("portknock", nf_corpus::portknock::source()),
        ("ratelimiter", nf_corpus::ratelimiter::source()),
        ("router", nf_corpus::router::source()),
        ("balance10", nf_corpus::balance::source(10)),
        ("snort25", nf_corpus::snort::source(25)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let report = nfl_lint::lint_source(name, &src).unwrap();
                report.render_text()
            })
        });
    }
    g.finish();
}

/// Context construction vs. pass execution, separated: the context
/// (normalise, types, PDG, dominators, slice, StateAlyzer) is built once
/// and every pass reuses it — this group shows how much each side costs
/// as the NF grows.
fn bench_lint_phases(h: &mut Harness) {
    let mut g = h.benchmark_group("lint/phases");
    g.sample_size(10);
    for rules in [25usize, 100] {
        let src = nf_corpus::snort::source(rules);
        let program = nfl_lang::parse_and_check(&src).unwrap();
        g.bench_function(format!("ctx/snort{rules}"), |b| {
            b.iter(|| AnalysisCtx::build(&program).unwrap())
        });
        let ctx = AnalysisCtx::build(&program).unwrap();
        let pm = PassManager::with_default_passes();
        g.bench_function(format!("passes/snort{rules}"), |b| {
            b.iter(|| pm.run(&ctx))
        });
    }
    g.finish();
}

fn main() {
    let mut h = Harness::from_args("lint");
    bench_lint_corpus(&mut h);
    bench_lint_phases(&mut h);
    h.finish();
}
