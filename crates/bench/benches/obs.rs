//! Telemetry-overhead gate: the shard telemetry plane (per-packet
//! latency/flight recording, periodic histogram flushes, the
//! dispatcher's hot-key sketch) must cost at most 10% of run time.
//!
//! Two configurations run the same firewall corpus workload through
//! `RunMode::Sequential` (the deterministic single-host mode the other shard
//! benches use): *off* pairs a disabled tracer with a disabled
//! telemetry config — the zero-instrumentation baseline — and *on* is
//! the `run --stats-json` configuration: recording tracer, default
//! telemetry. The gate compares best-of-N wall-clock time (not per-shard
//! busy-ns, which would hide the dispatcher's sketch and the flush
//! locking), interleaving the two arms to decorrelate drift.

use nf_packet::PacketGen;
use nf_shard::{Backend, RunConfig, ShardEngine, SliceSource, TelemetryConfig};
use nf_support::json::Value;
use nf_trace::Tracer;
use nfactor_core::Pipeline;
use std::time::Instant;

const SHARDS: usize = 4;
const PACKETS: usize = 3000;
const REPEATS: usize = 9;
const MAX_OVERHEAD: f64 = 1.10;

/// Best-of-N: both arms run the identical deterministic workload, so
/// the fastest observation is the least noise-contaminated one — the
/// right statistic for an overhead ratio on a shared host.
fn best(spans: &[u64]) -> u64 {
    spans.iter().copied().min().expect("non-empty")
}

fn build(src: &str, tracer: Tracer, telemetry: TelemetryConfig) -> ShardEngine {
    let pipeline = Pipeline::builder()
        .name("firewall")
        .shards(SHARDS)
        .tracer(tracer)
        .build()
        .expect("pipeline");
    let mut engine =
        ShardEngine::from_source(&pipeline, src, Backend::Interp).expect("engine");
    engine.set_telemetry(telemetry);
    engine
}

fn main() {
    let src = nf_corpus::firewall::source();
    let packets = PacketGen::new(0x0B5E).batch(PACKETS);

    let off_cfg = TelemetryConfig {
        enabled: false,
        ..TelemetryConfig::default()
    };
    let off = build(&src, Tracer::disabled(), off_cfg);
    let on = build(&src, Tracer::enabled(), TelemetryConfig::default());

    // Warm both arms before timing anything.
    let base = off
        .run_with(SliceSource::new(&packets), &RunConfig::sequential())
        .expect("warmup off");
    let inst = on
        .run_with(SliceSource::new(&packets), &RunConfig::sequential())
        .expect("warmup on");
    assert_eq!(
        base.output_signature(),
        inst.output_signature(),
        "telemetry must not change run behaviour"
    );
    assert!(inst.stats.is_some(), "instrumented run must collect stats");

    let (mut t_off, mut t_on) = (Vec::new(), Vec::new());
    for _ in 0..REPEATS {
        let t0 = Instant::now();
        let run = off
            .run_with(SliceSource::new(&packets), &RunConfig::sequential())
            .expect("off run");
        t_off.push(t0.elapsed().as_nanos() as u64);
        assert_eq!(run.total_pkts(), PACKETS as u64);

        let t0 = Instant::now();
        let run = on
            .run_with(SliceSource::new(&packets), &RunConfig::sequential())
            .expect("on run");
        t_on.push(t0.elapsed().as_nanos() as u64);
        assert_eq!(run.total_pkts(), PACKETS as u64);
    }
    let off_ns = best(&t_off);
    let on_ns = best(&t_on);
    let ratio = on_ns as f64 / off_ns as f64;
    eprintln!(
        "obs/firewall x{SHARDS}: off {:.3} ms, on {:.3} ms, ratio {ratio:.3} (gate <= {MAX_OVERHEAD})",
        off_ns as f64 / 1e6,
        on_ns as f64 / 1e6
    );

    assert!(
        ratio <= MAX_OVERHEAD,
        "telemetry overhead {ratio:.3}x exceeds the {MAX_OVERHEAD}x gate \
         (off {off_ns} ns, on {on_ns} ns)"
    );

    let report = Value::Object(vec![
        ("bench".into(), Value::Str("obs".into())),
        (
            "mode".into(),
            Value::Str(
                "RunMode::Sequential wall clock, telemetry-disabled baseline vs \
                 recording tracer + default TelemetryConfig, interleaved repeats"
                    .into(),
            ),
        ),
        ("nf".into(), Value::Str("firewall".into())),
        ("shards".into(), Value::Int(SHARDS as i64)),
        ("packets".into(), Value::Int(PACKETS as i64)),
        ("repeats_best_of".into(), Value::Int(REPEATS as i64)),
        ("baseline_ns".into(), Value::Int(off_ns as i64)),
        ("instrumented_ns".into(), Value::Int(on_ns as i64)),
        ("overhead_ratio".into(), Value::Float(ratio)),
        ("gate_max_ratio".into(), Value::Float(MAX_OVERHEAD)),
    ]);
    let dir = std::env::var("NF_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_obs.json");
    match std::fs::write(&path, report.render_pretty()) {
        Ok(()) => eprintln!("bench obs: report -> {}", path.display()),
        Err(e) => eprintln!("bench obs: could not write {}: {e}", path.display()),
    }
}
