//! Sharded-runtime scaling: throughput of the firewall (a per-flow NF
//! with a symmetric 4-tuple dispatch key) at 1/2/4/8 worker shards.
//!
//! The container this runs in has one CPU, so the numbers come from
//! `RunMode::Sequential` — the simulated-parallel mode that executes every
//! shard's work on one host thread while accounting busy nanoseconds
//! per shard. The reported makespan is the slowest shard's busy time,
//! i.e. the critical path a truly parallel run would have; the JSON is
//! labeled `simulated-parallel` so nobody mistakes it for wall clock.
//!
//! The acceptance gate lives here too: 4 shards must clear 2x the
//! single-shard throughput, or the bench aborts loudly.

use nf_packet::PacketGen;
use nf_shard::{Backend, RunConfig, ShardEngine, SliceSource};
use nf_support::json::Value;
use nfactor_core::Pipeline;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const PACKETS: usize = 4000;
const REPEATS: usize = 5;

fn median(mut spans: Vec<u64>) -> u64 {
    spans.sort_unstable();
    spans[spans.len() / 2]
}

fn main() {
    let src = nf_corpus::firewall::source();
    let packets = PacketGen::new(0xBE7C).batch(PACKETS);

    let mut results = Vec::new();
    let mut base_kpps = 0.0_f64;
    let mut speedup_at_4 = 0.0_f64;
    for &shards in &SHARD_COUNTS {
        let pipeline = Pipeline::builder()
            .name("firewall")
            .shards(shards)
            .build()
            .expect("pipeline");
        let engine =
            ShardEngine::from_source(&pipeline, &src, Backend::Interp).expect("engine");
        let _ = engine
            .run_with(SliceSource::new(&packets), &RunConfig::sequential())
            .expect("warmup");
        let mut spans = Vec::with_capacity(REPEATS);
        for _ in 0..REPEATS {
            let run = engine
                .run_with(SliceSource::new(&packets), &RunConfig::sequential())
                .expect("run");
            assert!(run.partitioned, "firewall must run partitioned");
            assert_eq!(run.total_pkts(), PACKETS as u64);
            spans.push(run.makespan_ns());
        }
        let makespan_ns = median(spans);
        let kpps = PACKETS as f64 / (makespan_ns as f64 / 1e9) / 1e3;
        if shards == 1 {
            base_kpps = kpps;
        }
        let speedup = kpps / base_kpps;
        if shards == 4 {
            speedup_at_4 = speedup;
        }
        eprintln!(
            "shard/firewall x{shards}: makespan {:.3} ms, {kpps:.0} kpkt/s, {speedup:.2}x vs 1 shard",
            makespan_ns as f64 / 1e6
        );
        results.push(Value::Object(vec![
            ("shards".into(), Value::Int(shards as i64)),
            ("makespan_ns".into(), Value::Int(makespan_ns as i64)),
            ("throughput_kpps".into(), Value::Float(kpps)),
            ("speedup_vs_1_shard".into(), Value::Float(speedup)),
        ]));
    }

    assert!(
        speedup_at_4 >= 2.0,
        "4 shards reached only {speedup_at_4:.2}x the 1-shard throughput (need >= 2x)"
    );

    let report = Value::Object(vec![
        ("bench".into(), Value::Str("shard".into())),
        (
            "mode".into(),
            Value::Str(
                "simulated-parallel (RunMode::Sequential: per-shard busy-ns accounting \
                 on one host thread; makespan = slowest shard)"
                    .into(),
            ),
        ),
        ("nf".into(), Value::Str("firewall".into())),
        ("packets".into(), Value::Int(PACKETS as i64)),
        ("repeats_median".into(), Value::Int(REPEATS as i64)),
        ("speedup_at_4_shards".into(), Value::Float(speedup_at_4)),
        ("results".into(), Value::Array(results)),
    ]);
    let dir = std::env::var("NF_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_shard.json");
    match std::fs::write(&path, report.render_pretty()) {
        Ok(()) => eprintln!("bench shard: report -> {}", path.display()),
        Err(e) => eprintln!("bench shard: could not write {}: {e}", path.display()),
    }
}
