//! Batched streaming dispatch: the firewall on the compiled backend
//! at 4 real worker shards (`RunMode::Threaded` — OS threads over
//! SPSC rings), per-packet dispatch (batch size 1) versus batched
//! dispatch (batch size 32).
//!
//! The batched path amortizes the per-packet dispatch costs across
//! each batch: one source pull and one binning pass per round, one
//! ring push (one allocation, one atomic handoff) per shard bin
//! instead of one per packet, and one rebalance/telemetry check per
//! round. On a multi-core host the dispatcher thread is the shared
//! bottleneck — every packet crosses it once — so dispatch-plane cost
//! per packet is the scaling quantity, and it is what this bench
//! gates on.
//!
//! Measurement: [`ShardRun::dispatch_ns`] is the dispatcher thread's
//! wall clock and [`ShardRun::dispatch_wait_ns`] is the share of it
//! spent in bounded backoff on full rings — worker-bound time, not
//! dispatch work. The gated metric is the *active* dispatch cost,
//! `dispatch_ns - dispatch_wait_ns`, per packet, taking the minimum
//! over repeats (preemption only adds time). This keeps the bench
//! on real threads (no simulated-parallel accounting) while staying
//! meaningful in the one-CPU container this runs in, where end-to-end
//! wall clock is worker-bound and identical for every batch size;
//! wall clock is still reported per batch size for context.
//!
//! The acceptance gate lives here: batched dispatch must beat
//! per-packet dispatch by 1.5x at 4 shards, or the bench aborts
//! loudly.

use nf_packet::PacketGen;
use nf_shard::{Backend, BatchConfig, RunConfig, ShardEngine, SliceSource};
use nf_support::json::Value;
use nfactor_core::Pipeline;

const SHARDS: usize = 4;
const PACKETS: usize = 40_000;
const REPEATS: usize = 7;
const BATCH_SIZES: [usize; 2] = [1, 32];

fn median(mut spans: Vec<u64>) -> u64 {
    spans.sort_unstable();
    spans[spans.len() / 2]
}

/// Cost estimator for the gated metric: preemption and cache pollution
/// only ever *add* time, so the minimum over repeats is the least
/// noise-contaminated observation of the true dispatch cost.
fn minimum(spans: &[u64]) -> u64 {
    *spans.iter().min().expect("at least one repeat")
}

fn config(batch: usize) -> RunConfig {
    let mut cfg = RunConfig::threaded().with_batch(BatchConfig {
        size: batch,
        ..BatchConfig::default()
    });
    // Throughput runs only need the counters, not a SeqOutput per
    // packet.
    cfg.keep_outputs = false;
    cfg
}

fn main() {
    let src = nf_corpus::firewall::source();
    let packets = PacketGen::new(0x57BE).batch(PACKETS);
    let pipeline = Pipeline::builder()
        .name("firewall")
        .shards(SHARDS)
        .build()
        .expect("pipeline");
    let engine =
        ShardEngine::from_source(&pipeline, &src, Backend::Compiled).expect("engine");

    let mut results = Vec::new();
    let mut active_ns_by_batch = Vec::new();
    for &batch in &BATCH_SIZES {
        let cfg = config(batch);
        let _ = engine
            .run_with(SliceSource::new(&packets), &cfg)
            .expect("warmup");
        let mut walls = Vec::with_capacity(REPEATS);
        let mut actives = Vec::with_capacity(REPEATS);
        let mut waits = Vec::with_capacity(REPEATS);
        for _ in 0..REPEATS {
            let started = std::time::Instant::now();
            let run = engine
                .run_with(SliceSource::new(&packets), &cfg)
                .expect("run");
            walls.push(started.elapsed().as_nanos() as u64);
            assert!(run.partitioned, "firewall must run partitioned");
            assert_eq!(run.total_pkts(), PACKETS as u64);
            actives.push(run.dispatch_ns.saturating_sub(run.dispatch_wait_ns));
            waits.push(run.dispatch_wait_ns);
        }
        let wall_ns = median(walls);
        let active_ns = minimum(&actives);
        let wait_ns = median(waits);
        let kpps = PACKETS as f64 / (wall_ns as f64 / 1e9) / 1e3;
        let active_per_pkt = active_ns as f64 / PACKETS as f64;
        active_ns_by_batch.push(active_per_pkt);
        eprintln!(
            "stream/firewall x{SHARDS} batch={batch}: wall {:.3} ms ({kpps:.0} kpkt/s), \
             dispatch {active_per_pkt:.0} ns/pkt active + {:.3} ms ring wait",
            wall_ns as f64 / 1e6,
            wait_ns as f64 / 1e6
        );
        results.push(Value::Object(vec![
            ("batch".into(), Value::Int(batch as i64)),
            ("wall_ns".into(), Value::Int(wall_ns as i64)),
            ("throughput_kpps".into(), Value::Float(kpps)),
            ("dispatch_active_ns".into(), Value::Int(active_ns as i64)),
            ("dispatch_wait_ns".into(), Value::Int(wait_ns as i64)),
            (
                "dispatch_active_ns_per_pkt".into(),
                Value::Float(active_per_pkt),
            ),
        ]));
    }

    let speedup = active_ns_by_batch[0] / active_ns_by_batch[1];
    eprintln!(
        "stream/firewall: batched dispatch is {speedup:.2}x per-packet dispatch \
         ({:.0} -> {:.0} ns/pkt)",
        active_ns_by_batch[0], active_ns_by_batch[1]
    );
    let report = Value::Object(vec![
        ("bench".into(), Value::Str("stream".into())),
        (
            "mode".into(),
            Value::Str(
                "threaded (RunMode::Threaded: real worker threads over SPSC rings; \
                 gated metric is active dispatcher-thread cost per packet, \
                 dispatch_ns - dispatch_wait_ns — ring-full backoff excluded because \
                 it is worker-bound wait, not dispatch work; wall clock reported for \
                 context and is worker-bound on this one-CPU container)"
                    .into(),
            ),
        ),
        ("nf".into(), Value::Str("firewall".into())),
        ("backend".into(), Value::Str("compiled".into())),
        ("shards".into(), Value::Int(SHARDS as i64)),
        ("packets".into(), Value::Int(PACKETS as i64)),
        ("repeats_median".into(), Value::Int(REPEATS as i64)),
        ("speedup_batched_vs_per_packet".into(), Value::Float(speedup)),
        ("results".into(), Value::Array(results)),
    ]);
    let dir = std::env::var("NF_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_stream.json");
    match std::fs::write(&path, report.render_pretty()) {
        Ok(()) => eprintln!("bench stream: report -> {}", path.display()),
        Err(e) => eprintln!("bench stream: could not write {}: {e}", path.display()),
    }

    // Gate last, so a failing run still leaves its numbers on disk.
    assert!(
        speedup >= 1.5,
        "batched dispatch reached only {speedup:.2}x per-packet dispatch (need >= 1.5x)"
    );
}
