//! Micro-benchmarks of the substrates the pipeline is built on: the
//! packet wire codec, the TCP state machine, the concrete interpreter,
//! and the model evaluator (the §5 experiment's two inner loops).

use nf_support::bench::Harness;
use nf_packet::wire::{parse_ipv4, TcpFlags};
use nf_packet::{Packet, PacketGen};
use nf_tcp::{ConnTable, TcpState};
use nfactor_core::accuracy::initial_model_state;
use nfactor_core::Pipeline;
use nfl_interp::Interp;

fn bench_packet_codec(h: &mut Harness) {
    let mut g = h.benchmark_group("substrate/packet");
    let mut pkt = Packet::tcp(
        parse_ipv4("10.0.0.1").unwrap(),
        40000,
        parse_ipv4("3.3.3.3").unwrap(),
        80,
        TcpFlags::syn(),
    );
    pkt.payload = vec![0xab; 512];
    let wire = pkt.to_wire();
    g.bench_function("emit", |b| b.iter(|| pkt.to_wire()));
    g.bench_function("parse", |b| b.iter(|| Packet::from_wire(&wire).unwrap()));
    g.bench_function("generate", |b| {
        let mut gen = PacketGen::new(7);
        b.iter(|| gen.next_packet())
    });
    g.finish();
}

fn bench_tcp_fsm(h: &mut Harness) {
    let mut g = h.benchmark_group("substrate/tcp_fsm");
    let syn = Packet::tcp(1, 2, 3, 80, TcpFlags::syn());
    let ack = Packet::tcp(1, 2, 3, 80, TcpFlags::ack());
    let mut data = Packet::tcp(1, 2, 3, 80, TcpFlags::ack());
    data.payload = vec![0; 64];
    let fin = Packet::tcp(1, 2, 3, 80, TcpFlags::fin_ack());
    g.bench_function("handshake_data_teardown", |b| {
        b.iter(|| {
            let mut t = ConnTable::default();
            t.on_packet(&syn);
            t.on_packet(&ack);
            for _ in 0..8 {
                t.on_packet(&data);
            }
            t.on_packet(&fin);
            assert_ne!(t.state(&nf_packet::FlowKey::of(&syn).unwrap()), TcpState::Established);
        })
    });
    g.finish();
}

fn bench_interp_vs_model(h: &mut Harness) {
    let mut g = h.benchmark_group("substrate/per_packet");
    let syn = Pipeline::builder()
        .name("nat")
        .build()
        .unwrap()
        .synthesize(&nf_corpus::nat::source()).unwrap();
    let pkts = PacketGen::new(11).batch(256);
    g.bench_function("interpreter", |b| {
        b.iter(|| {
            let mut i = Interp::new(&syn.nf_loop).unwrap();
            for p in &pkts {
                let _ = i.process(p).unwrap();
            }
        })
    });
    g.bench_function("model_eval", |b| {
        let interp0 = Interp::new(&syn.nf_loop).unwrap();
        b.iter(|| {
            let mut st = initial_model_state(&syn, &interp0);
            for p in &pkts {
                let _ = st.step(&syn.model, p).unwrap();
            }
        })
    });
    g.finish();
}

fn main() {
    let mut h = Harness::from_args("substrates");
    bench_packet_codec(&mut h);
    bench_tcp_fsm(&mut h);
    bench_interp_vs_model(&mut h);
    h.finish();
}
