//! Micro-benches behind Table 2: slicing time and symbolic-execution
//! time, slice vs. original, across corpus sizes.
//!
//! The `table2` *binary* prints the paper's exact table at paper scale;
//! these benches measure the same two pipeline stages with repeated
//! timed samples at sizes that keep `cargo bench` snappy.

use nf_support::bench::Harness;
use nfactor_core::Pipeline;
use nfl_analysis::pdg::{default_boundary, Pdg};
use nfl_slicer::static_slice::packet_slice;
use nfl_symex::{PathLimits, SymExec};

/// Slicing (PDG + packet slice) as a function of snort rule count.
fn bench_slicing(h: &mut Harness) {
    let mut g = h.benchmark_group("table2/slicing");
    g.sample_size(20);
    for rules in [25usize, 100, 250] {
        let src = nf_corpus::snort::source(rules);
        let program = nfl_lang::parse_and_check(&src).unwrap();
        let pl = nfl_analysis::normalize::normalize(&program).unwrap();
        g.bench_with_input(format!("snort/{rules}"), &pl, |b, pl| {
            b.iter(|| {
                let boundary = default_boundary(&pl.program, &pl.func);
                let pdg = Pdg::build(&pl.program, &pl.func, &boundary);
                packet_slice(&pdg, &pl.program, &pl.func)
            })
        });
    }
    let src = nf_corpus::balance::source(60);
    let program = nfl_lang::parse_and_check(&src).unwrap();
    let unfolded = nf_tcp::unfold_sockets(&program).unwrap();
    let pl = nfl_analysis::normalize::normalize(&unfolded).unwrap();
    g.bench_function("balance/60", |b| {
        b.iter(|| {
            let boundary = default_boundary(&pl.program, &pl.func);
            let pdg = Pdg::build(&pl.program, &pl.func, &boundary);
            packet_slice(&pdg, &pl.program, &pl.func)
        })
    });
    g.finish();
}

/// Symbolic execution: the slice (fast) vs. the original program
/// (explodes) — the paper's headline SE-time columns.
fn bench_symex(h: &mut Harness) {
    let mut g = h.benchmark_group("table2/symex");
    g.sample_size(10);
    let src = nf_corpus::snort::source(25);
    let syn = Pipeline::builder()
        .name("snort")
        .build()
        .unwrap()
        .synthesize(&src).unwrap();
    g.bench_function("snort25/slice", |b| {
        b.iter(|| SymExec::new(&syn.sliced_loop).explore().unwrap())
    });
    g.bench_function("snort25/orig", |b| {
        b.iter(|| {
            SymExec::new(&syn.nf_loop)
                .with_limits(PathLimits {
                    max_paths: 512,
                    track_executed: false,
                    ..PathLimits::default()
                })
                .explore()
                .unwrap()
        })
    });
    let bsrc = nf_corpus::balance::source(10);
    let bsyn = Pipeline::builder()
        .name("balance")
        .build()
        .unwrap()
        .synthesize(&bsrc).unwrap();
    g.bench_function("balance10/slice", |b| {
        b.iter(|| SymExec::new(&bsyn.sliced_loop).explore().unwrap())
    });
    g.bench_function("balance10/orig", |b| {
        b.iter(|| {
            SymExec::new(&bsyn.nf_loop)
                .with_limits(PathLimits {
                    track_executed: false,
                    ..PathLimits::default()
                })
                .explore()
                .unwrap()
        })
    });
    g.finish();
}

/// The whole pipeline end to end per corpus NF (what a vendor would run).
fn bench_pipeline(h: &mut Harness) {
    let mut g = h.benchmark_group("table2/pipeline");
    g.sample_size(10);
    for (name, src) in [
        ("fig1-lb", nf_corpus::fig1_lb::source()),
        ("nat", nf_corpus::nat::source()),
        ("firewall", nf_corpus::firewall::source()),
        ("snort25", nf_corpus::snort::source(25)),
        ("balance10", nf_corpus::balance::source(10)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| Pipeline::builder()
                .name(name)
                .build()
                .unwrap()
                .synthesize(&src).unwrap())
        });
    }
    g.finish();
}

fn main() {
    let mut h = Harness::from_args("table2_bench");
    bench_slicing(&mut h);
    bench_symex(&mut h);
    bench_pipeline(&mut h);
    h.finish();
}
