//! Regenerate the paper's **§5 Accuracy** experiments.
//!
//! ```text
//! cargo run --release -p bench --bin accuracy
//! ```
//!
//! Two checks, per NF:
//!
//! 1. *Path-set equality* — "we use symbolic execution to exercise all
//!    possible execution paths on both sides … the two sets of paths are
//!    the same."
//! 2. *Random differential testing* — "we generate random inputs (i.e.,
//!    packets) to both NFactor model and the original program … repeat
//!    the experiments for 1000 times … the outputs in each experiment
//!    are the same."
//!
//! The paper runs 1000 trials on its 2 NFs; we run 1000 on five.

use nfactor_core::accuracy::{differential_test, path_sets_equal};
use nfactor_core::Pipeline;

fn main() {
    let trials = 1000;
    println!("§5 accuracy: model vs. original program\n");
    println!(
        "{:<10} {:>12} {:>22}",
        "NF", "paths equal", format!("agree ({trials} trials)")
    );
    println!("{}", "-".repeat(48));
    let mut all_ok = true;
    for nf in nf_corpus_small() {
        let syn = Pipeline::builder()
            .name(nf.0)
            .build()
            .unwrap()
            .synthesize(&nf.1)
            .unwrap_or_else(|e| panic!("{}: {e}", nf.0));
        let paths_eq = path_sets_equal(&syn).expect("path comparison");
        let report = differential_test(&syn, 2016, trials).expect("differential");
        println!(
            "{:<10} {:>12} {:>16}/{trials}",
            nf.0,
            if paths_eq { "yes" } else { "NO" },
            report.agreements,
        );
        if !report.perfect() {
            for (t, prog, model) in &report.mismatches {
                println!("    trial {t}: program={prog:?} model={model:?}");
            }
        }
        all_ok &= paths_eq && report.perfect();
    }
    println!();
    if all_ok {
        println!("All NFs: path sets equal, {trials}/{trials} random packets agree.");
    } else {
        println!("ACCURACY MISMATCHES FOUND");
        std::process::exit(1);
    }
}

/// The corpus at analysis-friendly sizes (the generators' bulk is
/// log-only code that the model provably ignores; size is exercised by
/// the table2 binary instead).
fn nf_corpus_small() -> Vec<(&'static str, String)> {
    vec![
        ("fig1-lb", nf_corpus::fig1_lb::source()),
        ("balance", nf_corpus::balance::source(10)),
        ("snort", nf_corpus::snort::source(25)),
        ("nat", nf_corpus::nat::source()),
        ("firewall", nf_corpus::firewall::source()),
    ]
}
