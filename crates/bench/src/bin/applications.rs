//! Regenerate the paper's **§4 Applications** demonstrations, with the
//! model-checking speedup measurement.
//!
//! ```text
//! cargo run --release -p bench --bin applications
//! ```
//!
//! * **Verification (1)** — "Running model checking using symbolic
//!   execution on our model can significantly reduce the overhead
//!   compared to original execution, as we show in our evaluation":
//!   we time exhaustive path exploration on the original program vs. on
//!   the slice the model is built from.
//! * **Verification (2)** — stateful HSA reachability over the models.
//! * **Composition** — the `{FW, IDS} + {LB}` ordering question.
//! * **Testing** — model-guided compliance tests.

use nf_packet::Field;
use nfactor_core::Pipeline;
use nfl_symex::{PathLimits, SymExec};
use std::time::Instant;

fn main() {
    // ---------- Verification 1: model checking speedup ----------
    println!("=== §4 Verification (1): model checking via the slice ===");
    let src = nf_corpus::snort::source(120);
    let syn = Pipeline::builder()
        .name("snort")
        .build()
        .unwrap()
        .synthesize(&src).expect("snort");
    let t_orig = Instant::now();
    let orig = SymExec::new(&syn.nf_loop)
        .with_limits(PathLimits {
            max_paths: 1001,
            track_executed: false,
            ..PathLimits::default()
        })
        .explore()
        .expect("orig");
    let orig_time = t_orig.elapsed();
    let t_slice = Instant::now();
    let sliced = SymExec::new(&syn.sliced_loop).explore().expect("slice");
    let slice_time = t_slice.elapsed();
    println!(
        "original: {}{} paths in {:?}",
        if orig.exhausted { "" } else { ">" },
        orig.paths.len(),
        orig_time
    );
    println!(
        "slice:    {} paths in {:?}  (speedup ×{})",
        sliced.paths.len(),
        slice_time,
        orig_time.as_micros().max(1) / slice_time.as_micros().max(1)
    );

    // ---------- Verification 2: stateful reachability ----------
    println!("\n=== §4 Verification (2): stateful HSA over the FW model ===");
    let fw = Pipeline::builder()
        .name("fw")
        .build()
        .unwrap()
        .synthesize(&nf_corpus::firewall::source())
        .expect("fw");
    let mut state = nf_model::ModelState::default()
        .with_config("PROTECTED_NET", nfl_interp::Value::Int(0x0a000000))
        .with_config("PROTECTED_MASK", nfl_interp::Value::Int(0xff000000))
        .with_config("ALLOW_PORT", nfl_interp::Value::Int(80))
        .with_scalar("out_count", nfl_interp::Value::Int(0))
        .with_scalar("in_count", nfl_interp::Value::Int(0))
        .with_scalar("blocked_count", nfl_interp::Value::Int(0))
        .with_map("pinholes");
    let nf = nf_verify::hsa::StatefulNf {
        model: fw.model.clone(),
        state: state.clone(),
    };
    let outside = nf_verify::hsa::HeaderSpace::all().with(
        Field::IpSrc,
        nf_verify::hsa::IntervalSet::range(0x0b000000, 0xffffffff),
    );
    let through = nf.reachable_through(&outside);
    println!(
        "fresh state: outside→inside reaches through {} space(s), all on the allow port: {}",
        through.len(),
        through
            .iter()
            .all(|s| s.get(Field::TcpDport).contains(80) && s.get(Field::TcpDport).size() == 1)
    );
    state.maps.get_mut("pinholes").unwrap().insert(
        nfl_interp::ValueKey::Tuple(vec![0x08080808, 443, 0x0a000005, 5000]),
        nfl_interp::Value::Int(1),
    );
    let nf_open = nf_verify::hsa::StatefulNf {
        model: fw.model.clone(),
        state,
    };
    let reply = nf_verify::hsa::HeaderSpace::all()
        .with_point(Field::IpSrc, 0x08080808)
        .with_point(Field::TcpSport, 443)
        .with_point(Field::IpDst, 0x0a000005)
        .with_point(Field::TcpDport, 5000);
    println!(
        "pinholed state: reply reachable = {} (fresh state: {})",
        !nf_open.reachable_through(&reply).is_empty(),
        !nf.reachable_through(&reply).is_empty()
    );

    // ---------- Composition ----------
    println!("\n=== §4 Composition: {{FW, IDS}} + {{LB}} ===");
    let ids = Pipeline::builder()
        .name("ids")
        .build()
        .unwrap()
        .synthesize(&nf_corpus::snort::source(10))
        .expect("ids");
    let lb = Pipeline::builder()
        .name("lb")
        .build()
        .unwrap()
        .synthesize(&nf_corpus::fig1_lb::source())
        .expect("lb");
    let report = nf_verify::recommend_order(&[
        ("FW", &fw.model),
        ("IDS", &ids.model),
        ("LB", &lb.model),
    ]);
    println!("{report}");

    // ---------- Testing ----------
    println!("=== §4 Testing: model-guided compliance ===");
    for (name, syn) in [("fw", &fw), ("ids", &ids), ("lb", &lb)] {
        match nf_verify::compliance_test(syn) {
            Ok(rep) => println!(
                "{name}: {} tests, {} ungeneratable, compliant = {}",
                rep.tests.len(),
                rep.ungenerated,
                rep.compliant()
            ),
            Err(e) => println!("{name}: generation error: {e}"),
        }
    }
}
