//! Regenerate the paper's figures as text artifacts.
//!
//! ```text
//! cargo run --release -p bench --bin figures
//! ```
//!
//! * **Figure 1** — the load balancer source with its packet/state slice
//!   highlighted (`>>` markers), plus the *dynamic* slice for the first
//!   packet of a flow (the exact scenario the paper highlights).
//! * **Figure 4 / 5** — the four code structures and the unfolded
//!   (Figure 5) form of the nested-loop one.
//! * **Figure 6** — the NFactor output table for balance.

use nf_packet::wire::{parse_ipv4, TcpFlags};
use nf_packet::Packet;
use nfactor_core::Pipeline;
use nfl_analysis::normalize::{detect_structure, normalize};
use nfl_interp::Interp;
use nfl_slicer::dynamic::dynamic_slice_of_output;

fn main() {
    // ---------- Figure 1 ----------
    println!("==================== Figure 1 ====================");
    println!("Load balancer code and a slice (>> = slice lines)\n");
    let lb_src = nf_corpus::fig1_lb::source();
    let syn = Pipeline::builder()
        .name("fig1-lb")
        .build()
        .unwrap()
        .synthesize(&lb_src).expect("lb");
    println!("{}", syn.render_highlighted_slice());

    println!("--- dynamic slice: relaying the FIRST packet of a flow ---");
    let mut interp = Interp::new(&syn.nf_loop).expect("interp");
    let first = Packet::tcp(
        parse_ipv4("10.0.0.1").unwrap(),
        1234,
        parse_ipv4("3.3.3.3").unwrap(),
        80,
        TcpFlags::syn(),
    );
    let run = interp.process(&first).expect("process");
    let dyn_slice = dynamic_slice_of_output(&syn.nf_loop.program, &run.trace);
    let text = nfl_lang::pretty::program_to_string_opts(
        &syn.nf_loop.program,
        &nfl_lang::pretty::RenderOpts {
            highlight: Some(dyn_slice.clone()),
            ..Default::default()
        },
    );
    println!("{text}");
    println!(
        "(dynamic slice: {} stmts; static slice: {} — the hash-mode branch and the reverse direction are absent dynamically)\n",
        dyn_slice.len(),
        syn.union_slice.stmts.len()
    );

    // ---------- Figures 4 & 5 ----------
    println!("==================== Figures 4 & 5 ====================");
    for (label, src) in [
        ("4a one-loop", nf_corpus::structures::one_loop()),
        ("4b callback", nf_corpus::structures::callback()),
        ("4c consumer-producer", nf_corpus::structures::consumer_producer()),
        ("4d nested-loop", nf_corpus::structures::nested_loop()),
    ] {
        let p = nfl_lang::parse_and_check(&src).expect(label);
        println!("{label}: detected {:?}", detect_structure(&p));
    }
    let nested = nfl_lang::parse_and_check(&nf_corpus::structures::nested_loop()).unwrap();
    let unfolded = nf_tcp::unfold_sockets(&nested).expect("unfold");
    println!("\nFigure 5: the nested loop after socket unfolding:");
    println!("{}", nfl_lang::pretty::program_to_string(&unfolded));
    let _ = normalize(&unfolded).expect("unfolded normalises");

    // ---------- Figure 6 ----------
    println!("==================== Figure 6 ====================");
    println!("NFactor output for balance\n");
    let bsyn = Pipeline::builder()
        .name("balance")
        .build()
        .unwrap()
        .synthesize(&nf_corpus::balance::source(5))
        .expect("balance");
    println!("{}", bsyn.render_model());
}
