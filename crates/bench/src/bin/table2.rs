//! Regenerate the paper's **Table 2** — "NFactor on Snort and Balance".
//!
//! ```text
//! cargo run --release -p bench --bin table2            # paper scale (~5–6 min: the
//! cargo run --release -p bench --bin table2 -- --quick # snort orig column is the
//!                                                      # ">1 hr" cell, by design)
//! ```
//!
//! Paper's numbers for reference:
//!
//! ```text
//!          LoC                    Slicing   # of EP        SE time
//!          orig  slice  path      Time      orig   slice   orig    slice
//! snort    2678  129    112       158s      >1000  3       >1hr    484ms
//! balance  1559  64     34        79s       20     10      3.4s    404ms
//! ```
//!
//! Absolute numbers differ (our substrate is a reimplementation, and our
//! analyses are far faster than 2016-era giri/KLEE); every *relation*
//! must hold: slice ≪ orig LoC, path ≤ slice, EP collapse, SE collapse,
//! snort benefiting most.

use nfactor_core::{Pipeline, Synthesis};
use std::time::Duration;

fn fmt_dur(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.1}s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{}ms", d.as_millis())
    } else {
        format!("{}µs", d.as_micros())
    }
}

fn row(name: &str, syn: &Synthesis) -> String {
    let m = &syn.metrics;
    format!(
        "{name:<9} {:>5}  {:>5}  {:>4}   {:>9}   {:>6}  {:>5}   {:>8}  {:>8}",
        m.loc_orig,
        m.loc_slice,
        m.loc_path,
        fmt_dur(m.slicing_time),
        m.ep_orig_str(),
        m.ep_slice,
        m.se_time_orig.map(fmt_dur).unwrap_or_else(|| "-".into()),
        fmt_dur(m.se_time_slice),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (snort_rules, balance_extras) = if quick {
        (60, 40)
    } else {
        (
            nf_corpus::snort::PAPER_SCALE_RULES,
            nf_corpus::balance::PAPER_SCALE_EXTRAS,
        )
    };
    let pipeline = Pipeline::builder()
        .measure_original(true)
        .build()
        .expect("pipeline");

    println!("Table 2: NFactor on Snort and Balance (this reproduction)");
    if quick {
        println!("[--quick mode: snort({snort_rules}) / balance({balance_extras})]");
    } else {
        println!("[paper scale: snort({snort_rules} rules) / balance({balance_extras} extras); the snort 'orig' SE column is the paper's '>1hr' cell and takes minutes]");
    }
    println!();
    println!(
        "{:<9} {:>5}  {:>5}  {:>4}   {:>9}   {:>6}  {:>5}   {:>8}  {:>8}",
        "", "LoC", "slice", "path", "SlicingT", "EPorig", "EPsl", "SEorig", "SEslice"
    );
    println!("{}", "-".repeat(78));

    let snort_src = nf_corpus::snort::source(snort_rules);
    let snort = pipeline
        .synthesize_named("snort", &snort_src)
        .expect("snort synthesis");
    println!("{}", row("snort", &snort));

    let balance_src = nf_corpus::balance::source(balance_extras);
    let balance = pipeline
        .synthesize_named("balance", &balance_src)
        .expect("balance synthesis");
    println!("{}", row("balance", &balance));

    println!();
    println!("--- shape checks against the paper ---");
    let checks: Vec<(&str, bool)> = vec![
        (
            "snort: slice LoC ≪ orig LoC",
            snort.metrics.loc_slice * 4 < snort.metrics.loc_orig,
        ),
        (
            "snort: path LoC ≤ slice LoC",
            snort.metrics.loc_path <= snort.metrics.loc_slice,
        ),
        (
            "snort: EP orig explodes past the cap (paper: >1000)",
            matches!(snort.metrics.ep_orig, Some((_, false))),
        ),
        ("snort: EP slice = 3 (paper: 3)", snort.metrics.ep_slice == 3),
        (
            "snort: SE slice ≫ faster than orig (paper: >1hr → 484ms)",
            snort.metrics.se_time_orig.unwrap() > snort.metrics.se_time_slice * 100,
        ),
        (
            "balance: slice LoC ≪ orig LoC",
            balance.metrics.loc_slice * 4 < balance.metrics.loc_orig,
        ),
        (
            "balance: EP orig > EP slice (paper: 20 → 10)",
            balance.metrics.ep_orig.unwrap().0 > balance.metrics.ep_slice,
        ),
        (
            "balance: EP slice single/low double digits (paper: 10)",
            (3..=16).contains(&balance.metrics.ep_slice),
        ),
        (
            "snort benefits more: EP reduction factor larger",
            snort.metrics.ep_orig.unwrap().0 * balance.metrics.ep_slice
                > balance.metrics.ep_orig.unwrap().0 * snort.metrics.ep_slice,
        ),
    ];
    let mut all_ok = true;
    for (desc, ok) in checks {
        println!("  [{}] {desc}", if ok { "PASS" } else { "FAIL" });
        all_ok &= ok;
    }
    if all_ok {
        println!("\nAll Table 2 shape relations hold.");
    } else {
        println!("\nSOME SHAPE RELATIONS FAILED");
        std::process::exit(1);
    }
}
