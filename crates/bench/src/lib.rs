//! NFactor benchmark harness library (shared helpers live in the binaries).
