//! The §5 accuracy experiments.
//!
//! Two checks, exactly as the paper runs them:
//!
//! 1. **Path-set equality** — "we use symbolic execution to exercise all
//!    possible execution paths on both sides. We have compared and
//!    confirmed that the two sets of paths are the same."
//!    [`path_sets_equal`] compares the canonical forwarding behaviour of
//!    the slice's paths against the original program's paths (log-only
//!    state noise filtered out).
//!
//! 2. **Random differential testing** — "we generate random inputs (i.e.,
//!    packets) to both NFactor model and the original program, and test
//!    whether they output the same result. We repeat the experiments for
//!    1000 times." [`differential_test`] runs the interpreter (program
//!    side) and the model evaluator (model side) on the same seeded
//!    packet stream and diffs outputs packet by packet.

use crate::pipeline::Synthesis;
use nf_model::ModelState;
use nf_packet::{Packet, PacketGen};
use nfl_interp::{Interp, Value};
use nfl_symex::{ExplorationStats, SymExec};
use std::collections::BTreeSet;

/// Outcome of the differential test.
#[derive(Debug, Clone)]
pub struct AccuracyReport {
    /// Packets compared.
    pub trials: usize,
    /// Packets where model and program agreed exactly.
    pub agreements: usize,
    /// First few disagreements, for debugging: `(trial, program-out,
    /// model-out)`.
    pub mismatches: Vec<(usize, Option<Packet>, Option<Packet>)>,
}

impl AccuracyReport {
    /// Did every trial agree?
    pub fn perfect(&self) -> bool {
        self.agreements == self.trials
    }
}

/// Initialise a [`ModelState`] from the NF's declared initial values —
/// the interpreter's freshly-evaluated globals are the single source of
/// truth so both sides of the experiment start identically.
pub fn initial_model_state(syn: &Synthesis, interp: &Interp) -> ModelState {
    let mut st = ModelState::default();
    for item in &syn.nf_loop.program.configs {
        if let Some(v) = interp.global(&item.name) {
            st.configs.insert(item.name.clone(), v.clone());
        }
    }
    for item in &syn.nf_loop.program.states {
        match interp.global(&item.name) {
            Some(Value::Map(_)) => {
                st.maps.entry(item.name.clone()).or_default();
            }
            Some(v) => {
                st.scalars.insert(item.name.clone(), v.clone());
            }
            None => {}
        }
    }
    st
}

/// Run the §5 random-packet differential test: `trials` packets from a
/// seeded generator through both the original program (interpreter) and
/// the synthesized model (evaluator), comparing the forwarded packet (or
/// drop) each time.
pub fn differential_test(
    syn: &Synthesis,
    seed: u64,
    trials: usize,
) -> Result<AccuracyReport, String> {
    let mut interp = Interp::new(&syn.nf_loop).map_err(|e| e.to_string())?;
    let mut model_state = initial_model_state(syn, &interp);
    let mut gen = PacketGen::new(seed);
    let mut agreements = 0usize;
    let mut mismatches = Vec::new();
    for trial in 0..trials {
        let pkt = gen.next_packet();
        let prog = interp.process(&pkt).map_err(|e| format!("trial {trial}: {e}"))?;
        let model = model_state
            .step(&syn.model, &pkt)
            .map_err(|e| format!("trial {trial}: {e}"))?;
        let prog_out = prog.outputs.first().cloned();
        if prog_out == model.output {
            agreements += 1;
        } else if mismatches.len() < 8 {
            mismatches.push((trial, prog_out, model.output.clone()));
        }
    }
    Ok(AccuracyReport {
        trials,
        agreements,
        mismatches,
    })
}

/// Canonicalise an exploration's *forwarding* path set: per path, the
/// sorted constraints plus the output rewrites, ignoring state variables
/// that are not output-impacting (log counters exist in the original
/// program's paths but are rightly absent from the slice's).
///
/// `vocabulary` restricts which constraint literals count: the original
/// program's paths additionally split on log-only branches (the decoder
/// statistics in snort, the bookkeeping guards in balance); projecting
/// both sides onto the slice's literal vocabulary merges those splits —
/// this is what "the two sets of paths are the same" means for a
/// *forwarding* model.
fn forwarding_set(
    stats: &ExplorationStats,
    ois: &BTreeSet<String>,
    vocabulary: Option<&BTreeSet<String>>,
) -> BTreeSet<String> {
    stats
        .paths
        .iter()
        .map(|p| {
            let mut cs: Vec<String> = p
                .constraints
                .iter()
                .map(|c| c.to_string())
                .filter(|c| vocabulary.map(|v| v.contains(c)).unwrap_or(true))
                .collect();
            cs.sort();
            cs.dedup();
            let outs: Vec<String> = p
                .outputs
                .iter()
                .map(|o| {
                    let mut rw: Vec<String> = o
                        .rewrites()
                        .iter()
                        .map(|(f, v)| format!("{}={v}", f.path()))
                        .collect();
                    rw.sort();
                    rw.join(",")
                })
                .collect();
            let mut sts: Vec<String> = p
                .state_updates
                .iter()
                .filter(|(k, _)| ois.contains(*k))
                .map(|(k, v)| format!("{k}:={v}"))
                .collect();
            sts.sort();
            let mut maps: Vec<String> = p.map_ops.iter().map(|m| m.to_string()).collect();
            maps.sort();
            format!(
                "C[{}] O[{}] S[{}] M[{}]",
                cs.join("&&"),
                outs.join(";"),
                sts.join(";"),
                maps.join(";")
            )
        })
        .collect()
}

/// The §5 path-set equality check: explore the original per-packet
/// function and compare its forwarding path set with the slice's,
/// modulo splits on non-forwarding branches.
pub fn path_sets_equal(syn: &Synthesis) -> Result<bool, String> {
    let orig = SymExec::new(&syn.nf_loop)
        .with_limits(syn.exploration_limits())
        .explore()
        .map_err(|e| e.to_string())?;
    let ois: BTreeSet<String> = syn.classes.ois_vars.iter().cloned().collect();
    // The slice's constraint vocabulary defines which literals are
    // forwarding-relevant.
    let vocabulary: BTreeSet<String> = syn
        .exploration
        .paths
        .iter()
        .flat_map(|p| p.constraints.iter().map(|c| c.to_string()))
        .collect();
    let a = forwarding_set(&orig, &ois, Some(&vocabulary));
    let b = forwarding_set(&syn.exploration, &ois, Some(&vocabulary));
    Ok(a == b)
}

impl Synthesis {
    /// The limits used for the slice exploration (reused for the
    /// comparison run).
    pub fn exploration_limits(&self) -> nfl_symex::PathLimits {
        nfl_symex::PathLimits::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;

    fn synth(name: &str, src: &str) -> crate::pipeline::Synthesis {
        Pipeline::builder().name(name).build().unwrap().synthesize(src).unwrap()
    }

    const NAT_SRC: &str = r#"
        config NAT_PORT = 80;
        state nat = map();
        state next_port = 10000;
        state stat = 0;
        fn cb(pkt: packet) {
            stat = stat + 1;
            if pkt.tcp.dport == NAT_PORT {
                let k = (pkt.ip.src, pkt.tcp.sport);
                if k not in nat {
                    nat[k] = next_port;
                    next_port = next_port + 1;
                }
                pkt.tcp.sport = nat[k];
                send(pkt);
            }
        }
        fn main() { sniff(cb); }
    "#;

    #[test]
    fn thousand_packet_differential_nat() {
        let syn = synth("nat", NAT_SRC);
        let report = differential_test(&syn, 2016, 1000).unwrap();
        assert!(
            report.perfect(),
            "mismatches: {:?}",
            report.mismatches
        );
        assert_eq!(report.trials, 1000);
    }

    #[test]
    fn path_sets_match_for_nat() {
        let syn = synth("nat", NAT_SRC);
        assert!(path_sets_equal(&syn).unwrap());
    }

    #[test]
    fn differential_is_seed_deterministic() {
        let syn = synth("nat", NAT_SRC);
        let a = differential_test(&syn, 7, 100).unwrap();
        let b = differential_test(&syn, 7, 100).unwrap();
        assert_eq!(a.agreements, b.agreements);
    }

    #[test]
    fn ttl_filter_differential() {
        let src = r#"
            fn cb(pkt: packet) {
                if pkt.ip.ttl > 1 {
                    pkt.ip.ttl = pkt.ip.ttl - 1;
                    send(pkt);
                }
            }
            fn main() { sniff(cb); }
        "#;
        let syn = synth("ttl", src);
        let report = differential_test(&syn, 99, 500).unwrap();
        assert!(report.perfect(), "{:?}", report.mismatches);
    }
}
