//! Restrict a per-packet function to a statement slice.
//!
//! Producing "the sliced program" as a first-class [`PacketLoop`] —
//! rather than just a set of statement ids — is what lets the Table 2
//! experiment run *symbolic execution on the slice*: the filtered
//! program is an ordinary NFL program the engine explores. A statement
//! survives if it is in the slice or encloses one that is (control
//! structure is kept so the program stays well-formed, exactly like the
//! renderer's `keep_only`).

use nfl_analysis::normalize::PacketLoop;
use nfl_lang::{Stmt, StmtId, StmtKind};
use std::collections::HashSet;

fn subtree_hits(s: &Stmt, keep: &HashSet<StmtId>) -> bool {
    if keep.contains(&s.id) {
        return true;
    }
    match &s.kind {
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => then_branch
            .iter()
            .chain(else_branch)
            .any(|c| subtree_hits(c, keep)),
        StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
            body.iter().any(|c| subtree_hits(c, keep))
        }
        _ => false,
    }
}

fn filter_stmts(stmts: &[Stmt], keep: &HashSet<StmtId>) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in stmts {
        if !subtree_hits(s, keep) {
            continue;
        }
        let mut s = s.clone();
        match &mut s.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                *then_branch = filter_stmts(then_branch, keep);
                *else_branch = filter_stmts(else_branch, keep);
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                *body = filter_stmts(body, keep);
            }
            _ => {}
        }
        out.push(s);
    }
    out
}

/// Restrict `pl`'s per-packet function to the statements in `keep`
/// (plus enclosing control structure). Ids are renumbered; the global
/// declarations are preserved so the slice still references its configs
/// and states.
pub fn filter_loop(pl: &PacketLoop, keep: &HashSet<StmtId>) -> PacketLoop {
    let mut program = pl.program.clone();
    for f in &mut program.functions {
        if f.name == pl.func {
            f.body = filter_stmts(&f.body, keep);
        }
    }
    program.renumber();
    PacketLoop {
        program,
        func: pl.func.clone(),
        pkt_param: pl.pkt_param.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfl_analysis::normalize::normalize;
    use nfl_lang::parse_and_check;

    #[test]
    fn filter_keeps_guards_drops_rest() {
        let src = r#"
            state hits = 0;
            state noise = 0;
            fn cb(pkt: packet) {
                noise = noise + 1;
                if pkt.ip.ttl > 1 {
                    hits = hits + 1;
                    send(pkt);
                }
            }
            fn main() { sniff(cb); }
        "#;
        let p = parse_and_check(src).unwrap();
        let pl = normalize(&p).unwrap();
        // Keep only the send statement.
        let mut send_id = None;
        pl.program.for_each_stmt(|s| {
            if format!("{:?}", s.kind).contains("\"send\"") {
                send_id = Some(s.id);
            }
        });
        let keep: HashSet<_> = [send_id.unwrap()].into();
        let sliced = filter_loop(&pl, &keep);
        let f = sliced.program.function("cb").unwrap();
        // Only the `if` survives at top level, holding only the send.
        assert_eq!(f.body.len(), 1);
        let StmtKind::If { then_branch, .. } = &f.body[0].kind else {
            panic!("guard kept");
        };
        assert_eq!(then_branch.len(), 1);
        // Ids are dense again.
        let mut ids = Vec::new();
        sliced.program.for_each_stmt(|s| ids.push(s.id.0));
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..ids.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_keep_empties_function() {
        let src = r#"
            fn cb(pkt: packet) { let x = 1; }
            fn main() { sniff(cb); }
        "#;
        let p = parse_and_check(src).unwrap();
        let pl = normalize(&p).unwrap();
        let sliced = filter_loop(&pl, &HashSet::new());
        assert!(sliced.program.function("cb").unwrap().body.is_empty());
    }
}
