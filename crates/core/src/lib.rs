//! NFactor — automatic synthesis of NF forwarding models by program
//! analysis (HotNets-XV 2016), end to end.
//!
//! [`synthesize`] runs the whole of Algorithm 1 on an NFL source:
//!
//! 1. **Normalise** the code structure to a single per-packet loop
//!    (Figure 4b/4c → 4a via `nfl-analysis`; Figure 4d via `nf-tcp`'s
//!    socket unfolding, Figure 5).
//! 2. **Packet slice** — backward slices from every `send` (lines 1–4).
//! 3. **StateAlyzer** on the slice — classify `pktVar` / `cfgVar` /
//!    `oisVar` / `logVar` (line 5, Table 1).
//! 4. **State slice** — backward slices from every `oisVar` assignment
//!    (lines 6–9); union with the packet slice (line 10 input).
//! 5. **Symbolic execution** of the slice union — all execution paths
//!    (line 10).
//! 6. **Refactor** each path into a model entry (lines 11–16) —
//!    the per-configuration stateful match/action tables of Figure 2a.
//!
//! The [`Synthesis`] result carries every intermediate artifact plus the
//! [`Metrics`] that regenerate the paper's Table 2, and [`accuracy`]
//! implements the §5 equivalence experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod filter;
pub mod pipeline;

pub use filter::filter_loop;
#[allow(deprecated)]
pub use pipeline::{synthesize, synthesize_program, Options};
pub use pipeline::{
    Error, Metrics, Pipeline, PipelineBuilder, PipelineConfig, Synthesis, MAX_SHARDS,
};
