//! The synthesis pipeline (Algorithm 1 end to end) with Table 2 metrics.

use crate::filter::filter_loop;
use nf_model::Model;
use nfl_analysis::normalize::{normalize, PacketLoop, StructureError};
use nfl_analysis::pdg::{default_boundary, Pdg};
use nfl_lang::types::TypeInfo;
use nfl_lang::Program;
use nf_support::budget::Budget;
use nf_trace::Tracer;
use nfl_slicer::statealyzer::StateAlyzerInput;
use nfl_slicer::static_slice::{
    packet_slice_budgeted, slice_union, state_slice_budgeted, SliceResult,
};
use nfl_slicer::statealyzer::{statealyzer, VarClasses};
use nfl_symex::{ExplorationStats, PathLimits, SymExec};
use std::fmt;
use std::time::Duration;

/// Pipeline errors, tagged with the failing stage.
#[derive(Debug, Clone)]
pub enum Error {
    /// The builder was given an invalid configuration.
    Config(String),
    /// Parsing or type checking failed.
    Frontend(String),
    /// Structure normalisation failed.
    Structure(String),
    /// Socket unfolding failed.
    Unfold(String),
    /// Symbolic execution failed.
    Symex(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(m) => write!(f, "config: {m}"),
            Error::Frontend(m) => write!(f, "frontend: {m}"),
            Error::Structure(m) => write!(f, "structure: {m}"),
            Error::Unfold(m) => write!(f, "unfold: {m}"),
            Error::Symex(m) => write!(f, "symbolic execution: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// The validated configuration a [`Pipeline`] runs with.
///
/// Construct one through [`Pipeline::builder`]; the fields stay public
/// for the deprecated [`Options`] struct-literal call sites and will be
/// privatised when those wrappers are removed.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Limits for the model-extraction symbolic execution (on the slice).
    pub limits: PathLimits,
    /// Which statements feed StateAlyzer (ablation knob; NFactor's
    /// default is the packet slice).
    pub statealyzer_input: StateAlyzerInput,
    /// Also symbolically execute the *original* (unsliced) per-packet
    /// function, to fill Table 2's "orig" columns. Off by default — this
    /// is the expensive side the paper reports as ">1 hr" for snort.
    pub measure_original: bool,
    /// Limits for that original-program execution.
    pub original_limits: PathLimits,
    /// Resource budget for the whole pipeline (wall-clock deadline plus
    /// path/step/solver caps). On exhaustion the pipeline degrades
    /// gracefully: it returns a *partial* model stamped
    /// [`Completeness::Truncated`](nf_model::Completeness) instead of
    /// hanging or erroring — Table 2's ">1000 paths" made first-class.
    pub budget: Budget,
    /// Observability handle, threaded alongside the budget (same
    /// convention: an explicit value, no globals). Every Algorithm-1
    /// stage becomes a span; the Table 2 timings are read back from
    /// those spans, so timing is measured once and is mockable. The
    /// default is a disabled tracer (records nothing).
    pub tracer: Tracer,
    /// Worker shards the `nf-shard` runtime should execute the result
    /// with (`1` = single-threaded). The pipeline itself is unaffected;
    /// the value rides along so one builder owns the whole run
    /// (synthesis *and* execution) and `nfactor run --shards N` has a
    /// single source of truth.
    pub shards: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            limits: PathLimits::default(),
            statealyzer_input: StateAlyzerInput::PacketSlice,
            measure_original: false,
            original_limits: PathLimits {
                loop_bound: 4,
                max_paths: 1001, // just past the paper's ">1000"
                max_steps: 20_000,
                track_executed: false,
            },
            budget: Budget::unlimited(),
            tracer: Tracer::disabled(),
            shards: 1,
        }
    }
}

/// Deprecated name of [`PipelineConfig`].
#[deprecated(
    since = "0.2.0",
    note = "use `Pipeline::builder()` (or `PipelineConfig` directly) instead"
)]
pub type Options = PipelineConfig;

/// Most shards a pipeline will accept; past this the dispatch hash
/// spreads flows thinner than any plausible core count and a typo'd
/// `--shards 10000` would allocate that many rings and threads.
pub const MAX_SHARDS: usize = 256;

/// Builder for a [`Pipeline`] — the one place every knob of a run
/// (synthesis limits, budget, tracer, shard count) is set.
///
/// ```
/// use nfactor_core::Pipeline;
///
/// let pipeline = Pipeline::builder()
///     .name("port-filter")
///     .shards(4)
///     .build()
///     .unwrap();
/// let syn = pipeline
///     .synthesize(
///         "config PORT = 80;
///          fn cb(pkt: packet) { if pkt.tcp.dport == PORT { send(pkt); } }
///          fn main() { sniff(cb); }",
///     )
///     .unwrap();
/// assert_eq!(syn.name, "port-filter");
/// ```
#[derive(Debug, Clone, Default)]
pub struct PipelineBuilder {
    name: Option<String>,
    config: PipelineConfig,
}

impl PipelineBuilder {
    /// Name the NF (used in reports and the model header). Defaults to
    /// `"nf"`; [`Pipeline::synthesize_named`] overrides it per call.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Path limits for the model-extraction symbolic execution.
    pub fn limits(mut self, limits: PathLimits) -> Self {
        self.config.limits = limits;
        self
    }

    /// Which statements feed StateAlyzer (ablation knob).
    pub fn statealyzer_input(mut self, input: StateAlyzerInput) -> Self {
        self.config.statealyzer_input = input;
        self
    }

    /// Also explore the unsliced program (Table 2's "orig" columns).
    pub fn measure_original(mut self, on: bool) -> Self {
        self.config.measure_original = on;
        self
    }

    /// Path limits for that original-program exploration.
    pub fn original_limits(mut self, limits: PathLimits) -> Self {
        self.config.original_limits = limits;
        self
    }

    /// Resource budget (deadline + path/step/solver caps) for the run.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.config.budget = budget;
        self
    }

    /// Observability handle; every Algorithm-1 stage becomes a span.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.config.tracer = tracer;
        self
    }

    /// Worker shards for the `nf-shard` execution runtime.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Validate and produce the [`Pipeline`].
    pub fn build(self) -> Result<Pipeline, Error> {
        if self.config.shards == 0 {
            return Err(Error::Config("shards must be at least 1".into()));
        }
        if self.config.shards > MAX_SHARDS {
            return Err(Error::Config(format!(
                "shards must be at most {MAX_SHARDS}, got {}",
                self.config.shards
            )));
        }
        if self.config.limits.max_paths == 0 {
            return Err(Error::Config("limits.max_paths must be at least 1".into()));
        }
        Ok(Pipeline {
            name: self.name.unwrap_or_else(|| "nf".to_string()),
            config: self.config,
        })
    }
}

/// A configured synthesis pipeline: build once, synthesize any number
/// of sources with the same budget/tracer/shard settings.
#[derive(Debug, Clone)]
pub struct Pipeline {
    name: String,
    config: PipelineConfig,
}

impl Pipeline {
    /// Start configuring a pipeline.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::default()
    }

    /// The configured NF name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The validated configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Worker shards the execution runtime should use.
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// The tracer attached to this pipeline.
    pub fn tracer(&self) -> &Tracer {
        &self.config.tracer
    }

    /// The resource budget attached to this pipeline.
    pub fn budget(&self) -> &Budget {
        &self.config.budget
    }

    /// Run Algorithm 1 on NFL source text under the configured name.
    pub fn synthesize(&self, src: &str) -> Result<Synthesis, Error> {
        self.synthesize_named(&self.name, src)
    }

    /// Run Algorithm 1 on NFL source text, overriding the NF name (for
    /// callers reusing one pipeline across a corpus).
    pub fn synthesize_named(&self, name: &str, src: &str) -> Result<Synthesis, Error> {
        run_source(name, src, &self.config)
    }

    /// Run Algorithm 1 on an already parsed and checked program.
    pub fn synthesize_program(&self, name: &str, program: &Program) -> Result<Synthesis, Error> {
        run_program(name, program, &self.config)
    }
}

/// The Table 2 row for one NF.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// LoC of the original program (comments excluded).
    pub loc_orig: usize,
    /// LoC of the packet∪state slice.
    pub loc_slice: usize,
    /// LoC of the largest single execution path in the slice.
    pub loc_path: usize,
    /// Wall-clock time of slicing (PDG + slices + classification).
    pub slicing_time: Duration,
    /// Execution paths in the slice.
    pub ep_slice: usize,
    /// Symbolic-execution time on the slice.
    pub se_time_slice: Duration,
    /// Execution paths of the original program (`(count, exhausted)`),
    /// when measured. `exhausted == false` renders as ">count".
    pub ep_orig: Option<(usize, bool)>,
    /// Symbolic-execution time on the original program, when measured.
    pub se_time_orig: Option<Duration>,
}

impl Metrics {
    /// Format the original-EP column the way Table 2 does (">1000").
    pub fn ep_orig_str(&self) -> String {
        match self.ep_orig {
            Some((n, true)) => n.to_string(),
            Some((n, false)) => format!(">{n}"),
            None => "-".to_string(),
        }
    }
}

/// Everything the pipeline produced.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// NF name (for reports).
    pub name: String,
    /// The normalised (and, if needed, socket-unfolded) per-packet loop.
    pub nf_loop: PacketLoop,
    /// Type information of the normalised program.
    pub type_info: TypeInfo,
    /// Packet processing slice (Algorithm 1 lines 1–4).
    pub packet_slice: SliceResult,
    /// State transition slice (lines 6–9).
    pub state_slice: SliceResult,
    /// Their union (line 10's input).
    pub union_slice: SliceResult,
    /// StateAlyzer classification (line 5, Table 1).
    pub classes: VarClasses,
    /// The slice as a runnable program.
    pub sliced_loop: PacketLoop,
    /// All execution paths of the slice.
    pub exploration: ExplorationStats,
    /// The synthesized model (lines 11–16, Figure 2a).
    pub model: Model,
    /// Table 2 metrics.
    pub metrics: Metrics,
}

impl Synthesis {
    /// The Figure 6 rendering of the model.
    pub fn render_model(&self) -> String {
        nf_model::render_figure6(&self.model)
    }

    /// The Figure 1 view: the original per-packet function with the
    /// slice-union highlighted.
    pub fn render_highlighted_slice(&self) -> String {
        self.union_slice.render_highlighted(&self.nf_loop.program)
    }
}

/// Normalise, unfolding sockets first when the program is the Figure 4d
/// nested-loop shape.
pub fn normalize_with_unfold(program: &Program) -> Result<PacketLoop, Error> {
    match normalize(program) {
        Ok(pl) => Ok(pl),
        Err(StructureError::NestedLoop) => {
            let unfolded = nf_tcp::unfold_sockets(program)
                .map_err(|e| Error::Unfold(e.to_string()))?;
            normalize(&unfolded).map_err(|e| Error::Structure(e.to_string()))
        }
        Err(e) => Err(Error::Structure(e.to_string())),
    }
}

/// Run the pipeline on NFL source text.
#[deprecated(since = "0.2.0", note = "use `Pipeline::builder()....build()?.synthesize(src)`")]
pub fn synthesize(name: &str, src: &str, opts: &PipelineConfig) -> Result<Synthesis, Error> {
    run_source(name, src, opts)
}

/// Run the pipeline on an already-checked program.
#[deprecated(
    since = "0.2.0",
    note = "use `Pipeline::builder()....build()?.synthesize_program(name, program)`"
)]
pub fn synthesize_program(
    name: &str,
    program: &Program,
    opts: &PipelineConfig,
) -> Result<Synthesis, Error> {
    run_program(name, program, opts)
}

fn run_source(name: &str, src: &str, opts: &PipelineConfig) -> Result<Synthesis, Error> {
    let span = opts.tracer.span("pipeline.stage.frontend");
    let program = nfl_lang::parse_and_check(src).map_err(Error::Frontend)?;
    span.end();
    run_program(name, &program, opts)
}

fn run_program(
    name: &str,
    program: &Program,
    opts: &PipelineConfig,
) -> Result<Synthesis, Error> {
    let tracer = &opts.tracer;

    // 1. Structure normalisation (+ socket unfolding).
    let span = tracer.span("pipeline.stage.structure");
    let nf_loop = normalize_with_unfold(program)?;
    let type_info =
        nfl_lang::types::check(&nf_loop.program).map_err(|e| Error::Frontend(e.to_string()))?;
    span.end();

    // 2–4. Slicing + classification, timed together ("Slicing Time").
    // The stage span doubles as the Table 2 timer: its duration *is*
    // `Metrics.slicing_time`, so the number is measured exactly once.
    let slice_span = tracer.span("pipeline.stage.slice");
    let boundary = default_boundary(&nf_loop.program, &nf_loop.func);
    let pdg = Pdg::build(&nf_loop.program, &nf_loop.func, &boundary);
    if tracer.is_enabled() {
        tracer.count("slice.pdg.edges", pdg.edges.len() as u64);
    }
    let (pkt_slice, pkt_stop) =
        packet_slice_budgeted(&pdg, &nf_loop.program, &nf_loop.func, &opts.budget, tracer);
    let classes = statealyzer(&nf_loop, &pkt_slice.stmts, &type_info, opts.statealyzer_input);
    let (st_slice, st_stop) = state_slice_budgeted(
        &pdg,
        &nf_loop.program,
        &nf_loop.func,
        &classes.ois_vars,
        &opts.budget,
        tracer,
    );
    let slicing_stop = pkt_stop.or(st_stop);
    let union = slice_union(&pkt_slice, &st_slice);
    let slicing_time = slice_span.end();

    // 5. Symbolic execution on the slice, under the same budget.
    let sliced_loop = filter_loop(&nf_loop, &union.stmts);
    let se_span = tracer.span("pipeline.stage.symex");
    let exploration = SymExec::new(&sliced_loop)
        .with_limits(opts.limits)
        .with_budget(opts.budget)
        .with_tracer(tracer.clone())
        .explore()
        .map_err(|e| Error::Symex(e.to_string()))?;
    let se_time_slice = se_span.end();

    // Optional: the expensive original-program exploration for Table 2.
    // Only the stage span is traced — attaching the tracer to this
    // second executor would double-count the `symex.*` counters.
    let (ep_orig, se_time_orig) = if opts.measure_original {
        let orig_span = tracer.span("pipeline.stage.orig");
        let stats = SymExec::new(&nf_loop)
            .with_limits(opts.original_limits)
            .explore()
            .map_err(|e| Error::Symex(e.to_string()))?;
        let dur = orig_span.end();
        (Some((stats.paths.len(), stats.exhausted)), Some(dur))
    } else {
        (None, None)
    };

    // 6. Refactor paths into the model. A budget stop anywhere in the
    // pipeline stamps the model as a partial one, reason attached.
    let model_span = tracer.span("pipeline.stage.model");
    let model = Model::from_paths(name, &exploration.paths);
    let truncation = slicing_stop.or_else(|| exploration.stop_reason.clone());
    if let Some(reason) = &truncation {
        tracer.count("pipeline.truncated", 1);
        tracer.label("pipeline.truncated.reason", reason);
    }
    let model = match truncation {
        Some(reason) => model.with_truncation(reason),
        None => model,
    };

    let loc_path = exploration
        .paths
        .iter()
        .map(|p| {
            nfl_lang::pretty::slice_loc(
                &sliced_loop.program,
                &p.executed.iter().copied().collect(),
            )
        })
        .max()
        .unwrap_or(0);
    model_span.end();
    if let Some(rem) = opts.budget.remaining() {
        tracer.gauge("budget.remaining_ms", rem.as_millis() as i64);
    }

    let metrics = Metrics {
        loc_orig: program.loc(),
        loc_slice: union.loc(&nf_loop.program),
        loc_path,
        slicing_time,
        ep_slice: exploration.paths.len(),
        se_time_slice,
        ep_orig,
        se_time_orig,
    };

    Ok(Synthesis {
        name: name.to_string(),
        nf_loop,
        type_info,
        packet_slice: pkt_slice,
        state_slice: st_slice,
        union_slice: union,
        classes,
        sliced_loop,
        exploration,
        model,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-shot synthesis with default settings, builder-style.
    fn synth(name: &str, src: &str) -> Result<Synthesis, Error> {
        Pipeline::builder().name(name).build()?.synthesize(src)
    }

    const LB_SRC: &str = r#"
        const ROUND_ROBIN = 1;
        config mode = 1;
        config LB_IP = 3.3.3.3;
        config LB_PORT = 80;
        config servers = [(1.1.1.1, 80), (2.2.2.2, 80)];
        state f2b_nat = map();
        state b2f_nat = map();
        state rr_idx = 0;
        state cur_port = 10000;
        state pass_stat = 0;
        state drop_stat = 0;

        fn pkt_callback(pkt: packet) {
            let si = pkt.ip.src;
            let di = pkt.ip.dst;
            let sp = pkt.tcp.sport;
            let dp = pkt.tcp.dport;
            let nat_tpl = (0, 0, 0, 0);
            if dp == LB_PORT {
                let cs_ftpl = (si, sp, di, dp);
                if cs_ftpl not in f2b_nat {
                    let server = (0, 0);
                    if mode == ROUND_ROBIN {
                        server = servers[rr_idx];
                        rr_idx = (rr_idx + 1) % len(servers);
                    } else {
                        server = servers[hash(si) % len(servers)];
                    }
                    let n_port = cur_port;
                    cur_port = cur_port + 1;
                    let cs_btpl = (LB_IP, n_port, server[0], server[1]);
                    f2b_nat[cs_ftpl] = cs_btpl;
                    b2f_nat[(server[0], server[1], LB_IP, n_port)] = (di, dp, si, sp);
                    nat_tpl = cs_btpl;
                } else {
                    nat_tpl = f2b_nat[cs_ftpl];
                }
            } else {
                let sc_btpl = (si, sp, di, dp);
                if sc_btpl in b2f_nat {
                    nat_tpl = b2f_nat[sc_btpl];
                } else {
                    drop_stat = drop_stat + 1;
                    return;
                }
            }
            pass_stat = pass_stat + 1;
            pkt.ip.src = nat_tpl[0];
            pkt.tcp.sport = nat_tpl[1];
            pkt.ip.dst = nat_tpl[2];
            pkt.tcp.dport = nat_tpl[3];
            send(pkt);
        }

        fn main() { sniff(pkt_callback); }
    "#;

    #[test]
    fn figure1_lb_full_pipeline() {
        let syn = synth("fig1-lb", LB_SRC).unwrap();
        // Table 1 classes.
        assert!(syn.classes.ois_vars.contains("f2b_nat"));
        assert!(syn.classes.ois_vars.contains("rr_idx"));
        assert!(syn.classes.cfg_vars.contains("mode"));
        // Slice strictly smaller than original.
        assert!(
            syn.metrics.loc_slice < syn.metrics.loc_orig,
            "slice {} < orig {}",
            syn.metrics.loc_slice,
            syn.metrics.loc_orig
        );
        assert!(syn.metrics.loc_path <= syn.metrics.loc_slice);
        // Paths: inbound-new (RR + hash), inbound-existing, outbound-known,
        // outbound-unknown (drop) = 5.
        assert_eq!(syn.metrics.ep_slice, 5, "{:?}", syn.metrics);
        // The model has the mode split: at least two tables.
        assert!(syn.model.tables.len() >= 2, "{}", syn.render_model());
        // Drop path present (outbound unknown flow).
        assert!(syn
            .model
            .tables
            .iter()
            .flat_map(|t| &t.entries)
            .any(|e| e.flow_action.is_drop()));
        // Log counters pruned from the model's state actions.
        let rendered = syn.render_model();
        assert!(!rendered.contains("pass_stat"), "{rendered}");
        assert!(!rendered.contains("drop_stat"), "{rendered}");
    }

    #[test]
    fn measure_original_populates_table2_columns() {
        let syn = Pipeline::builder()
            .measure_original(true)
            .build()
            .unwrap()
            .synthesize_named("fig1-lb", LB_SRC)
            .unwrap();
        let (ep, _) = syn.metrics.ep_orig.unwrap();
        assert!(ep >= syn.metrics.ep_slice, "orig ≥ slice paths");
        assert!(syn.metrics.se_time_orig.is_some());
    }

    #[test]
    fn nested_loop_unfolds_automatically() {
        let balance = r#"
            config LB_PORT = 80;
            config servers = [(1.1.1.1, 8080), (2.2.2.2, 8080)];
            state idx = 0;
            fn main() {
                let lfd = listen(LB_PORT);
                while true {
                    let cfd = accept(lfd);
                    let srv = servers[idx];
                    idx = (idx + 1) % len(servers);
                    if fork() == 0 {
                        let sfd = connect(srv[0], srv[1]);
                        while true {
                            let which = select2(cfd, sfd);
                            if which == 0 {
                                let buf = sock_read(cfd);
                                sock_write(sfd, buf);
                            } else {
                                let buf2 = sock_read(sfd);
                                sock_write(cfd, buf2);
                            }
                        }
                    }
                }
            }
        "#;
        let syn = synth("balance", balance).unwrap();
        // The hidden TCP state is visible in the model.
        let maps = syn.model.state_maps();
        assert!(maps.iter().any(|m| m == "__tcp"), "{maps:?}");
        // Round-robin index is an oisVar and transitions in the model.
        assert!(syn.classes.ois_vars.contains("idx"), "{:?}", syn.classes);
        let rendered = syn.render_model();
        assert!(rendered.contains("idx := ((idx + 1) % 2)"), "{rendered}");
    }

    #[test]
    fn expired_deadline_degrades_to_truncated_model() {
        // A pre-expired deadline must not hang, panic, or error out: the
        // pipeline returns a partial model that says why it is partial.
        let syn = Pipeline::builder()
            .budget(Budget::unlimited().with_timeout_ms(0))
            .build()
            .unwrap()
            .synthesize_named("fig1-lb", LB_SRC)
            .unwrap();
        assert!(
            syn.model.completeness.is_truncated(),
            "{:?}",
            syn.model.completeness
        );
        let reason = syn.model.completeness.reason().unwrap();
        assert!(reason.contains("deadline"), "{reason}");
        // The reason is visible in the Figure 6 rendering…
        assert!(syn.render_model().contains("PARTIAL MODEL"));
        // …and round-trips through JSON.
        use nf_support::json::{FromJson, ToJson};
        let json = syn.model.to_json().render();
        let val = nf_support::json::Value::parse(&json).unwrap();
        let back = nf_model::Model::from_json(&val).unwrap();
        assert_eq!(back.completeness, syn.model.completeness);
    }

    #[test]
    fn generous_budget_leaves_model_complete() {
        let syn = Pipeline::builder()
            .budget(
                Budget::unlimited()
                    .with_timeout_ms(120_000)
                    .with_max_solver_calls(1_000_000),
            )
            .build()
            .unwrap()
            .synthesize_named("fig1-lb", LB_SRC)
            .unwrap();
        assert!(!syn.model.completeness.is_truncated());
        assert_eq!(syn.metrics.ep_slice, 5);
    }

    #[test]
    fn solver_budget_truncates_with_reason() {
        let syn = Pipeline::builder()
            .budget(Budget::unlimited().with_max_solver_calls(1))
            .build()
            .unwrap()
            .synthesize_named("fig1-lb", LB_SRC)
            .unwrap();
        assert!(syn.model.completeness.is_truncated());
        assert!(syn
            .model
            .completeness
            .reason()
            .unwrap()
            .contains("solver-call budget"));
        // Partial ≤ full path count.
        assert!(syn.metrics.ep_slice <= 5);
    }

    #[test]
    fn tracer_records_stage_spans_and_truncation() {
        let tracer = Tracer::enabled();
        let syn = Pipeline::builder()
            .tracer(tracer.clone())
            .budget(Budget::unlimited().with_timeout_ms(0))
            .build()
            .unwrap()
            .synthesize_named("fig1-lb", LB_SRC)
            .unwrap();
        assert!(syn.model.completeness.is_truncated());
        let metrics = tracer.metrics();
        for stage in ["frontend", "structure", "slice", "symex", "model"] {
            let key = format!("pipeline.stage.{stage}.ns");
            assert!(metrics.counters.contains_key(&key), "missing {key}");
        }
        assert!(metrics.counters.contains_key("slice.pdg.edges"));
        assert!(metrics.counters.contains_key("symex.paths.explored"));
        assert_eq!(metrics.counter("pipeline.truncated"), Some(1));
        let reason = metrics.labels.get("pipeline.truncated.reason").unwrap();
        assert!(reason.contains("deadline"), "{reason}");
        assert!(metrics.gauges.contains_key("budget.remaining_ms"));
        assert!(tracer.balanced());
    }

    #[test]
    fn stage_spans_are_absent_on_a_disabled_tracer() {
        let pipeline = Pipeline::builder().build().unwrap();
        let _ = pipeline.synthesize_named("fig1-lb", LB_SRC).unwrap();
        assert!(pipeline.tracer().metrics().is_empty());
        assert!(pipeline.tracer().events().is_empty());
    }

    #[test]
    fn builder_rejects_bad_shard_counts() {
        assert!(matches!(
            Pipeline::builder().shards(0).build(),
            Err(Error::Config(_))
        ));
        assert!(matches!(
            Pipeline::builder().shards(MAX_SHARDS + 1).build(),
            Err(Error::Config(_))
        ));
        assert_eq!(
            Pipeline::builder().shards(MAX_SHARDS).build().unwrap().shards(),
            MAX_SHARDS
        );
    }

    #[test]
    fn builder_defaults_match_config_defaults() {
        let p = Pipeline::builder().build().unwrap();
        assert_eq!(p.name(), "nf");
        assert_eq!(p.shards(), 1);
        assert!(!p.config().measure_original);
        assert!(!p.tracer().is_enabled());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_still_work() {
        // One release of back-compat: the positional functions and the
        // `Options` alias keep working while callers migrate.
        let syn = synthesize("fig1-lb", LB_SRC, &Options::default()).unwrap();
        assert_eq!(syn.metrics.ep_slice, 5);
        let program = nfl_lang::parse_and_check(LB_SRC).unwrap();
        let syn2 = synthesize_program("fig1-lb", &program, &Options::default()).unwrap();
        assert_eq!(syn2.metrics.ep_slice, 5);
    }

    #[test]
    fn frontend_errors_surface() {
        assert!(matches!(
            synth("bad", "fn main( {"),
            Err(Error::Frontend(_))
        ));
        assert!(matches!(
            synth("bad", "fn main() { x = 1; }"),
            Err(Error::Frontend(_))
        ));
    }

    #[test]
    fn unrecognised_structure_errors() {
        assert!(matches!(
            synth("odd", "fn main() { let x = 1; }"),
            Err(Error::Structure(_))
        ));
    }

    #[test]
    fn highlighted_slice_renders() {
        let syn = synth("fig1-lb", LB_SRC).unwrap();
        let hl = syn.render_highlighted_slice();
        assert!(hl.lines().any(|l| l.starts_with(">> ")), "{hl}");
        assert!(hl.lines().any(|l| l.starts_with("   ")), "{hl}");
    }
}
