//! Lowering a [`Model`] to a [`CompiledProgram`].
//!
//! The compiler runs once per deployment (model + concrete
//! configuration + initial state) and produces a flattened dispatch
//! structure the runtime walks per packet:
//!
//! 1. **Name resolution.** Every `cfg:` variable folds to its concrete
//!    value (configurations never change at runtime), every `st:`
//!    scalar becomes a dense arena slot index, every state map a map
//!    index. Constant subterms fold through the reference evaluator.
//! 2. **Table selection.** Config-table conditions are evaluated *now*:
//!    a table whose condition folds to `false` is dropped entirely, one
//!    that folds to `true` contributes its entries. A condition that
//!    does not fold to a concrete boolean is a [`CompileError`] — the
//!    deployment's configuration is incomplete, which the reference
//!    evaluator would report on the first packet.
//! 3. **Flattening.** Surviving entries are concatenated in table
//!    order, preserving the reference evaluator's first-match priority.
//! 4. **Tree construction.** Flow literals of the recognised
//!    single-field shapes become shared decision-tree nodes
//!    ([`crate::tree`]); the rest stay residual at the leaves.
//! 5. **State-tag interning.** State-match literals are canonicalised
//!    (leading negations stripped into an expected polarity) and
//!    deduplicated, so one evaluation per packet serves every entry
//!    that tests the same predicate.

use crate::expr::{fold, CExpr};
use crate::tree::{build, classify, Cand, Node};
use nf_model::{Entry, FlowAction, Model, ModelState};
use nf_packet::Field;
use nfl_interp::value::{Value, ValueKey};
use nfl_symex::{MapOp, SymVal};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A config-table condition did not fold to a concrete boolean —
    /// the configuration this model was deployed with is incomplete.
    Config {
        /// Index of the offending table.
        table: usize,
        /// The condition literal, rendered.
        lit: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Config { table, lit } => write!(
                f,
                "config condition of table {table} does not fold to a boolean: {lit}"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiled packet action.
#[derive(Debug, Clone, PartialEq)]
pub enum CFlowAction {
    /// Forward with in-order header rewrites.
    Forward {
        /// `(field, value term)` rewrites.
        rewrites: Vec<(Field, CExpr)>,
    },
    /// Drop.
    Drop,
}

/// Compiled map operation.
#[derive(Debug, Clone, PartialEq)]
pub enum CMapOp {
    /// `map[key] = value`.
    Insert {
        /// Map index.
        map: usize,
        /// Key term.
        key: CExpr,
        /// Value term.
        value: CExpr,
    },
    /// `map_remove(map, key)`.
    Remove {
        /// Map index.
        map: usize,
        /// Key term.
        key: CExpr,
    },
}

/// One state-match obligation of an entry: interned predicate `pred`
/// must evaluate to `expect`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateLit {
    /// Index into [`CompiledProgram::state_preds`].
    pub pred: usize,
    /// Required truth value (negations folded into the polarity).
    pub expect: bool,
    /// Whether the source literal was wrapped in `!` — decides which
    /// reference error message a non-boolean predicate value raises.
    pub wrapped: bool,
}

/// One flattened table entry.
#[derive(Debug, Clone, PartialEq)]
pub struct CEntry {
    /// `(table, entry)` position in the source model — reported as the
    /// fired entry, identically to the reference evaluator.
    pub origin: (usize, usize),
    /// Lowered flow-match literals, in source order. The decision tree
    /// proves a subset of these on the path to a leaf; the leaf lists
    /// the rest as residuals.
    pub flow_lits: Vec<CExpr>,
    /// State-match obligations, in source order.
    pub state_lits: Vec<StateLit>,
    /// Packet action.
    pub flow_action: CFlowAction,
    /// Scalar state writes `(slot, value term)`, committed in order.
    pub updates: Vec<(usize, CExpr)>,
    /// Map writes, committed in order (after scalars, as the reference
    /// does).
    pub map_ops: Vec<CMapOp>,
}

/// The compiled form of a model: decision tree + flattened entries +
/// interned state predicates + dense initial state.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Name of the NF the model was extracted from.
    pub nf_name: String,
    /// Tree node arena.
    pub nodes: Vec<Node>,
    /// Root node index.
    pub root: usize,
    /// Flattened entries in global priority order.
    pub entries: Vec<CEntry>,
    /// Interned state-match predicates (canonical, negation-stripped).
    pub state_preds: Vec<CExpr>,
    /// Scalar slot names (error messages, snapshots).
    pub slot_names: Vec<String>,
    /// Map names (error messages, snapshots).
    pub map_names: Vec<String>,
    /// Initial slot values (`None` = unset).
    pub init_slots: Vec<Option<Value>>,
    /// Initial map contents.
    pub init_maps: Vec<HashMap<ValueKey, Value>>,
    /// Which maps exist in the initial state (a map not declared there
    /// only materialises in snapshots once written, mirroring
    /// `ModelState.maps`).
    pub init_materialized: Vec<bool>,
    /// Concrete configuration, kept for snapshot parity with the
    /// reference backend.
    pub configs: BTreeMap<String, Value>,
}

impl CompiledProgram {
    /// Number of decision-tree nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of flattened table entries.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }
}

/// Name-resolution context during lowering.
struct Lowerer<'a> {
    configs: &'a BTreeMap<String, Value>,
    slot_names: Vec<String>,
    map_names: Vec<String>,
}

impl Lowerer<'_> {
    fn slot_idx(&mut self, name: &str) -> usize {
        match self.slot_names.iter().position(|n| n == name) {
            Some(i) => i,
            None => {
                self.slot_names.push(name.to_string());
                self.slot_names.len() - 1
            }
        }
    }

    fn map_idx(&mut self, name: &str) -> usize {
        match self.map_names.iter().position(|n| n == name) {
            Some(i) => i,
            None => {
                self.map_names.push(name.to_string());
                self.map_names.len() - 1
            }
        }
    }

    /// Lower one symbolic term, folding constants as we go. Terms the
    /// reference evaluator would fail on lower to [`CExpr::Stuck`]
    /// carrying the reference's exact message, so the error surfaces at
    /// the same packet, not at compile time.
    fn lower(&mut self, v: &SymVal) -> CExpr {
        let e = match v {
            SymVal::Int(i) => CExpr::Const(Value::Int(*i)),
            SymVal::Bool(b) => CExpr::Const(Value::Bool(*b)),
            SymVal::Str(s) => CExpr::Const(Value::Str(s.clone())),
            SymVal::Var(name) => {
                if let Some(path) = name.strip_prefix("pkt.") {
                    match Field::from_path(path) {
                        Some(f) => CExpr::Pkt(f),
                        None => CExpr::Stuck(format!("unknown field {path}")),
                    }
                } else if let Some(cfg) = name.strip_prefix("cfg:") {
                    match self.configs.get(cfg) {
                        Some(v) => CExpr::Const(v.clone()),
                        None => CExpr::Stuck(format!("config `{cfg}` unset")),
                    }
                } else if let Some(stv) = name.strip_prefix("st:") {
                    CExpr::Slot(self.slot_idx(stv))
                } else {
                    CExpr::Stuck(format!("free variable `{name}`"))
                }
            }
            SymVal::Tuple(es) => CExpr::Tuple(es.iter().map(|e| self.lower(e)).collect()),
            SymVal::Array(es) => CExpr::Array(es.iter().map(|e| self.lower(e)).collect()),
            SymVal::Bin(op, a, b) => {
                CExpr::Bin(*op, Box::new(self.lower(a)), Box::new(self.lower(b)))
            }
            SymVal::Not(a) => CExpr::Not(Box::new(self.lower(a))),
            SymVal::Neg(a) => CExpr::Neg(Box::new(self.lower(a))),
            SymVal::Hash(a) => CExpr::Hash(Box::new(self.lower(a))),
            SymVal::Min(a, b) => CExpr::Min(Box::new(self.lower(a)), Box::new(self.lower(b))),
            SymVal::Max(a, b) => CExpr::Max(Box::new(self.lower(a)), Box::new(self.lower(b))),
            SymVal::MapGet(m, k) => {
                let mi = self.map_idx(m);
                CExpr::MapGet(mi, Box::new(self.lower(k)))
            }
            SymVal::MapContains(m, k) => {
                let mi = self.map_idx(m);
                CExpr::MapContains(mi, Box::new(self.lower(k)))
            }
            SymVal::ArrayGet(a, i) => {
                CExpr::ArrayGet(Box::new(self.lower(a)), Box::new(self.lower(i)))
            }
            SymVal::Proj(a, i) => CExpr::Proj(Box::new(self.lower(a)), *i),
        };
        fold(e)
    }
}

/// Canonicalise a state-match literal: strip leading negations into the
/// expected polarity and intern the remaining predicate.
fn intern_state_lit(lowered: CExpr, preds: &mut Vec<CExpr>) -> StateLit {
    let mut expect = true;
    let mut wrapped = false;
    let mut e = lowered;
    while let CExpr::Not(inner) = e {
        expect = !expect;
        wrapped = true;
        e = *inner;
    }
    let pred = match preds.iter().position(|p| *p == e) {
        Some(i) => i,
        None => {
            preds.push(e);
            preds.len() - 1
        }
    };
    StateLit {
        pred,
        expect,
        wrapped,
    }
}

/// Compile `model` against the concrete deployment in `init`
/// (configuration values, initial scalars, declared maps) — the same
/// `ModelState` the reference backend starts from.
///
/// The contract with the reference evaluator is one-sided: for every
/// packet on which `ModelState::step` succeeds, the compiled program
/// succeeds with the identical output, fired entry, and post-state. On
/// packets where the reference *errors*, the compiled program may
/// differ (the tree can prove an entry unmatchable without evaluating
/// the literal that would have raised the error).
pub fn compile(model: &Model, init: &ModelState) -> Result<CompiledProgram, CompileError> {
    let mut lw = Lowerer {
        configs: &init.configs,
        slot_names: init.scalars.keys().cloned().collect(),
        map_names: init.maps.keys().cloned().collect(),
    };
    let init_map_count = lw.map_names.len();
    let mut entries: Vec<CEntry> = Vec::new();
    let mut cands: Vec<Cand> = Vec::new();
    let mut preds: Vec<CExpr> = Vec::new();
    for (ti, table) in model.tables.iter().enumerate() {
        let mut selected = true;
        for lit in &table.config {
            match lw.lower(lit) {
                CExpr::Const(Value::Bool(true)) => {}
                CExpr::Const(Value::Bool(false)) => {
                    selected = false;
                    break;
                }
                _ => {
                    return Err(CompileError::Config {
                        table: ti,
                        lit: lit.to_string(),
                    })
                }
            }
        }
        if !selected {
            continue;
        }
        for (ei, entry) in table.entries.iter().enumerate() {
            let ce = lower_entry(&mut lw, entry, (ti, ei), &mut preds);
            // Literals that folded to `true` hold on every packet; they
            // need no tree test and no residual. Everything else either
            // classifies into a tree test or stays residual.
            let lits = ce
                .flow_lits
                .iter()
                .enumerate()
                .filter(|(_, l)| !matches!(l, CExpr::Const(Value::Bool(true))))
                .map(|(i, l)| (i, classify(l)))
                .collect();
            cands.push(Cand {
                entry: entries.len(),
                lits,
            });
            entries.push(ce);
        }
    }
    let mut nodes = Vec::new();
    let root = build(&mut nodes, cands);
    let init_slots = lw
        .slot_names
        .iter()
        .map(|n| init.scalars.get(n).cloned())
        .collect();
    let init_maps = lw
        .map_names
        .iter()
        .map(|n| {
            init.maps
                .get(n)
                .map(|m| m.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
                .unwrap_or_default()
        })
        .collect();
    let init_materialized = (0..lw.map_names.len()).map(|i| i < init_map_count).collect();
    Ok(CompiledProgram {
        nf_name: model.nf_name.clone(),
        nodes,
        root,
        entries,
        state_preds: preds,
        slot_names: lw.slot_names,
        map_names: lw.map_names,
        init_slots,
        init_maps,
        init_materialized,
        configs: init.configs.clone(),
    })
}

fn lower_entry(
    lw: &mut Lowerer<'_>,
    entry: &Entry,
    origin: (usize, usize),
    preds: &mut Vec<CExpr>,
) -> CEntry {
    let flow_lits = entry.flow_match.iter().map(|l| lw.lower(l)).collect();
    let state_lits = entry
        .state_match
        .iter()
        .map(|l| intern_state_lit(lw.lower(l), preds))
        .collect();
    let flow_action = match &entry.flow_action {
        FlowAction::Drop => CFlowAction::Drop,
        FlowAction::Forward { rewrites } => CFlowAction::Forward {
            rewrites: rewrites
                .iter()
                .map(|(f, term)| (*f, lw.lower(term)))
                .collect(),
        },
    };
    let updates = entry
        .state_action
        .updates
        .iter()
        .map(|(name, term)| (lw.slot_idx(name), lw.lower(term)))
        .collect();
    let map_ops = entry
        .state_action
        .map_ops
        .iter()
        .map(|op| match op {
            MapOp::Insert { map, key, value } => CMapOp::Insert {
                map: lw.map_idx(map),
                key: lw.lower(key),
                value: lw.lower(value),
            },
            MapOp::Remove { map, key } => CMapOp::Remove {
                map: lw.map_idx(map),
                key: lw.lower(key),
            },
        })
        .collect();
    CEntry {
        origin,
        flow_lits,
        state_lits,
        flow_action,
        updates,
        map_ops,
    }
}

/// Render a compiled program as deterministic text — the golden-file
/// format, and what `modeldiff --mode compiled-vs-model` prints.
pub fn render(p: &CompiledProgram) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "compiled {}: {} entries, {} nodes, {} state preds, {} slots, {} maps\n",
        p.nf_name,
        p.entries.len(),
        p.nodes.len(),
        p.state_preds.len(),
        p.slot_names.len(),
        p.map_names.len(),
    ));
    if !p.slot_names.is_empty() {
        s.push_str(&format!("slots: [{}]\n", p.slot_names.join(", ")));
    }
    if !p.map_names.is_empty() {
        s.push_str(&format!("maps: [{}]\n", p.map_names.join(", ")));
    }
    s.push_str("entries:\n");
    for (i, e) in p.entries.iter().enumerate() {
        s.push_str(&format!("  e{i} <- (t{},e{})\n", e.origin.0, e.origin.1));
        if !e.flow_lits.is_empty() {
            let lits: Vec<String> = e.flow_lits.iter().map(|l| fmt_expr(p, l)).collect();
            s.push_str(&format!("    flow: [{}]\n", lits.join(", ")));
        }
        if !e.state_lits.is_empty() {
            let lits: Vec<String> = e
                .state_lits
                .iter()
                .map(|sl| {
                    let bang = if sl.expect { "" } else { "!" };
                    format!("{bang}p{}", sl.pred)
                })
                .collect();
            s.push_str(&format!("    state: [{}]\n", lits.join(", ")));
        }
        match &e.flow_action {
            CFlowAction::Drop => s.push_str("    action: drop\n"),
            CFlowAction::Forward { rewrites } => {
                let rw: Vec<String> = rewrites
                    .iter()
                    .map(|(f, t)| format!("pkt.{} := {}", f.path(), fmt_expr(p, t)))
                    .collect();
                s.push_str(&format!("    action: forward [{}]\n", rw.join(", ")));
            }
        }
        if !e.updates.is_empty() {
            let ups: Vec<String> = e
                .updates
                .iter()
                .map(|(slot, t)| format!("st:{} := {}", p.slot_names[*slot], fmt_expr(p, t)))
                .collect();
            s.push_str(&format!("    updates: [{}]\n", ups.join(", ")));
        }
        if !e.map_ops.is_empty() {
            let ops: Vec<String> = e
                .map_ops
                .iter()
                .map(|op| match op {
                    CMapOp::Insert { map, key, value } => format!(
                        "{}[{}] := {}",
                        p.map_names[*map],
                        fmt_expr(p, key),
                        fmt_expr(p, value)
                    ),
                    CMapOp::Remove { map, key } => {
                        format!("del {}[{}]", p.map_names[*map], fmt_expr(p, key))
                    }
                })
                .collect();
            s.push_str(&format!("    mapops: [{}]\n", ops.join(", ")));
        }
    }
    if !p.state_preds.is_empty() {
        s.push_str("preds:\n");
        for (i, pr) in p.state_preds.iter().enumerate() {
            s.push_str(&format!("  p{i}: {}\n", fmt_expr(p, pr)));
        }
    }
    s.push_str(&format!("tree (root n{}):\n", p.root));
    for (i, n) in p.nodes.iter().enumerate() {
        match n {
            Node::Exact {
                field,
                mask,
                arms,
                default,
                missing,
            } => {
                let lhs = if *mask == -1 {
                    format!("pkt.{}", field.path())
                } else {
                    format!("(pkt.{} & {:#x})", field.path(), mask)
                };
                let aa: Vec<String> = arms.iter().map(|(v, c)| format!("{v} -> n{c}")).collect();
                let miss = match missing {
                    Some(m) => format!(" missing n{m}"),
                    None => String::new(),
                };
                s.push_str(&format!(
                    "  n{i}: exact {lhs} {{ {} }} else n{default}{miss}\n",
                    aa.join(", ")
                ));
            }
            Node::Range {
                field,
                cuts,
                children,
                missing,
            } => {
                let cc: Vec<String> = cuts.iter().map(|c| c.to_string()).collect();
                let ch: Vec<String> = children.iter().map(|c| format!("n{c}")).collect();
                let miss = match missing {
                    Some(m) => format!(" missing n{m}"),
                    None => String::new(),
                };
                s.push_str(&format!(
                    "  n{i}: range pkt.{} cuts [{}] -> [{}]{miss}\n",
                    field.path(),
                    cc.join(", "),
                    ch.join(", ")
                ));
            }
            Node::Leaf { cands } => {
                let cc: Vec<String> = cands
                    .iter()
                    .map(|c| {
                        let rr: Vec<String> =
                            c.residuals.iter().map(|r| r.to_string()).collect();
                        format!("e{} res[{}]", c.entry, rr.join(","))
                    })
                    .collect();
                s.push_str(&format!("  n{i}: leaf {{ {} }}\n", cc.join("; ")));
            }
        }
    }
    s
}

/// Pretty-print a compiled expression with slot/map names restored.
pub fn fmt_expr(p: &CompiledProgram, e: &CExpr) -> String {
    match e {
        CExpr::Const(v) => format!("{v}"),
        CExpr::Pkt(f) => format!("pkt.{}", f.path()),
        CExpr::Slot(i) => format!("st:{}", p.slot_names[*i]),
        CExpr::Stuck(m) => format!("stuck<{m}>"),
        CExpr::Tuple(es) => {
            let parts: Vec<String> = es.iter().map(|x| fmt_expr(p, x)).collect();
            format!("({})", parts.join(", "))
        }
        CExpr::Array(es) => {
            let parts: Vec<String> = es.iter().map(|x| fmt_expr(p, x)).collect();
            format!("[{}]", parts.join(", "))
        }
        CExpr::Bin(op, a, b) => {
            format!("({} {} {})", fmt_expr(p, a), op.symbol(), fmt_expr(p, b))
        }
        CExpr::Not(a) => format!("!({})", fmt_expr(p, a)),
        CExpr::Neg(a) => format!("-({})", fmt_expr(p, a)),
        CExpr::Hash(a) => format!("hash({})", fmt_expr(p, a)),
        CExpr::Min(a, b) => format!("min({}, {})", fmt_expr(p, a), fmt_expr(p, b)),
        CExpr::Max(a, b) => format!("max({}, {})", fmt_expr(p, a), fmt_expr(p, b)),
        CExpr::MapGet(m, k) => format!("{}[{}]", p.map_names[*m], fmt_expr(p, k)),
        CExpr::MapContains(m, k) => format!("({} in {})", fmt_expr(p, k), p.map_names[*m]),
        CExpr::ArrayGet(a, i) => format!("{}[{}]", fmt_expr(p, a), fmt_expr(p, i)),
        CExpr::Proj(a, i) => format!("{}.{}", fmt_expr(p, a), i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfl_analysis::normalize::normalize;
    use nfl_lang::parse_and_check;
    use nfl_symex::SymExec;

    fn model_of(src: &str) -> Model {
        let p = parse_and_check(src).unwrap();
        let pl = normalize(&p).unwrap();
        let stats = SymExec::new(&pl).explore().unwrap();
        Model::from_paths("t", &stats.paths)
    }

    const MODE_NF: &str = r#"
        const RR = 1;
        config mode = 1;
        config servers = [(1.1.1.1, 80), (2.2.2.2, 80)];
        state idx = 0;
        fn cb(pkt: packet) {
            let server = (0, 0);
            if mode == RR {
                server = servers[idx];
                idx = (idx + 1) % len(servers);
            } else {
                server = servers[hash(pkt.ip.src) % len(servers)];
            }
            pkt.ip.dst = server[0];
            pkt.tcp.dport = server[1];
            send(pkt);
        }
        fn main() { sniff(cb); }
    "#;

    #[test]
    fn config_folding_selects_one_table() {
        let m = model_of(MODE_NF);
        assert_eq!(m.tables.len(), 2);
        let init = ModelState::default()
            .with_config("mode", Value::Int(1))
            .with_config(
                "servers",
                Value::Array(vec![
                    Value::Tuple(vec![0x01010101, 80]),
                    Value::Tuple(vec![0x02020202, 80]),
                ]),
            )
            .with_scalar("idx", Value::Int(0));
        let p = compile(&m, &init).unwrap();
        // Only the mode==1 table survives; its single entry remains.
        assert_eq!(p.entry_count(), 1);
        assert_eq!(p.slot_names, vec!["idx".to_string()]);
    }

    #[test]
    fn unset_config_in_table_condition_is_a_compile_error() {
        let m = model_of(MODE_NF);
        let err = compile(&m, &ModelState::default()).unwrap_err();
        assert!(matches!(err, CompileError::Config { .. }), "{err}");
    }

    #[test]
    fn state_preds_are_deduplicated() {
        let m = model_of(
            r#"
            state seen = map();
            fn cb(pkt: packet) {
                if pkt.ip.src in seen {
                    send(pkt);
                } else {
                    seen[pkt.ip.src] = 1;
                }
            }
            fn main() { sniff(cb); }
        "#,
        );
        let init = ModelState::default().with_map("seen");
        let p = compile(&m, &init).unwrap();
        // Both paths test the same membership predicate (one positively,
        // one negated): a single interned predicate.
        assert_eq!(p.state_preds.len(), 1, "{}", render(&p));
        let polarities: Vec<bool> = p
            .entries
            .iter()
            .flat_map(|e| e.state_lits.iter().map(|l| l.expect))
            .collect();
        assert!(polarities.contains(&true) && polarities.contains(&false));
    }

    #[test]
    fn render_is_deterministic() {
        let m = model_of(MODE_NF);
        let init = ModelState::default()
            .with_config("mode", Value::Int(1))
            .with_config(
                "servers",
                Value::Array(vec![
                    Value::Tuple(vec![0x01010101, 80]),
                    Value::Tuple(vec![0x02020202, 80]),
                ]),
            )
            .with_scalar("idx", Value::Int(0));
        let a = render(&compile(&m, &init).unwrap());
        let b = render(&compile(&m, &init).unwrap());
        assert_eq!(a, b);
        assert!(a.contains("tree (root n"), "{a}");
    }
}
