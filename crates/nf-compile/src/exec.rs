//! The compiled-program runtime.
//!
//! [`CompiledState`] is the dense mutable state of one deployment: a
//! scalar slot arena (`Vec<Option<Value>>`) and hash-map arenas, plus a
//! per-packet memo table for the interned state predicates. One
//! [`step`](CompiledState::step) walks the decision tree to a leaf,
//! evaluates the leaf candidates' residual flow literals and state tags
//! in reference order, and fires the first full match exactly as
//! `ModelState::fire` would: all terms evaluated against the *pre*
//! state, scalar commits before map commits, in source order.

use crate::compile::{CFlowAction, CMapOp, CompiledProgram};
use crate::expr::{eval_expr, CExpr, RunEnv};
use crate::tree::Node;
use nf_model::EvalError;
use nf_packet::Packet;
use nfl_interp::value::{Value, ValueKey};
use std::collections::{BTreeMap, HashMap};

/// Result of pushing one packet through a compiled program — the same
/// shape as `nf_model::ModelStep`.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledStep {
    /// The forwarded packet, if any (`None` = dropped).
    pub output: Option<Packet>,
    /// `(table, entry)` of the fired source-model entry, if any.
    pub fired: Option<(usize, usize)>,
}

/// Mutable runtime state of one compiled deployment.
#[derive(Debug, Clone)]
pub struct CompiledState {
    /// Scalar slots; `None` mirrors an absent `ModelState` scalar.
    pub slots: Vec<Option<Value>>,
    /// Map arenas, indexed like `CompiledProgram::map_names`.
    pub maps: Vec<HashMap<ValueKey, Value>>,
    /// Whether each map has materialised (declared initially or written
    /// since) — only materialised maps appear in snapshots, mirroring
    /// `ModelState.maps`.
    materialized: Vec<bool>,
    /// Predicate memo: `memo[p] = (generation, value)`.
    memo: Vec<(u64, bool)>,
    /// Current packet generation (bumped per step).
    generation: u64,
    /// Pre-images of everything the most recent [`step`](Self::step)
    /// committed, in commit order. [`revert`](Self::revert) replays it
    /// backwards, so a supervisor can undo a packet in O(entries it
    /// touched) instead of cloning the whole state up front — the flow
    /// maps hold one entry per live flow, and a per-packet full clone
    /// would make every packet cost O(flows).
    undo_slots: Vec<(usize, Option<Value>)>,
    /// Map-entry pre-images of the most recent step:
    /// `(map, key, previous value, was materialised)`.
    undo_maps: Vec<(usize, ValueKey, Option<Value>, bool)>,
}

impl CompiledState {
    /// Fresh state at the program's initial deployment.
    pub fn new(prog: &CompiledProgram) -> CompiledState {
        CompiledState {
            slots: prog.init_slots.clone(),
            maps: prog.init_maps.clone(),
            materialized: prog.init_materialized.clone(),
            memo: vec![(0, false); prog.state_preds.len()],
            generation: 0,
            undo_slots: Vec::new(),
            undo_maps: Vec::new(),
        }
    }

    /// The step generation: bumped at the start of every
    /// [`step`](Self::step), so a caller can tell whether a failure
    /// happened before or after a step began (only the latter has a
    /// live undo log to replay).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Undo the most recent [`step`](Self::step): restore every slot
    /// and map entry it committed to its pre-image, in reverse commit
    /// order. A no-op when the last step committed nothing (dropped
    /// packet, eval error before the commit phase, or a fresh state).
    /// The predicate memo is left alone — it is keyed by generation,
    /// so entries from the undone packet can never be read again.
    pub fn revert(&mut self) {
        while let Some((map, k, prev, was)) = self.undo_maps.pop() {
            match prev {
                Some(v) => {
                    self.maps[map].insert(k, v);
                }
                None => {
                    self.maps[map].remove(&k);
                }
            }
            self.materialized[map] = was;
        }
        while let Some((slot, prev)) = self.undo_slots.pop() {
            self.slots[slot] = prev;
        }
    }

    /// Run one packet through the compiled program, mutating the state.
    ///
    /// For any packet on which the reference `ModelState::step`
    /// succeeds, this returns `Ok` with the identical output, fired
    /// entry, and post-state.
    pub fn step(&mut self, prog: &CompiledProgram, pkt: &Packet) -> Result<CompiledStep, EvalError> {
        self.generation += 1;
        self.undo_slots.clear();
        self.undo_maps.clear();
        // Walk the tree to a leaf.
        let mut node = prog.root;
        let cands = loop {
            match &prog.nodes[node] {
                Node::Exact {
                    field,
                    mask,
                    arms,
                    default,
                    missing,
                } => match pkt.get(*field) {
                    Ok(raw) => {
                        let v = (raw as i64) & *mask;
                        node = match arms.binary_search_by_key(&v, |(a, _)| *a) {
                            Ok(i) => arms[i].1,
                            Err(_) => *default,
                        };
                    }
                    Err(e) => match missing {
                        Some(m) => node = *m,
                        // Unreachable: every node over a fallible field
                        // is built with a missing child.
                        None => return Err(EvalError::Stuck(e.to_string())),
                    },
                },
                Node::Range {
                    field,
                    cuts,
                    children,
                    missing,
                } => match pkt.get(*field) {
                    Ok(raw) => {
                        let v = raw as i64;
                        node = children[cuts.partition_point(|&c| c <= v)];
                    }
                    Err(e) => match missing {
                        Some(m) => node = *m,
                        None => return Err(EvalError::Stuck(e.to_string())),
                    },
                },
                Node::Leaf { cands } => break cands,
            }
        };
        // Evaluate candidates in priority order; the first whose
        // residual literals and state tags all hold fires.
        'cand: for c in cands {
            let entry = &prog.entries[c.entry];
            for &ri in &c.residuals {
                match self.eval(prog, pkt, &entry.flow_lits[ri])? {
                    Value::Bool(true) => {}
                    Value::Bool(false) => continue 'cand,
                    other => {
                        return Err(EvalError::Stuck(format!(
                            "match literal evaluated to {other}"
                        )))
                    }
                }
            }
            for sl in &entry.state_lits {
                if self.state_pred(prog, pkt, sl.pred, sl.wrapped)? != sl.expect {
                    continue 'cand;
                }
            }
            let output = self.fire(prog, pkt, c.entry)?;
            return Ok(CompiledStep {
                output,
                fired: Some(entry.origin),
            });
        }
        // Default action: drop.
        Ok(CompiledStep {
            output: None,
            fired: None,
        })
    }

    /// Evaluate interned state predicate `p`, memoised per packet.
    /// `wrapped` selects the reference error message a non-boolean
    /// value raises (`!x` errors inside the negation; a bare literal
    /// errors in the match loop).
    fn state_pred(
        &mut self,
        prog: &CompiledProgram,
        pkt: &Packet,
        p: usize,
        wrapped: bool,
    ) -> Result<bool, EvalError> {
        let (gen, val) = self.memo[p];
        if gen == self.generation {
            return Ok(val);
        }
        match self.eval(prog, pkt, &prog.state_preds[p])? {
            Value::Bool(b) => {
                self.memo[p] = (self.generation, b);
                Ok(b)
            }
            other => Err(EvalError::Stuck(if wrapped {
                format!("not of {other}")
            } else {
                format!("match literal evaluated to {other}")
            })),
        }
    }

    fn eval(&self, prog: &CompiledProgram, pkt: &Packet, e: &CExpr) -> Result<Value, EvalError> {
        let env = RunEnv {
            pkt,
            slots: &self.slots,
            maps: &self.maps,
            map_names: &prog.map_names,
            slot_names: &prog.slot_names,
        };
        eval_expr(&env, e)
    }

    /// Fire entry `ei`: evaluate rewrites, updates, and map operations
    /// against the pre-state, then commit scalars before maps, in
    /// order — exactly as `ModelState::fire`.
    fn fire(
        &mut self,
        prog: &CompiledProgram,
        pkt: &Packet,
        ei: usize,
    ) -> Result<Option<Packet>, EvalError> {
        let entry = &prog.entries[ei];
        let output = match &entry.flow_action {
            CFlowAction::Drop => None,
            CFlowAction::Forward { rewrites } => {
                let mut out = pkt.clone();
                for (field, term) in rewrites {
                    let v = self.eval(prog, pkt, term)?;
                    let iv = v.as_int().ok_or_else(|| {
                        EvalError::Stuck(format!("rewrite of {field} to non-int {v}"))
                    })?;
                    let uv = u64::try_from(iv)
                        .map_err(|_| EvalError::Field(format!("negative value {iv}")))?;
                    out.set(*field, uv)
                        .map_err(|e| EvalError::Field(e.to_string()))?;
                }
                Some(out)
            }
        };
        let mut new_scalars = Vec::with_capacity(entry.updates.len());
        for (slot, term) in &entry.updates {
            new_scalars.push((*slot, self.eval(prog, pkt, term)?));
        }
        let mut map_commits: Vec<(usize, ValueKey, Option<Value>)> =
            Vec::with_capacity(entry.map_ops.len());
        for op in &entry.map_ops {
            match op {
                CMapOp::Insert { map, key, value } => {
                    let k = self
                        .eval(prog, pkt, key)?
                        .as_key()
                        .ok_or_else(|| EvalError::Stuck("unkeyable map key".into()))?;
                    let v = self.eval(prog, pkt, value)?;
                    map_commits.push((*map, k, Some(v)));
                }
                CMapOp::Remove { map, key } => {
                    let k = self
                        .eval(prog, pkt, key)?
                        .as_key()
                        .ok_or_else(|| EvalError::Stuck("unkeyable map key".into()))?;
                    map_commits.push((*map, k, None));
                }
            }
        }
        // Commit phase: nothing below can fail, so a step either
        // commits fully or (on any eval error above) not at all. Each
        // write banks its pre-image so `revert` can undo the packet.
        for (slot, v) in new_scalars {
            let prev = std::mem::replace(&mut self.slots[slot], Some(v));
            self.undo_slots.push((slot, prev));
        }
        for (map, k, v) in map_commits {
            let was = self.materialized[map];
            self.materialized[map] = true;
            let prev = match v {
                Some(v) => self.maps[map].insert(k.clone(), v),
                None => self.maps[map].remove(&k),
            };
            self.undo_maps.push((map, k, prev, was));
        }
        Ok(output)
    }

    /// Observable state snapshot — the same `name -> value` map the
    /// reference backend produces (configs, set scalars, materialised
    /// maps), so sharded-merge and differential comparisons treat the
    /// two backends interchangeably.
    pub fn snapshot(&self, prog: &CompiledProgram) -> BTreeMap<String, Value> {
        let mut out = BTreeMap::new();
        for (k, v) in &prog.configs {
            out.insert(k.clone(), v.clone());
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(v) = slot {
                out.insert(prog.slot_names[i].clone(), v.clone());
            }
        }
        for (i, m) in self.maps.iter().enumerate() {
            if self.materialized[i] {
                let ordered: BTreeMap<ValueKey, Value> =
                    m.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                out.insert(prog.map_names[i].clone(), Value::Map(ordered));
            }
        }
        out
    }

    /// Rebuild the dense state from a `name -> value` snapshot (the
    /// shape [`snapshot`](CompiledState::snapshot) and the reference
    /// backends produce), dropping every memoised predicate.
    ///
    /// This is the supervisor's state-handoff surface: after a worker
    /// restart (or a per-packet rollback) the fresh `CompiledState` is
    /// repopulated from the surviving snapshot. Clearing the memo table
    /// matters — a restart exists precisely because the cached
    /// derivations are no longer trusted.
    ///
    /// Fails (leaving `self` untouched) when the snapshot names a state
    /// the program does not know, or carries a non-map value for a map
    /// state — both signal a snapshot from a different deployment.
    pub fn restore(
        &mut self,
        prog: &CompiledProgram,
        snap: &BTreeMap<String, Value>,
    ) -> Result<(), String> {
        let mut slots: Vec<Option<Value>> = vec![None; prog.slot_names.len()];
        let mut maps: Vec<HashMap<ValueKey, Value>> =
            vec![HashMap::new(); prog.map_names.len()];
        let mut materialized = vec![false; prog.map_names.len()];
        for (name, value) in snap {
            if prog.configs.iter().any(|(k, _)| k == name) {
                // Configs were constant-folded at compile time; the
                // snapshot still carries them for observability.
                continue;
            }
            if let Some(i) = prog.slot_names.iter().position(|n| n == name) {
                slots[i] = Some(value.clone());
            } else if let Some(i) = prog.map_names.iter().position(|n| n == name) {
                match value {
                    Value::Map(entries) => {
                        maps[i] = entries
                            .iter()
                            .map(|(k, v)| (k.clone(), v.clone()))
                            .collect();
                        materialized[i] = true;
                    }
                    other => {
                        return Err(format!(
                            "restore: state `{name}` is a map but snapshot holds {other:?}"
                        ))
                    }
                }
            } else {
                return Err(format!("restore: unknown state `{name}` in snapshot"));
            }
        }
        self.slots = slots;
        self.maps = maps;
        self.materialized = materialized;
        self.memo = vec![(0, false); prog.state_preds.len()];
        self.generation = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use nf_model::{Model, ModelState};
    use nf_packet::wire::{parse_ipv4, TcpFlags};
    use nfl_analysis::normalize::normalize;
    use nfl_lang::parse_and_check;
    use nfl_symex::SymExec;

    fn model_of(src: &str) -> Model {
        let p = parse_and_check(src).unwrap();
        let pl = normalize(&p).unwrap();
        let stats = SymExec::new(&pl).explore().unwrap();
        Model::from_paths("t", &stats.paths)
    }

    fn tcp(sport: u16, dport: u16) -> Packet {
        Packet::tcp(
            parse_ipv4("10.0.0.1").unwrap(),
            sport,
            parse_ipv4("3.3.3.3").unwrap(),
            dport,
            TcpFlags::syn(),
        )
    }

    /// Run a packet sequence through both evaluators and assert
    /// identical per-packet results and final snapshots.
    fn lockstep(src: &str, init: ModelState, pkts: &[Packet]) {
        let m = model_of(src);
        let prog = compile(&m, &init).unwrap();
        let mut cs = CompiledState::new(&prog);
        let mut ms = init;
        for (i, p) in pkts.iter().enumerate() {
            let want = ms.step(&m, p).expect("reference step");
            let got = cs.step(&prog, p).expect("compiled step");
            assert_eq!(got.output, want.output, "packet {i} output");
            assert_eq!(got.fired, want.fired, "packet {i} fired entry");
        }
        let mut want = BTreeMap::new();
        for (k, v) in &ms.configs {
            want.insert(k.clone(), v.clone());
        }
        for (k, v) in &ms.scalars {
            want.insert(k.clone(), v.clone());
        }
        for (k, m) in &ms.maps {
            want.insert(k.clone(), Value::Map(m.clone()));
        }
        assert_eq!(cs.snapshot(&prog), want, "final state snapshot");
    }

    #[test]
    fn nat_lockstep_with_reference() {
        let src = r#"
            state nat = map();
            state next = 10000;
            fn cb(pkt: packet) {
                let k = (pkt.ip.src, pkt.tcp.sport);
                if k not in nat {
                    nat[k] = next;
                    next = next + 1;
                }
                pkt.tcp.sport = nat[k];
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#;
        let init = ModelState::default()
            .with_scalar("next", Value::Int(10000))
            .with_map("nat");
        lockstep(
            src,
            init,
            &[tcp(5555, 80), tcp(5555, 80), tcp(7777, 80), tcp(5555, 443)],
        );
    }

    #[test]
    fn restore_roundtrips_snapshot_and_rejects_foreign_state() {
        let src = r#"
            state nat = map();
            state next = 10000;
            fn cb(pkt: packet) {
                let k = (pkt.ip.src, pkt.tcp.sport);
                if k not in nat {
                    nat[k] = next;
                    next = next + 1;
                }
                pkt.tcp.sport = nat[k];
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#;
        let m = model_of(src);
        let init = ModelState::default()
            .with_scalar("next", Value::Int(10000))
            .with_map("nat");
        let prog = compile(&m, &init).unwrap();
        let mut cs = CompiledState::new(&prog);
        for p in [tcp(5555, 80), tcp(7777, 80)] {
            cs.step(&prog, &p).unwrap();
        }
        let snap = cs.snapshot(&prog);

        // A fresh state restored from the snapshot observes the same
        // state and keeps agreeing with the original on further traffic.
        let mut restored = CompiledState::new(&prog);
        restored.restore(&prog, &snap).unwrap();
        assert_eq!(restored.snapshot(&prog), snap);
        for p in [tcp(5555, 443), tcp(9999, 80)] {
            let a = cs.step(&prog, &p).unwrap();
            let b = restored.step(&prog, &p).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(restored.snapshot(&prog), cs.snapshot(&prog));

        // Foreign snapshots are rejected without mutating the state.
        let before = restored.snapshot(&prog);
        let mut foreign = snap.clone();
        foreign.insert("no_such_state".into(), Value::Int(1));
        assert!(restored.restore(&prog, &foreign).is_err());
        let mut wrong_shape = snap.clone();
        wrong_shape.insert("nat".into(), Value::Int(1));
        assert!(restored.restore(&prog, &wrong_shape).is_err());
        assert_eq!(restored.snapshot(&prog), before);
    }

    #[test]
    fn port_filter_lockstep() {
        let src = r#"
            config PORT = 80;
            fn cb(pkt: packet) {
                if pkt.tcp.dport == PORT { send(pkt); }
            }
            fn main() { sniff(cb); }
        "#;
        let init = ModelState::default().with_config("PORT", Value::Int(80));
        lockstep(src, init, &[tcp(1, 80), tcp(1, 81), tcp(2, 80)]);
    }

    #[test]
    fn udp_packet_takes_missing_layer_path() {
        // The dport test sits behind a proto literal in the source; a
        // UDP-only packet must not error on the hoisted tcp field read.
        let src = r#"
            fn cb(pkt: packet) {
                if pkt.ip.proto == 6 {
                    if pkt.tcp.flags & 2 != 0 { send(pkt); }
                } else {
                    send(pkt);
                }
            }
            fn main() { sniff(cb); }
        "#;
        let udp = Packet::udp(
            parse_ipv4("10.0.0.1").unwrap(),
            53,
            parse_ipv4("3.3.3.3").unwrap(),
            53,
        );
        lockstep(src, ModelState::default(), &[tcp(1, 80), udp]);
    }

    #[test]
    fn rr_counter_wraps_like_reference() {
        let src = r#"
            config servers = [(1.1.1.1, 80), (2.2.2.2, 80)];
            state idx = 0;
            fn cb(pkt: packet) {
                let server = servers[idx];
                idx = (idx + 1) % len(servers);
                pkt.ip.dst = server[0];
                pkt.tcp.dport = server[1];
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#;
        let init = ModelState::default()
            .with_config(
                "servers",
                Value::Array(vec![
                    Value::Tuple(vec![0x01010101, 80]),
                    Value::Tuple(vec![0x02020202, 80]),
                ]),
            )
            .with_scalar("idx", Value::Int(0));
        lockstep(src, init, &[tcp(1, 1), tcp(2, 2), tcp(3, 3)]);
    }
}
