//! The compiled expression IR.
//!
//! A [`CExpr`] is a [`SymVal`](nfl_symex::SymVal) with every name
//! resolved at compile time: configuration variables are folded to
//! their concrete [`Value`]s (configs never change at runtime — only
//! `st:` scalars and maps are written by state actions), state scalars
//! become dense arena slot indices, and state maps become map indices.
//! Constant subterms are folded through the *same* evaluator that runs
//! at packet time, so folding can never change semantics.
//!
//! Evaluation ([`eval_expr`]) mirrors `nf_model::ModelState::eval`
//! operation for operation — short-circuit `&&`/`||`, euclidean `%` and
//! wrapping arithmetic via [`nf_model::eval_bin`], the interpreter's
//! `stable_hash` — so that for any packet on which the reference model
//! evaluator succeeds, the compiled program produces the identical
//! result.

use nf_model::{eval_bin, EvalError};
use nf_packet::{Field, Packet};
use nfl_interp::value::{stable_hash, Value, ValueKey};
use nfl_lang::BinOp;

/// A compile-time-resolved expression.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// A concrete value (literals, folded configs, folded subterms).
    Const(Value),
    /// A packet header field read.
    Pkt(Field),
    /// A scalar state read from arena slot `i`.
    Slot(usize),
    /// A term that can never evaluate (unknown field, unset config…);
    /// carries the exact error message the reference evaluator raises.
    Stuck(String),
    /// Tuple of terms.
    Tuple(Vec<CExpr>),
    /// Array of terms.
    Array(Vec<CExpr>),
    /// Binary operation.
    Bin(BinOp, Box<CExpr>, Box<CExpr>),
    /// Logical negation.
    Not(Box<CExpr>),
    /// Arithmetic negation.
    Neg(Box<CExpr>),
    /// The interpreter's stable hash.
    Hash(Box<CExpr>),
    /// Minimum of two integer terms.
    Min(Box<CExpr>, Box<CExpr>),
    /// Maximum of two integer terms.
    Max(Box<CExpr>, Box<CExpr>),
    /// Read of state map `i` at a key.
    MapGet(usize, Box<CExpr>),
    /// Membership test of state map `i` at a key.
    MapContains(usize, Box<CExpr>),
    /// Array read with a computed index.
    ArrayGet(Box<CExpr>, Box<CExpr>),
    /// Tuple projection.
    Proj(Box<CExpr>, usize),
}

impl CExpr {
    /// The concrete value, if this node is one.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            CExpr::Const(v) => Some(v),
            _ => None,
        }
    }

    /// The concrete integer, if this node is one.
    pub fn as_const_int(&self) -> Option<i64> {
        self.as_const().and_then(|v| v.as_int())
    }
}

/// Where evaluation reads packet fields, state slots, and maps from.
/// Two implementations: the runtime environment (a packet plus a
/// [`CompiledState`](crate::CompiledState) arena) and the compile-time
/// constant environment (which has none of those and errors if asked).
pub trait Env {
    /// Read a packet field as the evaluator does (`raw as i64`).
    fn pkt_field(&self, f: Field) -> Result<Value, EvalError>;
    /// Read scalar slot `i`.
    fn slot(&self, i: usize) -> Result<Value, EvalError>;
    /// Read map `i` at `k` (`None` = absent key).
    fn map_get(&self, i: usize, k: &ValueKey) -> Result<Option<Value>, EvalError>;
    /// Membership in map `i`.
    fn map_contains(&self, i: usize, k: &ValueKey) -> Result<bool, EvalError>;
    /// The source-level name of map `i`, for error messages.
    fn map_name(&self, i: usize) -> &str;
}

/// The compile-time environment: constants only. Any packet, slot, or
/// map access is an error, which makes [`eval_expr`] double as the
/// constant folder — a fold succeeds exactly when the term is closed.
pub struct ConstEnv;

impl Env for ConstEnv {
    fn pkt_field(&self, f: Field) -> Result<Value, EvalError> {
        Err(EvalError::Stuck(format!("pkt.{} is not constant", f.path())))
    }
    fn slot(&self, i: usize) -> Result<Value, EvalError> {
        Err(EvalError::Stuck(format!("slot {i} is not constant")))
    }
    fn map_get(&self, i: usize, _k: &ValueKey) -> Result<Option<Value>, EvalError> {
        Err(EvalError::Stuck(format!("map {i} is not constant")))
    }
    fn map_contains(&self, i: usize, _k: &ValueKey) -> Result<bool, EvalError> {
        Err(EvalError::Stuck(format!("map {i} is not constant")))
    }
    fn map_name(&self, _i: usize) -> &str {
        "?"
    }
}

/// The per-packet runtime environment.
pub struct RunEnv<'a> {
    /// The packet being classified.
    pub pkt: &'a Packet,
    /// Scalar slots (`None` = unset, mirroring an absent scalar in
    /// `ModelState.scalars`).
    pub slots: &'a [Option<Value>],
    /// Map arenas.
    pub maps: &'a [std::collections::HashMap<ValueKey, Value>],
    /// Map names (for error messages).
    pub map_names: &'a [String],
    /// Scalar names (for error messages).
    pub slot_names: &'a [String],
}

impl Env for RunEnv<'_> {
    fn pkt_field(&self, f: Field) -> Result<Value, EvalError> {
        let raw = self
            .pkt
            .get(f)
            .map_err(|e| EvalError::Stuck(e.to_string()))?;
        Ok(Value::Int(raw as i64))
    }
    fn slot(&self, i: usize) -> Result<Value, EvalError> {
        self.slots[i]
            .clone()
            .ok_or_else(|| EvalError::Stuck(format!("state `{}` unset", self.slot_names[i])))
    }
    fn map_get(&self, i: usize, k: &ValueKey) -> Result<Option<Value>, EvalError> {
        Ok(self.maps[i].get(k).cloned())
    }
    fn map_contains(&self, i: usize, k: &ValueKey) -> Result<bool, EvalError> {
        Ok(self.maps[i].contains_key(k))
    }
    fn map_name(&self, i: usize) -> &str {
        &self.map_names[i]
    }
}

/// Evaluate a compiled expression. Every arm reproduces the
/// corresponding `ModelState::eval` arm, including its error messages,
/// so the two evaluators are observationally interchangeable wherever
/// the reference succeeds.
pub fn eval_expr<E: Env>(env: &E, term: &CExpr) -> Result<Value, EvalError> {
    match term {
        CExpr::Const(v) => Ok(v.clone()),
        CExpr::Pkt(f) => env.pkt_field(*f),
        CExpr::Slot(i) => env.slot(*i),
        CExpr::Stuck(msg) => Err(EvalError::Stuck(msg.clone())),
        CExpr::Tuple(es) => {
            let mut items = Vec::with_capacity(es.len());
            for e in es {
                let v = eval_expr(env, e)?;
                items.push(
                    v.as_int()
                        .ok_or_else(|| EvalError::Stuck("tuple of non-int".into()))?,
                );
            }
            Ok(Value::Tuple(items))
        }
        CExpr::Array(es) => {
            let mut items = Vec::with_capacity(es.len());
            for e in es {
                items.push(eval_expr(env, e)?);
            }
            Ok(Value::Array(items))
        }
        CExpr::Bin(op, a, b) => {
            if matches!(op, BinOp::And | BinOp::Or) {
                let va = eval_expr(env, a)?
                    .as_bool()
                    .ok_or_else(|| EvalError::Stuck("logic on non-bool".into()))?;
                return match (op, va) {
                    (BinOp::And, false) => Ok(Value::Bool(false)),
                    (BinOp::Or, true) => Ok(Value::Bool(true)),
                    _ => {
                        let vb = eval_expr(env, b)?
                            .as_bool()
                            .ok_or_else(|| EvalError::Stuck("logic on non-bool".into()))?;
                        Ok(Value::Bool(vb))
                    }
                };
            }
            let va = eval_expr(env, a)?;
            let vb = eval_expr(env, b)?;
            eval_bin(*op, &va, &vb)
        }
        CExpr::Not(a) => match eval_expr(env, a)? {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(EvalError::Stuck(format!("not of {other}"))),
        },
        CExpr::Neg(a) => match eval_expr(env, a)? {
            Value::Int(v) => Ok(Value::Int(-v)),
            other => Err(EvalError::Stuck(format!("neg of {other}"))),
        },
        CExpr::Hash(a) => {
            let v = eval_expr(env, a)?;
            Ok(Value::Int(stable_hash(&v)))
        }
        CExpr::Min(a, b) | CExpr::Max(a, b) => {
            let is_min = matches!(term, CExpr::Min(..));
            let x = eval_expr(env, a)?
                .as_int()
                .ok_or_else(|| EvalError::Stuck("min/max of non-int".into()))?;
            let y = eval_expr(env, b)?
                .as_int()
                .ok_or_else(|| EvalError::Stuck("min/max of non-int".into()))?;
            Ok(Value::Int(if is_min { x.min(y) } else { x.max(y) }))
        }
        CExpr::MapGet(m, key) => {
            let k = eval_expr(env, key)?
                .as_key()
                .ok_or_else(|| EvalError::Stuck("unkeyable key".into()))?;
            env.map_get(*m, &k)?
                .ok_or_else(|| EvalError::Stuck(format!("{}[{k}] missing", env.map_name(*m))))
        }
        CExpr::MapContains(m, key) => {
            let k = eval_expr(env, key)?
                .as_key()
                .ok_or_else(|| EvalError::Stuck("unkeyable key".into()))?;
            Ok(Value::Bool(env.map_contains(*m, &k)?))
        }
        CExpr::ArrayGet(base, idx) => {
            let b = eval_expr(env, base)?;
            let i = eval_expr(env, idx)?
                .as_int()
                .ok_or_else(|| EvalError::Stuck("array index".into()))?;
            match b {
                Value::Array(items) => {
                    let ix = usize::try_from(i)
                        .map_err(|_| EvalError::Stuck("negative index".into()))?;
                    items
                        .get(ix)
                        .cloned()
                        .ok_or_else(|| EvalError::Stuck("array OOB".into()))
                }
                other => Err(EvalError::Stuck(format!("indexing {other}"))),
            }
        }
        CExpr::Proj(base, i) => {
            let b = eval_expr(env, base)?;
            match b {
                Value::Tuple(items) => items
                    .get(*i)
                    .map(|v| Value::Int(*v))
                    .ok_or_else(|| EvalError::Stuck("tuple OOB".into())),
                other => Err(EvalError::Stuck(format!("projecting {other}"))),
            }
        }
    }
}

/// Try to fold a freshly-built node to a constant by running it through
/// the real evaluator with the constant-only environment. On any
/// evaluation error the node is returned unfolded, so the error
/// resurfaces at packet time exactly where the reference evaluator
/// raises it.
pub fn fold(e: CExpr) -> CExpr {
    let closed = match &e {
        CExpr::Const(_) => return e,
        CExpr::Pkt(_) | CExpr::Slot(_) | CExpr::Stuck(_) => false,
        CExpr::MapGet(..) | CExpr::MapContains(..) => false,
        CExpr::Tuple(es) | CExpr::Array(es) => es.iter().all(|c| c.as_const().is_some()),
        CExpr::Bin(_, a, b)
        | CExpr::Min(a, b)
        | CExpr::Max(a, b)
        | CExpr::ArrayGet(a, b) => a.as_const().is_some() && b.as_const().is_some(),
        CExpr::Not(a) | CExpr::Neg(a) | CExpr::Hash(a) | CExpr::Proj(a, _) => {
            a.as_const().is_some()
        }
    };
    if !closed {
        return e;
    }
    match eval_expr(&ConstEnv, &e) {
        Ok(v) => CExpr::Const(v),
        Err(_) => e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_closes_arithmetic() {
        let e = fold(CExpr::Bin(
            BinOp::Add,
            Box::new(CExpr::Const(Value::Int(2))),
            Box::new(CExpr::Const(Value::Int(40))),
        ));
        assert_eq!(e, CExpr::Const(Value::Int(42)));
    }

    #[test]
    fn fold_keeps_div_by_zero_for_runtime() {
        let e = fold(CExpr::Bin(
            BinOp::Div,
            Box::new(CExpr::Const(Value::Int(1))),
            Box::new(CExpr::Const(Value::Int(0))),
        ));
        assert!(matches!(e, CExpr::Bin(..)), "division by zero must not fold");
    }

    #[test]
    fn fold_mirrors_euclidean_mod() {
        let e = fold(CExpr::Bin(
            BinOp::Mod,
            Box::new(CExpr::Const(Value::Int(-7))),
            Box::new(CExpr::Const(Value::Int(3))),
        ));
        assert_eq!(e, CExpr::Const(Value::Int(2)), "rem_euclid, like the interpreter");
    }

    #[test]
    fn fold_hash_matches_stable_hash() {
        let e = fold(CExpr::Hash(Box::new(CExpr::Const(Value::Int(17)))));
        assert_eq!(e, CExpr::Const(Value::Int(stable_hash(&Value::Int(17)))));
    }
}
