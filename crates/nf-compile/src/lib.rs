//! Compiled execution of synthesized NF models.
//!
//! The model evaluator in `nf-model` is an interpreter over the model's
//! symbolic terms: per packet it scans tables in order, re-resolves
//! config/state names through `BTreeMap`s, and re-walks every match
//! literal. This crate compiles a [`Model`](nf_model::Model) — together
//! with one concrete deployment (configuration + initial state) — into
//! a flattened XFSM dispatch engine, the form the paper's §2.3 model is
//! meant to take on a switch:
//!
//! * **Decision tree** ([`tree`]): flow-match literals of the
//!   recognised single-field shapes (`pkt.f == c`, masked prefix tests,
//!   interval comparisons) become shared `Exact`/`Range` dispatch nodes
//!   over packet fields, so one field read classifies every entry at
//!   once. Unrecognised literals stay *residual* and evaluate per-entry
//!   at the leaves, in source order.
//! * **Expression IR** ([`expr`]): match/action terms are lowered to
//!   [`CExpr`] with every name resolved — configs folded to constants,
//!   state scalars to dense arena slots, maps to arena indices — and
//!   constant subterms folded through the reference evaluator itself.
//! * **State tags** ([`compile`]): state-match literals are
//!   canonicalised and interned; each distinct predicate is evaluated
//!   at most once per packet (memoised), like an XFSM's state lookup.
//! * **Runtime** ([`exec`]): [`CompiledState`] holds the slot/map
//!   arenas; [`CompiledState::step`] walks the tree, checks residuals
//!   and tags, and fires the matched entry with the reference's exact
//!   pre-state-evaluate-then-commit discipline.
//!
//! # Semantics contract
//!
//! For every packet on which the reference `ModelState::step` succeeds,
//! the compiled program succeeds with the **identical** output packet,
//! fired `(table, entry)`, and post-state. The contract is one-sided:
//! on packets where the reference *errors* (e.g. a match literal reads
//! `pkt.tcp.flags` on a UDP packet after an earlier literal already
//! failed), the compiled program may instead classify the packet
//! without evaluating the erroring literal. Tree nodes over fields
//! whose read can fail carry a *missing-layer* child in which all tests
//! on that field demote back to residual literals, so reference error
//! behaviour is preserved wherever the reference actually reaches the
//! read.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod expr;
pub mod exec;
pub mod tree;

pub use compile::{
    compile, render, CEntry, CFlowAction, CMapOp, CompileError, CompiledProgram, StateLit,
};
pub use exec::{CompiledState, CompiledStep};
pub use expr::{eval_expr, fold, CExpr, Env, RunEnv};
pub use tree::{classify, FieldTest, Node, TestKind};
