//! The field-test decision tree.
//!
//! Flow-match literals that compare a single packet field against a
//! constant (after configuration folding) are lowered into shared
//! dispatch nodes — [`Node::Exact`] for `pkt.f == c` and masked
//! prefix tests `(pkt.f & m) == c`, [`Node::Range`] for
//! `pkt.f < c` / `<=` / `>` / `>=` interval tests — so one field read
//! classifies every entry that tests that field at once, instead of the
//! reference evaluator's entry-by-entry scan. Literals that do not fit
//! (negations, multi-field terms, hash/map terms) stay *residual* and
//! are evaluated per-entry at the leaves, in their original order.
//!
//! ## Missing-layer children
//!
//! `pkt.get` is fallible for transport fields (`tcp.flags` on a UDP
//! packet, ports on a non-TCP/UDP packet), and the reference evaluator
//! only ever reads such a field when entry-order short-circuiting
//! actually reaches the literal. A tree node would hoist that read. So
//! nodes over fallible fields carry a `missing` child: when the field
//! read fails, classification continues with every candidate's tests on
//! that field demoted back to residual literals — which then evaluate
//! (and fail) in exactly the reference order.

use crate::expr::CExpr;
use nf_packet::Field;
use nfl_lang::BinOp;

/// A single-field test a tree node can evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestKind {
    /// `(pkt.field & mask) == value`; `mask == -1` is a plain equality.
    Exact {
        /// Bit mask applied before comparing (`-1` = all bits).
        mask: i64,
        /// The value to match.
        value: i64,
    },
    /// `lo <= pkt.field <= hi` (inclusive, clamped to the field domain).
    Range {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
}

/// A classified flow-match literal: which field it reads and what it
/// requires of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldTest {
    /// The packet field the test reads.
    pub field: Field,
    /// The constraint on that field.
    pub kind: TestKind,
}

/// Fields whose `Packet::get` can fail (missing transport layer).
/// Nodes over these fields need a missing-layer child.
pub fn fallible(f: Field) -> bool {
    matches!(
        f,
        Field::TcpSport | Field::TcpDport | Field::TcpFlags | Field::TcpSeq | Field::TcpAck
    )
}

/// Classify a lowered flow literal as a tree test, if it has one of the
/// recognised single-field shapes. Anything else (including tests whose
/// interval is empty — always false — or covers the whole domain) stays
/// residual; correctness never depends on classification succeeding.
pub fn classify(e: &CExpr) -> Option<FieldTest> {
    let (op, lhs, rhs) = match e {
        CExpr::Bin(op, a, b) => (*op, a.as_ref(), b.as_ref()),
        _ => return None,
    };
    // Normalise to (op, field-side, constant).
    let (op, fs, c) = match (lhs.as_const_int(), rhs.as_const_int()) {
        (None, Some(c)) => (op, lhs, c),
        (Some(c), None) => (flip(op)?, rhs, c),
        _ => return None,
    };
    // The field side: a bare field read, or a masked field read.
    let (field, mask) = match fs {
        CExpr::Pkt(f) => (*f, -1i64),
        CExpr::Bin(BinOp::BitAnd, a, b) => match (a.as_ref(), b.as_ref()) {
            (CExpr::Pkt(f), m) | (m, CExpr::Pkt(f)) => (*f, m.as_const_int()?),
            _ => return None,
        },
        _ => return None,
    };
    let fmax = field.max_value() as i64;
    match (op, mask) {
        (BinOp::Eq, _) => Some(FieldTest {
            field,
            kind: TestKind::Exact { mask, value: c },
        }),
        // Interval tests only apply to the unmasked field.
        (BinOp::Lt, -1) => range(field, 0, c.saturating_sub(1), fmax),
        (BinOp::Le, -1) => range(field, 0, c, fmax),
        (BinOp::Gt, -1) => range(field, c.saturating_add(1), fmax, fmax),
        (BinOp::Ge, -1) => range(field, c, fmax, fmax),
        _ => None,
    }
}

/// Mirror a comparison so the field lands on the left.
fn flip(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Eq => BinOp::Eq,
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        _ => return None,
    })
}

fn range(field: Field, lo: i64, hi: i64, fmax: i64) -> Option<FieldTest> {
    let (lo, hi) = (lo.max(0), hi.min(fmax));
    // Empty (always-false) and full-domain (always-true) intervals gain
    // nothing from a split; leave them residual.
    if lo > hi || (lo == 0 && hi == fmax) {
        return None;
    }
    Some(FieldTest {
        field,
        kind: TestKind::Range { lo, hi },
    })
}

/// One dispatch node of the compiled tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Dispatch on `(pkt.field & mask)`: sorted arms, binary-searched.
    Exact {
        /// The field read at this node.
        field: Field,
        /// Mask applied before matching (`-1` = all bits).
        mask: i64,
        /// `(masked value, child)` arms, sorted by value.
        arms: Vec<(i64, usize)>,
        /// Child for packets matching no arm.
        default: usize,
        /// Child taken when the field read fails (missing layer).
        missing: Option<usize>,
    },
    /// Dispatch on which interval segment `pkt.field` falls into.
    Range {
        /// The field read at this node.
        field: Field,
        /// Interior segment boundaries, ascending; segment `i` is
        /// `[cuts[i-1], cuts[i] - 1]` (with 0 and the field max at the
        /// ends), child `i` handles it.
        cuts: Vec<i64>,
        /// One child per segment (`cuts.len() + 1`).
        children: Vec<usize>,
        /// Child taken when the field read fails.
        missing: Option<usize>,
    },
    /// Terminal: candidate entries in global priority order, each with
    /// the indices of its not-yet-proven flow literals.
    Leaf {
        /// Candidates, in match priority order.
        cands: Vec<LeafCand>,
    },
}

/// A candidate entry at a leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafCand {
    /// Index into the program's flattened entry list.
    pub entry: usize,
    /// Indices (into the entry's flow-literal list, ascending) of the
    /// literals the path to this leaf did *not* prove; they evaluate
    /// here, in original order.
    pub residuals: Vec<usize>,
}

/// A candidate under construction: one entry plus its outstanding flow
/// literals, each either still tree-consumable or residual.
#[derive(Debug, Clone)]
pub struct Cand {
    /// Index into the flattened entry list.
    pub entry: usize,
    /// `(literal index, classified test)`; `None` = residual.
    pub lits: Vec<(usize, Option<FieldTest>)>,
}

/// Split-key candidates, ordered for deterministic tie-breaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SplitKey {
    Exact(Field, i64),
    Range(Field),
}

/// Build the decision tree over `cands`, appending nodes to `arena` and
/// returning the root index.
pub fn build(arena: &mut Vec<Node>, cands: Vec<Cand>) -> usize {
    // Count, per split key, how many candidates carry a matching test.
    let mut counts: Vec<(SplitKey, usize)> = Vec::new();
    for c in &cands {
        let mut seen: Vec<SplitKey> = Vec::new();
        for (_, t) in &c.lits {
            let Some(t) = t else { continue };
            let key = match t.kind {
                TestKind::Exact { mask, .. } => SplitKey::Exact(t.field, mask),
                TestKind::Range { .. } => SplitKey::Range(t.field),
            };
            if !seen.contains(&key) {
                seen.push(key);
            }
        }
        for key in seen {
            match counts.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => *n += 1,
                None => counts.push((key, 1)),
            }
        }
    }
    let Some(&(key, _)) = counts
        .iter()
        .max_by_key(|(k, n)| (*n, std::cmp::Reverse(*k)))
    else {
        // No tree-consumable test anywhere: terminal.
        return push(arena, leaf(cands));
    };
    match key {
        SplitKey::Exact(field, mask) => split_exact(arena, cands, field, mask),
        SplitKey::Range(field) => split_range(arena, cands, field),
    }
}

fn push(arena: &mut Vec<Node>, n: Node) -> usize {
    arena.push(n);
    arena.len() - 1
}

fn leaf(cands: Vec<Cand>) -> Node {
    Node::Leaf {
        cands: cands
            .into_iter()
            .map(|c| LeafCand {
                entry: c.entry,
                residuals: c.lits.iter().map(|(i, _)| *i).collect(),
            })
            .collect(),
    }
}

/// The first literal of `c` carrying an exact test with this exact
/// `(field, mask)` key, if any.
fn first_exact(c: &Cand, field: Field, mask: i64) -> Option<(usize, i64)> {
    c.lits.iter().enumerate().find_map(|(pos, (_, t))| match t {
        Some(FieldTest {
            field: f,
            kind: TestKind::Exact { mask: m, value },
        }) if *f == field && *m == mask => Some((pos, *value)),
        _ => None,
    })
}

/// The first literal of `c` carrying a range test on `field`.
fn first_range(c: &Cand, field: Field) -> Option<(usize, i64, i64)> {
    c.lits.iter().enumerate().find_map(|(pos, (_, t))| match t {
        Some(FieldTest {
            field: f,
            kind: TestKind::Range { lo, hi },
        }) if *f == field => Some((pos, *lo, *hi)),
        _ => None,
    })
}

/// A copy of `cands` with every test on `field` demoted to residual —
/// the candidate set for a missing-layer child, where those literals
/// must evaluate in reference order instead.
fn demote_field(cands: &[Cand], field: Field) -> Vec<Cand> {
    cands
        .iter()
        .map(|c| Cand {
            entry: c.entry,
            lits: c
                .lits
                .iter()
                .map(|&(i, t)| match t {
                    Some(ft) if ft.field == field => (i, None),
                    other => (i, other),
                })
                .collect(),
        })
        .collect()
}

fn split_exact(arena: &mut Vec<Node>, cands: Vec<Cand>, field: Field, mask: i64) -> usize {
    let missing = fallible(field).then(|| {
        let demoted = demote_field(&cands, field);
        build(arena, demoted)
    });
    let mut arm_values: Vec<i64> = Vec::new();
    for c in &cands {
        if let Some((_, v)) = first_exact(c, field, mask) {
            if !arm_values.contains(&v) {
                arm_values.push(v);
            }
        }
    }
    arm_values.sort_unstable();
    let mut arms = Vec::with_capacity(arm_values.len());
    for &v in &arm_values {
        let sub: Vec<Cand> = cands
            .iter()
            .filter_map(|c| match first_exact(c, field, mask) {
                Some((pos, value)) => (value == v).then(|| {
                    let mut lits = c.lits.clone();
                    lits.remove(pos); // proved true by taking this arm
                    Cand {
                        entry: c.entry,
                        lits,
                    }
                }),
                None => Some(c.clone()), // no test here: passes through
            })
            .collect();
        arms.push((v, build(arena, sub)));
    }
    let default_cands: Vec<Cand> = cands
        .iter()
        .filter(|c| first_exact(c, field, mask).is_none())
        .cloned()
        .collect();
    let default = build(arena, default_cands);
    push(
        arena,
        Node::Exact {
            field,
            mask,
            arms,
            default,
            missing,
        },
    )
}

fn split_range(arena: &mut Vec<Node>, cands: Vec<Cand>, field: Field) -> usize {
    let missing = fallible(field).then(|| {
        let demoted = demote_field(&cands, field);
        build(arena, demoted)
    });
    let fmax = field.max_value() as i64;
    // Segment boundaries: every participating interval's lo and hi+1.
    let mut cuts: Vec<i64> = Vec::new();
    for c in &cands {
        if let Some((_, lo, hi)) = first_range(c, field) {
            if lo > 0 {
                cuts.push(lo);
            }
            if hi < fmax {
                cuts.push(hi + 1);
            }
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    let mut children = Vec::with_capacity(cuts.len() + 1);
    for seg in 0..=cuts.len() {
        let seg_lo = if seg == 0 { 0 } else { cuts[seg - 1] };
        let seg_hi = if seg == cuts.len() { fmax } else { cuts[seg] - 1 };
        let sub: Vec<Cand> = cands
            .iter()
            .filter_map(|c| match first_range(c, field) {
                Some((pos, lo, hi)) => (lo <= seg_lo && seg_hi <= hi).then(|| {
                    let mut lits = c.lits.clone();
                    lits.remove(pos); // segment lies inside the interval
                    Cand {
                        entry: c.entry,
                        lits,
                    }
                }),
                None => Some(c.clone()),
            })
            .collect();
        children.push(build(arena, sub));
    }
    push(
        arena,
        Node::Range {
            field,
            cuts,
            children,
            missing,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eq(f: Field, c: i64) -> CExpr {
        CExpr::Bin(
            BinOp::Eq,
            Box::new(CExpr::Pkt(f)),
            Box::new(CExpr::Const(nfl_interp::Value::Int(c))),
        )
    }

    #[test]
    fn classify_plain_equality() {
        assert_eq!(
            classify(&eq(Field::TcpDport, 80)),
            Some(FieldTest {
                field: Field::TcpDport,
                kind: TestKind::Exact { mask: -1, value: 80 }
            })
        );
    }

    #[test]
    fn classify_masked_prefix() {
        let e = CExpr::Bin(
            BinOp::Eq,
            Box::new(CExpr::Bin(
                BinOp::BitAnd,
                Box::new(CExpr::Pkt(Field::IpSrc)),
                Box::new(CExpr::Const(nfl_interp::Value::Int(0xFFFF0000))),
            )),
            Box::new(CExpr::Const(nfl_interp::Value::Int(0x0A000000))),
        );
        assert_eq!(
            classify(&e),
            Some(FieldTest {
                field: Field::IpSrc,
                kind: TestKind::Exact {
                    mask: 0xFFFF0000,
                    value: 0x0A000000
                }
            })
        );
    }

    #[test]
    fn classify_interval_and_flip() {
        // pkt.ip.ttl < 2  →  [0, 1]
        let lt = CExpr::Bin(
            BinOp::Lt,
            Box::new(CExpr::Pkt(Field::IpTtl)),
            Box::new(CExpr::Const(nfl_interp::Value::Int(2))),
        );
        assert_eq!(
            classify(&lt),
            Some(FieldTest {
                field: Field::IpTtl,
                kind: TestKind::Range { lo: 0, hi: 1 }
            })
        );
        // 2 <= pkt.ip.ttl  →  [2, 255]
        let flipped = CExpr::Bin(
            BinOp::Le,
            Box::new(CExpr::Const(nfl_interp::Value::Int(2))),
            Box::new(CExpr::Pkt(Field::IpTtl)),
        );
        assert_eq!(
            classify(&flipped),
            Some(FieldTest {
                field: Field::IpTtl,
                kind: TestKind::Range { lo: 2, hi: 255 }
            })
        );
    }

    #[test]
    fn classify_rejects_ne_and_empty_ranges() {
        let ne = CExpr::Bin(
            BinOp::Ne,
            Box::new(CExpr::Pkt(Field::IpTtl)),
            Box::new(CExpr::Const(nfl_interp::Value::Int(7))),
        );
        assert_eq!(classify(&ne), None);
        // ttl < 0 is unsatisfiable: residual, not an empty tree arm.
        let empty = CExpr::Bin(
            BinOp::Lt,
            Box::new(CExpr::Pkt(Field::IpTtl)),
            Box::new(CExpr::Const(nfl_interp::Value::Int(0))),
        );
        assert_eq!(classify(&empty), None);
    }

    #[test]
    fn build_terminates_and_reaches_all_entries() {
        // Entry 0: proto == 6; entry 1: ttl < 2; entry 2: no tests.
        let cands = vec![
            Cand {
                entry: 0,
                lits: vec![(0, classify(&eq(Field::IpProto, 6)))],
            },
            Cand {
                entry: 1,
                lits: vec![(
                    0,
                    Some(FieldTest {
                        field: Field::IpTtl,
                        kind: TestKind::Range { lo: 0, hi: 1 },
                    }),
                )],
            },
            Cand {
                entry: 2,
                lits: vec![],
            },
        ];
        let mut arena = Vec::new();
        let root = build(&mut arena, cands);
        assert!(root < arena.len());
        let mut found = std::collections::BTreeSet::new();
        for n in &arena {
            if let Node::Leaf { cands } = n {
                for c in cands {
                    found.insert(c.entry);
                }
            }
        }
        assert_eq!(found, [0usize, 1, 2].into_iter().collect());
    }
}
