//! Properties of the model → decision-tree lowering, checked against
//! every corpus NF:
//!
//! * every original `(match, state)` entry survives lowering and is
//!   reachable in some leaf of the tree — the builder may *specialise*
//!   entries per path but never lose one;
//! * the tree has no dead structure — every node is reachable from the
//!   root and every leaf carries at least one candidate entry (the
//!   models' catch-all default entries guarantee this);
//! * on adversarial near-boundary packets — off by one on every exact
//!   arm value and every range cut in the compiled tree — the compiled
//!   engine agrees with the reference model evaluator packet-for-packet
//!   (one-sided: wherever the reference succeeds).

use nf_compile::{compile, CompiledProgram, CompiledState, Node};
use nf_model::{Model, ModelState};
use nf_packet::{Field, PacketGen};
use nf_support::check::{any_u64, check, tuple3, uint_range, Config};
use nfactor_core::Pipeline;
use nfl_interp::Interp;
use std::collections::{BTreeMap, BTreeSet};

fn corpus() -> Vec<(&'static str, String)> {
    vec![
        ("firewall", nf_corpus::firewall::source()),
        ("portknock", nf_corpus::portknock::source()),
        ("ratelimiter", nf_corpus::ratelimiter::source()),
        ("router", nf_corpus::router::source()),
        ("snort", nf_corpus::snort::source(25)),
        ("fig1-lb", nf_corpus::fig1_lb::source()),
        ("nat", nf_corpus::nat::source()),
        ("balance", nf_corpus::balance::source(6)),
    ]
}

fn compile_corpus(name: &str, src: &str) -> (Model, ModelState, CompiledProgram) {
    let pipeline = Pipeline::builder().name(name).build().unwrap();
    let syn = pipeline
        .synthesize(src)
        .unwrap_or_else(|e| panic!("{name}: synthesize: {e}"));
    let interp = Interp::new(&syn.nf_loop).unwrap();
    let init = nfactor_core::accuracy::initial_model_state(&syn, &interp);
    let prog = compile(&syn.model, &init)
        .unwrap_or_else(|e| panic!("{name}: compile: {e}"));
    (syn.model.clone(), init, prog)
}

fn node_children(n: &Node) -> Vec<usize> {
    match n {
        Node::Exact {
            arms,
            default,
            missing,
            ..
        } => {
            let mut out: Vec<usize> = arms.iter().map(|&(_, c)| c).collect();
            out.push(*default);
            out.extend(*missing);
            out
        }
        Node::Range {
            children, missing, ..
        } => {
            let mut out = children.clone();
            out.extend(*missing);
            out
        }
        Node::Leaf { .. } => Vec::new(),
    }
}

/// Every flattened entry appears as a candidate in at least one leaf.
#[test]
fn every_entry_reachable_in_some_leaf() {
    for (name, src) in corpus() {
        let (_, _, prog) = compile_corpus(name, &src);
        let mut seen = BTreeSet::new();
        for n in &prog.nodes {
            if let Node::Leaf { cands } = n {
                for c in cands {
                    seen.insert(c.entry);
                }
            }
        }
        for e in 0..prog.entries.len() {
            assert!(
                seen.contains(&e),
                "{name}: entry {e} ({:?}) unreachable in the tree",
                prog.entries[e].origin
            );
        }
    }
}

/// The arena holds no orphan nodes and no leaf is a dead end: every
/// node is reachable from the root, and every leaf has at least one
/// candidate (each model carries a catch-all default entry that is
/// passthrough at every split, so an empty leaf means the builder
/// dropped an entry).
#[test]
fn tree_has_no_dead_structure() {
    for (name, src) in corpus() {
        let (_, _, prog) = compile_corpus(name, &src);
        let mut reachable = vec![false; prog.nodes.len()];
        let mut stack = vec![prog.root];
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut reachable[i], true) {
                continue;
            }
            stack.extend(node_children(&prog.nodes[i]));
        }
        for (i, n) in prog.nodes.iter().enumerate() {
            assert!(reachable[i], "{name}: node {i} unreachable from root");
            if let Node::Leaf { cands } = n {
                assert!(!cands.is_empty(), "{name}: leaf {i} has no candidates");
            }
        }
    }
}

/// Every `(field, value)` the compiled tree branches on, plus the
/// values one below and one above, clamped to the field's domain.
fn boundary_values(prog: &CompiledProgram) -> Vec<(Field, u64)> {
    let mut out = BTreeSet::new();
    let mut push = |field: Field, v: i64| {
        let fmax = field.max_value() as i64;
        for cand in [v - 1, v, v + 1] {
            if (0..=fmax).contains(&cand) {
                out.insert((field, cand as u64));
            }
        }
    };
    for n in &prog.nodes {
        match n {
            Node::Exact {
                field, mask, arms, ..
            } if *mask == -1 => {
                for &(v, _) in arms {
                    push(*field, v);
                }
            }
            Node::Range { field, cuts, .. } => {
                for &c in cuts {
                    push(*field, c);
                }
            }
            _ => {}
        }
    }
    out.into_iter().collect()
}

fn model_snapshot(ms: &ModelState) -> BTreeMap<String, nfl_interp::Value> {
    let mut want = BTreeMap::new();
    for (k, v) in &ms.configs {
        want.insert(k.clone(), v.clone());
    }
    for (k, v) in &ms.scalars {
        want.insert(k.clone(), v.clone());
    }
    for (k, m) in &ms.maps {
        want.insert(k.clone(), nfl_interp::Value::Map(m.clone()));
    }
    want
}

/// Adversarial near-boundary packets: take a random packet and slam
/// two of its fields onto tree-edge values (v-1 / v / v+1 for every
/// exact arm, c-1 / c / c+1 for every range cut). Wherever the
/// reference model evaluator succeeds, the compiled engine must
/// produce the identical output, fired entry, and post-state.
#[test]
fn near_boundary_packets_agree_with_model() {
    for (name, src) in corpus() {
        let (model, init, prog) = compile_corpus(name, &src);
        let edges = boundary_values(&prog);
        if edges.is_empty() {
            continue;
        }
        let n = edges.len() as u64;
        let cfg = Config::with_cases(96);
        let gen = tuple3(any_u64(), uint_range(0, n - 1), uint_range(0, n - 1));
        check(
            &format!("near_boundary_{name}"),
            &cfg,
            &gen,
            |&(seed, i, j)| {
                let mut pkt = PacketGen::new(seed).next_packet();
                for &(field, v) in [&edges[i as usize], &edges[j as usize]] {
                    // Transport-layer fields may not exist on this
                    // packet (e.g. TCP flags on UDP) — leave it as-is.
                    let _ = pkt.set(field, v);
                }
                let mut ms = init.clone();
                let Ok(want) = ms.step(&model, &pkt) else {
                    // One-sided contract: the compiled engine is only
                    // pinned where the reference succeeds.
                    return;
                };
                let mut cs = CompiledState::new(&prog);
                let got = cs
                    .step(&prog, &pkt)
                    .unwrap_or_else(|e| panic!("{name}: compiled step failed: {e}"));
                assert_eq!(got.output, want.output, "{name}: output");
                assert_eq!(got.fired, want.fired, "{name}: fired entry");
                assert_eq!(
                    cs.snapshot(&prog),
                    model_snapshot(&ms),
                    "{name}: post-state"
                );
            },
        );
    }
}
