//! A balance-3.5-like TCP relay load balancer, with a size generator.
//!
//! This is the paper's Figure 3 NF: a nested-loop (Figure 4d) socket
//! program — `listen`/`accept`, round-robin backend choice, `fork`, and
//! a per-connection relay loop over `select`/`read`/`write`. Its
//! forwarding state (which connections exist, which backend serves them)
//! is **hidden in the OS**; the `nf-tcp` unfolding makes it explicit
//! before analysis (§3.2, Figure 5).
//!
//! Like the real balance (1,559 LoC), most of the code is *not*
//! forwarding logic: statistics, health bookkeeping and failure handling
//! around the accept loop. [`source`]`(extras)` generates that bulk —
//! straight-line counter maintenance plus two branching failure
//! handlers, so the original path count grows modestly (the paper
//! measures 20 paths) while the slice stays small (10).

use std::fmt::Write;

/// Extras count that lands the generated source at the paper's balance
/// size (≈1.5k LoC).
pub const PAPER_SCALE_EXTRAS: usize = 375;

/// Generate the balance-like NF with `extras` bookkeeping blocks.
pub fn source(extras: usize) -> String {
    let mut src = String::new();
    src.push_str(
        r#"# balance-3.5-like TCP relay load balancer in NFL (Figure 3 shape).
config LB_PORT = 80;
config servers = [(1.1.1.1, 8080), (2.2.2.2, 8080)];
config MAX_CONN = 10000;
state idx = 0;
state conn_total = 0;
state conn_refused = 0;
state health_window = 0;
"#,
    );
    for i in 0..extras {
        let _ = writeln!(src, "state bk{i} = 0;");
    }
    src.push_str(
        r#"
fn main() {
    let lfd = listen(LB_PORT);
    while true {
        let cfd = accept(lfd);
        # --- connection bookkeeping (log-only) ---
        conn_total = conn_total + 1;
        if conn_total > MAX_CONN {
            conn_refused = conn_refused + 1;
            log("connection table full");
        }
        if health_window > 100 {
            health_window = 0;
            log("health checkpoint", conn_total);
        }
        health_window = health_window + 1;
"#,
    );
    for i in 0..extras {
        // Straight-line bookkeeping: rolling statistics per backend,
        // timing windows, byte estimates — the kind of non-forwarding
        // code that dominates the real balance's line count.
        let _ = writeln!(
            src,
            "        bk{i} = (bk{i} + conn_total + {i}) % 65536;"
        );
        let _ = writeln!(src, "        bk{i} = bk{i} + health_window;");
        let _ = writeln!(src, "        log(\"bk\", {i}, bk{i});");
    }
    src.push_str(
        r#"        # --- backend selection (round robin) ---
        let srv = servers[idx];
        idx = (idx + 1) % len(servers);
        if fork() == 0 {
            let sfd = connect(srv[0], srv[1]);
            while true {
                let which = select2(cfd, sfd);
                if which == 0 {
                    let buf = sock_read(cfd);
                    sock_write(sfd, buf);
                } else {
                    let buf2 = sock_read(sfd);
                    sock_write(cfd, buf2);
                }
            }
        }
    }
}
"#,
    );
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfl_analysis::normalize::{detect_structure, Structure};

    #[test]
    fn is_nested_loop_shape() {
        let p = nfl_lang::parse_and_check(&source(3)).unwrap();
        assert_eq!(detect_structure(&p), Structure::NestedLoop);
    }

    #[test]
    fn paper_scale_loc() {
        let loc = nfl_lang::parse(&source(PAPER_SCALE_EXTRAS)).unwrap().loc();
        assert!((1200..=1900).contains(&loc), "balance-like LoC = {loc}");
    }

    #[test]
    fn pipeline_synthesizes_model_with_hidden_state() {
        let syn = nfactor_core::Pipeline::builder()
            .name("balance")
            .build()
            .unwrap()
            .synthesize(&source(5))
        .unwrap();
        // The hidden TCP state shows up as model state.
        assert!(syn.model.state_maps().iter().any(|m| m == "__tcp"));
        // The RR index transitions exactly as Figure 6's first row.
        let rendered = syn.render_model();
        assert!(
            rendered.contains("idx := ((idx + 1) % 2)"),
            "{rendered}"
        );
        // Bookkeeping pruned.
        assert!(!rendered.contains("bk0"), "{rendered}");
        assert!(!rendered.contains("conn_total"), "{rendered}");
    }

    #[test]
    fn slice_paths_match_paper_scale() {
        let syn = nfactor_core::Pipeline::builder()
            .name("balance")
            .measure_original(true)
            .build()
            .unwrap()
            .synthesize(&source(5))
            .unwrap();
        // Table 2 shape: slice paths ≈ 10, orig ≈ 20, orig > slice.
        let (ep_orig, _) = syn.metrics.ep_orig.unwrap();
        assert!(
            (5..=16).contains(&syn.metrics.ep_slice),
            "slice EP = {}",
            syn.metrics.ep_slice
        );
        assert!(
            ep_orig > syn.metrics.ep_slice,
            "orig {} > slice {}",
            ep_orig,
            syn.metrics.ep_slice
        );
    }
}
