//! The paper's Figure 1 load balancer, transliterated from its
//! scapy/Python form into NFL.
//!
//! Inbound packets addressed to `LB_PORT` are NAT-ed to a backend chosen
//! round-robin (`mode == ROUND_ROBIN`) or by source hash; the forward and
//! reverse translations live in `f2b_nat` / `b2f_nat`; outbound packets
//! of unknown flows are dropped ("only inbound packets can initiate
//! address/port translation mapping"). `pass_stat` / `drop_stat` are the
//! paper's log counters — Table 1's `logVar` examples.

/// The NFL source of the Figure 1 load balancer.
pub fn source() -> String {
    r#"# Figure 1: layer-4 load balancer (scapy version), in NFL.
# Constants
const ROUND_ROBIN = 1;
const MTU = 1500;
const ETHER_LEN = 14;
# Configurations
config mode = 1;
config LB_IP = 3.3.3.3;
config LB_PORT = 80;
config servers = [(1.1.1.1, 80), (2.2.2.2, 80)];
# Output-Impacting States
state f2b_nat = map();
state b2f_nat = map();
state rr_idx = 0;
state cur_port = 10000;
# Log States
state pass_stat = 0;
state drop_stat = 0;

# callback function
fn pkt_callback(pkt: packet) {
    let si = pkt.ip.src;
    let di = pkt.ip.dst;
    let sp = pkt.tcp.sport;
    let dp = pkt.tcp.dport;
    let nat_tpl = (0, 0, 0, 0);
    if dp == LB_PORT { # pkt from client to server
        let cs_ftpl = (si, sp, di, dp);
        let sc_ftpl = (di, dp, si, sp);
        if cs_ftpl not in f2b_nat { # new connection
            let server = (0, 0);
            if mode == ROUND_ROBIN {
                server = servers[rr_idx];
                rr_idx = (rr_idx + 1) % len(servers);
            } else { # Hash to a backend server
                server = servers[hash(si) % len(servers)];
            }
            let n_port = cur_port;
            cur_port = cur_port + 1;
            let cs_btpl = (LB_IP, n_port, server[0], server[1]);
            let sc_btpl = (server[0], server[1], LB_IP, n_port);
            f2b_nat[cs_ftpl] = cs_btpl;
            b2f_nat[sc_btpl] = sc_ftpl;
            nat_tpl = cs_btpl;
        } else { # existing connection
            nat_tpl = f2b_nat[cs_ftpl];
        }
    } else { # pkt from server to client
        let sc_btpl = (si, sp, di, dp);
        if sc_btpl in b2f_nat {
            nat_tpl = b2f_nat[sc_btpl];
        } else { # no initial outbound traffic is allowed
            drop_stat = drop_stat + 1;
            return;
        }
    }
    pass_stat = pass_stat + 1;
    pkt.ip.src = nat_tpl[0];
    pkt.tcp.sport = nat_tpl[1];
    pkt.ip.dst = nat_tpl[2];
    pkt.tcp.dport = nat_tpl[3];
    for f in fragment(pkt, MTU - ETHER_LEN) {
        send(f, "eth0");
    }
}

fn main() {
    sniff(pkt_callback, "eth0");
}
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_packet::wire::{parse_ipv4, TcpFlags};
    use nf_packet::{Field, Packet};
    use nfl_analysis::normalize::normalize;
    use nfl_interp::{Interp, Value};

    fn lb() -> Interp {
        let p = nfl_lang::parse_and_check(&source()).unwrap();
        Interp::new(&normalize(&p).unwrap()).unwrap()
    }

    fn inbound(sport: u16) -> Packet {
        Packet::tcp(
            parse_ipv4("10.0.0.1").unwrap(),
            sport,
            parse_ipv4("3.3.3.3").unwrap(),
            80,
            TcpFlags::syn(),
        )
    }

    #[test]
    fn round_robin_spreads_new_flows() {
        let mut lb = lb();
        let o1 = lb.process(&inbound(1000)).unwrap().outputs;
        let o2 = lb.process(&inbound(1001)).unwrap().outputs;
        assert_eq!(o1[0].get(Field::IpDst).unwrap(), 0x01010101);
        assert_eq!(o2[0].get(Field::IpDst).unwrap(), 0x02020202);
        // Source rewritten to the LB with fresh ports.
        assert_eq!(o1[0].get(Field::IpSrc).unwrap(), 0x03030303);
        assert_eq!(o1[0].get(Field::TcpSport).unwrap(), 10000);
        assert_eq!(o2[0].get(Field::TcpSport).unwrap(), 10001);
    }

    #[test]
    fn existing_flow_reuses_mapping() {
        let mut lb = lb();
        let o1 = lb.process(&inbound(1000)).unwrap().outputs;
        let o2 = lb.process(&inbound(1000)).unwrap().outputs;
        assert_eq!(o1, o2, "same flow, same translation");
        assert_eq!(lb.global("cur_port"), Some(&Value::Int(10001)));
    }

    #[test]
    fn unknown_outbound_dropped_and_counted() {
        let mut lb = lb();
        let outbound = Packet::tcp(
            parse_ipv4("1.1.1.1").unwrap(),
            80,
            parse_ipv4("3.3.3.3").unwrap(),
            10000,
            TcpFlags::ack(),
        );
        let r = lb.process(&outbound).unwrap();
        assert!(r.dropped);
        assert_eq!(lb.global("drop_stat"), Some(&Value::Int(1)));
    }

    #[test]
    fn reverse_direction_translates_back() {
        let mut lb = lb();
        lb.process(&inbound(1000)).unwrap();
        // Backend 1.1.1.1:80 answers to LB:10000.
        let reply = Packet::tcp(
            parse_ipv4("1.1.1.1").unwrap(),
            80,
            parse_ipv4("3.3.3.3").unwrap(),
            10000,
            TcpFlags::syn_ack(),
        );
        let r = lb.process(&reply).unwrap();
        assert!(!r.dropped);
        let out = &r.outputs[0];
        assert_eq!(out.get(Field::IpSrc).unwrap(), 0x03030303);
        assert_eq!(out.get(Field::TcpSport).unwrap(), 80);
        assert_eq!(
            out.get(Field::IpDst).unwrap(),
            u64::from(parse_ipv4("10.0.0.1").unwrap())
        );
        assert_eq!(out.get(Field::TcpDport).unwrap(), 1000);
    }

    #[test]
    fn hash_mode_is_deterministic_per_source() {
        let mut lb = lb();
        lb.set_config("mode", Value::Int(0)).unwrap();
        let a = lb.process(&inbound(1000)).unwrap().outputs;
        let b = lb.process(&inbound(2000)).unwrap().outputs;
        // Same source IP hashes to the same backend regardless of port.
        assert_eq!(
            a[0].get(Field::IpDst).unwrap(),
            b[0].get(Field::IpDst).unwrap()
        );
        // Round-robin index untouched in hash mode.
        assert_eq!(lb.global("rr_idx"), Some(&Value::Int(0)));
    }

    #[test]
    fn large_packet_fragments_on_output() {
        let mut lb = lb();
        let mut big = inbound(1000);
        big.payload = vec![1u8; 4000];
        let r = lb.process(&big).unwrap();
        assert!(r.outputs.len() > 1, "fragmented: {}", r.outputs.len());
        assert!(r
            .outputs
            .iter()
            .all(|f| f.get(Field::IpDst).unwrap() == 0x01010101));
    }
}
