//! A stateful perimeter firewall.
//!
//! Policy: traffic from the protected network may leave (opening a
//! pinhole for its reverse flow); inbound traffic is admitted only to an
//! allow-listed service port or through an existing pinhole; everything
//! else drops. The `{FW, IDS} + {LB}` service-chain composition of §4
//! uses this model.

/// The NFL source of the stateful firewall.
pub fn source() -> String {
    r#"# Stateful perimeter firewall in NFL.
config PROTECTED_NET = 10.0.0.0;
config PROTECTED_MASK = 4278190080; # 255.0.0.0
config ALLOW_PORT = 80;
state pinholes = map();  # reverse 4-tuple -> 1
state out_count = 0;
state in_count = 0;
state blocked_count = 0;

fn filter(pkt: packet) {
    let from_inside = (pkt.ip.src & PROTECTED_MASK) == (PROTECTED_NET & PROTECTED_MASK);
    if from_inside {
        # Outbound always allowed; open the reverse pinhole.
        let rev = (pkt.ip.dst, pkt.tcp.dport, pkt.ip.src, pkt.tcp.sport);
        pinholes[rev] = 1;
        out_count = out_count + 1;
        send(pkt);
    } else {
        let k = (pkt.ip.src, pkt.tcp.sport, pkt.ip.dst, pkt.tcp.dport);
        if k in pinholes {
            in_count = in_count + 1;
            send(pkt);
        } else {
            if pkt.tcp.dport == ALLOW_PORT {
                in_count = in_count + 1;
                send(pkt);
            } else {
                blocked_count = blocked_count + 1;
                return;
            }
        }
    }
}

fn main() {
    sniff(filter, "eth0");
}
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_packet::wire::{parse_ipv4, TcpFlags};
    use nf_packet::Packet;
    use nfl_analysis::normalize::normalize;
    use nfl_interp::Interp;

    fn fw() -> Interp {
        let p = nfl_lang::parse_and_check(&source()).unwrap();
        Interp::new(&normalize(&p).unwrap()).unwrap()
    }

    fn pkt(src: &str, sport: u16, dst: &str, dport: u16) -> Packet {
        Packet::tcp(
            parse_ipv4(src).unwrap(),
            sport,
            parse_ipv4(dst).unwrap(),
            dport,
            TcpFlags::syn(),
        )
    }

    #[test]
    fn outbound_allowed_and_pinholed() {
        let mut fw = fw();
        assert!(!fw
            .process(&pkt("10.0.0.5", 5000, "8.8.8.8", 443))
            .unwrap()
            .dropped);
        // The reverse flow comes back in.
        assert!(!fw
            .process(&pkt("8.8.8.8", 443, "10.0.0.5", 5000))
            .unwrap()
            .dropped);
    }

    #[test]
    fn unsolicited_inbound_blocked_unless_allowlisted() {
        let mut fw = fw();
        assert!(fw
            .process(&pkt("8.8.8.8", 443, "10.0.0.5", 5000))
            .unwrap()
            .dropped);
        // The allow-listed web port is reachable.
        assert!(!fw
            .process(&pkt("8.8.8.8", 4000, "10.0.0.5", 80))
            .unwrap()
            .dropped);
    }

    #[test]
    fn pinhole_is_flow_specific() {
        let mut fw = fw();
        fw.process(&pkt("10.0.0.5", 5000, "8.8.8.8", 443)).unwrap();
        // A different remote port does not fit the pinhole.
        assert!(fw
            .process(&pkt("8.8.8.8", 444, "10.0.0.5", 5000))
            .unwrap()
            .dropped);
    }

    #[test]
    fn model_matches_program_on_random_traffic() {
        let syn = nfactor_core::Pipeline::builder()
            .name("firewall")
            .build()
            .unwrap()
            .synthesize(&source())
        .unwrap();
        let report = nfactor_core::accuracy::differential_test(&syn, 7, 300).unwrap();
        assert!(report.perfect(), "{:?}", report.mismatches);
        // Forwarding never rewrites headers in a firewall.
        for e in syn.model.forward_entries() {
            if let nf_model::FlowAction::Forward { rewrites } = &e.flow_action {
                assert!(rewrites.is_empty(), "firewall must not rewrite");
            }
        }
    }
}
