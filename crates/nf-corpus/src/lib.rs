//! The NF corpus — every network function the evaluation analyses,
//! written in NFL.
//!
//! The paper studies **snort 1.0** (2,678 LoC) and **balance 3.5**
//! (1,559 LoC) plus the Figure 1 load balancer. Their C sources are
//! substituted by NFL programs with the same analysis-relevant anatomy;
//! [`snort`] and [`balance`] are *generators* so the original-code size
//! (and with it the path-explosion behaviour Table 2 reports) scales to
//! the paper's numbers: the generated bulk is exactly the kind of code
//! the paper says slicing prunes — "logs, failure handling, locking,
//! etc."
//!
//! | module | paper artefact | shape |
//! |---|---|---|
//! | [`fig1_lb`]   | Figure 1 scapy LB     | callback (Fig. 4b), NAT maps, RR/hash modes |
//! | [`balance`]   | balance 3.5, Figure 3 | nested loop (Fig. 4d), socket API, hidden TCP state |
//! | [`snort`]     | snort 1.0             | callback, preprocessors + rule chain, log counters |
//! | [`nat`]       | classic NAPT          | callback, bidirectional translation |
//! | [`firewall`]  | stateful firewall     | callback, outbound-initiated pinholes |
//! | [`structures`]| Figure 4 a–d          | the four structure archetypes |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod fig1_lb;
pub mod firewall;
pub mod nat;
pub mod portknock;
pub mod ratelimiter;
pub mod router;
pub mod snort;
pub mod structures;

/// A corpus entry: name + NFL source.
#[derive(Debug, Clone)]
pub struct CorpusNf {
    /// Short identifier used in reports.
    pub name: &'static str,
    /// The NFL source text.
    pub source: String,
}

/// The default corpus at paper-comparable sizes: `snort` ≈ 2.7k LoC and
/// `balance` ≈ 1.5k LoC like Table 2's originals.
pub fn default_corpus() -> Vec<CorpusNf> {
    vec![
        CorpusNf {
            name: "fig1-lb",
            source: fig1_lb::source(),
        },
        CorpusNf {
            name: "balance",
            source: balance::source(balance::PAPER_SCALE_EXTRAS),
        },
        CorpusNf {
            name: "snort",
            source: snort::source(snort::PAPER_SCALE_RULES),
        },
        CorpusNf {
            name: "nat",
            source: nat::source(),
        },
        CorpusNf {
            name: "firewall",
            source: firewall::source(),
        },
        CorpusNf {
            name: "ratelimiter",
            source: ratelimiter::source(),
        },
        CorpusNf {
            name: "portknock",
            source: portknock::source(),
        },
        CorpusNf {
            name: "router",
            source: router::source(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_corpus_parses_and_checks() {
        for nf in default_corpus() {
            nfl_lang::parse_and_check(&nf.source)
                .unwrap_or_else(|e| panic!("{}: {e}", nf.name));
        }
    }

    #[test]
    fn corpus_loc_matches_paper_scale() {
        let corpus = default_corpus();
        let loc = |name: &str| {
            let nf = corpus.iter().find(|n| n.name == name).unwrap();
            nfl_lang::parse(&nf.source).unwrap().loc()
        };
        let snort_loc = loc("snort");
        let balance_loc = loc("balance");
        // Table 2: snort 2678, balance 1559. Stay within ±25%.
        assert!(
            (2000..=3400).contains(&snort_loc),
            "snort LoC {snort_loc}"
        );
        assert!(
            (1150..=2000).contains(&balance_loc),
            "balance LoC {balance_loc}"
        );
        assert!(snort_loc > balance_loc, "snort is the bigger NF");
    }
}
