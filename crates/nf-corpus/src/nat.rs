//! A classic NAPT (network address/port translation) gateway.
//!
//! Inside hosts (`INSIDE_NET`) initiating outbound flows get a
//! `(NAT_IP, fresh port)` translation installed in both directions;
//! return traffic to an installed port is translated back; everything
//! else is dropped. This is the "different vendor, same function"
//! companion to the Figure 1 LB: same dictionary-state shape, different
//! match structure — useful for the service-chain composition study
//! (§4).

/// The NFL source of the NAPT gateway.
pub fn source() -> String {
    r#"# NAPT gateway in NFL.
config NAT_IP = 5.5.5.5;
config INSIDE_NET = 10.0.0.0;
config INSIDE_MASK = 4278190080; # 255.0.0.0
state out_map = map();   # (src ip, src port) -> external port
state in_map = map();    # external port -> (src ip, src port)
state next_port = 20000;
state translated = 0;
state rejected = 0;

fn process(pkt: packet) {
    let src_inside = (pkt.ip.src & INSIDE_MASK) == (INSIDE_NET & INSIDE_MASK);
    if src_inside {
        # Outbound: install or reuse a translation.
        let k = (pkt.ip.src, pkt.tcp.sport);
        if k not in out_map {
            out_map[k] = next_port;
            in_map[next_port] = k;
            next_port = next_port + 1;
        }
        let eport = out_map[k];
        pkt.ip.src = NAT_IP;
        pkt.tcp.sport = eport;
        translated = translated + 1;
        send(pkt);
    } else {
        # Inbound: only traffic to an installed external port returns.
        if pkt.ip.dst == NAT_IP {
            if pkt.tcp.dport in in_map {
                let orig = in_map[pkt.tcp.dport];
                pkt.ip.dst = orig[0];
                pkt.tcp.dport = orig[1];
                translated = translated + 1;
                send(pkt);
            } else {
                rejected = rejected + 1;
                return;
            }
        } else {
            rejected = rejected + 1;
            return;
        }
    }
}

fn main() {
    sniff(process, "eth0");
}
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_packet::wire::{parse_ipv4, TcpFlags};
    use nf_packet::{Field, Packet};
    use nfl_analysis::normalize::normalize;
    use nfl_interp::Interp;

    fn nat() -> Interp {
        let p = nfl_lang::parse_and_check(&source()).unwrap();
        Interp::new(&normalize(&p).unwrap()).unwrap()
    }

    fn outbound() -> Packet {
        Packet::tcp(
            parse_ipv4("10.1.2.3").unwrap(),
            5555,
            parse_ipv4("8.8.8.8").unwrap(),
            443,
            TcpFlags::syn(),
        )
    }

    #[test]
    fn outbound_translated_and_pinholed() {
        let mut nat = nat();
        let out = nat.process(&outbound()).unwrap().outputs;
        assert_eq!(
            out[0].get(Field::IpSrc).unwrap(),
            u64::from(parse_ipv4("5.5.5.5").unwrap())
        );
        assert_eq!(out[0].get(Field::TcpSport).unwrap(), 20000);
        // Return traffic through the pinhole.
        let back = Packet::tcp(
            parse_ipv4("8.8.8.8").unwrap(),
            443,
            parse_ipv4("5.5.5.5").unwrap(),
            20000,
            TcpFlags::syn_ack(),
        );
        let r = nat.process(&back).unwrap();
        assert!(!r.dropped);
        assert_eq!(
            r.outputs[0].get(Field::IpDst).unwrap(),
            u64::from(parse_ipv4("10.1.2.3").unwrap())
        );
        assert_eq!(r.outputs[0].get(Field::TcpDport).unwrap(), 5555);
    }

    #[test]
    fn unsolicited_inbound_dropped() {
        let mut nat = nat();
        let stranger = Packet::tcp(
            parse_ipv4("8.8.8.8").unwrap(),
            443,
            parse_ipv4("5.5.5.5").unwrap(),
            31337,
            TcpFlags::syn(),
        );
        assert!(nat.process(&stranger).unwrap().dropped);
        // Traffic not even addressed to the NAT is dropped too.
        let mis = Packet::tcp(
            parse_ipv4("8.8.8.8").unwrap(),
            1,
            parse_ipv4("9.9.9.9").unwrap(),
            2,
            TcpFlags::syn(),
        );
        assert!(nat.process(&mis).unwrap().dropped);
    }

    #[test]
    fn same_flow_keeps_port_new_flow_gets_next() {
        let mut nat = nat();
        let a = nat.process(&outbound()).unwrap().outputs;
        let b = nat.process(&outbound()).unwrap().outputs;
        assert_eq!(a, b);
        let mut other = outbound();
        other.set(Field::TcpSport, 6666).unwrap();
        let c = nat.process(&other).unwrap().outputs;
        assert_eq!(c[0].get(Field::TcpSport).unwrap(), 20001);
    }

    #[test]
    fn model_agrees_with_program_on_random_traffic() {
        let syn = nfactor_core::Pipeline::builder()
            .name("nat")
            .build()
            .unwrap()
            .synthesize(&source())
        .unwrap();
        let report = nfactor_core::accuracy::differential_test(&syn, 42, 300).unwrap();
        assert!(report.perfect(), "{:?}", report.mismatches);
    }
}
