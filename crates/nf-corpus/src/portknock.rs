//! A port-knocking gateway — a deliberately *multi-step* stateful NF.
//!
//! A client must "knock" on two secret ports in order; only then does
//! the protected service port open for that client. Per-client state is
//! a little FSM (`0 → 1 → 2`), which makes this the sharpest test of the
//! model's state-transition extraction and of BUZZ-style multi-packet
//! setup: reaching the "unlocked" entry takes a *sequence* of packets,
//! exactly the kind of context-dependent policy the paper cites BUZZ
//! for.

/// The NFL source of the port-knocking gateway.
pub fn source() -> String {
    r#"# Port-knocking gateway in NFL.
config KNOCK1 = 7001;
config KNOCK2 = 7002;
config SERVICE = 22;
state progress = map();   # client ip -> 0/1/2 knock progress
state unlocked_count = 0;
state denied = 0;

fn gate(pkt: packet) {
    let src = pkt.ip.src;
    let dp = pkt.tcp.dport;
    if src not in progress {
        progress[src] = 0;
    }
    let stage = progress[src];
    if dp == KNOCK1 {
        # First knock always (re)arms stage 1; knocks are absorbed.
        progress[src] = 1;
        return;
    }
    if dp == KNOCK2 {
        if stage == 1 {
            progress[src] = 2;
            unlocked_count = unlocked_count + 1;
        } else {
            # Out-of-order knock: reset.
            progress[src] = 0;
        }
        return;
    }
    if dp == SERVICE {
        if stage == 2 {
            send(pkt);
            return;
        }
        denied = denied + 1;
        return;
    }
    # Non-protected traffic passes untouched.
    send(pkt);
}

fn main() {
    sniff(gate, "eth0");
}
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_packet::wire::{parse_ipv4, TcpFlags};
    use nf_packet::Packet;
    use nfl_analysis::normalize::normalize;
    use nfl_interp::Interp;

    fn gw() -> Interp {
        let p = nfl_lang::parse_and_check(&source()).unwrap();
        Interp::new(&normalize(&p).unwrap()).unwrap()
    }

    fn pkt(dport: u16) -> Packet {
        Packet::tcp(
            parse_ipv4("10.0.0.1").unwrap(),
            4000,
            parse_ipv4("9.9.9.9").unwrap(),
            dport,
            TcpFlags::syn(),
        )
    }

    #[test]
    fn correct_knock_sequence_unlocks() {
        let mut gw = gw();
        assert!(gw.process(&pkt(22)).unwrap().dropped, "locked initially");
        assert!(gw.process(&pkt(7001)).unwrap().dropped, "knocks absorbed");
        assert!(gw.process(&pkt(7002)).unwrap().dropped);
        assert!(!gw.process(&pkt(22)).unwrap().dropped, "unlocked");
    }

    #[test]
    fn wrong_order_resets() {
        let mut gw = gw();
        gw.process(&pkt(7002)).unwrap(); // knock 2 first: reset
        gw.process(&pkt(7001)).unwrap(); // stage 1
        gw.process(&pkt(7001)).unwrap(); // re-arm stage 1 (still 1)
        assert!(gw.process(&pkt(22)).unwrap().dropped, "not unlocked yet");
        gw.process(&pkt(7002)).unwrap(); // completes
        assert!(!gw.process(&pkt(22)).unwrap().dropped);
    }

    #[test]
    fn other_traffic_unaffected() {
        let mut gw = gw();
        assert!(!gw.process(&pkt(443)).unwrap().dropped);
    }

    #[test]
    fn model_captures_the_three_stage_fsm() {
        let syn = nfactor_core::Pipeline::builder()
            .name("portknock")
            .build()
            .unwrap()
            .synthesize(&source())
        .unwrap();
        let fsm = nfactor_core::Synthesis::render_model(&syn);
        // The stage predicates appear as state matches.
        assert!(fsm.contains("== 1)") || fsm.contains("== 2)"), "{fsm}");
        let model_fsm = nf_model::ModelFsm::from_model(&syn.model);
        assert!(
            model_fsm.mutating_transitions().count() >= 3,
            "arm, complete, reset transitions: {:?}",
            model_fsm.transitions.len()
        );
    }

    #[test]
    fn model_agrees_with_program_on_random_traffic() {
        let syn = nfactor_core::Pipeline::builder()
            .name("portknock")
            .build()
            .unwrap()
            .synthesize(&source())
        .unwrap();
        let report = nfactor_core::accuracy::differential_test(&syn, 11, 600).unwrap();
        assert!(report.perfect(), "{:?}", report.mismatches);
    }

    #[test]
    fn model_agrees_on_the_exact_knock_sequence() {
        // Random traffic rarely knocks correctly; drive the exact
        // sequence through both sides.
        let syn = nfactor_core::Pipeline::builder()
            .name("portknock")
            .build()
            .unwrap()
            .synthesize(&source())
        .unwrap();
        let mut interp = Interp::new(&syn.nf_loop).unwrap();
        let mut model =
            nfactor_core::accuracy::initial_model_state(&syn, &interp);
        for dport in [22u16, 7001, 7002, 22, 443, 22] {
            let p = pkt(dport);
            let prog = interp.process(&p).unwrap();
            let step = model.step(&syn.model, &p).unwrap();
            assert_eq!(
                prog.outputs.first().cloned(),
                step.output,
                "divergence at dport {dport}"
            );
        }
    }
}
