//! A per-source token-bucket rate limiter.
//!
//! One of the "more open source NFs" the paper's §6 plans to test on.
//! Analysis-wise it exercises a pattern the other corpus NFs don't:
//! a state map whose *values* (not just membership) guard forwarding —
//! the model's state match includes an arithmetic predicate over
//! `MapGet`, and every packet transitions state (the bucket drains on
//! every accept).

/// The NFL source of the rate limiter.
pub fn source() -> String {
    r#"# Per-source token-bucket rate limiter in NFL.
config BUCKET_MAX = 8;
config REFILL = 2;          # tokens granted per observed packet tick
state buckets = map();      # src ip -> remaining tokens
state passed = 0;
state limited = 0;

fn limit(pkt: packet) {
    let src = pkt.ip.src;
    if src not in buckets {
        buckets[src] = BUCKET_MAX;
    }
    let tokens = buckets[src];
    if tokens > 0 {
        buckets[src] = tokens - 1;
        passed = passed + 1;
        send(pkt);
    } else {
        # Empty bucket: drop, but grant a refill so the source recovers.
        buckets[src] = min(REFILL, BUCKET_MAX);
        limited = limited + 1;
        return;
    }
}

fn main() {
    sniff(limit, "eth0");
}
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_packet::wire::{parse_ipv4, TcpFlags};
    use nf_packet::Packet;
    use nfl_analysis::normalize::normalize;
    use nfl_interp::{Interp, Value};

    fn rl() -> Interp {
        let p = nfl_lang::parse_and_check(&source()).unwrap();
        Interp::new(&normalize(&p).unwrap()).unwrap()
    }

    fn pkt(src: &str) -> Packet {
        Packet::tcp(
            parse_ipv4(src).unwrap(),
            1000,
            parse_ipv4("9.9.9.9").unwrap(),
            80,
            TcpFlags::ack(),
        )
    }

    #[test]
    fn bucket_drains_then_limits() {
        let mut rl = rl();
        for i in 0..8 {
            assert!(!rl.process(&pkt("10.0.0.1")).unwrap().dropped, "pkt {i}");
        }
        // Ninth packet: bucket empty.
        assert!(rl.process(&pkt("10.0.0.1")).unwrap().dropped);
        assert_eq!(rl.global("limited"), Some(&Value::Int(1)));
        // Refill lets two more through, then limited again.
        assert!(!rl.process(&pkt("10.0.0.1")).unwrap().dropped);
        assert!(!rl.process(&pkt("10.0.0.1")).unwrap().dropped);
        assert!(rl.process(&pkt("10.0.0.1")).unwrap().dropped);
    }

    #[test]
    fn sources_have_independent_buckets() {
        let mut rl = rl();
        for _ in 0..8 {
            rl.process(&pkt("10.0.0.1")).unwrap();
        }
        assert!(rl.process(&pkt("10.0.0.1")).unwrap().dropped);
        assert!(!rl.process(&pkt("10.0.0.2")).unwrap().dropped, "fresh source unaffected");
    }

    #[test]
    fn model_state_match_includes_token_predicate() {
        let syn = nfactor_core::Pipeline::builder()
            .name("ratelimit")
            .build()
            .unwrap()
            .synthesize(&source())
        .unwrap();
        // The forwarding entry is guarded by `buckets[src] > 0` — a value
        // predicate over state, not mere membership.
        let fwd: Vec<_> = syn.model.forward_entries().collect();
        assert!(fwd.iter().any(|e| e
            .state_match
            .iter()
            .any(|l| l.to_string().contains("buckets[") && l.to_string().contains("> 0"))),
            "{}", syn.render_model());
    }

    #[test]
    fn model_agrees_with_program() {
        let syn = nfactor_core::Pipeline::builder()
            .name("ratelimit")
            .build()
            .unwrap()
            .synthesize(&source())
        .unwrap();
        let report = nfactor_core::accuracy::differential_test(&syn, 3, 600).unwrap();
        assert!(report.perfect(), "{:?}", report.mismatches);
    }
}
