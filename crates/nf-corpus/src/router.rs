//! An L3 router with a static longest-prefix-ish table and an ACL.
//!
//! The *stateless* end of the corpus: TTL decrement, expiry drop, a
//! prefix route table (CIDR masks — exercising the solver's and HSA's
//! bitmask handling), and a deny ACL. Its model should contain **no**
//! state at all — a useful negative control for StateAlyzer.

/// The NFL source of the router.
pub fn source() -> String {
    r#"# L3 router with ACL in NFL.
config NET_A = 10.0.0.0;        # 10/8     -> next hop A
config NET_B = 192.168.0.0;     # 192.168/16 -> next hop B
config MASK_A = 4278190080;     # 255.0.0.0
config MASK_B = 4294901760;     # 255.255.0.0
config NEXTHOP_A = 1.0.0.1;
config NEXTHOP_B = 2.0.0.1;
config DENY_PORT = 23;          # telnet never routed
state routed = 0;
state expired = 0;
state no_route = 0;

fn route(pkt: packet) {
    if pkt.ip.ttl < 2 {
        expired = expired + 1;
        return;
    }
    if pkt.tcp.dport == DENY_PORT {
        return;
    }
    pkt.ip.ttl = pkt.ip.ttl - 1;
    if (pkt.ip.dst & MASK_A) == (NET_A & MASK_A) {
        pkt.eth.dst = 1;        # next hop A's MAC (symbolic placeholder)
        routed = routed + 1;
        send(pkt, "ethA");
        return;
    }
    if (pkt.ip.dst & MASK_B) == (NET_B & MASK_B) {
        pkt.eth.dst = 2;
        routed = routed + 1;
        send(pkt, "ethB");
        return;
    }
    no_route = no_route + 1;
    return;
}

fn main() {
    sniff(route, "eth0");
}
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_packet::wire::{parse_ipv4, TcpFlags};
    use nf_packet::{Field, Packet};
    use nfl_analysis::normalize::normalize;
    use nfl_interp::Interp;

    fn router() -> Interp {
        let p = nfl_lang::parse_and_check(&source()).unwrap();
        Interp::new(&normalize(&p).unwrap()).unwrap()
    }

    fn to(dst: &str, ttl: u8, dport: u16) -> Packet {
        let mut p = Packet::tcp(
            parse_ipv4("8.8.8.8").unwrap(),
            1000,
            parse_ipv4(dst).unwrap(),
            dport,
            TcpFlags::ack(),
        );
        p.ip_ttl = ttl;
        p
    }

    #[test]
    fn routes_by_prefix_and_decrements_ttl() {
        let mut r = router();
        let a = r.process(&to("10.1.2.3", 64, 80)).unwrap();
        assert_eq!(a.outputs[0].get(Field::EthDst).unwrap(), 1);
        assert_eq!(a.outputs[0].ip_ttl, 63);
        let b = r.process(&to("192.168.9.9", 64, 80)).unwrap();
        assert_eq!(b.outputs[0].get(Field::EthDst).unwrap(), 2);
    }

    #[test]
    fn ttl_expiry_and_acl_drop() {
        let mut r = router();
        assert!(r.process(&to("10.1.2.3", 1, 80)).unwrap().dropped);
        assert!(r.process(&to("10.1.2.3", 64, 23)).unwrap().dropped, "telnet denied");
        assert!(r.process(&to("55.0.0.1", 64, 80)).unwrap().dropped, "no route");
    }

    #[test]
    fn model_is_stateless() {
        let syn = nfactor_core::Pipeline::builder()
            .name("router")
            .build()
            .unwrap()
            .synthesize(&source())
        .unwrap();
        assert!(syn.classes.ois_vars.is_empty(), "{:?}", syn.classes);
        assert!(syn.model.state_maps().is_empty());
        assert!(syn.model.state_scalars().is_empty());
        // Every counter is a log var or pruned entirely.
        for v in ["routed", "expired", "no_route"] {
            assert_ne!(syn.classes.class_of(v), Some("oisVar"), "{v}");
        }
    }

    #[test]
    fn model_agrees_with_program() {
        let syn = nfactor_core::Pipeline::builder()
            .name("router")
            .build()
            .unwrap()
            .synthesize(&source())
        .unwrap();
        let report = nfactor_core::accuracy::differential_test(&syn, 21, 600).unwrap();
        assert!(report.perfect(), "{:?}", report.mismatches);
    }

    #[test]
    fn hsa_sees_the_prefix_split() {
        use nf_verify::hsa::{HeaderSpace, StatefulNf};
        let syn = nfactor_core::Pipeline::builder()
            .name("router")
            .build()
            .unwrap()
            .synthesize(&source())
        .unwrap();
        let interp = Interp::new(&syn.nf_loop).unwrap();
        let state = nfactor_core::accuracy::initial_model_state(&syn, &interp);
        let nf = StatefulNf {
            model: syn.model,
            state,
        };
        let everything = HeaderSpace::all().with_point(Field::IpTtl, 64);
        let out = nf.reachable_through(&everything);
        // Outputs partition into the 10/8 and 192.168/16 prefixes.
        assert!(out.len() >= 2, "{out:?}");
        let spaces: Vec<String> = out.iter().map(|s| s.to_string()).collect();
        assert!(
            spaces.iter().any(|s| s.contains("167772160..=184549375")),
            "10/8 range present: {spaces:?}"
        );
    }
}
