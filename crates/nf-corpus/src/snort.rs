//! A snort-1.0-like signature IDS, with a rule-set generator.
//!
//! Table 2 analyses snort 1.0 at 2,678 LoC whose symbolic execution
//! explodes (">1000" paths, ">1hr") while the packet/state slice is 129
//! lines with **3** execution paths. The anatomy that produces those
//! numbers:
//!
//! * a **preprocessor chain** (checksum/TTL/size sanity) and a long
//!   **alert-only rule chain** — branches that only touch log counters,
//!   so the *original* program's path count is exponential in the rule
//!   count, and all of it is sliced away ("the pruned code includes
//!   logs, failure handling, locking, etc.");
//! * exactly **two block rules** that set the forwarding `action` — so
//!   the slice has three paths: block-by-rule-1, block-by-rule-2,
//!   forward. That is precisely the paper's `EP(slice) = 3`.
//!
//! [`source`]`(n)` generates the NF with `n` alert-only rules;
//! [`PAPER_SCALE_RULES`] yields ≈ 2.7k LoC like the paper's snort.

use std::fmt::Write;

/// Rule count that lands the generated source at the paper's snort size.
pub const PAPER_SCALE_RULES: usize = 500;

/// Rotating predicate shapes for generated alert-only rules — diverse
/// enough to exercise every comparison form the solver handles.
fn rule_predicate(i: usize) -> String {
    match i % 6 {
        0 => format!("pkt.ip.proto == 6 && pkt.tcp.dport == {}", 1024 + i),
        1 => format!("pkt.ip.proto == 17 && pkt.tcp.sport == {}", 2000 + i),
        2 => format!("pkt.payload.b0 == {}", i % 256),
        3 => format!("pkt.ip.ttl < {}", 2 + (i % 30)),
        4 => format!("pkt.ip.len > {}", 500 + (i % 1000)),
        _ => format!(
            "pkt.ip.proto == 6 && pkt.tcp.flags & 2 != 0 && pkt.tcp.dport == {}",
            3000 + i
        ),
    }
}

/// Generate the snort-like IDS with `n_rules` alert-only rules.
pub fn source(n_rules: usize) -> String {
    let mut src = String::new();
    src.push_str(
        r#"# snort-1.0-like signature IDS in NFL.
# Configurations
config HOME_NET = 10.0.0.0;
config ALERT_MODE = 1;
config MAX_PKT = 65000;
config MIN_TTL = 1;
# Log / statistics state
state total_pkts = 0;
state tcp_pkts = 0;
state udp_pkts = 0;
state other_pkts = 0;
state oversize_evts = 0;
state lowttl_evts = 0;
state frag_evts = 0;
state alert_total = 0;
state blocked = 0;
state telnet_hits = 0;
state nopsled_hits = 0;
"#,
    );
    for i in 0..n_rules {
        let _ = writeln!(src, "state r{i}_hits = 0;");
    }
    src.push_str(
        r#"
fn detect(pkt: packet) {
    # ---- decoder / statistics (log-only) ----
    total_pkts = total_pkts + 1;
    if pkt.ip.proto == 6 {
        tcp_pkts = tcp_pkts + 1;
    } else {
        if pkt.ip.proto == 17 {
            udp_pkts = udp_pkts + 1;
        } else {
            other_pkts = other_pkts + 1;
        }
    }
    # ---- preprocessor chain (log-only failure handling) ----
    if pkt.ip.len > MAX_PKT {
        oversize_evts = oversize_evts + 1;
        log("oversize packet", pkt.ip.len);
    }
    if pkt.ip.ttl < MIN_TTL {
        lowttl_evts = lowttl_evts + 1;
        log("ttl expired");
    }
    if pkt.ip.id != 0 && pkt.ip.len < 40 {
        frag_evts = frag_evts + 1;
        log("runt fragment");
    }
    # ---- rule engine ----
    let action = 0;
    # Block rules (forwarding-relevant).
    if pkt.ip.proto == 6 && pkt.tcp.dport == 23 {
        telnet_hits = telnet_hits + 1;
        action = 1;
    }
    if action == 0 && pkt.payload.b0 == 144 && pkt.payload.b1 == 144 {
        nopsled_hits = nopsled_hits + 1;
        action = 1;
    }
    # Alert-only rules (generated; log counters, never block).
"#,
    );
    for i in 0..n_rules {
        let pred = rule_predicate(i);
        let _ = writeln!(src, "    if {pred} {{");
        let _ = writeln!(src, "        r{i}_hits = r{i}_hits + 1;");
        let _ = writeln!(src, "        alert_total = alert_total + 1;");
        let _ = writeln!(src, "        log(\"alert\", {i});");
        let _ = writeln!(src, "    }}");
    }
    src.push_str(
        r#"    # ---- verdict ----
    if action == 1 {
        blocked = blocked + 1;
        return;
    }
    send(pkt);
}

fn main() {
    sniff(detect, "eth0");
}
"#,
    );
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_packet::wire::{parse_ipv4, TcpFlags};
    use nf_packet::Packet;
    use nfl_analysis::normalize::normalize;
    use nfl_interp::{Interp, Value};

    fn ids(rules: usize) -> Interp {
        let p = nfl_lang::parse_and_check(&source(rules)).unwrap();
        Interp::new(&normalize(&p).unwrap()).unwrap()
    }

    fn pkt_to(dport: u16) -> Packet {
        Packet::tcp(
            parse_ipv4("10.0.0.1").unwrap(),
            40000,
            parse_ipv4("8.8.8.8").unwrap(),
            dport,
            TcpFlags::syn(),
        )
    }

    #[test]
    fn telnet_blocked_http_forwarded() {
        let mut ids = ids(10);
        assert!(ids.process(&pkt_to(23)).unwrap().dropped);
        assert!(!ids.process(&pkt_to(80)).unwrap().dropped);
        assert_eq!(ids.global("blocked"), Some(&Value::Int(1)));
        assert_eq!(ids.global("telnet_hits"), Some(&Value::Int(1)));
    }

    #[test]
    fn nop_sled_payload_blocked() {
        let mut ids = ids(10);
        let mut p = pkt_to(80);
        p.payload = vec![144, 144, 1, 2];
        assert!(ids.process(&p).unwrap().dropped);
        assert_eq!(ids.global("nopsled_hits"), Some(&Value::Int(1)));
    }

    #[test]
    fn alert_rules_count_but_forward() {
        let mut ids = ids(10);
        // Rule 0 predicate: proto 6 && dport == 1024.
        let r = ids.process(&pkt_to(1024)).unwrap();
        assert!(!r.dropped, "alert-only rules never block");
        assert_eq!(ids.global("r0_hits"), Some(&Value::Int(1)));
        assert!(!r.logs.is_empty());
    }

    #[test]
    fn generated_size_scales_linearly() {
        let small = nfl_lang::parse(&source(10)).unwrap().loc();
        let big = nfl_lang::parse(&source(100)).unwrap().loc();
        assert!(big > small + 400, "{small} -> {big}");
    }

    #[test]
    fn paper_scale_loc() {
        let loc = nfl_lang::parse(&source(PAPER_SCALE_RULES)).unwrap().loc();
        assert!((2300..=3300).contains(&loc), "snort-like LoC = {loc}");
    }

    #[test]
    fn slice_has_exactly_three_paths() {
        // The headline Table 2 number: EP(slice) = 3 for snort.
        let syn = nfactor_core::Pipeline::builder()
            .name("snort")
            .build()
            .unwrap()
            .synthesize(&source(25))
        .unwrap();
        assert_eq!(syn.metrics.ep_slice, 3, "block1 / block2 / forward");
        // And the slice prunes every alert counter.
        let rendered = syn.render_model();
        assert!(!rendered.contains("r0_hits"), "{rendered}");
        assert!(!rendered.contains("alert_total"), "{rendered}");
    }
}
