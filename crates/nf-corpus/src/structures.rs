//! The four NF code-structure archetypes of Figure 4.
//!
//! All four implement the *same* trivial NF — count packets to a port
//! and forward them — so tests and the structure bench can check that
//! normalisation makes them analysis-equivalent.

/// Figure 4a: one processing loop.
pub fn one_loop() -> String {
    r#"
config PORT = 80;
state hits = 0;
fn main() {
    while true {
        let pkt = recv("eth0");
        if pkt.tcp.dport == PORT {
            hits = hits + 1;
            send(pkt);
        }
    }
}
"#
    .to_string()
}

/// Figure 4b: a packet loop hidden behind a callback (`sniff`).
pub fn callback() -> String {
    r#"
config PORT = 80;
state hits = 0;
fn handle(pkt: packet) {
    if pkt.tcp.dport == PORT {
        hits = hits + 1;
        send(pkt);
    }
}
fn main() {
    sniff(handle, "eth0");
}
"#
    .to_string()
}

/// Figure 4c: consumer-producer loops joined by a queue.
pub fn consumer_producer() -> String {
    r#"
config PORT = 80;
state hits = 0;
state q = queue();
fn read_loop() {
    while true {
        let pkt = recv("eth0");
        q_push(q, pkt);
    }
}
fn proc_loop() {
    while true {
        let pkt = q_pop(q);
        if pkt.tcp.dport == PORT {
            hits = hits + 1;
            send(pkt);
        }
    }
}
fn main() {
    spawn(read_loop);
    spawn(proc_loop);
}
"#
    .to_string()
}

/// Figure 4d: nested loops over the socket API (accept + per-connection
/// relay). Functionally richer than the other three — it needs the
/// TCP unfolding — but drives the same "to port, count, forward" logic.
pub fn nested_loop() -> String {
    r#"
config PORT = 80;
config servers = [(9.9.9.9, 80)];
state hits = 0;
state idx = 0;
fn main() {
    let lfd = listen(PORT);
    while true {
        let cfd = accept(lfd);
        hits = hits + 1;
        let srv = servers[idx];
        idx = (idx + 1) % len(servers);
        if fork() == 0 {
            let sfd = connect(srv[0], srv[1]);
            while true {
                let which = select2(cfd, sfd);
                if which == 0 {
                    let buf = sock_read(cfd);
                    sock_write(sfd, buf);
                } else {
                    let buf2 = sock_read(sfd);
                    sock_write(cfd, buf2);
                }
            }
        }
    }
}
"#
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_packet::wire::{parse_ipv4, TcpFlags};
    use nf_packet::Packet;
    use nfl_analysis::normalize::{detect_structure, normalize, Structure};
    use nfl_interp::Interp;

    #[test]
    fn shapes_detected() {
        let cases = [
            (one_loop(), Structure::OneLoop),
            (callback(), Structure::Callback),
            (consumer_producer(), Structure::ConsumerProducer),
            (nested_loop(), Structure::NestedLoop),
        ];
        for (src, expect) in cases {
            let p = nfl_lang::parse_and_check(&src).unwrap();
            assert_eq!(detect_structure(&p), expect);
        }
    }

    #[test]
    fn first_three_shapes_behave_identically() {
        let mut results = Vec::new();
        for src in [one_loop(), callback(), consumer_producer()] {
            let p = nfl_lang::parse_and_check(&src).unwrap();
            let mut i = Interp::new(&normalize(&p).unwrap()).unwrap();
            let hit = i
                .process(&Packet::tcp(
                    parse_ipv4("1.1.1.1").unwrap(),
                    9,
                    parse_ipv4("2.2.2.2").unwrap(),
                    80,
                    TcpFlags::syn(),
                ))
                .unwrap();
            let miss = i
                .process(&Packet::tcp(
                    parse_ipv4("1.1.1.1").unwrap(),
                    9,
                    parse_ipv4("2.2.2.2").unwrap(),
                    81,
                    TcpFlags::syn(),
                ))
                .unwrap();
            results.push((hit.dropped, miss.dropped, i.global("hits").cloned()));
        }
        assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
        assert!(!results[0].0);
        assert!(results[0].1);
    }

    #[test]
    fn all_four_synthesize_models() {
        for (name, src) in [
            ("4a", one_loop()),
            ("4b", callback()),
            ("4c", consumer_producer()),
            ("4d", nested_loop()),
        ] {
            let syn =
                nfactor_core::Pipeline::builder()
                    .name(name)
                    .build()
                    .unwrap()
                    .synthesize(&src)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(syn.model.entry_count() > 0, "{name} produced no entries");
        }
    }
}
