//! Seeded grammar-based NFL program generation.
//!
//! Programs are drawn from a restricted grammar chosen so that every
//! generated NF is *model-comparable*: decision trees over packet fields
//! and map membership, at most one `send` per path, additive-only state
//! arithmetic (no `/`, `%`, or subtraction, whose overflow semantics
//! differ between the concrete interpreter and the model evaluator).
//! Within that fragment the differential oracle can demand bit-exact
//! agreement between `nfl-interp` and the synthesized model.

use nf_support::rng::Rng;
use std::fmt::Write;

/// Packet fields the generator reads, with the constant pool each is
/// compared against (all within the field's wire domain, and overlapping
/// the values `PacketGen` emits so both branch sides get exercised).
const FIELDS: &[(&str, &[u64])] = &[
    ("pkt.ip.src", &[0x0a000001, 0x0a000002, 0x0a000003]),
    ("pkt.ip.dst", &[0x03030303, 0x01010101, 0x02020202]),
    ("pkt.ip.ttl", &[1, 32, 64, 128]),
    ("pkt.tcp.sport", &[1024, 40000, 65535]),
    ("pkt.tcp.dport", &[80, 443, 8080]),
];

/// Fields the generator rewrites, with in-domain replacement values.
const REWRITES: &[(&str, &[u64])] = &[
    ("pkt.ip.dst", &[0x01010101, 0x02020202]),
    ("pkt.ip.ttl", &[1, 63]),
    ("pkt.tcp.dport", &[8080, 9090]),
    ("pkt.tcp.sport", &[10000, 20000]),
];

const CMPS: &[&str] = &["==", "!=", "<", "<=", ">", ">="];

/// Tuning knobs for the generated program shape.
#[derive(Debug, Clone, Copy)]
pub struct GrammarConfig {
    /// Maximum nesting depth of the decision tree.
    pub max_depth: usize,
    /// Maximum state-update / rewrite actions per leaf.
    pub max_actions: usize,
}

impl Default for GrammarConfig {
    fn default() -> Self {
        GrammarConfig {
            max_depth: 3,
            max_actions: 2,
        }
    }
}

/// A generated NF: its source text plus what the generator used, so the
/// harness can bias the packet stream toward the interesting region.
#[derive(Debug, Clone)]
pub struct GenProgram {
    /// NFL source text.
    pub source: String,
    /// Whether the program declares a state map.
    pub has_map: bool,
}

struct Gen<'a> {
    rng: &'a mut Rng,
    cfg: GrammarConfig,
    n_configs: usize,
    n_scalars: usize,
    has_map: bool,
    /// The single key expression used for every `m0` access — the type
    /// checker requires one consistent key shape per map.
    map_key: &'static str,
    out: String,
}

impl Gen<'_> {
    fn pick<'p, T: ?Sized>(&mut self, pool: &'p [&'p T]) -> &'p T {
        pool[self.rng.gen_index(pool.len())]
    }

    fn field_cond(&mut self) -> String {
        let (field, consts) = FIELDS[self.rng.gen_index(FIELDS.len())];
        let cmp = self.pick(CMPS);
        // Sometimes compare against a `config` so the pipeline's cfgVar
        // classification and per-config model tables get exercised.
        if self.n_configs > 0 && self.rng.gen_index(4) == 0 {
            let c = self.rng.gen_index(self.n_configs);
            format!("{field} {cmp} C{c}")
        } else {
            let c = consts[self.rng.gen_index(consts.len())];
            format!("{field} {cmp} {c}")
        }
    }

    fn cond(&mut self) -> String {
        if self.has_map && self.rng.gen_index(3) == 0 {
            let key = self.map_key;
            if self.rng.gen_index(2) == 0 {
                format!("{key} in m0")
            } else {
                format!("{key} not in m0")
            }
        } else {
            self.field_cond()
        }
    }

    fn action(&mut self, indent: usize) {
        let pad = "    ".repeat(indent);
        match self.rng.gen_index(3) {
            0 if self.n_scalars > 0 => {
                let s = self.rng.gen_index(self.n_scalars);
                let inc = 1 + self.rng.gen_below(16);
                let _ = writeln!(self.out, "{pad}s{s} = s{s} + {inc};");
            }
            1 if self.has_map => {
                let key = self.map_key;
                let v = self.rng.gen_below(256);
                let _ = writeln!(self.out, "{pad}m0[{key}] = {v};");
            }
            _ => {
                let (field, vals) = REWRITES[self.rng.gen_index(REWRITES.len())];
                let v = vals[self.rng.gen_index(vals.len())];
                let _ = writeln!(self.out, "{pad}{field} = {v};");
            }
        }
    }

    fn leaf(&mut self, indent: usize) {
        let pad = "    ".repeat(indent);
        for _ in 0..self.rng.gen_index(self.cfg.max_actions + 1) {
            self.action(indent);
        }
        // Half the leaves forward, half drop (fall through without send).
        if self.rng.gen_index(2) == 0 {
            let _ = writeln!(self.out, "{pad}send(pkt);");
        }
        let _ = writeln!(self.out, "{pad}return;");
    }

    fn tree(&mut self, depth: usize, indent: usize) {
        let branch = depth > 0 && self.rng.gen_index(3) != 0;
        if !branch {
            self.leaf(indent);
            return;
        }
        let pad = "    ".repeat(indent);
        let cond = self.cond();
        let _ = writeln!(self.out, "{pad}if {cond} {{");
        self.tree(depth - 1, indent + 1);
        let _ = writeln!(self.out, "{pad}}} else {{");
        self.tree(depth - 1, indent + 1);
        let _ = writeln!(self.out, "{pad}}}");
    }
}

/// Generate one NFL program from the seeded stream in `rng`.
pub fn gen_program(rng: &mut Rng, cfg: GrammarConfig) -> GenProgram {
    let n_configs = rng.gen_index(3);
    let n_scalars = rng.gen_index(3);
    let has_map = rng.gen_index(2) == 0;
    let map_key = match rng.gen_index(3) {
        0 => "(pkt.ip.src, pkt.tcp.sport)",
        1 => "pkt.ip.src",
        _ => "(pkt.ip.src, pkt.ip.dst)",
    };
    let mut g = Gen {
        rng,
        cfg,
        n_configs,
        n_scalars,
        has_map,
        map_key,
        out: String::new(),
    };
    for i in 0..n_configs {
        let v = g.rng.gen_below(65536);
        let _ = writeln!(g.out, "config C{i} = {v};");
    }
    for i in 0..n_scalars {
        let v = g.rng.gen_below(256);
        let _ = writeln!(g.out, "state s{i} = {v};");
    }
    if has_map {
        let _ = writeln!(g.out, "state m0 = map();");
    }
    let _ = writeln!(g.out, "fn cb(pkt: packet) {{");
    let depth = 1 + g.rng.gen_index(cfg.max_depth);
    g.tree(depth, 1);
    let _ = writeln!(g.out, "}}");
    let _ = writeln!(g.out, "fn main() {{ sniff(cb); }}");
    GenProgram {
        source: g.out,
        has_map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_parse_and_check() {
        let mut rng = Rng::new(7);
        for i in 0..200 {
            let p = gen_program(&mut rng, GrammarConfig::default());
            nfl_lang::parse_and_check(&p.source)
                .unwrap_or_else(|e| panic!("case {i}: {e}\n{}", p.source));
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a: Vec<String> = {
            let mut rng = Rng::new(11);
            (0..20)
                .map(|_| gen_program(&mut rng, GrammarConfig::default()).source)
                .collect()
        };
        let b: Vec<String> = {
            let mut rng = Rng::new(11);
            (0..20)
                .map(|_| gen_program(&mut rng, GrammarConfig::default()).source)
                .collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn no_division_or_modulo_in_generated_code() {
        // The differential oracle relies on the additive-only fragment.
        let mut rng = Rng::new(3);
        for _ in 0..100 {
            let p = gen_program(&mut rng, GrammarConfig::default());
            assert!(!p.source.contains('/'), "{}", p.source);
            assert!(!p.source.contains('%'), "{}", p.source);
            assert!(!p.source.contains(" - "), "{}", p.source);
        }
    }
}
