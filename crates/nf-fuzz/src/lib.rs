//! nf-fuzz — seeded fuzzing and fault-injection harness for the NFactor
//! pipeline.
//!
//! The paper's pipeline consumes *source code* and *packets*, both of
//! which arrive from outside the trust boundary; this crate drives the
//! whole stack with four seeded input diets and two oracles:
//!
//! | diet (case `i % 4`)           | oracle(s)                         |
//! |-------------------------------|-----------------------------------|
//! | grammar-generated NFL program | crash + differential              |
//! | byte-mutated NFL text         | crash (parse / lint / synthesize) |
//! | byte-mutated wire packet      | crash (decode / re-encode)        |
//! | pure random bytes             | crash (both surfaces)             |
//!
//! Everything is deterministic in the seed — same seed, same cases, same
//! verdicts — because synthesis runs under a caps-only
//! [`Budget`](nf_support::budget::Budget) with no wall-clock deadline.
//! Failures are shrunk by the [`minimize`] delta-debugger before being
//! reported. Zero external dependencies: randomness and checking come
//! from `nf-support`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grammar;
pub mod minimize;
pub mod mutate;
pub mod oracle;

pub use grammar::{gen_program, GenProgram, GrammarConfig};
pub use minimize::{minimize_text, minimize_wire};
pub use mutate::{mutate_text, mutate_wire, random_bytes};
pub use oracle::{check_differential, check_source, check_wire, fuzz_pipeline, Stage, Verdict};

use nf_packet::PacketGen;
use nf_support::rng::{splitmix64, Rng};
use nf_trace::Tracer;
use std::fmt;

/// What kind of input a fuzz case fed the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseKind {
    /// A well-formed grammar-generated NF program.
    Grammar,
    /// A grammar program's text after byte mutation.
    TextMutation,
    /// A valid packet's wire bytes after byte mutation.
    WireMutation,
    /// Uniform random bytes fed to both surfaces.
    RandomBytes,
}

impl fmt::Display for CaseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CaseKind::Grammar => "grammar",
            CaseKind::TextMutation => "text-mutation",
            CaseKind::WireMutation => "wire-mutation",
            CaseKind::RandomBytes => "random-bytes",
        };
        write!(f, "{s}")
    }
}

/// One failing case, with the input that provoked it.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Index of the case within the run.
    pub case: usize,
    /// Input diet that produced it.
    pub kind: CaseKind,
    /// The failing verdict ([`Verdict::Panic`] or [`Verdict::Mismatch`]).
    pub verdict: Verdict,
    /// The provoking input, rendered for a human (source text, or hex
    /// bytes for wire inputs) — minimized when minimization is enabled.
    pub input: String,
}

/// Configuration of a fuzz run.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Master seed; the entire run is a pure function of it.
    pub seed: u64,
    /// Number of cases to execute.
    pub cases: usize,
    /// Packets per differential comparison.
    pub diff_trials: usize,
    /// Shrink failing inputs with the delta-debugger before reporting.
    pub minimize: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            cases: 500,
            diff_trials: 20,
            minimize: true,
        }
    }
}

/// Aggregate result of a fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: usize,
    /// Cases that panicked somewhere in the pipeline.
    pub panics: usize,
    /// Differential mismatches between interpreter and model.
    pub mismatches: usize,
    /// Differential comparisons actually performed.
    pub diff_checked: usize,
    /// Differential comparisons skipped as incomparable (with reasons
    /// counted, not stored per-case).
    pub diff_skipped: usize,
    /// All failing cases.
    pub findings: Vec<Finding>,
}

impl FuzzReport {
    /// Did the run finish with zero panics and zero mismatches?
    pub fn clean(&self) -> bool {
        self.panics == 0 && self.mismatches == 0
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} cases: {} panics, {} differential mismatches ({} compared, {} skipped)",
            self.cases, self.panics, self.mismatches, self.diff_checked, self.diff_skipped
        );
        for f in self.findings.iter().take(8) {
            s.push_str(&format!("\n  case {} [{}]: {:?}", f.case, f.kind, f.verdict));
        }
        s
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn record(report: &mut FuzzReport, case: usize, kind: CaseKind, verdict: Verdict, input: String) {
    match &verdict {
        Verdict::Panic { .. } => report.panics += 1,
        Verdict::Mismatch { .. } => report.mismatches += 1,
        _ => return,
    }
    report.findings.push(Finding {
        case,
        kind,
        verdict,
        input,
    });
}

/// Shrink a failing source input so the report carries the smallest
/// program that still fails the same way.
fn shrink_source(src: &str, verdict: &Verdict) -> String {
    let same = |v: &Verdict| match (v, verdict) {
        (Verdict::Panic { stage: a, .. }, Verdict::Panic { stage: b, .. }) => a == b,
        (Verdict::Mismatch { .. }, Verdict::Mismatch { .. }) => true,
        _ => false,
    };
    minimize_text(src, |cand| same(&check_source("min", cand)))
}

fn shrink_wire(bytes: &[u8], verdict: &Verdict) -> Vec<u8> {
    minimize_wire(bytes, |cand| {
        matches!(
            (&check_wire(cand), verdict),
            (Verdict::Panic { .. }, Verdict::Panic { .. })
        )
    })
}

/// Execute a fuzz run. Deterministic: the report (cases, verdicts,
/// findings) is a pure function of `cfg`.
pub fn run(cfg: &FuzzConfig) -> FuzzReport {
    run_traced(cfg, &Tracer::disabled())
}

/// [`run`] with observability: each case's wall-clock latency lands in
/// the `fuzz.case.ns` histogram and the oracle verdicts are summarised
/// as `fuzz.*` counters. The verdicts themselves stay a pure function
/// of `cfg` — only the timings vary run to run.
pub fn run_traced(cfg: &FuzzConfig, tracer: &Tracer) -> FuzzReport {
    let mut report = FuzzReport::default();
    for case in 0..cfg.cases {
        let case_start = tracer.is_enabled().then(|| tracer.now());
        // Every case owns an independent generator derived from
        // (seed, case), so a single case can be replayed in isolation.
        let mut st = cfg.seed ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15);
        let case_seed = splitmix64(&mut st);
        let mut rng = Rng::new(case_seed);
        match case % 4 {
            0 => {
                let prog = gen_program(&mut rng, GrammarConfig::default());
                let name = format!("fuzz-{case}");
                let mut verdict = check_source(&name, &prog.source);
                if !verdict.is_failure() {
                    verdict = check_differential(&name, &prog.source, case_seed, cfg.diff_trials);
                    match &verdict {
                        Verdict::Skipped(_) => report.diff_skipped += 1,
                        Verdict::Panic { .. } => {}
                        _ => report.diff_checked += 1,
                    }
                }
                if verdict.is_failure() {
                    let input = if cfg.minimize {
                        shrink_source(&prog.source, &verdict)
                    } else {
                        prog.source.clone()
                    };
                    record(&mut report, case, CaseKind::Grammar, verdict, input);
                }
            }
            1 => {
                let prog = gen_program(&mut rng, GrammarConfig::default());
                let mutated = mutate_text(&mut rng, &prog.source);
                let verdict = check_source("fuzz-mut", &mutated);
                if verdict.is_failure() {
                    let input = if cfg.minimize {
                        shrink_source(&mutated, &verdict)
                    } else {
                        mutated
                    };
                    record(&mut report, case, CaseKind::TextMutation, verdict, input);
                }
            }
            2 => {
                let pkt = PacketGen::new(case_seed).next_packet();
                let mutated = mutate_wire(&mut rng, &pkt.to_wire());
                let verdict = check_wire(&mutated);
                if verdict.is_failure() {
                    let input = if cfg.minimize {
                        hex(&shrink_wire(&mutated, &verdict))
                    } else {
                        hex(&mutated)
                    };
                    record(&mut report, case, CaseKind::WireMutation, verdict, input);
                }
            }
            _ => {
                let text_len = rng.gen_index(256);
                let bytes = random_bytes(&mut rng, text_len);
                let text = String::from_utf8_lossy(&bytes).into_owned();
                let verdict = check_source("fuzz-rand", &text);
                if verdict.is_failure() {
                    record(&mut report, case, CaseKind::RandomBytes, verdict, text);
                }
                let wire_len = rng.gen_index(128);
                let wire = random_bytes(&mut rng, wire_len);
                let verdict = check_wire(&wire);
                if verdict.is_failure() {
                    record(&mut report, case, CaseKind::RandomBytes, verdict, hex(&wire));
                }
            }
        }
        report.cases += 1;
        if let Some(start) = case_start {
            let ns = tracer.now().saturating_duration_since(start).as_nanos();
            tracer.observe_ns("fuzz.case.ns", u64::try_from(ns).unwrap_or(u64::MAX));
        }
    }
    if tracer.is_enabled() {
        tracer.count("fuzz.cases", report.cases as u64);
        tracer.count("fuzz.verdict.panic", report.panics as u64);
        tracer.count("fuzz.verdict.mismatch", report.mismatches as u64);
        tracer.count("fuzz.diff.checked", report.diff_checked as u64);
        tracer.count("fuzz.diff.skipped", report.diff_skipped as u64);
        tracer.count("fuzz.findings", report.findings.len() as u64);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_is_clean() {
        let report = run(&FuzzConfig {
            seed: 0,
            cases: 60,
            diff_trials: 10,
            minimize: false,
        });
        assert!(report.clean(), "{}", report.summary());
        assert_eq!(report.cases, 60);
        // The grammar diet must actually exercise the differential oracle.
        assert!(report.diff_checked > 0, "{}", report.summary());
    }

    #[test]
    fn runs_are_seed_deterministic() {
        let cfg = FuzzConfig {
            seed: 1234,
            cases: 40,
            diff_trials: 8,
            minimize: false,
        };
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.panics, b.panics);
        assert_eq!(a.mismatches, b.mismatches);
        assert_eq!(a.diff_checked, b.diff_checked);
        assert_eq!(a.diff_skipped, b.diff_skipped);
        assert_eq!(a.findings.len(), b.findings.len());
    }

    #[test]
    fn traced_run_records_latency_histogram_and_verdict_counters() {
        let tracer = Tracer::enabled();
        let cfg = FuzzConfig {
            seed: 0,
            cases: 12,
            diff_trials: 4,
            minimize: false,
        };
        let report = run_traced(&cfg, &tracer);
        let metrics = tracer.metrics();
        assert_eq!(metrics.counter("fuzz.cases"), Some(12));
        assert_eq!(metrics.counter("fuzz.verdict.panic"), Some(report.panics as u64));
        assert_eq!(metrics.counter("fuzz.findings"), Some(report.findings.len() as u64));
        let hist = metrics.histograms.get("fuzz.case.ns").unwrap();
        assert_eq!(hist.count, 12);
        // Verdicts must be unaffected by tracing.
        let untraced = run(&cfg);
        assert_eq!(untraced.panics, report.panics);
        assert_eq!(untraced.mismatches, report.mismatches);
    }

    #[test]
    fn different_seeds_generate_different_cases() {
        let mut r1 = Rng::new(1);
        let mut r2 = Rng::new(2);
        let p1 = gen_program(&mut r1, GrammarConfig::default());
        let p2 = gen_program(&mut r2, GrammarConfig::default());
        assert_ne!(p1.source, p2.source);
    }
}
