//! Greedy delta-debugging minimizers for failing fuzz cases.
//!
//! Classic ddmin shape: try removing progressively smaller chunks of the
//! input, keeping any removal under which the failure still reproduces.
//! The predicate decides "still failing"; the minimizers are pure
//! functions of it, so they work for any oracle. Iteration counts are
//! bounded so a pathological predicate cannot loop forever.

/// Minimize a list of items under `still_fails`. Returns the shortest
/// failing subsequence found.
fn ddmin<T: Clone>(items: Vec<T>, still_fails: &mut dyn FnMut(&[T]) -> bool) -> Vec<T> {
    let mut cur = items;
    let mut chunk = (cur.len() / 2).max(1);
    let mut rounds = 0usize;
    while chunk >= 1 && rounds < 1000 {
        let mut removed_any = false;
        let mut start = 0;
        while start < cur.len() {
            rounds += 1;
            if rounds >= 1000 {
                break;
            }
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if !candidate.is_empty() && still_fails(&candidate) {
                cur = candidate;
                removed_any = true;
                // Same start position now holds the next chunk.
            } else {
                start = end;
            }
        }
        if !removed_any {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
    }
    cur
}

/// Minimize failing NFL source line-wise: the smallest subset of lines
/// on which `still_fails` still returns true.
pub fn minimize_text(src: &str, mut still_fails: impl FnMut(&str) -> bool) -> String {
    let lines: Vec<String> = src.lines().map(str::to_string).collect();
    if lines.is_empty() {
        return src.to_string();
    }
    let kept = ddmin(lines, &mut |cand: &[String]| {
        still_fails(&cand.join("\n"))
    });
    kept.join("\n")
}

/// Minimize failing wire bytes: the smallest subsequence of bytes on
/// which `still_fails` still returns true.
pub fn minimize_wire(bytes: &[u8], mut still_fails: impl FnMut(&[u8]) -> bool) -> Vec<u8> {
    if bytes.is_empty() {
        return Vec::new();
    }
    ddmin(bytes.to_vec(), &mut |cand: &[u8]| still_fails(cand))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_minimizer_isolates_the_offending_line() {
        let src = "alpha\nbeta\nTRIGGER\ngamma\ndelta\nepsilon";
        let out = minimize_text(src, |s| s.contains("TRIGGER"));
        assert_eq!(out, "TRIGGER");
    }

    #[test]
    fn wire_minimizer_isolates_the_offending_byte() {
        let bytes: Vec<u8> = (0..64).collect();
        let out = minimize_wire(&bytes, |b| b.contains(&42));
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn minimizer_preserves_conjunction_of_requirements() {
        // Failure needs both markers — ddmin must keep both.
        let src = "x\nNEED_A\ny\nz\nNEED_B\nw";
        let out = minimize_text(src, |s| s.contains("NEED_A") && s.contains("NEED_B"));
        assert_eq!(out, "NEED_A\nNEED_B");
    }

    #[test]
    fn non_reproducing_input_is_returned_whole() {
        let src = "a\nb\nc";
        // Predicate that never fails once anything is removed.
        let out = minimize_text(src, |s| s == src);
        assert_eq!(out, src);
    }
}
