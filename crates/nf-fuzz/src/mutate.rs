//! Byte-level mutators for NFL source text and wire-format packets.
//!
//! Mutations are deliberately dumb — flip, insert, delete, duplicate,
//! splice-in of syntax characters — because the oracles only demand the
//! *absence of panics* on mutated input. Smarter, grammar-aware inputs
//! come from [`crate::grammar`] instead.

use nf_support::rng::Rng;

/// Characters that stress an NFL parser: delimiters, operators, and the
/// keywords' first letters.
const SYNTAX_BYTES: &[u8] = b"{}();=<>!&|.,:#\"[]+-*/% \n\tfnconfigstatewhile";

fn mutate_once(rng: &mut Rng, buf: &mut Vec<u8>, pool: &[u8]) {
    if buf.is_empty() {
        buf.push(pool[rng.gen_index(pool.len())]);
        return;
    }
    match rng.gen_index(5) {
        // Flip a random byte.
        0 => {
            let i = rng.gen_index(buf.len());
            buf[i] ^= rng.gen_u8() | 1;
        }
        // Overwrite with a syntax byte.
        1 => {
            let i = rng.gen_index(buf.len());
            buf[i] = pool[rng.gen_index(pool.len())];
        }
        // Insert a syntax byte.
        2 => {
            let i = rng.gen_index(buf.len() + 1);
            buf.insert(i, pool[rng.gen_index(pool.len())]);
        }
        // Delete a chunk.
        3 => {
            let start = rng.gen_index(buf.len());
            let len = 1 + rng.gen_index(8.min(buf.len() - start));
            buf.drain(start..start + len);
        }
        // Duplicate a chunk.
        _ => {
            let start = rng.gen_index(buf.len());
            let len = 1 + rng.gen_index(16.min(buf.len() - start));
            let chunk: Vec<u8> = buf[start..start + len].to_vec();
            let at = rng.gen_index(buf.len() + 1);
            for (k, b) in chunk.into_iter().enumerate() {
                buf.insert(at + k, b);
            }
        }
    }
}

/// Mutate NFL source text: 1–8 random byte edits biased toward syntax
/// characters. The result may be arbitrarily malformed (including invalid
/// UTF-8, which is lossily re-decoded).
pub fn mutate_text(rng: &mut Rng, src: &str) -> String {
    let mut buf = src.as_bytes().to_vec();
    for _ in 0..1 + rng.gen_index(8) {
        mutate_once(rng, &mut buf, SYNTAX_BYTES);
    }
    String::from_utf8_lossy(&buf).into_owned()
}

/// Mutate wire-format packet bytes: 1–8 random byte edits.
pub fn mutate_wire(rng: &mut Rng, wire: &[u8]) -> Vec<u8> {
    let mut buf = wire.to_vec();
    let pool: Vec<u8> = (0..=255).collect();
    for _ in 0..1 + rng.gen_index(8) {
        mutate_once(rng, &mut buf, &pool);
    }
    buf
}

/// Pure random bytes (the harshest diet): `len` bytes drawn uniformly.
pub fn random_bytes(rng: &mut Rng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.gen_u8()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutations_are_deterministic() {
        let src = "fn main() { let x = 1; }";
        let a = mutate_text(&mut Rng::new(5), src);
        let b = mutate_text(&mut Rng::new(5), src);
        assert_eq!(a, b);
    }

    #[test]
    fn mutation_changes_input_usually() {
        let src = "config LB_PORT = 80;\nfn main() { sniff(cb); }";
        let mut rng = Rng::new(1);
        let changed = (0..50)
            .filter(|_| mutate_text(&mut rng, src) != src)
            .count();
        assert!(changed > 40, "only {changed}/50 mutations changed the text");
    }

    #[test]
    fn wire_mutation_handles_empty_and_tiny_buffers() {
        let mut rng = Rng::new(9);
        for n in 0..4 {
            let buf = vec![0u8; n];
            let m = mutate_wire(&mut rng, &buf);
            // No panic, and something comes back.
            assert!(m.len() + 8 >= buf.len());
        }
    }
}
