//! The two fuzzing oracles.
//!
//! * **Crash oracle** — the library pipeline must never panic on any
//!   input: `parse_all` / `lint_program` / `synthesize` on arbitrary
//!   text, `Packet::from_wire` on arbitrary bytes. Errors are fine;
//!   unwinding is a bug.
//! * **Differential oracle** — for grammar-generated (well-formed) NFs
//!   whose exploration completed, the synthesized model and the concrete
//!   interpreter must agree packet-for-packet on a seeded stream. Cases
//!   the model legitimately cannot mirror (truncated exploration,
//!   interpreter runtime errors) are reported as skipped, not failed.

use nf_support::budget::Budget;
use nfactor_core::accuracy::differential_test;
use nfactor_core::Pipeline;
use nfl_symex::PathLimits;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Pipeline stage a verdict refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// `nfl_lang::parse_all`.
    Parse,
    /// `nfl_lint::lint_program`.
    Lint,
    /// `nfactor_core::synthesize`.
    Synthesize,
    /// `nf_packet::Packet::from_wire`.
    WireDecode,
    /// Interpreter-vs-model agreement.
    Differential,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Stage::Parse => "parse",
            Stage::Lint => "lint",
            Stage::Synthesize => "synthesize",
            Stage::WireDecode => "wire-decode",
            Stage::Differential => "differential",
        };
        write!(f, "{s}")
    }
}

/// Outcome of running the oracles on one input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// No panic, and (where applicable) model and program agreed.
    Pass,
    /// The input was not differential-comparable; the reason says why.
    Skipped(String),
    /// A stage unwound — the bug class this harness exists to find.
    Panic {
        /// Stage that panicked.
        stage: Stage,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// Model and interpreter disagreed on a packet.
    Mismatch {
        /// Human-readable description of the first disagreement.
        detail: String,
    },
}

impl Verdict {
    /// Is this verdict a failure (panic or mismatch)?
    pub fn is_failure(&self) -> bool {
        matches!(self, Verdict::Panic { .. } | Verdict::Mismatch { .. })
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn guarded<T>(stage: Stage, f: impl FnOnce() -> T) -> Result<T, Verdict> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| Verdict::Panic {
        stage,
        message: panic_message(p),
    })
}

/// Path limits used for every oracle synthesis.
fn fuzz_limits() -> PathLimits {
    PathLimits {
        max_paths: 128,
        max_steps: 20_000,
        ..PathLimits::default()
    }
}

/// Pipeline used for every oracle synthesis: deterministic caps only.
/// A wall-clock deadline would make verdicts depend on machine speed and
/// break the same-seed-same-report guarantee, so the budget here is
/// paths/steps/solver-calls exclusively.
pub fn fuzz_pipeline(name: &str) -> Result<Pipeline, nfactor_core::Error> {
    Pipeline::builder()
        .name(name)
        .limits(fuzz_limits())
        .budget(Budget::unlimited().with_max_solver_calls(10_000))
        .build()
}

/// Crash oracle over NFL source text: parse, and when that succeeds,
/// lint and synthesize. Returns [`Verdict::Pass`] for clean errors.
pub fn check_source(name: &str, src: &str) -> Verdict {
    let parsed = match guarded(Stage::Parse, || nfl_lang::parse_all(src)) {
        Ok(r) => r,
        Err(v) => return v,
    };
    let Ok(program) = parsed else {
        return Verdict::Pass; // clean parse errors are the desired outcome
    };
    if let Err(v) = guarded(Stage::Lint, || nfl_lint::lint_program(name, &program)) {
        return v;
    }
    match guarded(Stage::Synthesize, || {
        fuzz_pipeline(name).and_then(|p| p.synthesize(src))
    }) {
        Ok(_) => Verdict::Pass,
        Err(v) => v,
    }
}

/// Crash oracle over wire bytes: decoding must reject junk with an error,
/// never a panic. A successful decode is additionally re-encoded, since
/// `to_wire` on a decoded packet is an input-facing path too.
pub fn check_wire(bytes: &[u8]) -> Verdict {
    match guarded(Stage::WireDecode, || {
        if let Ok(pkt) = nf_packet::Packet::from_wire(bytes) {
            let _ = pkt.to_wire();
        }
    }) {
        Ok(()) => Verdict::Pass,
        Err(v) => v,
    }
}

/// Differential oracle: synthesize `src`, then drive the concrete
/// interpreter and the model evaluator with the same `trials`-packet
/// seeded stream and demand identical outputs.
pub fn check_differential(name: &str, src: &str, seed: u64, trials: usize) -> Verdict {
    let syn = match guarded(Stage::Synthesize, || {
        fuzz_pipeline(name).and_then(|p| p.synthesize(src))
    }) {
        Ok(Ok(syn)) => syn,
        Ok(Err(e)) => return Verdict::Skipped(format!("synthesis error: {e}")),
        Err(v) => return v,
    };
    if let Some(reason) = syn.model.completeness.reason() {
        return Verdict::Skipped(format!("model truncated: {reason}"));
    }
    if !syn.exploration.exhausted {
        return Verdict::Skipped("exploration not exhausted".to_string());
    }
    match guarded(Stage::Differential, || {
        differential_test(&syn, seed, trials)
    }) {
        Err(v) => v,
        // Interpreter runtime errors (e.g. arithmetic overflow) make the
        // streams incomparable from that packet on — skip, don't fail.
        Ok(Err(e)) => Verdict::Skipped(format!("incomparable: {e}")),
        Ok(Ok(report)) if report.perfect() => Verdict::Pass,
        Ok(Ok(report)) => {
            let (trial, prog, model) = &report.mismatches[0];
            Verdict::Mismatch {
                detail: format!(
                    "trial {trial}: program {:?} vs model {:?} ({} of {} agreed)",
                    prog.as_ref().map(|p| p.to_string()),
                    model.as_ref().map(|p| p.to_string()),
                    report.agreements,
                    report.trials
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_passes_all_oracles() {
        let src = r#"
            state hits = 0;
            fn cb(pkt: packet) {
                if pkt.ip.ttl > 1 { hits = hits + 1; send(pkt); }
            }
            fn main() { sniff(cb); }
        "#;
        assert_eq!(check_source("t", src), Verdict::Pass);
        assert_eq!(check_differential("t", src, 3, 50), Verdict::Pass);
    }

    #[test]
    fn malformed_source_is_a_clean_pass() {
        // Garbage must produce parse errors, not panics.
        assert_eq!(check_source("t", "fn {{{{"), Verdict::Pass);
        assert_eq!(check_source("t", ""), Verdict::Pass);
        assert_eq!(check_source("t", "\u{0}\u{1}\u{2}"), Verdict::Pass);
    }

    #[test]
    fn junk_wire_bytes_pass_the_crash_oracle() {
        assert_eq!(check_wire(&[]), Verdict::Pass);
        assert_eq!(check_wire(&[0xff; 13]), Verdict::Pass);
        assert_eq!(check_wire(&[0x45; 64]), Verdict::Pass);
    }

    #[test]
    fn truncated_synthesis_skips_differential() {
        let src = r#"
            config NAT_PORT = 80;
            state nat = map();
            state next_port = 10000;
            fn cb(pkt: packet) {
                if pkt.tcp.dport == NAT_PORT {
                    let k = (pkt.ip.src, pkt.tcp.sport);
                    if k not in nat {
                        nat[k] = next_port;
                        next_port = next_port + 1;
                    }
                    pkt.tcp.sport = nat[k];
                    send(pkt);
                }
            }
            fn main() { sniff(cb); }
        "#;
        let syn = Pipeline::builder()
            .name("t")
            .limits(fuzz_limits())
            .budget(Budget::unlimited().with_max_solver_calls(1))
            .build()
            .unwrap()
            .synthesize(src)
            .unwrap();
        assert!(syn.model.completeness.is_truncated());
        // check_differential uses its own options, so exercise the skip
        // path through the public surface with a solver-capped variant:
        // the helper above proves the truncated path exists; the oracle
        // must classify it as Skipped rather than Mismatch.
        let v = check_differential("t", src, 1, 10);
        assert!(
            matches!(v, Verdict::Pass | Verdict::Skipped(_)),
            "{v:?}"
        );
    }
}
