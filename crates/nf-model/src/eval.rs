//! Concrete evaluation of a synthesized model.
//!
//! §5 Accuracy: *"we generate random inputs (i.e., packets) to both
//! NFactor model and the original program, and test whether they output
//! the same result."* This module is the model side of that experiment:
//! [`ModelState`] holds the concrete state (scalars + maps), and
//! [`ModelState::step`] runs one packet through the table — find the
//! entry whose flow and state matches hold, apply its rewrites, commit
//! its state transition; if nothing matches, the low-priority default
//! **drop** fires.
//!
//! Term evaluation mirrors the interpreter exactly (same euclidean `%`,
//! the same stable `hash`), so model-vs-program equivalence is
//! well-defined.

use crate::model::{Entry, FlowAction, Model};
use nf_packet::Packet;
use nfl_interp::value::{stable_hash, Value, ValueKey};
use nfl_lang::BinOp;
use nfl_symex::{MapOp, SymVal};
use std::collections::BTreeMap;
use std::fmt;

/// Errors during model evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A term could not be evaluated to a concrete value.
    Stuck(String),
    /// A field write failed (out of range).
    Field(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Stuck(m) => write!(f, "cannot evaluate term: {m}"),
            EvalError::Field(m) => write!(f, "field write failed: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Result of pushing one packet through the model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelStep {
    /// The forwarded packet, if any (`None` = dropped).
    pub output: Option<Packet>,
    /// Index of the `(table, entry)` that fired, if any.
    pub fired: Option<(usize, usize)>,
}

/// Concrete model state: configuration values, scalar states, and maps.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelState {
    /// Config values by name (without the `cfg:` prefix).
    pub configs: BTreeMap<String, Value>,
    /// Scalar state values by name (without the `st:` prefix).
    pub scalars: BTreeMap<String, Value>,
    /// Map state: map name → entries.
    pub maps: BTreeMap<String, BTreeMap<ValueKey, Value>>,
}

impl ModelState {
    /// Set a config value.
    pub fn with_config(mut self, name: &str, v: Value) -> Self {
        self.configs.insert(name.to_string(), v);
        self
    }

    /// Set a scalar state value.
    pub fn with_scalar(mut self, name: &str, v: Value) -> Self {
        self.scalars.insert(name.to_string(), v);
        self
    }

    /// Declare an (initially empty) state map.
    pub fn with_map(mut self, name: &str) -> Self {
        self.maps.entry(name.to_string()).or_default();
        self
    }

    /// Run one packet through `model`, mutating the state.
    pub fn step(&mut self, model: &Model, pkt: &Packet) -> Result<ModelStep, EvalError> {
        for (ti, table) in model.tables.iter().enumerate() {
            // Configuration condition must hold for this deployment.
            if !self.all_true(&table.config, pkt)? {
                continue;
            }
            for (ei, entry) in table.entries.iter().enumerate() {
                if self.entry_matches(entry, pkt)? {
                    let out = self.fire(entry, pkt)?;
                    return Ok(ModelStep {
                        output: out,
                        fired: Some((ti, ei)),
                    });
                }
            }
        }
        // Default action: drop (§3.2).
        Ok(ModelStep {
            output: None,
            fired: None,
        })
    }

    fn entry_matches(&self, entry: &Entry, pkt: &Packet) -> Result<bool, EvalError> {
        Ok(self.all_true(&entry.flow_match, pkt)? && self.all_true(&entry.state_match, pkt)?)
    }

    fn all_true(&self, lits: &[SymVal], pkt: &Packet) -> Result<bool, EvalError> {
        for lit in lits {
            match self.eval(lit, pkt)? {
                Value::Bool(true) => {}
                Value::Bool(false) => return Ok(false),
                other => {
                    return Err(EvalError::Stuck(format!(
                        "match literal evaluated to {other}"
                    )))
                }
            }
        }
        Ok(true)
    }

    fn fire(&mut self, entry: &Entry, pkt: &Packet) -> Result<Option<Packet>, EvalError> {
        // Evaluate everything against the PRE state, then commit.
        let output = match &entry.flow_action {
            FlowAction::Drop => None,
            FlowAction::Forward { rewrites } => {
                let mut out = pkt.clone();
                for (field, term) in rewrites {
                    let v = self.eval(term, pkt)?;
                    let iv = v.as_int().ok_or_else(|| {
                        EvalError::Stuck(format!("rewrite of {field} to non-int {v}"))
                    })?;
                    let uv = u64::try_from(iv)
                        .map_err(|_| EvalError::Field(format!("negative value {iv}")))?;
                    out.set(*field, uv)
                        .map_err(|e| EvalError::Field(e.to_string()))?;
                }
                Some(out)
            }
        };
        let mut new_scalars = Vec::new();
        for (name, term) in &entry.state_action.updates {
            new_scalars.push((name.clone(), self.eval(term, pkt)?));
        }
        let mut map_commits: Vec<(String, ValueKey, Option<Value>)> = Vec::new();
        for op in &entry.state_action.map_ops {
            match op {
                MapOp::Insert { map, key, value } => {
                    let k = self
                        .eval(key, pkt)?
                        .as_key()
                        .ok_or_else(|| EvalError::Stuck("unkeyable map key".into()))?;
                    let v = self.eval(value, pkt)?;
                    map_commits.push((map.clone(), k, Some(v)));
                }
                MapOp::Remove { map, key } => {
                    let k = self
                        .eval(key, pkt)?
                        .as_key()
                        .ok_or_else(|| EvalError::Stuck("unkeyable map key".into()))?;
                    map_commits.push((map.clone(), k, None));
                }
            }
        }
        for (name, v) in new_scalars {
            self.scalars.insert(name, v);
        }
        for (map, k, v) in map_commits {
            let m = self.maps.entry(map).or_default();
            match v {
                Some(v) => {
                    m.insert(k, v);
                }
                None => {
                    m.remove(&k);
                }
            }
        }
        Ok(output)
    }

    /// Evaluate a symbolic term against packet + state.
    pub fn eval(&self, term: &SymVal, pkt: &Packet) -> Result<Value, EvalError> {
        match term {
            SymVal::Int(v) => Ok(Value::Int(*v)),
            SymVal::Bool(b) => Ok(Value::Bool(*b)),
            SymVal::Str(s) => Ok(Value::Str(s.clone())),
            SymVal::Var(name) => {
                if let Some(path) = name.strip_prefix("pkt.") {
                    let field = nf_packet::Field::from_path(path)
                        .ok_or_else(|| EvalError::Stuck(format!("unknown field {path}")))?;
                    let raw = pkt
                        .get(field)
                        .map_err(|e| EvalError::Stuck(e.to_string()))?;
                    Ok(Value::Int(raw as i64))
                } else if let Some(cfg) = name.strip_prefix("cfg:") {
                    self.configs
                        .get(cfg)
                        .cloned()
                        .ok_or_else(|| EvalError::Stuck(format!("config `{cfg}` unset")))
                } else if let Some(stv) = name.strip_prefix("st:") {
                    self.scalars
                        .get(stv)
                        .cloned()
                        .ok_or_else(|| EvalError::Stuck(format!("state `{stv}` unset")))
                } else {
                    Err(EvalError::Stuck(format!("free variable `{name}`")))
                }
            }
            SymVal::Tuple(es) => {
                let mut items = Vec::new();
                for e in es {
                    let v = self.eval(e, pkt)?;
                    items.push(
                        v.as_int()
                            .ok_or_else(|| EvalError::Stuck("tuple of non-int".into()))?,
                    );
                }
                Ok(Value::Tuple(items))
            }
            SymVal::Array(es) => {
                let mut items = Vec::new();
                for e in es {
                    items.push(self.eval(e, pkt)?);
                }
                Ok(Value::Array(items))
            }
            SymVal::Bin(op, a, b) => {
                // Short-circuit logic mirrors the interpreter: the right
                // side of `proto == 6 && tcp.flags & 2 != 0` must not be
                // evaluated on a UDP packet.
                if matches!(op, BinOp::And | BinOp::Or) {
                    let va = self
                        .eval(a, pkt)?
                        .as_bool()
                        .ok_or_else(|| EvalError::Stuck("logic on non-bool".into()))?;
                    return match (op, va) {
                        (BinOp::And, false) => Ok(Value::Bool(false)),
                        (BinOp::Or, true) => Ok(Value::Bool(true)),
                        _ => {
                            let vb = self.eval(b, pkt)?.as_bool().ok_or_else(|| {
                                EvalError::Stuck("logic on non-bool".into())
                            })?;
                            Ok(Value::Bool(vb))
                        }
                    };
                }
                let va = self.eval(a, pkt)?;
                let vb = self.eval(b, pkt)?;
                eval_bin(*op, &va, &vb)
            }
            SymVal::Not(a) => match self.eval(a, pkt)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                other => Err(EvalError::Stuck(format!("not of {other}"))),
            },
            SymVal::Neg(a) => match self.eval(a, pkt)? {
                Value::Int(v) => Ok(Value::Int(-v)),
                other => Err(EvalError::Stuck(format!("neg of {other}"))),
            },
            SymVal::Hash(a) => {
                let v = self.eval(a, pkt)?;
                Ok(Value::Int(stable_hash(&v)))
            }
            SymVal::Min(a, b) | SymVal::Max(a, b) => {
                let is_min = matches!(term, SymVal::Min(..));
                let x = self
                    .eval(a, pkt)?
                    .as_int()
                    .ok_or_else(|| EvalError::Stuck("min/max of non-int".into()))?;
                let y = self
                    .eval(b, pkt)?
                    .as_int()
                    .ok_or_else(|| EvalError::Stuck("min/max of non-int".into()))?;
                Ok(Value::Int(if is_min { x.min(y) } else { x.max(y) }))
            }
            SymVal::MapGet(map, key) => {
                let k = self
                    .eval(key, pkt)?
                    .as_key()
                    .ok_or_else(|| EvalError::Stuck("unkeyable key".into()))?;
                self.maps
                    .get(map)
                    .and_then(|m| m.get(&k))
                    .cloned()
                    .ok_or_else(|| EvalError::Stuck(format!("{map}[{k}] missing")))
            }
            SymVal::MapContains(map, key) => {
                let k = self
                    .eval(key, pkt)?
                    .as_key()
                    .ok_or_else(|| EvalError::Stuck("unkeyable key".into()))?;
                Ok(Value::Bool(
                    self.maps.get(map).map(|m| m.contains_key(&k)).unwrap_or(false),
                ))
            }
            SymVal::ArrayGet(base, idx) => {
                let b = self.eval(base, pkt)?;
                let i = self
                    .eval(idx, pkt)?
                    .as_int()
                    .ok_or_else(|| EvalError::Stuck("array index".into()))?;
                match b {
                    Value::Array(items) => {
                        let ix = usize::try_from(i)
                            .map_err(|_| EvalError::Stuck("negative index".into()))?;
                        items
                            .get(ix)
                            .cloned()
                            .ok_or_else(|| EvalError::Stuck("array OOB".into()))
                    }
                    other => Err(EvalError::Stuck(format!("indexing {other}"))),
                }
            }
            SymVal::Proj(base, i) => {
                let b = self.eval(base, pkt)?;
                match b {
                    Value::Tuple(items) => items
                        .get(*i)
                        .map(|v| Value::Int(*v))
                        .ok_or_else(|| EvalError::Stuck("tuple OOB".into())),
                    other => Err(EvalError::Stuck(format!("projecting {other}"))),
                }
            }
        }
    }
}

/// Apply a binary operator to two concrete values, with the exact
/// semantics the model evaluator (and the interpreter it mirrors) uses:
/// euclidean `%`, wrapping integer arithmetic, structural `==`. Public
/// so alternative execution backends (`nf-compile`) share one
/// definition of the arithmetic instead of re-implementing it.
pub fn eval_bin(op: BinOp, a: &Value, b: &Value) -> Result<Value, EvalError> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div | Mod | BitAnd | BitOr => {
            let (Some(x), Some(y)) = (a.as_int(), b.as_int()) else {
                return Err(EvalError::Stuck(format!("arith on {a}, {b}")));
            };
            let r = match op {
                Add => x.wrapping_add(y),
                Sub => x.wrapping_sub(y),
                Mul => x.wrapping_mul(y),
                Div => {
                    if y == 0 {
                        return Err(EvalError::Stuck("div by zero".into()));
                    }
                    x.wrapping_div(y)
                }
                Mod => {
                    if y == 0 {
                        return Err(EvalError::Stuck("mod by zero".into()));
                    }
                    x.rem_euclid(y)
                }
                BitAnd => x & y,
                BitOr => x | y,
                _ => unreachable!(),
            };
            Ok(Value::Int(r))
        }
        Eq => Ok(Value::Bool(a == b)),
        Ne => Ok(Value::Bool(a != b)),
        Lt | Le | Gt | Ge => {
            let (Some(x), Some(y)) = (a.as_int(), b.as_int()) else {
                return Err(EvalError::Stuck(format!("ordering {a}, {b}")));
            };
            Ok(Value::Bool(match op {
                Lt => x < y,
                Le => x <= y,
                Gt => x > y,
                Ge => x >= y,
                _ => unreachable!(),
            }))
        }
        And | Or => {
            let (Some(x), Some(y)) = (a.as_bool(), b.as_bool()) else {
                return Err(EvalError::Stuck("logic on non-bools".into()));
            };
            Ok(Value::Bool(if op == And { x && y } else { x || y }))
        }
        In | NotIn => Err(EvalError::Stuck(
            "raw in/notin should be MapContains".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_packet::wire::{parse_ipv4, TcpFlags};
    use nfl_analysis::normalize::normalize;
    use nfl_lang::parse_and_check;
    use nfl_symex::SymExec;

    fn model_of(src: &str) -> Model {
        let p = parse_and_check(src).unwrap();
        let pl = normalize(&p).unwrap();
        let stats = SymExec::new(&pl).explore().unwrap();
        Model::from_paths("t", &stats.paths)
    }

    fn tcp(sport: u16, dport: u16) -> Packet {
        Packet::tcp(
            parse_ipv4("10.0.0.1").unwrap(),
            sport,
            parse_ipv4("3.3.3.3").unwrap(),
            dport,
            TcpFlags::syn(),
        )
    }

    #[test]
    fn port_filter_model_behaves() {
        let m = model_of(
            r#"
            config PORT = 80;
            fn cb(pkt: packet) {
                if pkt.tcp.dport == PORT { send(pkt); }
            }
            fn main() { sniff(cb); }
        "#,
        );
        let mut st = ModelState::default().with_config("PORT", Value::Int(80));
        let hit = st.step(&m, &tcp(1, 80)).unwrap();
        assert!(hit.output.is_some());
        let miss = st.step(&m, &tcp(1, 81)).unwrap();
        assert!(miss.output.is_none());
    }

    #[test]
    fn nat_model_installs_and_reuses_mapping() {
        let m = model_of(
            r#"
            state nat = map();
            state next = 10000;
            fn cb(pkt: packet) {
                let k = (pkt.ip.src, pkt.tcp.sport);
                if k not in nat {
                    nat[k] = next;
                    next = next + 1;
                }
                pkt.tcp.sport = nat[k];
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        let mut st = ModelState::default()
            .with_scalar("next", Value::Int(10000))
            .with_map("nat");
        let r1 = st.step(&m, &tcp(5555, 80)).unwrap();
        assert_eq!(
            r1.output.unwrap().get(nf_packet::Field::TcpSport).unwrap(),
            10000
        );
        assert_eq!(st.scalars["next"], Value::Int(10001));
        // Same flow hits the existing-connection entry, same rewrite.
        let r2 = st.step(&m, &tcp(5555, 80)).unwrap();
        assert_eq!(
            r2.output.unwrap().get(nf_packet::Field::TcpSport).unwrap(),
            10000
        );
        assert_eq!(st.scalars["next"], Value::Int(10001), "no double install");
        assert_ne!(r1.fired, r2.fired, "different entries fired");
        // New flow gets the next port.
        let r3 = st.step(&m, &tcp(7777, 80)).unwrap();
        assert_eq!(
            r3.output.unwrap().get(nf_packet::Field::TcpSport).unwrap(),
            10001
        );
    }

    #[test]
    fn default_drop_when_nothing_matches() {
        let m = model_of(
            r#"
            config PORT = 80;
            fn cb(pkt: packet) {
                if pkt.tcp.dport == PORT { send(pkt); }
            }
            fn main() { sniff(cb); }
        "#,
        );
        // Deliberately leave the config unset for the drop entry's
        // evaluation: with PORT=99 nothing forwards.
        let mut st = ModelState::default().with_config("PORT", Value::Int(99));
        let r = st.step(&m, &tcp(1, 80)).unwrap();
        assert!(r.output.is_none());
    }

    #[test]
    fn hash_mode_matches_interpreter_hash() {
        let m = model_of(
            r#"
            config servers = [(1.1.1.1, 80), (2.2.2.2, 80)];
            fn cb(pkt: packet) {
                let server = servers[hash(pkt.ip.src) % len(servers)];
                pkt.ip.dst = server[0];
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        let mut st = ModelState::default();
        let p = tcp(1, 80);
        let out = st.step(&m, &p).unwrap().output.unwrap();
        let h = stable_hash(&Value::Int(i64::from(p.ip_src)));
        let expected = if h % 2 == 0 { 0x01010101u64 } else { 0x02020202 };
        assert_eq!(out.get(nf_packet::Field::IpDst).unwrap(), expected);
    }

    #[test]
    fn ttl_decrement_arithmetic() {
        let m = model_of(
            r#"
            fn cb(pkt: packet) {
                pkt.ip.ttl = pkt.ip.ttl - 1;
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        let mut st = ModelState::default();
        let mut p = tcp(1, 80);
        p.ip_ttl = 64;
        let out = st.step(&m, &p).unwrap().output.unwrap();
        assert_eq!(out.ip_ttl, 63);
    }

    #[test]
    fn stuck_on_missing_config() {
        let m = model_of(
            r#"
            config PORT = 80;
            fn cb(pkt: packet) {
                if pkt.tcp.dport == PORT { send(pkt); }
            }
            fn main() { sniff(cb); }
        "#,
        );
        let mut st = ModelState::default(); // PORT unset
        assert!(st.step(&m, &tcp(1, 80)).is_err());
    }
}
