//! The finite-state-machine view of a model.
//!
//! §2.4: *"The state transition logic can be used to build a finite state
//! machine, which is proposed and used in network testing solutions
//! \[BUZZ\]."* Each distinct state-match condition becomes an FSM node;
//! each entry contributes a transition from its state-match node, guarded
//! by its flow match and performing its state action. BUZZ-style test
//! generation walks these transitions and asks the solver for packets
//! that drive the NF along them (implemented in `nf-verify`).

use crate::model::{Entry, Model};
use nfl_symex::SymVal;

/// One transition of the model FSM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Which `(table, entry)` this transition came from.
    pub source: (usize, usize),
    /// The state condition under which it fires (FSM node label).
    pub from_state: String,
    /// The packet condition that triggers it.
    pub guard: Vec<SymVal>,
    /// Human-readable description of the state action ("identity" for
    /// stateless entries).
    pub effect: String,
    /// Whether the packet is forwarded.
    pub forwards: bool,
}

/// The FSM extracted from a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelFsm {
    /// Node labels (canonical state-match strings; "⊤" for entries with
    /// no state condition).
    pub states: Vec<String>,
    /// All transitions.
    pub transitions: Vec<Transition>,
    /// Truncation reason when the source model was budget-truncated —
    /// an FSM missing transitions must say so.
    pub truncated: Option<String>,
}

fn state_label(e: &Entry) -> String {
    if e.state_match.is_empty() {
        "⊤".to_string()
    } else {
        let mut parts: Vec<String> = e.state_match.iter().map(|l| l.to_string()).collect();
        parts.sort();
        parts.join(" && ")
    }
}

fn effect_label(e: &Entry) -> String {
    if e.state_action.is_identity() {
        return "identity".to_string();
    }
    let mut parts: Vec<String> = e
        .state_action
        .updates
        .iter()
        .map(|(n, v)| format!("{n}:={v}"))
        .collect();
    parts.extend(e.state_action.map_ops.iter().map(|m| m.to_string()));
    parts.join("; ")
}

impl ModelFsm {
    /// Extract the FSM from a model.
    pub fn from_model(model: &Model) -> ModelFsm {
        let mut states: Vec<String> = Vec::new();
        let mut transitions = Vec::new();
        for (ti, table) in model.tables.iter().enumerate() {
            for (ei, e) in table.entries.iter().enumerate() {
                let label = state_label(e);
                if !states.contains(&label) {
                    states.push(label.clone());
                }
                transitions.push(Transition {
                    source: (ti, ei),
                    from_state: label,
                    guard: e.flow_match.clone(),
                    effect: effect_label(e),
                    forwards: !e.flow_action.is_drop(),
                });
            }
        }
        ModelFsm {
            states,
            transitions,
            truncated: model.completeness.reason().map(str::to_string),
        }
    }

    /// Transitions that mutate state (the interesting edges for test
    /// generation — they move the NF between abstract states).
    pub fn mutating_transitions(&self) -> impl Iterator<Item = &Transition> {
        self.transitions.iter().filter(|t| t.effect != "identity")
    }

    /// Render as Graphviz dot (for documentation and debugging).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph nf_fsm {\n  rankdir=LR;\n");
        if let Some(reason) = &self.truncated {
            out.push_str(&format!(
                "  label=\"PARTIAL MODEL — {}\";\n  labelloc=t;\n",
                escape(reason)
            ));
        }
        for (i, s) in self.states.iter().enumerate() {
            out.push_str(&format!("  s{i} [label=\"{}\"];\n", escape(s)));
        }
        for t in &self.transitions {
            let from = self
                .states
                .iter()
                .position(|s| *s == t.from_state)
                .unwrap_or(0);
            let guard: Vec<String> = t.guard.iter().map(|g| g.to_string()).collect();
            let label = format!(
                "{} / {}{}",
                guard.join(" && "),
                t.effect,
                if t.forwards { " [fwd]" } else { " [drop]" }
            );
            // Self-edge unless the effect plausibly changes the state
            // condition; without SMT-level reasoning we draw effect edges
            // back to the same node annotated with the effect.
            out.push_str(&format!(
                "  s{from} -> s{from} [label=\"{}\"];\n",
                escape(&label)
            ));
        }
        out.push_str("}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use nfl_analysis::normalize::normalize;
    use nfl_lang::parse_and_check;
    use nfl_symex::SymExec;

    fn fsm_of(src: &str) -> ModelFsm {
        let p = parse_and_check(src).unwrap();
        let pl = normalize(&p).unwrap();
        let stats = SymExec::new(&pl).explore().unwrap();
        ModelFsm::from_model(&Model::from_paths("t", &stats.paths))
    }

    const NAT: &str = r#"
        state nat = map();
        state next = 10000;
        fn cb(pkt: packet) {
            let k = (pkt.ip.src, pkt.tcp.sport);
            if k not in nat {
                nat[k] = next;
                next = next + 1;
            }
            pkt.tcp.sport = nat[k];
            send(pkt);
        }
        fn main() { sniff(cb); }
    "#;

    #[test]
    fn truncated_model_surfaces_in_dot() {
        let p = parse_and_check(NAT).unwrap();
        let pl = normalize(&p).unwrap();
        let stats = SymExec::new(&pl).explore().unwrap();
        let model = Model::from_paths("t", &stats.paths)
            .with_truncation("path budget exhausted (4 paths)");
        let fsm = ModelFsm::from_model(&model);
        assert_eq!(
            fsm.truncated.as_deref(),
            Some("path budget exhausted (4 paths)")
        );
        let dot = fsm.to_dot();
        assert!(dot.contains("PARTIAL MODEL"), "{dot}");
        // A full model's dot carries no banner.
        let full = ModelFsm::from_model(&Model::from_paths("t", &stats.paths));
        assert!(full.truncated.is_none());
        assert!(!full.to_dot().contains("PARTIAL"));
    }

    #[test]
    fn nat_fsm_has_two_states_one_mutating() {
        let fsm = fsm_of(NAT);
        // "k not in nat" and "k in nat" are the two abstract states.
        assert_eq!(fsm.states.len(), 2, "{:?}", fsm.states);
        assert_eq!(fsm.transitions.len(), 2);
        let mutating: Vec<_> = fsm.mutating_transitions().collect();
        assert_eq!(mutating.len(), 1, "only the install transition mutates");
        assert!(mutating[0].effect.contains("nat["));
        assert!(mutating[0].forwards);
    }

    #[test]
    fn stateless_nf_single_top_state() {
        let fsm = fsm_of(
            r#"
            fn cb(pkt: packet) { if pkt.ip.ttl > 1 { send(pkt); } }
            fn main() { sniff(cb); }
        "#,
        );
        assert_eq!(fsm.states, vec!["⊤".to_string()]);
        assert_eq!(fsm.mutating_transitions().count(), 0);
        // One forwarding, one dropping transition.
        assert_eq!(fsm.transitions.iter().filter(|t| t.forwards).count(), 1);
        assert_eq!(fsm.transitions.iter().filter(|t| !t.forwards).count(), 1);
    }

    #[test]
    fn dot_output_well_formed() {
        let fsm = fsm_of(NAT);
        let dot = fsm.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("->"));
        assert!(dot.ends_with("}\n"));
    }
}
