//! Hand-written JSON serialization for synthesized models.
//!
//! Replaces the former `serde` derives with explicit `ToJson`/`FromJson`
//! impls: a [`Model`] serializes to a stable, human-diffable document in
//! which symbolic terms use the tagged encoding from `nfl_symex::json`
//! and packet fields appear by their dotted path (e.g. `"ip.dst"`).

use crate::model::{Completeness, ConfigTable, Entry, FlowAction, Model, StateAction};
use nf_packet::Field;
use nf_support::json::{FromJson, JsonError, ToJson, Value};
use nfl_symex::{MapOp, SymVal};

fn str_field(v: &Value, key: &str) -> Result<String, JsonError> {
    v.field(key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| JsonError::msg(format!("field '{key}' must be a string")))
}

fn term_list(v: &Value, key: &str) -> Result<Vec<SymVal>, JsonError> {
    v.field(key)?
        .as_array()
        .ok_or_else(|| JsonError::msg(format!("field '{key}' must be an array")))?
        .iter()
        .map(SymVal::from_json)
        .collect()
}

fn terms_to_json(terms: &[SymVal]) -> Value {
    Value::Array(terms.iter().map(|t| t.to_json()).collect())
}

impl ToJson for FlowAction {
    fn to_json(&self) -> Value {
        match self {
            FlowAction::Drop => Value::Object(vec![(
                "action".to_string(),
                Value::Str("drop".to_string()),
            )]),
            FlowAction::Forward { rewrites } => Value::Object(vec![
                ("action".to_string(), Value::Str("forward".to_string())),
                (
                    "rewrites".to_string(),
                    Value::Array(
                        rewrites
                            .iter()
                            .map(|(f, t)| {
                                Value::Object(vec![
                                    ("field".to_string(), Value::Str(f.path().to_string())),
                                    ("value".to_string(), t.to_json()),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        }
    }
}

impl FromJson for FlowAction {
    fn from_json(v: &Value) -> Result<FlowAction, JsonError> {
        match str_field(v, "action")?.as_str() {
            "drop" => Ok(FlowAction::Drop),
            "forward" => {
                let raw = v
                    .field("rewrites")?
                    .as_array()
                    .ok_or_else(|| JsonError::msg("'rewrites' must be an array"))?;
                let mut rewrites = Vec::with_capacity(raw.len());
                for rw in raw {
                    let path = str_field(rw, "field")?;
                    let field = Field::from_path(&path)
                        .ok_or_else(|| JsonError::msg(format!("unknown field '{path}'")))?;
                    rewrites.push((field, SymVal::from_json(rw.field("value")?)?));
                }
                Ok(FlowAction::Forward { rewrites })
            }
            other => Err(JsonError::msg(format!("unknown flow action '{other}'"))),
        }
    }
}

impl ToJson for StateAction {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            (
                "updates".to_string(),
                Value::Array(
                    self.updates
                        .iter()
                        .map(|(name, t)| {
                            Value::Object(vec![
                                ("var".to_string(), Value::Str(name.clone())),
                                ("value".to_string(), t.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "map_ops".to_string(),
                Value::Array(self.map_ops.iter().map(|op| op.to_json()).collect()),
            ),
        ])
    }
}

impl FromJson for StateAction {
    fn from_json(v: &Value) -> Result<StateAction, JsonError> {
        let raw_updates = v
            .field("updates")?
            .as_array()
            .ok_or_else(|| JsonError::msg("'updates' must be an array"))?;
        let mut updates = Vec::with_capacity(raw_updates.len());
        for u in raw_updates {
            updates.push((str_field(u, "var")?, SymVal::from_json(u.field("value")?)?));
        }
        let map_ops = v
            .field("map_ops")?
            .as_array()
            .ok_or_else(|| JsonError::msg("'map_ops' must be an array"))?
            .iter()
            .map(MapOp::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(StateAction { updates, map_ops })
    }
}

impl ToJson for Entry {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("flow_match".to_string(), terms_to_json(&self.flow_match)),
            ("state_match".to_string(), terms_to_json(&self.state_match)),
            ("flow_action".to_string(), self.flow_action.to_json()),
            ("state_action".to_string(), self.state_action.to_json()),
            ("truncated".to_string(), Value::Bool(self.truncated)),
        ])
    }
}

impl FromJson for Entry {
    fn from_json(v: &Value) -> Result<Entry, JsonError> {
        Ok(Entry {
            flow_match: term_list(v, "flow_match")?,
            state_match: term_list(v, "state_match")?,
            flow_action: FlowAction::from_json(v.field("flow_action")?)?,
            state_action: StateAction::from_json(v.field("state_action")?)?,
            truncated: v
                .field("truncated")?
                .as_bool()
                .ok_or_else(|| JsonError::msg("'truncated' must be a boolean"))?,
        })
    }
}

impl ToJson for ConfigTable {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("config".to_string(), terms_to_json(&self.config)),
            (
                "entries".to_string(),
                Value::Array(self.entries.iter().map(|e| e.to_json()).collect()),
            ),
        ])
    }
}

impl FromJson for ConfigTable {
    fn from_json(v: &Value) -> Result<ConfigTable, JsonError> {
        Ok(ConfigTable {
            config: term_list(v, "config")?,
            entries: v
                .field("entries")?
                .as_array()
                .ok_or_else(|| JsonError::msg("'entries' must be an array"))?
                .iter()
                .map(Entry::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

impl ToJson for Model {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("nf_name".to_string(), Value::Str(self.nf_name.clone())),
            (
                "tables".to_string(),
                Value::Array(self.tables.iter().map(|t| t.to_json()).collect()),
            ),
        ];
        // The key is present iff the model is partial, so full-model
        // documents (and their goldens) are unchanged.
        if let Completeness::Truncated { reason } = &self.completeness {
            fields.push((
                "completeness".to_string(),
                Value::Object(vec![
                    ("state".to_string(), Value::Str("truncated".to_string())),
                    ("reason".to_string(), Value::Str(reason.clone())),
                ]),
            ));
        }
        Value::Object(fields)
    }
}

impl FromJson for Model {
    fn from_json(v: &Value) -> Result<Model, JsonError> {
        let completeness = match v.get("completeness") {
            None => Completeness::Full,
            Some(c) => match str_field(c, "state")?.as_str() {
                "truncated" => Completeness::Truncated {
                    reason: str_field(c, "reason")?,
                },
                other => {
                    return Err(JsonError::msg(format!(
                        "unknown completeness state '{other}'"
                    )))
                }
            },
        };
        Ok(Model {
            nf_name: str_field(v, "nf_name")?,
            tables: v
                .field("tables")?
                .as_array()
                .ok_or_else(|| JsonError::msg("'tables' must be an array"))?
                .iter()
                .map(ConfigTable::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            completeness,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfl_analysis::normalize::normalize;
    use nfl_lang::parse_and_check;
    use nfl_symex::SymExec;

    fn model_of(src: &str) -> Model {
        let p = parse_and_check(src).unwrap();
        let pl = normalize(&p).unwrap();
        let stats = SymExec::new(&pl).explore().unwrap();
        Model::from_paths("test-nf", &stats.paths)
    }

    #[test]
    fn synthesized_model_roundtrips() {
        let m = model_of(
            r#"
            config PORT = 80;
            state nat = map();
            state counter = 0;
            fn cb(pkt: packet) {
                if pkt.tcp.dport == PORT {
                    if pkt.ip.src not in nat {
                        nat[pkt.ip.src] = counter;
                        counter = counter + 1;
                    }
                    pkt.ip.dst = 1.2.3.4;
                    send(pkt);
                }
            }
            fn main() { sniff(cb); }
        "#,
        );
        let json = m.to_json().render_pretty();
        let parsed = Model::from_json(&Value::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed, m, "{json}");
    }

    #[test]
    fn drop_and_forward_actions_roundtrip() {
        for a in [
            FlowAction::Drop,
            FlowAction::Forward { rewrites: vec![] },
            FlowAction::Forward {
                rewrites: vec![(Field::TcpDport, SymVal::Int(8080))],
            },
        ] {
            let json = a.to_json().render();
            assert_eq!(FlowAction::from_json(&Value::parse(&json).unwrap()).unwrap(), a);
        }
    }

    #[test]
    fn truncated_model_roundtrips_with_reason() {
        let m = model_of(
            r#"
            state hits = 0;
            fn cb(pkt: packet) { hits = hits + 1; send(pkt); }
            fn main() { sniff(cb); }
        "#,
        )
        .with_truncation("path budget exhausted (8 paths)");
        let json = m.to_json().render_pretty();
        assert!(json.contains("truncated"), "{json}");
        assert!(json.contains("path budget exhausted"), "{json}");
        let parsed = Model::from_json(&Value::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(
            parsed.completeness.reason(),
            Some("path budget exhausted (8 paths)")
        );
    }

    #[test]
    fn full_model_json_has_no_completeness_key() {
        let m = model_of(
            r#"
            fn cb(pkt: packet) { send(pkt); }
            fn main() { sniff(cb); }
        "#,
        );
        assert!(!m.to_json().render_pretty().contains("completeness"));
    }

    #[test]
    fn unknown_field_path_is_an_error() {
        let json = r#"{"action": "forward", "rewrites": [{"field": "ip.nope", "value": {"t": "int", "v": 1}}]}"#;
        assert!(FlowAction::from_json(&Value::parse(json).unwrap()).is_err());
    }
}
