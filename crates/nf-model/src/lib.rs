//! The NFactor model — §2.3 and Figure 2a of the paper.
//!
//! An NF's forwarding behaviour is "an OpenFlow-like model with a stateful
//! data plane extension": per-configuration tables of
//! `⟨flow match, state match⟩ → ⟨flow action, state update⟩` entries, with
//! a low-priority default **drop** (§3.2 "Drop Action").
//!
//! * [`model`] — the data structure and its construction from symbolic
//!   execution paths (Algorithm 1 lines 11–16: split each path's
//!   condition conjunction into config / flow / state parts; derive the
//!   actions from the path's packet rewrites and state updates).
//! * [`eval`] — a concrete evaluator: run the model like a switch on a
//!   real packet and real state. This is what the §5 accuracy experiment
//!   executes 1000 times against the original program.
//! * [`render`] — the Figure 6 pretty-printer.
//! * [`fsm`] — the state-machine view (§2.4: "the state transition logic
//!   can be used to build a finite state machine", as BUZZ does).
//! * [`text`] — the `.nfm` exchange format: vendors run NFactor on
//!   proprietary code and ship operators *only the model* (§1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod fsm;
pub mod json;
pub mod model;
pub mod render;
pub mod text;

pub use eval::{eval_bin, EvalError, ModelState, ModelStep};
pub use fsm::{ModelFsm, Transition};
pub use model::{Completeness, ConfigTable, Entry, FlowAction, Model, StateAction};
pub use render::render_figure6;
pub use text::{from_text, parse_term, to_text};
