//! The model data structure and its construction from execution paths.
//!
//! Algorithm 1, lines 11–16:
//!
//! ```text
//! for p in execPaths:
//!     cndStmts := GetConditionStatements(p)
//!     config  := cndStmts ∩ cfgVars
//!     match   := (cndStmts ∩ pktVars, cndStmts ∩ oisVars)
//!     action  := (p ∩ pktSlice, p ∩ stateSlice)
//!     table[config].add(⟨match, action⟩)
//! ```
//!
//! In our symbolic setting `cndStmts` is the path condition; the
//! intersections become a *partition of the condition literals by the
//! variables they mention*: literals over configuration variables only
//! select the table; literals mentioning packet fields form the flow
//! match; literals touching state scalars or state maps form the state
//! match.

use nf_packet::Field;
use nfl_symex::{MapOp, Path, SymVal};

/// What happens to the packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowAction {
    /// Forward, applying the header rewrites in order.
    Forward {
        /// `(field, new value term)` rewrites.
        rewrites: Vec<(Field, SymVal)>,
    },
    /// Drop the packet (the default action of §3.2).
    Drop,
}

impl FlowAction {
    /// Is this a drop?
    pub fn is_drop(&self) -> bool {
        matches!(self, FlowAction::Drop)
    }
}

/// What happens to the NF's state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StateAction {
    /// New symbolic values for scalar state variables.
    pub updates: Vec<(String, SymVal)>,
    /// Map insertions / removals in order.
    pub map_ops: Vec<MapOp>,
}

impl StateAction {
    /// True when the entry transitions no state ("*" in Figure 6's hash
    /// row).
    pub fn is_identity(&self) -> bool {
        self.updates.is_empty() && self.map_ops.is_empty()
    }
}

/// One `⟨match, action⟩` row of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Conjunction of literals over packet fields (possibly referencing
    /// configs, e.g. `pkt.tcp.dport == cfg:LB_PORT`).
    pub flow_match: Vec<SymVal>,
    /// Conjunction of literals over state scalars / maps.
    pub state_match: Vec<SymVal>,
    /// Packet action.
    pub flow_action: FlowAction,
    /// State transition.
    pub state_action: StateAction,
    /// Whether the source path hit the loop bound (diagnostic).
    pub truncated: bool,
}

impl Entry {
    /// Build an entry from one symbolic path, partitioning its condition.
    pub fn from_path(path: &Path) -> (Vec<SymVal>, Entry) {
        let mut config = Vec::new();
        let mut flow_match = Vec::new();
        let mut state_match = Vec::new();
        for lit in &path.constraints {
            let pkt = lit.mentions_prefix("pkt.");
            let state = lit.mentions_prefix("st:") || lit.mentions_map();
            let cfg = lit.mentions_prefix("cfg:");
            // State first: a membership predicate like
            // `(f.src, f.sport) in nat` spans flow *and* state — the
            // paper's `P(f, s)` — and belongs to the state side of the
            // match.
            if state {
                state_match.push(lit.clone());
            } else if pkt {
                flow_match.push(lit.clone());
            } else if cfg {
                config.push(lit.clone());
            } else {
                // Constant-only literal (shouldn't survive folding) —
                // keep with the flow match for completeness.
                flow_match.push(lit.clone());
            }
        }
        let flow_action = match path.outputs.first() {
            Some(p) => FlowAction::Forward {
                rewrites: p.rewrites(),
            },
            None => FlowAction::Drop,
        };
        let entry = Entry {
            flow_match,
            state_match,
            flow_action,
            state_action: StateAction {
                updates: path
                    .state_updates
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect(),
                map_ops: path.map_ops.clone(),
            },
            truncated: path.truncated,
        };
        (config, entry)
    }
}

/// All entries sharing one configuration condition (one table of
/// Figure 2a, e.g. `c1: mode = RR`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigTable {
    /// The configuration literals selecting this table (empty = the NF
    /// has a single unconditional table).
    pub config: Vec<SymVal>,
    /// Match/action rows.
    pub entries: Vec<Entry>,
}

impl ConfigTable {
    /// Canonical key of the config condition, for grouping.
    fn key(config: &[SymVal]) -> String {
        let mut parts: Vec<String> = config.iter().map(|c| c.to_string()).collect();
        parts.sort();
        parts.join(" && ")
    }
}

/// Is the model the *complete* behaviour of the NF, or a partial view
/// produced under an exhausted [budget](nf_support::budget::Budget)?
///
/// A `Truncated` model is still a valid model of every path it does
/// contain — the paper's Table 2 reports the un-sliced snort exploration
/// as "> 1000 paths" for exactly this case — but consumers (operators,
/// verifiers, the §4 applications) must not treat its default-drop as
/// authoritative.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Completeness {
    /// Every execution path of the (sliced) NF is represented.
    #[default]
    Full,
    /// Exploration or slicing was cut short by a budget; some behaviour
    /// is missing.
    Truncated {
        /// Human-readable cause (deadline, path cap, solver-call cap…).
        reason: String,
    },
}

impl Completeness {
    /// Is this the truncated case?
    pub fn is_truncated(&self) -> bool {
        matches!(self, Completeness::Truncated { .. })
    }

    /// The truncation reason, if any.
    pub fn reason(&self) -> Option<&str> {
        match self {
            Completeness::Full => None,
            Completeness::Truncated { reason } => Some(reason),
        }
    }
}

/// A synthesized NF forwarding model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    /// Name of the NF the model was extracted from.
    pub nf_name: String,
    /// Per-configuration tables.
    pub tables: Vec<ConfigTable>,
    /// Whether the model covers every path or was budget-truncated.
    pub completeness: Completeness,
}

impl Model {
    /// Build a model from symbolic execution paths (Algorithm 1 lines
    /// 11–16). Paths are grouped into tables by their configuration
    /// condition.
    pub fn from_paths(nf_name: &str, paths: &[Path]) -> Model {
        let mut tables: Vec<ConfigTable> = Vec::new();
        for p in paths {
            let (config, entry) = Entry::from_path(p);
            let key = ConfigTable::key(&config);
            match tables
                .iter_mut()
                .find(|t| ConfigTable::key(&t.config) == key)
            {
                Some(t) => t.entries.push(entry),
                None => tables.push(ConfigTable {
                    config,
                    entries: vec![entry],
                }),
            }
        }
        // Deterministic order: by config key.
        tables.sort_by_key(|t| ConfigTable::key(&t.config));
        Model {
            nf_name: nf_name.to_string(),
            tables,
            completeness: Completeness::Full,
        }
    }

    /// Stamp the model as budget-truncated (graceful-degradation path).
    pub fn with_truncation(mut self, reason: impl Into<String>) -> Model {
        self.completeness = Completeness::Truncated {
            reason: reason.into(),
        };
        self
    }

    /// Total number of entries across tables.
    pub fn entry_count(&self) -> usize {
        self.tables.iter().map(|t| t.entries.len()).sum()
    }

    /// All non-drop entries.
    pub fn forward_entries(&self) -> impl Iterator<Item = &Entry> {
        self.tables
            .iter()
            .flat_map(|t| &t.entries)
            .filter(|e| !e.flow_action.is_drop())
    }

    /// Names of state maps the model touches.
    pub fn state_maps(&self) -> Vec<String> {
        let mut names = Vec::new();
        for t in &self.tables {
            for e in &t.entries {
                for op in &e.state_action.map_ops {
                    let n = match op {
                        MapOp::Insert { map, .. } | MapOp::Remove { map, .. } => map.clone(),
                    };
                    if !names.contains(&n) {
                        names.push(n);
                    }
                }
                for lit in &e.state_match {
                    collect_map_names(lit, &mut names);
                }
            }
        }
        names
    }

    /// Names of scalar state variables the model reads or writes.
    pub fn state_scalars(&self) -> Vec<String> {
        let mut names = Vec::new();
        for t in &self.tables {
            for e in &t.entries {
                for (n, _) in &e.state_action.updates {
                    if !names.contains(n) {
                        names.push(n.clone());
                    }
                }
            }
        }
        names
    }
}

fn collect_map_names(v: &SymVal, out: &mut Vec<String>) {
    match v {
        SymVal::MapGet(m, k) | SymVal::MapContains(m, k) => {
            if !out.contains(m) {
                out.push(m.clone());
            }
            collect_map_names(k, out);
        }
        SymVal::Tuple(es) | SymVal::Array(es) => {
            for e in es {
                collect_map_names(e, out);
            }
        }
        SymVal::Bin(_, a, b)
        | SymVal::ArrayGet(a, b)
        | SymVal::Min(a, b)
        | SymVal::Max(a, b) => {
            collect_map_names(a, out);
            collect_map_names(b, out);
        }
        SymVal::Not(a) | SymVal::Neg(a) | SymVal::Hash(a) | SymVal::Proj(a, _) => {
            collect_map_names(a, out)
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfl_analysis::normalize::normalize;
    use nfl_lang::parse_and_check;
    use nfl_symex::SymExec;

    fn model_of(src: &str) -> Model {
        let p = parse_and_check(src).unwrap();
        let pl = normalize(&p).unwrap();
        let stats = SymExec::new(&pl).explore().unwrap();
        Model::from_paths("test-nf", &stats.paths)
    }

    const MODE_NF: &str = r#"
        const RR = 1;
        config mode = 1;
        config servers = [(1.1.1.1, 80), (2.2.2.2, 80)];
        state idx = 0;
        fn cb(pkt: packet) {
            let server = (0, 0);
            if mode == RR {
                server = servers[idx];
                idx = (idx + 1) % len(servers);
            } else {
                server = servers[hash(pkt.ip.src) % len(servers)];
            }
            pkt.ip.dst = server[0];
            pkt.tcp.dport = server[1];
            send(pkt);
        }
        fn main() { sniff(cb); }
    "#;

    #[test]
    fn per_config_tables_like_figure6() {
        let m = model_of(MODE_NF);
        assert_eq!(m.tables.len(), 2, "one table per mode");
        // The RR table transitions idx; the hash table is stateless.
        let rr = m
            .tables
            .iter()
            .find(|t| t.config.iter().any(|c| c.to_string() == "(cfg:mode == 1)"))
            .expect("RR table");
        assert_eq!(rr.entries.len(), 1);
        assert!(!rr.entries[0].state_action.is_identity());
        assert_eq!(
            rr.entries[0].state_action.updates[0].1.to_string(),
            "((st:idx + 1) % 2)"
        );
        let hash = m
            .tables
            .iter()
            .find(|t| t.config.iter().any(|c| c.to_string() == "(cfg:mode != 1)"))
            .expect("hash table");
        assert!(hash.entries[0].state_action.is_identity(), "'*' in Figure 6");
    }

    #[test]
    fn condition_partition() {
        let m = model_of(
            r#"
            config PORT = 80;
            state seen = map();
            fn cb(pkt: packet) {
                if pkt.tcp.dport == PORT {
                    if pkt.ip.src in seen {
                        send(pkt);
                    }
                }
            }
            fn main() { sniff(cb); }
        "#,
        );
        // The dport literal mentions pkt → flow match even though it also
        // references a config; the membership literal → state match.
        let fwd: Vec<&Entry> = m.forward_entries().collect();
        assert_eq!(fwd.len(), 1);
        assert_eq!(fwd[0].flow_match.len(), 1);
        assert!(fwd[0].flow_match[0].to_string().contains("pkt.tcp.dport"));
        assert_eq!(fwd[0].state_match.len(), 1);
        assert!(fwd[0].state_match[0].to_string().contains("in seen"));
    }

    #[test]
    fn default_drop_entries_present() {
        let m = model_of(
            r#"
            fn cb(pkt: packet) {
                if pkt.ip.ttl > 1 { send(pkt); }
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert_eq!(m.entry_count(), 2);
        let drops: Vec<_> = m
            .tables
            .iter()
            .flat_map(|t| &t.entries)
            .filter(|e| e.flow_action.is_drop())
            .collect();
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].flow_match[0].to_string(), "(pkt.ip.ttl <= 1)");
    }

    #[test]
    fn state_maps_and_scalars_discovered() {
        let m = model_of(
            r#"
            state nat = map();
            state counter = 0;
            fn cb(pkt: packet) {
                let k = pkt.ip.src;
                if k not in nat {
                    nat[k] = 1;
                    counter = counter + 1;
                }
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert_eq!(m.state_maps(), vec!["nat".to_string()]);
        assert_eq!(m.state_scalars(), vec!["counter".to_string()]);
    }

    #[test]
    fn model_equality_is_structural() {
        let m = model_of(MODE_NF);
        let m2 = model_of(MODE_NF);
        assert_eq!(m, m2, "same program, same model");
    }
}
