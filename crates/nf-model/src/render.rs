//! Figure-6-style rendering of a model.
//!
//! The paper prints the balance model as a four-column table split per
//! configuration:
//!
//! ```text
//! Match            |  Action
//! Flow  | State    |  Flow                        | State
//! mode = RR
//! f     | idx      |  send(f, server[idx])        | (idx+1)%N
//! mode = HASH
//! f     | *        |  send(f, server[hash(f)%N])  | *
//! ```
//!
//! [`render_figure6`] reproduces that layout from a [`Model`].

use crate::model::{Entry, FlowAction, Model};
use nfl_symex::SymVal;
use std::fmt::Write;

fn join_lits(lits: &[SymVal], star: &str) -> String {
    if lits.is_empty() {
        star.to_string()
    } else {
        lits.iter()
            .map(|l| shorten(&l.to_string()))
            .collect::<Vec<_>>()
            .join(" && ")
    }
}

/// Strip the variable-namespace prefixes for readability — the paper's
/// table writes `idx`, not `st:idx`.
fn shorten(s: &str) -> String {
    s.replace("pkt.", "f.")
        .replace("cfg:", "")
        .replace("st:", "")
}

fn flow_action_str(a: &FlowAction) -> String {
    match a {
        FlowAction::Drop => "drop".to_string(),
        FlowAction::Forward { rewrites } if rewrites.is_empty() => "send(f)".to_string(),
        FlowAction::Forward { rewrites } => {
            let parts: Vec<String> = rewrites
                .iter()
                .map(|(f, v)| format!("{} := {}", f.path(), shorten(&v.to_string())))
                .collect();
            format!("send(f; {})", parts.join(", "))
        }
    }
}

fn state_action_str(e: &Entry) -> String {
    if e.state_action.is_identity() {
        return "*".to_string();
    }
    let mut parts: Vec<String> = e
        .state_action
        .updates
        .iter()
        .map(|(n, v)| format!("{n} := {}", shorten(&v.to_string())))
        .collect();
    parts.extend(
        e.state_action
            .map_ops
            .iter()
            .map(|op| shorten(&op.to_string())),
    );
    parts.join("; ")
}

/// Render the model as the paper's Figure 6 table.
pub fn render_figure6(model: &Model) -> String {
    let mut rows: Vec<(Option<String>, [String; 4])> = Vec::new();
    for table in &model.tables {
        let cfg = if table.config.is_empty() {
            "any configuration".to_string()
        } else {
            shorten(&join_lits(&table.config, "*"))
        };
        rows.push((Some(cfg), Default::default()));
        for e in &table.entries {
            rows.push((
                None,
                [
                    join_lits(&e.flow_match, "f"),
                    join_lits(&e.state_match, "*"),
                    flow_action_str(&e.flow_action),
                    state_action_str(e),
                ],
            ));
        }
    }
    // Column widths.
    let headers = ["Flow", "State", "Flow", "State"];
    let mut widths = headers.map(str::len);
    for (_, cols) in &rows {
        for (i, c) in cols.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let total: usize = widths.iter().sum::<usize>() + 3 * 3;
    let mut out = String::new();
    let _ = writeln!(out, "NFactor model: {}", model.nf_name);
    if let Some(reason) = model.completeness.reason() {
        let _ = writeln!(out, "!! PARTIAL MODEL — {reason}");
    }
    let _ = writeln!(out, "{}", "=".repeat(total));
    let _ = writeln!(
        out,
        "{:wm$} | {:ws$}   {:am$} | {:as$}",
        "Match",
        "",
        "Action",
        "",
        wm = widths[0],
        ws = widths[1],
        am = widths[2],
        as = widths[3],
    );
    let _ = writeln!(
        out,
        "{:w0$} | {:w1$} | {:w2$} | {:w3$}",
        headers[0],
        headers[1],
        headers[2],
        headers[3],
        w0 = widths[0],
        w1 = widths[1],
        w2 = widths[2],
        w3 = widths[3],
    );
    let _ = writeln!(out, "{}", "-".repeat(total));
    for (cfg, cols) in &rows {
        match cfg {
            Some(c) => {
                let _ = writeln!(out, "[ {c} ]");
            }
            None => {
                let _ = writeln!(
                    out,
                    "{:w0$} | {:w1$} | {:w2$} | {:w3$}",
                    cols[0],
                    cols[1],
                    cols[2],
                    cols[3],
                    w0 = widths[0],
                    w1 = widths[1],
                    w2 = widths[2],
                    w3 = widths[3],
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfl_analysis::normalize::normalize;
    use nfl_lang::parse_and_check;
    use nfl_symex::SymExec;

    #[test]
    fn renders_figure6_shape() {
        let src = r#"
            const RR = 1;
            config mode = 1;
            config servers = [(1.1.1.1, 80), (2.2.2.2, 80)];
            state idx = 0;
            fn cb(pkt: packet) {
                let server = (0, 0);
                if mode == RR {
                    server = servers[idx];
                    idx = (idx + 1) % len(servers);
                } else {
                    server = servers[hash(pkt.ip.src) % len(servers)];
                }
                pkt.ip.dst = server[0];
                pkt.tcp.dport = server[1];
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#;
        let p = parse_and_check(src).unwrap();
        let pl = normalize(&p).unwrap();
        let stats = SymExec::new(&pl).explore().unwrap();
        let m = Model::from_paths("balance", &stats.paths);
        let text = render_figure6(&m);
        // Figure 6 content checks: both config sections, the RR state
        // transition, the hash action, the stateless '*'.
        assert!(text.contains("(mode == 1)"), "{text}");
        assert!(text.contains("(mode != 1)"), "{text}");
        assert!(text.contains("idx := ((idx + 1) % 2)"), "{text}");
        assert!(text.contains("hash("), "{text}");
        assert!(text.contains("| *"), "{text}");
        assert!(text.contains("send(f;"), "{text}");
    }

    #[test]
    fn drop_entry_renders() {
        let src = r#"
            fn cb(pkt: packet) { if pkt.ip.ttl > 1 { send(pkt); } }
            fn main() { sniff(cb); }
        "#;
        let p = parse_and_check(src).unwrap();
        let pl = normalize(&p).unwrap();
        let stats = SymExec::new(&pl).explore().unwrap();
        let m = Model::from_paths("filter", &stats.paths);
        let text = render_figure6(&m);
        assert!(text.contains("drop"), "{text}");
        assert!(text.contains("(f.ip.ttl <= 1)"), "{text}");
    }
}
