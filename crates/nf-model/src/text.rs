//! The `.nfm` model exchange format.
//!
//! The paper's deployment story (§1): *"Our goal is to make our tool
//! available to NF vendors who can run it on their proprietary code and
//! provide only the resultant models to network operators."* Shipping a
//! model requires a format; `.nfm` is a line-oriented, human-readable
//! serialization that round-trips exactly:
//!
//! ```text
//! model fig1-lb
//! table
//!   config (cfg:mode == 1)
//!   entry
//!     flow (pkt.tcp.dport == cfg:LB_PORT)
//!     state !((pkt.ip.src, pkt.tcp.sport, pkt.ip.dst, pkt.tcp.dport) in f2b_nat)
//!     forward
//!       ip.src := cfg:LB_IP
//!     set rr_idx := ((st:rr_idx + 1) % 2)
//!     insert f2b_nat[(…)] := (…)
//!   end
//! end
//! ```
//!
//! Terms use the canonical [`SymVal`] rendering; [`parse_term`] is the
//! inverse of `Display`.

use crate::model::{Completeness, ConfigTable, Entry, FlowAction, Model, StateAction};
use nf_packet::Field;
use nfl_lang::BinOp;
use nfl_symex::{MapOp, SymVal};
use std::fmt;

/// Errors from parsing `.nfm` text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the failure (0 when the failure is inside a term).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nfm parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------------
// Term parser — the inverse of SymVal's Display.
// ---------------------------------------------------------------------

struct TermParser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> TermParser<'a> {
    fn new(src: &'a str) -> Self {
        TermParser {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: 0,
            message: format!(
                "{} (at term offset {}: …{})",
                msg.into(),
                self.pos,
                String::from_utf8_lossy(
                    &self.src[self.pos..(self.pos + 16).min(self.src.len())]
                )
            ),
        }
    }

    fn skip_ws(&mut self) {
        while self.src.get(self.pos) == Some(&b' ') {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            // A `.` followed by a digit is a tuple projection, not part
            // of the name (`st:t.0` is Proj(Var("st:t"), 0); names like
            // `pkt.ip.src` have alphabetic segments and are unaffected).
            if c == b'.'
                && self
                    .src
                    .get(self.pos + 1)
                    .map(|n| n.is_ascii_digit())
                    .unwrap_or(true)
            {
                break;
            }
            let ok = c.is_ascii_alphanumeric() || c == b'_' || c == b'.' || c == b':';
            if ok {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            None
        } else {
            Some(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
        }
    }

    fn number(&mut self) -> Option<i64> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            self.pos = start;
            return None;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    /// Top level: a term optionally followed by `in <map>` chains
    /// (left-associative, matching `Display`).
    fn term(&mut self) -> Result<SymVal, ParseError> {
        let mut base = self.postfix()?;
        loop {
            self.skip_ws();
            if self.src[self.pos..].starts_with(b"in ") {
                self.pos += 3;
                let map = self
                    .ident()
                    .ok_or_else(|| self.err("map name after `in`"))?;
                base = SymVal::MapContains(map, Box::new(base));
            } else {
                return Ok(base);
            }
        }
    }

    fn postfix(&mut self) -> Result<SymVal, ParseError> {
        let mut e = self.primary()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'[') => {
                    self.pos += 1;
                    let idx = self.term()?;
                    self.expect("]")?;
                    e = match e {
                        SymVal::Var(name)
                            if !name.contains('.') && !name.contains(':') =>
                        {
                            SymVal::MapGet(name, Box::new(idx))
                        }
                        other => SymVal::ArrayGet(Box::new(other), Box::new(idx)),
                    };
                }
                Some(b'.')
                    if self
                        .src
                        .get(self.pos + 1)
                        .map(|c| c.is_ascii_digit())
                        .unwrap_or(false) =>
                {
                    self.pos += 1;
                    let n = self.number().ok_or_else(|| self.err("projection index"))?;
                    e = SymVal::Proj(Box::new(e), n as usize);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn call2(&mut self) -> Result<(SymVal, SymVal), ParseError> {
        self.expect("(")?;
        let a = self.term()?;
        self.expect(",")?;
        let b = self.term()?;
        self.expect(")")?;
        Ok((a, b))
    }

    fn primary(&mut self) -> Result<SymVal, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let first = self.term()?;
                self.skip_ws();
                if self.eat(")") {
                    return Ok(first); // bare parenthesised term
                }
                if self.peek() == Some(b',') {
                    // Tuple.
                    let mut items = vec![first];
                    while self.eat(",") {
                        items.push(self.term()?);
                    }
                    self.expect(")")?;
                    return Ok(SymVal::Tuple(items));
                }
                // Binary operator.
                let op = self.binop()?;
                let rhs = self.term()?;
                self.expect(")")?;
                Ok(SymVal::Bin(op, Box::new(first), Box::new(rhs)))
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() != Some(b']') {
                    items.push(self.term()?);
                    while self.eat(",") {
                        items.push(self.term()?);
                    }
                }
                self.expect("]")?;
                Ok(SymVal::Array(items))
            }
            Some(b'!') => {
                self.pos += 1;
                self.expect("(")?;
                let inner = self.term()?;
                self.expect(")")?;
                Ok(SymVal::Not(Box::new(inner)))
            }
            Some(b'-') if self.src.get(self.pos + 1) == Some(&b'(') => {
                self.pos += 1;
                self.expect("(")?;
                let inner = self.term()?;
                self.expect(")")?;
                Ok(SymVal::Neg(Box::new(inner)))
            }
            Some(b'"') => {
                self.pos += 1;
                let start = self.pos;
                while self.peek().map(|c| c != b'"').unwrap_or(false) {
                    self.pos += 1;
                }
                let s = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.expect("\"")?;
                Ok(SymVal::Str(s))
            }
            Some(c) if c.is_ascii_digit() || c == b'-' => self
                .number()
                .map(SymVal::Int)
                .ok_or_else(|| self.err("number")),
            _ => {
                let name = self.ident().ok_or_else(|| self.err("term"))?;
                match name.as_str() {
                    "true" => Ok(SymVal::Bool(true)),
                    "false" => Ok(SymVal::Bool(false)),
                    "hash" => {
                        self.expect("(")?;
                        let inner = self.term()?;
                        self.expect(")")?;
                        Ok(SymVal::Hash(Box::new(inner)))
                    }
                    "min" => {
                        let (a, b) = self.call2()?;
                        Ok(SymVal::Min(Box::new(a), Box::new(b)))
                    }
                    "max" => {
                        let (a, b) = self.call2()?;
                        Ok(SymVal::Max(Box::new(a), Box::new(b)))
                    }
                    _ => Ok(SymVal::Var(name)),
                }
            }
        }
    }

    fn binop(&mut self) -> Result<BinOp, ParseError> {
        self.skip_ws();
        // Longest match first.
        let table: &[(&str, BinOp)] = &[
            ("==", BinOp::Eq),
            ("!=", BinOp::Ne),
            ("<=", BinOp::Le),
            (">=", BinOp::Ge),
            ("&&", BinOp::And),
            ("||", BinOp::Or),
            ("<", BinOp::Lt),
            (">", BinOp::Gt),
            ("+", BinOp::Add),
            ("-", BinOp::Sub),
            ("*", BinOp::Mul),
            ("/", BinOp::Div),
            ("%", BinOp::Mod),
            ("&", BinOp::BitAnd),
            ("|", BinOp::BitOr),
        ];
        for (sym, op) in table {
            if self.eat(sym) {
                return Ok(*op);
            }
        }
        Err(self.err("binary operator"))
    }
}

/// Parse a canonical term rendering back into a [`SymVal`].
pub fn parse_term(src: &str) -> Result<SymVal, ParseError> {
    let mut p = TermParser::new(src);
    let t = p.term()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing input after term"));
    }
    Ok(t)
}

// ---------------------------------------------------------------------
// Model serialization.
// ---------------------------------------------------------------------

/// Serialize a model to `.nfm` text.
pub fn to_text(model: &Model) -> String {
    let mut out = String::new();
    out.push_str(&format!("model {}\n", model.nf_name));
    // Budget-truncated models carry the reason so the operator side can
    // see the model is partial; full models emit nothing extra.
    if let Completeness::Truncated { reason } = &model.completeness {
        out.push_str(&format!("truncated {reason}\n"));
    }
    for table in &model.tables {
        out.push_str("table\n");
        for c in &table.config {
            out.push_str(&format!("  config {c}\n"));
        }
        for e in &table.entries {
            out.push_str("  entry\n");
            for l in &e.flow_match {
                out.push_str(&format!("    flow {l}\n"));
            }
            for l in &e.state_match {
                out.push_str(&format!("    state {l}\n"));
            }
            match &e.flow_action {
                FlowAction::Drop => out.push_str("    drop\n"),
                FlowAction::Forward { rewrites } => {
                    out.push_str("    forward\n");
                    for (f, v) in rewrites {
                        out.push_str(&format!("      {} := {v}\n", f.path()));
                    }
                }
            }
            for (n, v) in &e.state_action.updates {
                out.push_str(&format!("    set {n} := {v}\n"));
            }
            for op in &e.state_action.map_ops {
                match op {
                    MapOp::Insert { map, key, value } => {
                        out.push_str(&format!("    insert {map}[{key}] := {value}\n"))
                    }
                    MapOp::Remove { map, key } => {
                        out.push_str(&format!("    remove {map}[{key}]\n"))
                    }
                }
            }
            out.push_str("  end\n");
        }
        out.push_str("end\n");
    }
    out
}

fn term_err(line_no: usize, e: ParseError) -> ParseError {
    ParseError {
        line: line_no,
        message: e.message,
    }
}

/// Parse `.nfm` text back into a [`Model`].
pub fn from_text(src: &str) -> Result<Model, ParseError> {
    let mut name = String::new();
    let mut completeness = Completeness::Full;
    let mut tables: Vec<ConfigTable> = Vec::new();
    let mut cur_table: Option<ConfigTable> = None;
    let mut cur_entry: Option<Entry> = None;
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (kw, rest) = match line.split_once(' ') {
            Some((k, r)) => (k, r.trim()),
            None => (line, ""),
        };
        let fail = |m: &str| ParseError {
            line: line_no,
            message: m.to_string(),
        };
        match kw {
            "model" => name = rest.to_string(),
            "truncated" => {
                if rest.is_empty() {
                    return Err(fail("`truncated` requires a reason"));
                }
                completeness = Completeness::Truncated {
                    reason: rest.to_string(),
                };
            }
            "table" => {
                if let Some(t) = cur_table.take() {
                    tables.push(t);
                }
                cur_table = Some(ConfigTable {
                    config: Vec::new(),
                    entries: Vec::new(),
                });
            }
            "config" => {
                cur_table
                    .as_mut()
                    .ok_or_else(|| fail("`config` outside table"))?
                    .config
                    .push(parse_term(rest).map_err(|e| term_err(line_no, e))?);
            }
            "entry" => {
                cur_entry = Some(Entry {
                    flow_match: Vec::new(),
                    state_match: Vec::new(),
                    flow_action: FlowAction::Drop,
                    state_action: StateAction::default(),
                    truncated: false,
                });
            }
            "flow" => {
                cur_entry
                    .as_mut()
                    .ok_or_else(|| fail("`flow` outside entry"))?
                    .flow_match
                    .push(parse_term(rest).map_err(|e| term_err(line_no, e))?);
            }
            "state" => {
                cur_entry
                    .as_mut()
                    .ok_or_else(|| fail("`state` outside entry"))?
                    .state_match
                    .push(parse_term(rest).map_err(|e| term_err(line_no, e))?);
            }
            "drop" => {
                cur_entry
                    .as_mut()
                    .ok_or_else(|| fail("`drop` outside entry"))?
                    .flow_action = FlowAction::Drop;
            }
            "forward" => {
                cur_entry
                    .as_mut()
                    .ok_or_else(|| fail("`forward` outside entry"))?
                    .flow_action = FlowAction::Forward {
                    rewrites: Vec::new(),
                };
            }
            "set" => {
                let (var, term) = rest
                    .split_once(":=")
                    .ok_or_else(|| fail("`set` needs `var := term`"))?;
                cur_entry
                    .as_mut()
                    .ok_or_else(|| fail("`set` outside entry"))?
                    .state_action
                    .updates
                    .push((
                        var.trim().to_string(),
                        parse_term(term.trim()).map_err(|e| term_err(line_no, e))?,
                    ));
            }
            "insert" => {
                let (lhs, value) = rest
                    .split_once(":=")
                    .ok_or_else(|| fail("`insert` needs `map[key] := value`"))?;
                let lhs = lhs.trim();
                let open = lhs.find('[').ok_or_else(|| fail("missing `[`"))?;
                let map = lhs[..open].to_string();
                let key_src = lhs[open + 1..]
                    .strip_suffix(']')
                    .ok_or_else(|| fail("missing `]`"))?;
                cur_entry
                    .as_mut()
                    .ok_or_else(|| fail("`insert` outside entry"))?
                    .state_action
                    .map_ops
                    .push(MapOp::Insert {
                        map,
                        key: parse_term(key_src).map_err(|e| term_err(line_no, e))?,
                        value: parse_term(value.trim())
                            .map_err(|e| term_err(line_no, e))?,
                    });
            }
            "remove" => {
                let open = rest.find('[').ok_or_else(|| fail("missing `[`"))?;
                let map = rest[..open].to_string();
                let key_src = rest[open + 1..]
                    .strip_suffix(']')
                    .ok_or_else(|| fail("missing `]`"))?;
                cur_entry
                    .as_mut()
                    .ok_or_else(|| fail("`remove` outside entry"))?
                    .state_action
                    .map_ops
                    .push(MapOp::Remove {
                        map,
                        key: parse_term(key_src).map_err(|e| term_err(line_no, e))?,
                    });
            }
            "end" => {
                if let Some(e) = cur_entry.take() {
                    cur_table
                        .as_mut()
                        .ok_or_else(|| fail("`end` outside table"))?
                        .entries
                        .push(e);
                } else if let Some(t) = cur_table.take() {
                    tables.push(t);
                }
            }
            other => {
                // A rewrite line inside `forward`: `<field.path> := term`.
                if let Some(entry) = cur_entry.as_mut() {
                    if let Some((field_path, term)) = line.split_once(":=") {
                        let field = Field::from_path(field_path.trim())
                            .ok_or_else(|| fail("unknown field in rewrite"))?;
                        if let FlowAction::Forward { rewrites } = &mut entry.flow_action {
                            rewrites.push((
                                field,
                                parse_term(term.trim())
                                    .map_err(|e| term_err(line_no, e))?,
                            ));
                            continue;
                        }
                    }
                }
                return Err(fail(&format!("unknown directive `{other}`")));
            }
        }
    }
    if let Some(t) = cur_table.take() {
        tables.push(t);
    }
    Ok(Model {
        nf_name: name,
        tables,
        completeness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfl_analysis::normalize::normalize;
    use nfl_lang::parse_and_check;
    use nfl_symex::SymExec;

    fn model_of(src: &str) -> Model {
        let p = parse_and_check(src).unwrap();
        let pl = normalize(&p).unwrap();
        let stats = SymExec::new(&pl).explore().unwrap();
        Model::from_paths("t", &stats.paths)
    }

    #[test]
    fn truncated_stamp_roundtrips() {
        let m = model_of(
            r#"
            fn cb(pkt: packet) { send(pkt); }
            fn main() { sniff(cb); }
        "#,
        )
        .with_truncation("wall-clock deadline exceeded during symbolic execution");
        let text = to_text(&m);
        assert!(
            text.contains("truncated wall-clock deadline"),
            "{text}"
        );
        let m2 = from_text(&text).unwrap();
        assert_eq!(m2, m);
        // And a full model emits no directive.
        let full = model_of(
            r#"
            fn cb(pkt: packet) { send(pkt); }
            fn main() { sniff(cb); }
        "#,
        );
        assert!(!to_text(&full).contains("truncated"));
    }

    #[test]
    fn term_roundtrip_basics() {
        for src in [
            "42",
            "-7",
            "true",
            "pkt.tcp.dport",
            "cfg:LB_PORT",
            "st:rr_idx",
            "(pkt.tcp.dport == cfg:LB_PORT)",
            "((st:rr_idx + 1) % 2)",
            "hash(pkt.ip.src)",
            "min(cfg:REFILL, cfg:BUCKET_MAX)",
            "(pkt.ip.src, pkt.tcp.sport)",
            "[(16843009, 80), (33686018, 80)]",
            "nat[(pkt.ip.src, pkt.tcp.sport)]",
            "nat[(pkt.ip.src, pkt.tcp.sport)].2",
            "((pkt.ip.src, pkt.tcp.sport) in nat)",
            "!(((pkt.ip.src, pkt.tcp.sport) in nat))",
            "[(1, 80), (2, 80)][st:idx]",
            "[(1, 80), (2, 80)][(hash(pkt.ip.src) % 2)].0",
            "((pkt.tcp.flags & 2) != 0)",
        ] {
            let t = parse_term(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            assert_eq!(t.to_string(), src, "canonical rendering");
            // And a second round for idempotence.
            let t2 = parse_term(&t.to_string()).unwrap();
            assert_eq!(t, t2);
        }
    }

    #[test]
    fn bad_terms_error() {
        for src in ["", "(1 +", "nat[", "((a b))", "1 2"] {
            assert!(parse_term(src).is_err(), "{src} should fail");
        }
    }

    #[test]
    fn model_roundtrip_nat() {
        let m = model_of(
            r#"
            state nat = map();
            state next = 10000;
            fn cb(pkt: packet) {
                let k = (pkt.ip.src, pkt.tcp.sport);
                if k not in nat {
                    nat[k] = next;
                    next = next + 1;
                }
                pkt.tcp.sport = nat[k];
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        let text = to_text(&m);
        let m2 = from_text(&text).unwrap();
        assert_eq!(m, m2, "round trip:\n{text}");
    }

    #[test]
    fn model_roundtrip_whole_corpus() {
        for nf in nf_corpus_sources() {
            let m = model_of(&nf.1);
            let text = to_text(&m);
            let m2 = from_text(&text)
                .unwrap_or_else(|e| panic!("{}: {e}\n{text}", nf.0));
            assert_eq!(m, m2, "{} round trip failed", nf.0);
        }
    }

    fn nf_corpus_sources() -> Vec<(&'static str, String)> {
        // Small local corpus to avoid a dependency cycle with nf-corpus;
        // mirrors its NF shapes.
        vec![
            (
                "filter",
                r#"
                config PORT = 80;
                fn cb(pkt: packet) { if pkt.tcp.dport == PORT { send(pkt); } }
                fn main() { sniff(cb); }
                "#
                .to_string(),
            ),
            (
                "lb-modes",
                r#"
                const RR = 1;
                config mode = 1;
                config servers = [(1.1.1.1, 80), (2.2.2.2, 80)];
                state idx = 0;
                fn cb(pkt: packet) {
                    let server = (0, 0);
                    if mode == RR {
                        server = servers[idx];
                        idx = (idx + 1) % len(servers);
                    } else {
                        server = servers[hash(pkt.ip.src) % len(servers)];
                    }
                    pkt.ip.dst = server[0];
                    pkt.tcp.dport = server[1];
                    send(pkt);
                }
                fn main() { sniff(cb); }
                "#
                .to_string(),
            ),
            (
                "teardown",
                r#"
                state conns = map();
                fn cb(pkt: packet) {
                    let k = pkt.ip.src;
                    if pkt.tcp.flags & 4 != 0 {
                        map_remove(conns, k);
                        return;
                    }
                    conns[k] = 1;
                    send(pkt);
                }
                fn main() { sniff(cb); }
                "#
                .to_string(),
            ),
        ]
    }

    #[test]
    fn parse_error_reports_line() {
        let err = from_text("model x\ntable\n  bogus directive\n").unwrap_err();
        assert_eq!(err.line, 3);
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use nf_support::check::{
        self, any_bool, any_i64, check, identifier, int_range, string_of, tuple2, vec_of, Config,
        Gen,
    };

    /// The term parser is total: arbitrary input parses or errors,
    /// never panics.
    #[test]
    fn parse_term_total() {
        let cfg = Config::with_cases(256);
        check(
            "parse_term_total",
            &cfg,
            &check::ascii_printable(80),
            |s| {
                let _ = parse_term(s);
            },
        );
    }

    /// The model parser is total on arbitrary line soup.
    #[test]
    fn from_text_total() {
        let cfg = Config::with_cases(256);
        let soup = string_of("abcdefghijklmnopqrstuvwxyz0123456789[]():=. \n", 0, 400);
        check("from_text_total", &cfg, &soup, |s| {
            let _ = from_text(s);
        });
    }

    /// Round trip for randomly generated terms.
    #[test]
    fn random_term_roundtrip() {
        let cfg = Config::with_cases(256);
        check("random_term_roundtrip", &cfg, &term_gen(), |t| {
            let printed = t.to_string();
            let parsed = parse_term(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
            assert_eq!(parsed, *t);
        });
    }

    /// Historical fuzzer counterexamples (formerly `proptest-regressions/
    /// text.txt`), pinned as fixed deterministic cases so every run
    /// re-checks them regardless of the random stream.
    #[test]
    fn regression_proj_of_bool_roundtrips() {
        let t = SymVal::Proj(Box::new(SymVal::Bool(false)), 0);
        let printed = t.to_string();
        assert_eq!(parse_term(&printed).unwrap(), t, "{printed}");
    }

    #[test]
    fn regression_nested_map_contains_roundtrips() {
        let t = SymVal::MapContains(
            "a".into(),
            Box::new(SymVal::MapContains("a".into(), Box::new(SymVal::Int(0)))),
        );
        let printed = t.to_string();
        assert_eq!(parse_term(&printed).unwrap(), t, "{printed}");
    }

    fn term_gen() -> Gen<SymVal> {
        let leaf = Gen::one_of(vec![
            any_i64().map(SymVal::Int),
            any_bool().map(SymVal::Bool),
            identifier(5).map(SymVal::Var),
            Gen::one_of(vec![
                Gen::just(SymVal::Var("pkt.ip.src".into())),
                Gen::just(SymVal::Var("cfg:mode".into())),
                Gen::just(SymVal::Var("st:idx".into())),
            ]),
        ]);
        check::recursive(leaf.clone(), 3, move |inner| {
            let map_name = string_of("abcdefghijklmnopqrstuvwxyz", 1, 5);
            Gen::one_of(vec![
                leaf.clone(),
                tuple2(inner.clone(), inner.clone())
                    .map(|(a, b)| SymVal::Bin(BinOp::Add, Box::new(a), Box::new(b))),
                tuple2(inner.clone(), inner.clone())
                    .map(|(a, b)| SymVal::Bin(BinOp::Eq, Box::new(a), Box::new(b))),
                inner.clone().map(|a| SymVal::Hash(Box::new(a))),
                tuple2(inner.clone(), inner.clone())
                    .map(|(a, b)| SymVal::Min(Box::new(a), Box::new(b))),
                vec_of(inner.clone(), 2, 3).map(SymVal::Tuple),
                vec_of(inner.clone(), 0, 2).map(SymVal::Array),
                tuple2(map_name.clone(), inner.clone())
                    .map(|(m, k)| SymVal::MapGet(m, Box::new(k))),
                tuple2(map_name, inner.clone())
                    .map(|(m, k)| SymVal::MapContains(m, Box::new(k))),
                tuple2(inner.clone(), int_range(0, 3))
                    .map(|(a, i)| SymVal::Proj(Box::new(a), i as usize)),
            ])
        })
    }
}
