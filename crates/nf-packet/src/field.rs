//! Named packet fields.
//!
//! NFL programs address packet headers by dotted paths (`pkt.ip.src`,
//! `pkt.tcp.sport`), and synthesized NFactor models match and rewrite the
//! same names (Figure 2a / Figure 6). [`Field`] is the shared vocabulary:
//! every layer of the system — interpreter, symbolic executor, model
//! evaluator, verifier — speaks in these fields.

use std::fmt;

/// A named, integer-valued packet header field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Field {
    /// Ethernet source MAC (48 bits, packed into an integer).
    EthSrc,
    /// Ethernet destination MAC.
    EthDst,
    /// EtherType.
    EthType,
    /// IPv4 source address.
    IpSrc,
    /// IPv4 destination address.
    IpDst,
    /// IPv4 protocol number.
    IpProto,
    /// IPv4 time-to-live.
    IpTtl,
    /// IPv4 total length.
    IpLen,
    /// IPv4 identification.
    IpId,
    /// TCP source port (also used for UDP when `IpProto` = 17).
    TcpSport,
    /// TCP destination port.
    TcpDport,
    /// TCP flag bits.
    TcpFlags,
    /// TCP sequence number.
    TcpSeq,
    /// TCP acknowledgement number.
    TcpAck,
    /// Payload length in bytes.
    PayloadLen,
    /// First payload byte (snort-style shallow content check).
    PayloadByte0,
    /// Second payload byte.
    PayloadByte1,
}

impl Field {
    /// Every field, in canonical order.
    pub const ALL: [Field; 17] = [
        Field::EthSrc,
        Field::EthDst,
        Field::EthType,
        Field::IpSrc,
        Field::IpDst,
        Field::IpProto,
        Field::IpTtl,
        Field::IpLen,
        Field::IpId,
        Field::TcpSport,
        Field::TcpDport,
        Field::TcpFlags,
        Field::TcpSeq,
        Field::TcpAck,
        Field::PayloadLen,
        Field::PayloadByte0,
        Field::PayloadByte1,
    ];

    /// The NFL dotted path for this field (what source programs write).
    pub fn path(&self) -> &'static str {
        match self {
            Field::EthSrc => "eth.src",
            Field::EthDst => "eth.dst",
            Field::EthType => "eth.type",
            Field::IpSrc => "ip.src",
            Field::IpDst => "ip.dst",
            Field::IpProto => "ip.proto",
            Field::IpTtl => "ip.ttl",
            Field::IpLen => "ip.len",
            Field::IpId => "ip.id",
            Field::TcpSport => "tcp.sport",
            Field::TcpDport => "tcp.dport",
            Field::TcpFlags => "tcp.flags",
            Field::TcpSeq => "tcp.seq",
            Field::TcpAck => "tcp.ack",
            Field::PayloadLen => "payload.len",
            Field::PayloadByte0 => "payload.b0",
            Field::PayloadByte1 => "payload.b1",
        }
    }

    /// Look up a field by its NFL dotted path.
    pub fn from_path(path: &str) -> Option<Field> {
        Field::ALL.iter().copied().find(|f| f.path() == path)
    }

    /// The inclusive upper bound of this field's value domain. Used by the
    /// symbolic executor's interval solver and by the packet generator.
    pub fn max_value(&self) -> u64 {
        match self {
            Field::EthSrc | Field::EthDst => (1 << 48) - 1,
            Field::EthType => u64::from(u16::MAX),
            Field::IpSrc | Field::IpDst => u64::from(u32::MAX),
            Field::IpProto | Field::IpTtl => u64::from(u8::MAX),
            Field::IpLen | Field::IpId => u64::from(u16::MAX),
            Field::TcpSport | Field::TcpDport => u64::from(u16::MAX),
            Field::TcpFlags => 0x3f,
            Field::TcpSeq | Field::TcpAck => u64::from(u32::MAX),
            Field::PayloadLen => 65_495,
            Field::PayloadByte0 | Field::PayloadByte1 => u64::from(u8::MAX),
        }
    }

    /// Whether a model that rewrites this field performs a *forwarding
    /// relevant* transformation (header rewrite) as opposed to bookkeeping.
    pub fn is_rewritable(&self) -> bool {
        !matches!(
            self,
            Field::PayloadLen | Field::PayloadByte0 | Field::PayloadByte1 | Field::IpLen
        )
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.path())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_roundtrip() {
        for f in Field::ALL {
            assert_eq!(Field::from_path(f.path()), Some(f), "field {f:?}");
        }
    }

    #[test]
    fn unknown_path() {
        assert_eq!(Field::from_path("ip.nonsense"), None);
    }

    #[test]
    fn domains_are_sane() {
        assert_eq!(Field::TcpSport.max_value(), 65535);
        assert_eq!(Field::IpSrc.max_value(), u64::from(u32::MAX));
        assert!(Field::TcpFlags.max_value() < 64);
    }

    #[test]
    fn all_is_exhaustive_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for f in Field::ALL {
            assert!(seen.insert(f.path()), "duplicate {f:?}");
        }
        assert_eq!(seen.len(), Field::ALL.len());
    }
}
