//! Flow identification.
//!
//! The paper's NF code keys its NAT dictionaries on 4-tuples
//! (`(si, sp, di, dp)` in Figure 1). [`FlowKey`] is that 4-tuple;
//! [`FiveTuple`] adds the protocol for NFs that multiplex TCP and UDP.

use crate::packet::{Packet, PacketError};
use crate::Field;
use std::fmt;

/// A transport 4-tuple `(src ip, src port, dst ip, dst port)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Destination port.
    pub dst_port: u16,
}

impl FlowKey {
    /// Extract the 4-tuple from a packet. Fails for portless protocols.
    pub fn of(pkt: &Packet) -> Result<FlowKey, PacketError> {
        Ok(FlowKey {
            src_ip: pkt.get(Field::IpSrc)? as u32,
            src_port: pkt.get(Field::TcpSport)? as u16,
            dst_ip: pkt.get(Field::IpDst)? as u32,
            dst_port: pkt.get(Field::TcpDport)? as u16,
        })
    }

    /// The reverse direction of this flow (`sc_ftpl` from `cs_ftpl` in the
    /// paper's Figure 1 naming).
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src_ip: self.dst_ip,
            src_port: self.dst_port,
            dst_ip: self.src_ip,
            dst_port: self.src_port,
        }
    }

    /// Pack into four integers, the representation NFL tuples use.
    pub fn to_tuple(&self) -> [i64; 4] {
        [
            i64::from(self.src_ip),
            i64::from(self.src_port),
            i64::from(self.dst_ip),
            i64::from(self.dst_port),
        ]
    }

    /// Unpack from four integers, validating domains.
    pub fn from_tuple(t: [i64; 4]) -> Option<FlowKey> {
        let src_ip = u32::try_from(t[0]).ok()?;
        let src_port = u16::try_from(t[1]).ok()?;
        let dst_ip = u32::try_from(t[2]).ok()?;
        let dst_port = u16::try_from(t[3]).ok()?;
        Some(FlowKey {
            src_ip,
            src_port,
            dst_ip,
            dst_port,
        })
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} > {}:{}",
            crate::wire::fmt_ipv4(self.src_ip),
            self.src_port,
            crate::wire::fmt_ipv4(self.dst_ip),
            self.dst_port
        )
    }
}

/// A transport 5-tuple: [`FlowKey`] plus IP protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    /// The 4-tuple.
    pub key: FlowKey,
    /// IP protocol number.
    pub proto: u8,
}

impl FiveTuple {
    /// Extract the 5-tuple from a packet.
    pub fn of(pkt: &Packet) -> Result<FiveTuple, PacketError> {
        Ok(FiveTuple {
            key: FlowKey::of(pkt)?,
            proto: pkt.get(Field::IpProto)? as u8,
        })
    }

    /// The reverse direction, same protocol.
    pub fn reversed(&self) -> FiveTuple {
        FiveTuple {
            key: self.key.reversed(),
            proto: self.proto,
        }
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} proto={}", self.key, self.proto)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{parse_ipv4, TcpFlags};

    #[test]
    fn extract_and_reverse() {
        let p = Packet::tcp(
            parse_ipv4("10.0.0.1").unwrap(),
            1234,
            parse_ipv4("3.3.3.3").unwrap(),
            80,
            TcpFlags::syn(),
        );
        let k = FlowKey::of(&p).unwrap();
        assert_eq!(k.src_port, 1234);
        assert_eq!(k.reversed().reversed(), k);
        assert_eq!(k.reversed().dst_port, 1234);
    }

    #[test]
    fn tuple_roundtrip() {
        let k = FlowKey {
            src_ip: 0x0a000001,
            src_port: 1,
            dst_ip: 0x0a000002,
            dst_port: 2,
        };
        assert_eq!(FlowKey::from_tuple(k.to_tuple()), Some(k));
        assert_eq!(FlowKey::from_tuple([-1, 0, 0, 0]), None);
        assert_eq!(FlowKey::from_tuple([0, 70000, 0, 0]), None);
    }

    #[test]
    fn five_tuple() {
        let p = Packet::udp(1, 2, 3, 4);
        let t = FiveTuple::of(&p).unwrap();
        assert_eq!(t.proto, 17);
        assert_eq!(t.reversed().key.src_port, 4);
    }

    #[test]
    fn display() {
        let k = FlowKey {
            src_ip: parse_ipv4("1.2.3.4").unwrap(),
            src_port: 5,
            dst_ip: parse_ipv4("6.7.8.9").unwrap(),
            dst_port: 10,
        };
        assert_eq!(k.to_string(), "1.2.3.4:5 > 6.7.8.9:10");
    }
}
