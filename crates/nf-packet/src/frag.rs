//! IPv4 fragmentation and reassembly.
//!
//! The Figure 1 load balancer's output path is
//! `for f in fragment(pkt[IP], fragsize=MTU-len(Ether())): sendp(...)`.
//! This module supplies that `fragment` (and its inverse) so the concrete
//! interpreter's `send` builtin behaves like the paper's NF.

use crate::packet::{Packet, Transport};

/// Split `pkt` into fragments whose IP payload does not exceed
/// `frag_payload` bytes (which must be a positive multiple of 8 except for
/// the last fragment, per RFC 791 — we round down to a multiple of 8).
///
/// The transport header travels in the first fragment, as on the real wire;
/// follow-on fragments carry raw payload with `Transport::Other` and the
/// original protocol number preserved, so reassembly can reconstruct the
/// segment. Packets that already fit are returned unchanged as a single
/// fragment.
pub fn fragment(pkt: &Packet, frag_payload: usize) -> Vec<Packet> {
    let unit = (frag_payload / 8).max(1) * 8;
    let transport_len = match pkt.transport {
        Transport::Tcp { .. } => 20,
        Transport::Udp { .. } => 8,
        Transport::Other => 0,
    };
    let total = transport_len + pkt.payload.len();
    if total <= unit {
        return vec![pkt.clone()];
    }
    let mut frags = Vec::new();
    // First fragment: transport header + leading payload. A unit smaller
    // than the transport header can't fit any payload alongside it.
    let first_payload_len = unit.saturating_sub(transport_len);
    let mut first = pkt.clone();
    first.payload = pkt.payload[..first_payload_len.min(pkt.payload.len())].to_vec();
    frags.push(first);
    // Rest: raw payload fragments.
    let mut off = first_payload_len;
    while off < pkt.payload.len() {
        let end = (off + unit).min(pkt.payload.len());
        let mut f = pkt.clone();
        f.transport = Transport::Other;
        f.payload = pkt.payload[off..end].to_vec();
        frags.push(f);
        off = end;
    }
    frags
}

/// Reassemble fragments produced by [`fragment`] back into the original
/// packet. Fragments must be in order and share `ip_id`; returns `None` on
/// a mismatched set.
pub fn reassemble(frags: &[Packet]) -> Option<Packet> {
    let first = frags.first()?;
    let mut out = first.clone();
    for f in &frags[1..] {
        if f.ip_id != first.ip_id || f.ip_src != first.ip_src || f.ip_dst != first.ip_dst {
            return None;
        }
        out.payload.extend_from_slice(&f.payload);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::TcpFlags;

    fn big_packet(n: usize) -> Packet {
        let mut p = Packet::tcp(1, 2, 3, 4, TcpFlags::ack());
        p.ip_id = 7;
        p.payload = (0..n).map(|i| (i % 251) as u8).collect();
        p
    }

    #[test]
    fn small_packet_untouched() {
        let p = big_packet(100);
        let f = fragment(&p, 1480);
        assert_eq!(f, vec![p]);
    }

    #[test]
    fn fragment_reassemble_roundtrip() {
        for n in [100usize, 1480, 1481, 3000, 9000] {
            let p = big_packet(n);
            let frags = fragment(&p, 1480);
            let q = reassemble(&frags).expect("reassembly");
            assert_eq!(p, q, "payload size {n}");
        }
    }

    #[test]
    fn fragment_sizes_respect_mtu() {
        let p = big_packet(5000);
        let frags = fragment(&p, 1480);
        assert!(frags.len() > 1);
        for f in &frags {
            let seg = match f.transport {
                Transport::Tcp { .. } => 20 + f.payload.len(),
                _ => f.payload.len(),
            };
            assert!(seg <= 1480, "fragment of {seg} bytes exceeds unit");
        }
        // Only the first fragment carries the TCP header.
        assert!(matches!(frags[0].transport, Transport::Tcp { .. }));
        assert!(frags[1..]
            .iter()
            .all(|f| matches!(f.transport, Transport::Other)));
    }

    #[test]
    fn mismatched_fragments_rejected() {
        let p = big_packet(3000);
        let mut frags = fragment(&p, 1480);
        frags[1].ip_id = 99;
        assert!(reassemble(&frags).is_none());
    }

    #[test]
    fn empty_set_rejected() {
        assert!(reassemble(&[]).is_none());
    }

    #[test]
    fn unit_smaller_than_transport_header_does_not_underflow() {
        // Regression: frag_payload < 8 rounds up to unit = 8, which is
        // smaller than the 20-byte TCP header — `unit - transport_len`
        // used to panic on usize underflow.
        let p = big_packet(100);
        for fp in 0..=24 {
            let frags = fragment(&p, fp);
            assert!(!frags.is_empty(), "frag_payload {fp}");
            let q = reassemble(&frags).expect("reassembly");
            assert_eq!(p, q, "frag_payload {fp}");
        }
    }
}
