//! Deterministic random packet generation.
//!
//! The paper's §5 accuracy experiment "generate\[s\] random inputs (i.e.,
//! packets) to both NFactor model and the original program ... repeat\[ed\]
//! 1000 times". [`PacketGen`] is that workload generator: a seeded,
//! reproducible stream of packets, with knobs to bias the stream toward a
//! NF's interesting region (e.g. the LB's listening port) so random testing
//! exercises both match and miss paths.

use crate::packet::Packet;
use crate::wire::TcpFlags;
use nf_support::rng::Rng;

/// Configuration for the random packet stream.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Pool of client addresses to draw sources from.
    pub client_ips: Vec<u32>,
    /// Pool of server-side addresses (NF VIPs, backends).
    pub server_ips: Vec<u32>,
    /// Ports that NFs in the experiment listen on; drawn with probability
    /// `bias_listen` for the destination port.
    pub listen_ports: Vec<u16>,
    /// Probability that a packet targets one of `listen_ports`.
    pub bias_listen: f64,
    /// Probability that a packet is UDP instead of TCP.
    pub udp_ratio: f64,
    /// Probability that a generated flow reuses a previously generated
    /// 4-tuple (to exercise "existing connection" paths).
    pub reuse_flow: f64,
    /// Maximum payload length.
    pub max_payload: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            client_ips: vec![0x0a000001, 0x0a000002, 0x0a000003, 0x0a000004],
            server_ips: vec![0x03030303, 0x01010101, 0x02020202],
            listen_ports: vec![80, 443],
            bias_listen: 0.6,
            udp_ratio: 0.1,
            reuse_flow: 0.4,
            max_payload: 64,
        }
    }
}

/// A seeded random packet generator.
#[derive(Debug)]
pub struct PacketGen {
    rng: Rng,
    cfg: GenConfig,
    history: Vec<(u32, u16, u32, u16)>,
}

impl PacketGen {
    /// Create a generator with the default config.
    pub fn new(seed: u64) -> Self {
        Self::with_config(seed, GenConfig::default())
    }

    /// Create a generator with an explicit config.
    pub fn with_config(seed: u64, cfg: GenConfig) -> Self {
        PacketGen {
            rng: Rng::new(seed),
            cfg,
            history: Vec::new(),
        }
    }

    fn pick<T: Copy>(&mut self, pool: &[T]) -> T {
        pool[self.rng.gen_index(pool.len())]
    }

    /// Generate the next packet in the stream.
    pub fn next_packet(&mut self) -> Packet {
        // Possibly replay a known flow to hit "existing connection" logic.
        if !self.history.is_empty() && self.rng.gen_bool(self.cfg.reuse_flow) {
            let idx = self.rng.gen_index(self.history.len());
            let (si, sp, di, dp) = self.history[idx];
            let mut p = Packet::tcp(si, sp, di, dp, TcpFlags::ack());
            p.payload = self.payload();
            return p;
        }
        let si = self.pick(&self.cfg.client_ips.clone());
        let sp = self.rng.gen_range_u64(1024, u64::from(u16::MAX)) as u16;
        let di = self.pick(&self.cfg.server_ips.clone());
        let dp = if self.rng.gen_bool(self.cfg.bias_listen) {
            self.pick(&self.cfg.listen_ports.clone())
        } else {
            self.rng.gen_range_u64(1, u64::from(u16::MAX)) as u16
        };
        self.history.push((si, sp, di, dp));
        if self.history.len() > 256 {
            self.history.remove(0);
        }
        let mut p = if self.rng.gen_bool(self.cfg.udp_ratio) {
            Packet::udp(si, sp, di, dp)
        } else {
            let flags = match self.rng.gen_index(4) {
                0 => TcpFlags::syn(),
                1 => TcpFlags::ack(),
                2 => TcpFlags(TcpFlags::ACK | TcpFlags::PSH),
                _ => TcpFlags::fin_ack(),
            };
            Packet::tcp(si, sp, di, dp, flags)
        };
        p.payload = self.payload();
        p.ip_id = self.rng.gen_u16();
        p
    }

    fn payload(&mut self) -> Vec<u8> {
        let n = self.rng.gen_range_u64(0, self.cfg.max_payload as u64) as usize;
        let mut out = vec![0u8; n];
        self.rng.fill(&mut out);
        out
    }

    /// Generate a batch of `n` packets.
    pub fn batch(&mut self, n: usize) -> Vec<Packet> {
        (0..n).map(|_| self.next_packet()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = PacketGen::new(42).batch(50);
        let b = PacketGen::new(42).batch(50);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = PacketGen::new(1).batch(50);
        let b = PacketGen::new(2).batch(50);
        assert_ne!(a, b);
    }

    #[test]
    fn respects_pools() {
        let cfg = GenConfig {
            client_ips: vec![7],
            server_ips: vec![9],
            listen_ports: vec![80],
            bias_listen: 1.0,
            udp_ratio: 0.0,
            reuse_flow: 0.0,
            max_payload: 0,
        };
        let mut g = PacketGen::with_config(0, cfg);
        for p in g.batch(20) {
            assert_eq!(p.ip_src, 7);
            assert_eq!(p.ip_dst, 9);
            assert_eq!(p.get(crate::Field::TcpDport).unwrap(), 80);
        }
    }

    #[test]
    fn reuse_produces_duplicate_tuples() {
        let cfg = GenConfig {
            reuse_flow: 0.9,
            udp_ratio: 0.0,
            ..GenConfig::default()
        };
        let mut g = PacketGen::with_config(3, cfg);
        let pkts = g.batch(200);
        let tuples: Vec<_> = pkts
            .iter()
            .map(|p| crate::FlowKey::of(p).unwrap())
            .collect();
        let unique: std::collections::HashSet<_> = tuples.iter().collect();
        assert!(unique.len() < tuples.len(), "expected reused flows");
    }

    #[test]
    fn all_generated_packets_serialize() {
        let mut g = PacketGen::new(99);
        for p in g.batch(100) {
            let q = Packet::from_wire(&p.to_wire()).unwrap();
            assert_eq!(p, q);
        }
    }
}
