//! Packet substrate for NFactor.
//!
//! The paper's NF programs read and write packets through scapy (Figure 1)
//! or the BSD socket API (Figure 3). This crate is the Rust substitute: it
//! provides wire-format Ethernet / IPv4 / TCP / UDP headers with real
//! parsing, serialization and checksums ([`wire`]), an abstract [`Packet`]
//! view whose named fields are what NFL programs and synthesized models
//! match on ([`packet`]), flow identification ([`flow`]), IPv4
//! fragmentation as used by the Figure 1 load balancer ([`frag`]), and a
//! deterministic seeded packet generator for the paper's §5 accuracy
//! experiment (1000 random packets per NF) ([`gen`]).
//!
//! Design follows the smoltcp school: plain data structures, no lifetimes
//! tricks, exhaustive documentation, and `Result`-based fallible parsing
//! with typed errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod field;
pub mod flow;
pub mod frag;
pub mod gen;
pub mod packet;
pub mod wire;
pub mod workload;

pub use field::Field;
pub use flow::{FiveTuple, FlowKey};
pub use gen::PacketGen;
pub use packet::{Packet, PacketError};
pub use wire::{EtherType, EthernetFrame, IpProtocol, Ipv4Header, TcpFlags, TcpHeader, UdpHeader};
pub use workload::{GenSource, JsonTraceSource, NfwReader, NfwWriter};
