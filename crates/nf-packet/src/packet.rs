//! The abstract [`Packet`] — the object NFL programs and NFactor models
//! manipulate.
//!
//! A `Packet` is the parsed, field-addressable view of one frame: every
//! header field is readable and writable through [`Field`], and the whole
//! thing converts losslessly to and from wire bytes (modulo checksums,
//! which are recomputed on emit). This is the role scapy's packet object
//! plays in the paper's Figure 1 code.

use crate::field::Field;
use crate::wire::{
    fmt_ipv4, EtherType, EthernetFrame, IpProtocol, Ipv4Header, MacAddr, TcpFlags, TcpHeader,
    UdpHeader, WireError,
};
use std::fmt;

/// Errors raised by packet construction or field access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// The wire bytes did not parse.
    Wire(WireError),
    /// A field was read that the packet's protocol does not carry
    /// (e.g. `tcp.sport` on an ICMP packet).
    MissingLayer(Field),
    /// A field was assigned a value outside its domain.
    ValueOutOfRange {
        /// The field being written.
        field: Field,
        /// The offending value.
        value: u64,
    },
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Wire(e) => write!(f, "wire error: {e}"),
            PacketError::MissingLayer(fld) => write!(f, "packet has no layer for field {fld}"),
            PacketError::ValueOutOfRange { field, value } => {
                write!(f, "value {value} out of range for field {field}")
            }
        }
    }
}

impl std::error::Error for PacketError {}

impl From<WireError> for PacketError {
    fn from(e: WireError) -> Self {
        PacketError::Wire(e)
    }
}

/// Transport-layer content of a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// A TCP segment.
    Tcp {
        /// Source port.
        sport: u16,
        /// Destination port.
        dport: u16,
        /// Sequence number.
        seq: u32,
        /// Acknowledgement number.
        ack: u32,
        /// Flag bits (low 6 bits).
        flags: u8,
    },
    /// A UDP datagram.
    Udp {
        /// Source port.
        sport: u16,
        /// Destination port.
        dport: u16,
    },
    /// Any other protocol, opaque to NF programs.
    Other,
}

/// A parsed, field-addressable packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Ethernet source (packed 48-bit).
    pub eth_src: u64,
    /// Ethernet destination (packed 48-bit).
    pub eth_dst: u64,
    /// EtherType.
    pub eth_type: u16,
    /// IPv4 source address (host order).
    pub ip_src: u32,
    /// IPv4 destination address (host order).
    pub ip_dst: u32,
    /// IPv4 protocol number.
    pub ip_proto: u8,
    /// IPv4 TTL.
    pub ip_ttl: u8,
    /// IPv4 identification.
    pub ip_id: u16,
    /// Transport layer.
    pub transport: Transport,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Default for Packet {
    fn default() -> Self {
        Packet {
            eth_src: 0,
            eth_dst: 0,
            eth_type: 0x0800,
            ip_src: 0,
            ip_dst: 0,
            ip_proto: 6,
            ip_ttl: 64,
            ip_id: 0,
            transport: Transport::Tcp {
                sport: 0,
                dport: 0,
                seq: 0,
                ack: 0,
                flags: 0,
            },
            payload: Vec::new(),
        }
    }
}

impl Packet {
    /// Build a TCP packet with the given 4-tuple and flags.
    pub fn tcp(ip_src: u32, sport: u16, ip_dst: u32, dport: u16, flags: TcpFlags) -> Self {
        Packet {
            ip_src,
            ip_dst,
            ip_proto: 6,
            transport: Transport::Tcp {
                sport,
                dport,
                seq: 0,
                ack: 0,
                flags: flags.0,
            },
            ..Packet::default()
        }
    }

    /// Build a UDP packet with the given 4-tuple.
    pub fn udp(ip_src: u32, sport: u16, ip_dst: u32, dport: u16) -> Self {
        Packet {
            ip_src,
            ip_dst,
            ip_proto: 17,
            transport: Transport::Udp { sport, dport },
            ..Packet::default()
        }
    }

    /// Read a field. Returns [`PacketError::MissingLayer`] when the packet's
    /// protocol does not carry it.
    pub fn get(&self, field: Field) -> Result<u64, PacketError> {
        let v = match field {
            Field::EthSrc => self.eth_src,
            Field::EthDst => self.eth_dst,
            Field::EthType => u64::from(self.eth_type),
            Field::IpSrc => u64::from(self.ip_src),
            Field::IpDst => u64::from(self.ip_dst),
            Field::IpProto => u64::from(self.ip_proto),
            Field::IpTtl => u64::from(self.ip_ttl),
            Field::IpLen => (Ipv4Header::LEN + self.transport_len() + self.payload.len()) as u64,
            Field::IpId => u64::from(self.ip_id),
            Field::TcpSport => match self.transport {
                Transport::Tcp { sport, .. } => u64::from(sport),
                Transport::Udp { sport, .. } => u64::from(sport),
                Transport::Other => return Err(PacketError::MissingLayer(field)),
            },
            Field::TcpDport => match self.transport {
                Transport::Tcp { dport, .. } => u64::from(dport),
                Transport::Udp { dport, .. } => u64::from(dport),
                Transport::Other => return Err(PacketError::MissingLayer(field)),
            },
            Field::TcpFlags => match self.transport {
                Transport::Tcp { flags, .. } => u64::from(flags),
                _ => return Err(PacketError::MissingLayer(field)),
            },
            Field::TcpSeq => match self.transport {
                Transport::Tcp { seq, .. } => u64::from(seq),
                _ => return Err(PacketError::MissingLayer(field)),
            },
            Field::TcpAck => match self.transport {
                Transport::Tcp { ack, .. } => u64::from(ack),
                _ => return Err(PacketError::MissingLayer(field)),
            },
            Field::PayloadLen => self.payload.len() as u64,
            Field::PayloadByte0 => u64::from(self.payload.first().copied().unwrap_or(0)),
            Field::PayloadByte1 => u64::from(self.payload.get(1).copied().unwrap_or(0)),
        };
        Ok(v)
    }

    /// Write a field, validating the value's domain.
    pub fn set(&mut self, field: Field, value: u64) -> Result<(), PacketError> {
        if value > field.max_value() {
            return Err(PacketError::ValueOutOfRange { field, value });
        }
        match field {
            Field::EthSrc => self.eth_src = value,
            Field::EthDst => self.eth_dst = value,
            Field::EthType => self.eth_type = value as u16,
            Field::IpSrc => self.ip_src = value as u32,
            Field::IpDst => self.ip_dst = value as u32,
            Field::IpProto => self.ip_proto = value as u8,
            Field::IpTtl => self.ip_ttl = value as u8,
            Field::IpLen => { /* derived; ignore writes */ }
            Field::IpId => self.ip_id = value as u16,
            Field::TcpSport => match &mut self.transport {
                Transport::Tcp { sport, .. } | Transport::Udp { sport, .. } => {
                    *sport = value as u16
                }
                Transport::Other => return Err(PacketError::MissingLayer(field)),
            },
            Field::TcpDport => match &mut self.transport {
                Transport::Tcp { dport, .. } | Transport::Udp { dport, .. } => {
                    *dport = value as u16
                }
                Transport::Other => return Err(PacketError::MissingLayer(field)),
            },
            Field::TcpFlags => match &mut self.transport {
                Transport::Tcp { flags, .. } => *flags = value as u8,
                _ => return Err(PacketError::MissingLayer(field)),
            },
            Field::TcpSeq => match &mut self.transport {
                Transport::Tcp { seq, .. } => *seq = value as u32,
                _ => return Err(PacketError::MissingLayer(field)),
            },
            Field::TcpAck => match &mut self.transport {
                Transport::Tcp { ack, .. } => *ack = value as u32,
                _ => return Err(PacketError::MissingLayer(field)),
            },
            Field::PayloadLen => {
                self.payload.resize(value as usize, 0);
            }
            Field::PayloadByte0 => {
                if self.payload.is_empty() {
                    self.payload.push(0);
                }
                self.payload[0] = value as u8;
            }
            Field::PayloadByte1 => {
                while self.payload.len() < 2 {
                    self.payload.push(0);
                }
                self.payload[1] = value as u8;
            }
        }
        Ok(())
    }

    /// TCP flag view of the packet, if it is TCP.
    pub fn tcp_flags(&self) -> Option<TcpFlags> {
        match self.transport {
            Transport::Tcp { flags, .. } => Some(TcpFlags(flags)),
            _ => None,
        }
    }

    /// Does this packet carry any transport ports (TCP or UDP)?
    pub fn has_ports(&self) -> bool {
        !matches!(self.transport, Transport::Other)
    }

    fn transport_len(&self) -> usize {
        match self.transport {
            Transport::Tcp { .. } => TcpHeader::LEN,
            Transport::Udp { .. } => UdpHeader::LEN,
            Transport::Other => 0,
        }
    }

    /// Total on-wire length (Ethernet + IP + transport + payload).
    pub fn wire_len(&self) -> usize {
        EthernetFrame::LEN + Ipv4Header::LEN + self.transport_len() + self.payload.len()
    }

    /// Serialize to wire bytes, computing all checksums.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out: Vec<u8> = Vec::with_capacity(self.wire_len());
        EthernetFrame {
            dst: MacAddr::from_u64(self.eth_dst),
            src: MacAddr::from_u64(self.eth_src),
            ethertype: EtherType::from(self.eth_type),
        }
        .emit(&mut out);
        let ip_start = out.len();
        Ipv4Header {
            dscp_ecn: 0,
            total_len: (Ipv4Header::LEN + self.transport_len() + self.payload.len()) as u16,
            ident: self.ip_id,
            dont_frag: false,
            more_frags: false,
            frag_offset: 0,
            ttl: self.ip_ttl,
            protocol: IpProtocol::from(self.ip_proto),
            src: self.ip_src,
            dst: self.ip_dst,
        }
        .emit(&mut out);
        let seg_start = out.len();
        match self.transport {
            Transport::Tcp {
                sport,
                dport,
                seq,
                ack,
                flags,
            } => {
                TcpHeader {
                    sport,
                    dport,
                    seq,
                    ack,
                    flags: TcpFlags(flags),
                    window: 65535,
                }
                .emit(&mut out);
                out.extend_from_slice(&self.payload);
                let (src, dst) = (self.ip_src, self.ip_dst);
                TcpHeader::fill_checksum(&mut out[seg_start..], src, dst);
            }
            Transport::Udp { sport, dport } => {
                UdpHeader {
                    sport,
                    dport,
                    length: (UdpHeader::LEN + self.payload.len()) as u16,
                }
                .emit(&mut out);
                out.extend_from_slice(&self.payload);
            }
            Transport::Other => {
                out.extend_from_slice(&self.payload);
            }
        }
        debug_assert!(out.len() >= ip_start);
        out
    }

    /// Parse from wire bytes. Verifies the IPv4 checksum; TCP checksum is
    /// verified when the segment is intact.
    pub fn from_wire(buf: &[u8]) -> Result<Packet, PacketError> {
        let (eth, mut off) = EthernetFrame::parse(buf)?;
        if eth.ethertype != EtherType::Ipv4 {
            return Err(PacketError::Wire(WireError::Malformed));
        }
        let (ip, ip_len) = Ipv4Header::parse(&buf[off..])?;
        off += ip_len;
        let seg_end = (off + ip.payload_len()).min(buf.len());
        let segment = &buf[off..seg_end];
        let (transport, payload) = match ip.protocol {
            IpProtocol::Tcp => {
                let (tcp, hl) = TcpHeader::parse(segment)?;
                if !TcpHeader::verify_checksum(segment, ip.src, ip.dst) {
                    return Err(PacketError::Wire(WireError::BadChecksum));
                }
                (
                    Transport::Tcp {
                        sport: tcp.sport,
                        dport: tcp.dport,
                        seq: tcp.seq,
                        ack: tcp.ack,
                        flags: tcp.flags.0,
                    },
                    segment[hl..].to_vec(),
                )
            }
            IpProtocol::Udp => {
                let (udp, hl) = UdpHeader::parse(segment)?;
                (
                    Transport::Udp {
                        sport: udp.sport,
                        dport: udp.dport,
                    },
                    segment[hl..].to_vec(),
                )
            }
            _ => (Transport::Other, segment.to_vec()),
        };
        Ok(Packet {
            eth_src: eth.src.to_u64(),
            eth_dst: eth.dst.to_u64(),
            eth_type: eth.ethertype.into(),
            ip_src: ip.src,
            ip_dst: ip.dst,
            ip_proto: ip.protocol.into(),
            ip_ttl: ip.ttl,
            ip_id: ip.ident,
            transport,
            payload,
        })
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.transport {
            Transport::Tcp {
                sport,
                dport,
                flags,
                ..
            } => write!(
                f,
                "TCP {}:{} > {}:{} [{}] len={}",
                fmt_ipv4(self.ip_src),
                sport,
                fmt_ipv4(self.ip_dst),
                dport,
                TcpFlags(flags),
                self.payload.len()
            ),
            Transport::Udp { sport, dport } => write!(
                f,
                "UDP {}:{} > {}:{} len={}",
                fmt_ipv4(self.ip_src),
                sport,
                fmt_ipv4(self.ip_dst),
                dport,
                self.payload.len()
            ),
            Transport::Other => write!(
                f,
                "IP proto={} {} > {} len={}",
                self.ip_proto,
                fmt_ipv4(self.ip_src),
                fmt_ipv4(self.ip_dst),
                self.payload.len()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::parse_ipv4;

    fn sample() -> Packet {
        let mut p = Packet::tcp(
            parse_ipv4("10.0.0.1").unwrap(),
            40000,
            parse_ipv4("3.3.3.3").unwrap(),
            80,
            TcpFlags::syn(),
        );
        p.payload = b"GET /".to_vec();
        p
    }

    #[test]
    fn wire_roundtrip_tcp() {
        let p = sample();
        let bytes = p.to_wire();
        let q = Packet::from_wire(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn wire_roundtrip_udp() {
        let mut p = Packet::udp(0x01010101, 53, 0x02020202, 5353);
        p.payload = vec![1, 2, 3];
        let q = Packet::from_wire(&p.to_wire()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn get_set_all_fields() {
        let mut p = sample();
        for f in Field::ALL {
            let v = p.get(f).unwrap();
            assert!(v <= f.max_value(), "{f} value {v} exceeds domain");
            if f != Field::IpLen {
                p.set(f, v).unwrap();
                assert_eq!(p.get(f).unwrap(), v, "{f} did not round-trip");
            }
        }
    }

    #[test]
    fn nat_rewrite_like_figure1() {
        // The Figure 1 LB rewrites src to (LB_IP, n_port) and dst to the
        // backend server — exactly what the model's flow action does.
        let mut p = sample();
        p.set(Field::IpSrc, u64::from(parse_ipv4("3.3.3.3").unwrap()))
            .unwrap();
        p.set(Field::TcpSport, 10000).unwrap();
        p.set(Field::IpDst, u64::from(parse_ipv4("1.1.1.1").unwrap()))
            .unwrap();
        p.set(Field::TcpDport, 80).unwrap();
        assert_eq!(p.get(Field::IpSrc).unwrap(), 0x03030303);
        assert_eq!(p.get(Field::TcpSport).unwrap(), 10000);
    }

    #[test]
    fn missing_layer_errors() {
        let mut p = sample();
        p.transport = Transport::Other;
        assert_eq!(
            p.get(Field::TcpSport),
            Err(PacketError::MissingLayer(Field::TcpSport))
        );
        assert_eq!(
            p.set(Field::TcpFlags, 2),
            Err(PacketError::MissingLayer(Field::TcpFlags))
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut p = sample();
        assert!(matches!(
            p.set(Field::TcpSport, 1 << 20),
            Err(PacketError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn payload_fields() {
        let mut p = Packet::default();
        assert_eq!(p.get(Field::PayloadByte0).unwrap(), 0);
        p.set(Field::PayloadByte1, 0xab).unwrap();
        assert_eq!(p.payload, vec![0, 0xab]);
        assert_eq!(p.get(Field::PayloadLen).unwrap(), 2);
        p.set(Field::PayloadLen, 5).unwrap();
        assert_eq!(p.payload.len(), 5);
    }

    #[test]
    fn corrupt_wire_rejected() {
        let p = sample();
        let mut bytes = p.to_wire();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff; // corrupt payload -> TCP checksum fails
        assert!(matches!(
            Packet::from_wire(&bytes),
            Err(PacketError::Wire(WireError::BadChecksum))
        ));
    }

    #[test]
    fn display_formats() {
        let p = sample();
        let s = p.to_string();
        assert!(s.contains("10.0.0.1:40000"), "{s}");
        assert!(s.contains("[S]"), "{s}");
    }

    #[test]
    fn from_wire_survives_truncation_at_every_offset() {
        let bytes = sample().to_wire();
        for n in 0..bytes.len() {
            // Every strict prefix must be rejected cleanly, not panic.
            assert!(Packet::from_wire(&bytes[..n]).is_err(), "prefix {n}");
        }
    }

    #[test]
    fn from_wire_survives_adversarial_mutations() {
        let bytes = sample().to_wire();
        let mut rng = nf_support::rng::Rng::new(42);
        for _ in 0..2000 {
            let mut b = bytes.clone();
            // Flip 1–8 random bytes and decode; any Err is fine, a panic
            // is not.
            for _ in 0..1 + rng.gen_below(8) {
                let i = rng.gen_below(b.len() as u64) as usize;
                b[i] ^= rng.gen_below(256) as u8;
            }
            let _ = Packet::from_wire(&b);
        }
    }

    #[test]
    fn ip_len_is_derived() {
        let p = sample();
        assert_eq!(
            p.get(Field::IpLen).unwrap() as usize,
            Ipv4Header::LEN + TcpHeader::LEN + p.payload.len()
        );
    }
}
