//! Wire-format headers: Ethernet II, IPv4, TCP, UDP.
//!
//! Each header type owns its fields as plain integers and converts to and
//! from bytes with [`emit`](Ipv4Header::emit) / [`parse`](Ipv4Header::parse).
//! Checksums are computed with the standard Internet one's-complement sum;
//! `parse` verifies them and `emit` fills them in.

use nf_support::bytes::PutBytes;
use std::fmt;

/// Errors raised while parsing a wire-format header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the fixed header.
    Truncated,
    /// A version / header-length field has an unsupported value.
    Malformed,
    /// The checksum did not verify.
    BadChecksum,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated"),
            WireError::Malformed => write!(f, "malformed header"),
            WireError::BadChecksum => write!(f, "bad checksum"),
        }
    }
}

impl std::error::Error for WireError {}

/// A six-byte IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// True if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if the group bit (LSB of the first octet) is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Pack into a `u64` (lower 48 bits) for storage in NFL integers.
    pub fn to_u64(&self) -> u64 {
        self.0.iter().fold(0u64, |acc, b| (acc << 8) | u64::from(*b))
    }

    /// Unpack from the lower 48 bits of a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut b = [0u8; 6];
        for (i, byte) in b.iter_mut().enumerate() {
            *byte = ((v >> (8 * (5 - i))) & 0xff) as u8;
        }
        MacAddr(b)
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType values this stack understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (`0x0800`).
    Ipv4,
    /// ARP (`0x0806`) — recognised but not processed by NF programs.
    Arp,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(v: EtherType) -> u16 {
        match v {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(o) => o,
        }
    }
}

/// An Ethernet II frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
}

impl EthernetFrame {
    /// Fixed length of an Ethernet II header in bytes.
    pub const LEN: usize = 14;

    /// Parse a header from the front of `buf`, returning the header and the
    /// number of bytes consumed.
    pub fn parse(buf: &[u8]) -> Result<(Self, usize), WireError> {
        if buf.len() < Self::LEN {
            return Err(WireError::Truncated);
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        let ethertype = u16::from_be_bytes([buf[12], buf[13]]).into();
        Ok((
            EthernetFrame {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype,
            },
            Self::LEN,
        ))
    }

    /// Append the wire form of this header to `out`.
    pub fn emit(&self, out: &mut Vec<u8>) {
        out.put_slice(&self.dst.0);
        out.put_slice(&self.src.0);
        out.put_u16(self.ethertype.into());
    }
}

impl Default for EthernetFrame {
    fn default() -> Self {
        EthernetFrame {
            dst: MacAddr::default(),
            src: MacAddr::default(),
            ethertype: EtherType::Ipv4,
        }
    }
}

/// IP protocol numbers this stack understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(v: IpProtocol) -> u8 {
        match v {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(o) => o,
        }
    }
}

/// Compute the Internet checksum (RFC 1071) over `data`.
///
/// The returned value is the final one's-complement, ready to be stored in a
/// checksum field. Verification: a buffer whose checksum field is filled in
/// sums to zero.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// An IPv4 header (without options — options are rejected as
/// [`WireError::Malformed`], mirroring smoltcp's policy of the features NF
/// code actually exercises).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated services / TOS byte.
    pub dscp_ecn: u8,
    /// Total length of header plus payload in bytes.
    pub total_len: u16,
    /// Identification field, used to correlate fragments.
    pub ident: u16,
    /// Don't-fragment flag.
    pub dont_frag: bool,
    /// More-fragments flag.
    pub more_frags: bool,
    /// Fragment offset in units of 8 bytes.
    pub frag_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: IpProtocol,
    /// Source address, host byte order.
    pub src: u32,
    /// Destination address, host byte order.
    pub dst: u32,
}

impl Default for Ipv4Header {
    fn default() -> Self {
        Ipv4Header {
            dscp_ecn: 0,
            total_len: Self::LEN as u16,
            ident: 0,
            dont_frag: false,
            more_frags: false,
            frag_offset: 0,
            ttl: 64,
            protocol: IpProtocol::Tcp,
            src: 0,
            dst: 0,
        }
    }
}

impl Ipv4Header {
    /// Fixed length of an option-less IPv4 header in bytes.
    pub const LEN: usize = 20;

    /// Parse and checksum-verify a header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<(Self, usize), WireError> {
        if buf.len() < Self::LEN {
            return Err(WireError::Truncated);
        }
        let ver_ihl = buf[0];
        if ver_ihl >> 4 != 4 {
            return Err(WireError::Malformed);
        }
        let ihl = usize::from(ver_ihl & 0x0f) * 4;
        if ihl != Self::LEN {
            // Options unsupported.
            return Err(WireError::Malformed);
        }
        if internet_checksum(&buf[..Self::LEN]) != 0 {
            return Err(WireError::BadChecksum);
        }
        let total_len = u16::from_be_bytes([buf[2], buf[3]]);
        if usize::from(total_len) < ihl {
            return Err(WireError::Malformed);
        }
        let flags_frag = u16::from_be_bytes([buf[6], buf[7]]);
        Ok((
            Ipv4Header {
                dscp_ecn: buf[1],
                total_len,
                ident: u16::from_be_bytes([buf[4], buf[5]]),
                dont_frag: flags_frag & 0x4000 != 0,
                more_frags: flags_frag & 0x2000 != 0,
                frag_offset: flags_frag & 0x1fff,
                ttl: buf[8],
                protocol: buf[9].into(),
                src: u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]]),
                dst: u32::from_be_bytes([buf[16], buf[17], buf[18], buf[19]]),
            },
            Self::LEN,
        ))
    }

    /// Append the wire form, computing the header checksum.
    pub fn emit(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.put_u8(0x45);
        out.put_u8(self.dscp_ecn);
        out.put_u16(self.total_len);
        out.put_u16(self.ident);
        let mut flags_frag = self.frag_offset & 0x1fff;
        if self.dont_frag {
            flags_frag |= 0x4000;
        }
        if self.more_frags {
            flags_frag |= 0x2000;
        }
        out.put_u16(flags_frag);
        out.put_u8(self.ttl);
        out.put_u8(self.protocol.into());
        out.put_u16(0); // checksum placeholder
        out.put_u32(self.src);
        out.put_u32(self.dst);
        let csum = internet_checksum(&out[start..start + Self::LEN]);
        out[start + 10..start + 12].copy_from_slice(&csum.to_be_bytes());
    }

    /// Payload length implied by `total_len`.
    pub fn payload_len(&self) -> usize {
        usize::from(self.total_len).saturating_sub(Self::LEN)
    }
}

/// TCP flag bits, stored in the low 6 bits of a byte as on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag bit.
    pub const FIN: u8 = 0x01;
    /// SYN flag bit.
    pub const SYN: u8 = 0x02;
    /// RST flag bit.
    pub const RST: u8 = 0x04;
    /// PSH flag bit.
    pub const PSH: u8 = 0x08;
    /// ACK flag bit.
    pub const ACK: u8 = 0x10;
    /// URG flag bit.
    pub const URG: u8 = 0x20;

    /// A bare SYN.
    pub fn syn() -> Self {
        TcpFlags(Self::SYN)
    }
    /// SYN+ACK.
    pub fn syn_ack() -> Self {
        TcpFlags(Self::SYN | Self::ACK)
    }
    /// A bare ACK.
    pub fn ack() -> Self {
        TcpFlags(Self::ACK)
    }
    /// FIN+ACK.
    pub fn fin_ack() -> Self {
        TcpFlags(Self::FIN | Self::ACK)
    }
    /// A bare RST.
    pub fn rst() -> Self {
        TcpFlags(Self::RST)
    }

    /// Is the SYN bit set?
    pub fn has_syn(&self) -> bool {
        self.0 & Self::SYN != 0
    }
    /// Is the ACK bit set?
    pub fn has_ack(&self) -> bool {
        self.0 & Self::ACK != 0
    }
    /// Is the FIN bit set?
    pub fn has_fin(&self) -> bool {
        self.0 & Self::FIN != 0
    }
    /// Is the RST bit set?
    pub fn has_rst(&self) -> bool {
        self.0 & Self::RST != 0
    }
    /// Is the PSH bit set?
    pub fn has_psh(&self) -> bool {
        self.0 & Self::PSH != 0
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (Self::SYN, "S"),
            (Self::ACK, "A"),
            (Self::FIN, "F"),
            (Self::RST, "R"),
            (Self::PSH, "P"),
            (Self::URG, "U"),
        ];
        let mut any = false;
        for (bit, n) in names {
            if self.0 & bit != 0 {
                write!(f, "{n}")?;
                any = true;
            }
        }
        if !any {
            write!(f, ".")?;
        }
        Ok(())
    }
}

/// A TCP header (option-less, like the IPv4 header above).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

impl Default for TcpHeader {
    fn default() -> Self {
        TcpHeader {
            sport: 0,
            dport: 0,
            seq: 0,
            ack: 0,
            flags: TcpFlags::default(),
            window: 65535,
        }
    }
}

impl TcpHeader {
    /// Fixed length of an option-less TCP header in bytes.
    pub const LEN: usize = 20;

    /// Parse a header from the front of `buf`.
    ///
    /// The TCP checksum requires the IP pseudo-header, so verification is
    /// done by [`TcpHeader::verify_checksum`] with the surrounding
    /// addresses; `parse` alone does not verify.
    pub fn parse(buf: &[u8]) -> Result<(Self, usize), WireError> {
        if buf.len() < Self::LEN {
            return Err(WireError::Truncated);
        }
        let data_off = usize::from(buf[12] >> 4) * 4;
        if data_off < Self::LEN {
            return Err(WireError::Malformed);
        }
        if buf.len() < data_off {
            return Err(WireError::Truncated);
        }
        Ok((
            TcpHeader {
                sport: u16::from_be_bytes([buf[0], buf[1]]),
                dport: u16::from_be_bytes([buf[2], buf[3]]),
                seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
                ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
                flags: TcpFlags(buf[13] & 0x3f),
                window: u16::from_be_bytes([buf[14], buf[15]]),
            },
            data_off,
        ))
    }

    /// Append the wire form with a zero checksum; [`TcpHeader::fill_checksum`]
    /// patches it once the payload is in place.
    pub fn emit(&self, out: &mut Vec<u8>) {
        out.put_u16(self.sport);
        out.put_u16(self.dport);
        out.put_u32(self.seq);
        out.put_u32(self.ack);
        out.put_u8(5 << 4); // data offset = 5 words, no options
        out.put_u8(self.flags.0);
        out.put_u16(self.window);
        out.put_u16(0); // checksum placeholder
        out.put_u16(0); // urgent pointer
    }

    /// Compute the TCP checksum over `segment` (header + payload) given the
    /// IPv4 pseudo-header addresses, and patch it into the segment bytes.
    pub fn fill_checksum(segment: &mut [u8], src: u32, dst: u32) {
        if segment.len() < Self::LEN {
            // No room for the checksum field — nothing to patch.
            return;
        }
        segment[16] = 0;
        segment[17] = 0;
        let csum = tcp_udp_checksum(segment, src, dst, IpProtocol::Tcp);
        segment[16..18].copy_from_slice(&csum.to_be_bytes());
    }

    /// Verify the checksum of `segment` (header + payload).
    pub fn verify_checksum(segment: &[u8], src: u32, dst: u32) -> bool {
        tcp_udp_checksum_raw(segment, src, dst, IpProtocol::Tcp) == 0
    }
}

/// A UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UdpHeader {
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// Length of header plus payload.
    pub length: u16,
}

impl UdpHeader {
    /// Fixed length of a UDP header in bytes.
    pub const LEN: usize = 8;

    /// Parse a header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<(Self, usize), WireError> {
        if buf.len() < Self::LEN {
            return Err(WireError::Truncated);
        }
        let length = u16::from_be_bytes([buf[4], buf[5]]);
        if usize::from(length) < Self::LEN {
            return Err(WireError::Malformed);
        }
        Ok((
            UdpHeader {
                sport: u16::from_be_bytes([buf[0], buf[1]]),
                dport: u16::from_be_bytes([buf[2], buf[3]]),
                length,
            },
            Self::LEN,
        ))
    }

    /// Append the wire form with a zero checksum (legal for IPv4 UDP).
    pub fn emit(&self, out: &mut Vec<u8>) {
        out.put_u16(self.sport);
        out.put_u16(self.dport);
        out.put_u16(self.length);
        out.put_u16(0); // checksum: 0 = not computed (valid on IPv4)
    }
}

fn pseudo_header_sum(src: u32, dst: u32, proto: IpProtocol, len: usize) -> u32 {
    let mut sum = 0u32;
    sum += src >> 16;
    sum += src & 0xffff;
    sum += dst >> 16;
    sum += dst & 0xffff;
    sum += u32::from(u8::from(proto));
    sum += len as u32;
    sum
}

fn tcp_udp_checksum_raw(segment: &[u8], src: u32, dst: u32, proto: IpProtocol) -> u16 {
    let mut sum = pseudo_header_sum(src, dst, proto, segment.len());
    let mut chunks = segment.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Compute the TCP/UDP checksum of `segment` under the given pseudo-header.
pub fn tcp_udp_checksum(segment: &[u8], src: u32, dst: u32, proto: IpProtocol) -> u16 {
    match tcp_udp_checksum_raw(segment, src, dst, proto) {
        // 0 is transmitted as 0xffff for UDP; harmless for TCP too.
        0 => 0xffff,
        c => c,
    }
}

/// Format a host-byte-order IPv4 address in dotted-quad notation.
pub fn fmt_ipv4(addr: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        addr >> 24,
        (addr >> 16) & 0xff,
        (addr >> 8) & 0xff,
        addr & 0xff
    )
}

/// Parse a dotted-quad IPv4 address into host byte order.
pub fn parse_ipv4(s: &str) -> Option<u32> {
    let mut parts = s.split('.');
    let mut addr = 0u32;
    for _ in 0..4 {
        let octet: u32 = parts.next()?.parse().ok()?;
        if octet > 255 {
            return None;
        }
        addr = (addr << 8) | octet;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(addr)
}

/// Skip past a parsed region of a buffer. Utility for chained parsing.
pub fn advance(buf: &mut &[u8], n: usize) {
    nf_support::bytes::advance(buf, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_u64_roundtrip() {
        let m = MacAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x42]);
        assert_eq!(MacAddr::from_u64(m.to_u64()), m);
    }

    #[test]
    fn mac_display_and_flags() {
        let m = MacAddr([0x01, 0, 0, 0, 0, 1]);
        assert!(m.is_multicast());
        assert!(!m.is_broadcast());
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert_eq!(m.to_string(), "01:00:00:00:00:01");
    }

    #[test]
    fn ethertype_roundtrip() {
        for v in [0x0800u16, 0x0806, 0x86dd, 0x1234] {
            assert_eq!(u16::from(EtherType::from(v)), v);
        }
    }

    #[test]
    fn ethernet_roundtrip() {
        let f = EthernetFrame {
            dst: MacAddr([1, 2, 3, 4, 5, 6]),
            src: MacAddr([7, 8, 9, 10, 11, 12]),
            ethertype: EtherType::Ipv4,
        };
        let mut b: Vec<u8> = Vec::new();
        f.emit(&mut b);
        let (g, n) = EthernetFrame::parse(&b).unwrap();
        assert_eq!(n, EthernetFrame::LEN);
        assert_eq!(f, g);
    }

    #[test]
    fn ethernet_truncated() {
        assert_eq!(
            EthernetFrame::parse(&[0u8; 13]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn ipv4_roundtrip_and_checksum() {
        let h = Ipv4Header {
            dscp_ecn: 0,
            total_len: 40,
            ident: 0x1234,
            dont_frag: true,
            more_frags: false,
            frag_offset: 0,
            ttl: 63,
            protocol: IpProtocol::Tcp,
            src: parse_ipv4("10.0.0.1").unwrap(),
            dst: parse_ipv4("10.0.0.2").unwrap(),
        };
        let mut b: Vec<u8> = Vec::new();
        h.emit(&mut b);
        let (g, n) = Ipv4Header::parse(&b).unwrap();
        assert_eq!(n, Ipv4Header::LEN);
        assert_eq!(h, g);
        // Corrupt a byte: checksum must fail.
        b[8] ^= 0xff;
        assert_eq!(Ipv4Header::parse(&b).unwrap_err(), WireError::BadChecksum);
    }

    #[test]
    fn ipv4_rejects_options_and_bad_version() {
        let h = Ipv4Header::default();
        let mut b: Vec<u8> = Vec::new();
        h.emit(&mut b);
        let mut with_opts = b.clone();
        with_opts[0] = 0x46; // ihl = 6 words
        assert_eq!(
            Ipv4Header::parse(&with_opts).unwrap_err(),
            WireError::Malformed
        );
        let mut v6 = b.clone();
        v6[0] = 0x65;
        assert_eq!(Ipv4Header::parse(&v6).unwrap_err(), WireError::Malformed);
    }

    #[test]
    fn tcp_roundtrip_and_checksum() {
        let h = TcpHeader {
            sport: 12345,
            dport: 80,
            seq: 1,
            ack: 2,
            flags: TcpFlags::syn_ack(),
            window: 4096,
        };
        let mut b: Vec<u8> = Vec::new();
        h.emit(&mut b);
        b.put_slice(b"hello");
        let src = parse_ipv4("1.1.1.1").unwrap();
        let dst = parse_ipv4("2.2.2.2").unwrap();
        let mut seg = b.clone();
        TcpHeader::fill_checksum(&mut seg, src, dst);
        assert!(TcpHeader::verify_checksum(&seg, src, dst));
        seg[20] ^= 0x01; // flip payload bit
        assert!(!TcpHeader::verify_checksum(&seg, src, dst));
        let (g, n) = TcpHeader::parse(&seg).unwrap();
        assert_eq!(n, TcpHeader::LEN);
        assert_eq!(g.sport, 12345);
        assert_eq!(g.flags, TcpFlags::syn_ack());
    }

    #[test]
    fn udp_roundtrip() {
        let h = UdpHeader {
            sport: 53,
            dport: 5353,
            length: 8 + 4,
        };
        let mut b: Vec<u8> = Vec::new();
        h.emit(&mut b);
        let (g, n) = UdpHeader::parse(&b).unwrap();
        assert_eq!(n, UdpHeader::LEN);
        assert_eq!(g, h);
    }

    #[test]
    fn udp_rejects_short_length() {
        let h = UdpHeader {
            sport: 1,
            dport: 2,
            length: 4,
        };
        let mut b: Vec<u8> = Vec::new();
        h.emit(&mut b);
        assert_eq!(UdpHeader::parse(&b).unwrap_err(), WireError::Malformed);
    }

    #[test]
    fn checksum_odd_length() {
        // RFC 1071 example-style check: complementing makes the total zero.
        let data = [0x45u8, 0x00, 0x00, 0x03, 0xaa];
        let c = internet_checksum(&data);
        let mut with = data.to_vec();
        with.extend_from_slice(&c.to_be_bytes());
        // Sum including stored checksum verifies to zero only for even
        // alignment of the checksum field, so just sanity-check determinism.
        assert_eq!(c, internet_checksum(&data));
    }

    #[test]
    fn ipv4_addr_parse_format() {
        assert_eq!(parse_ipv4("3.3.3.3"), Some(0x03030303));
        assert_eq!(fmt_ipv4(0x03030303), "3.3.3.3");
        assert_eq!(parse_ipv4("256.0.0.1"), None);
        assert_eq!(parse_ipv4("1.2.3"), None);
        assert_eq!(parse_ipv4("1.2.3.4.5"), None);
    }

    #[test]
    fn tcp_flags_display() {
        assert_eq!(TcpFlags::syn_ack().to_string(), "SA");
        assert_eq!(TcpFlags::default().to_string(), ".");
    }

    #[test]
    fn fill_checksum_tolerates_short_segments() {
        // Regression: used to index [16..18] unconditionally and panic on
        // segments shorter than a TCP header.
        for n in 0..TcpHeader::LEN {
            let mut seg = vec![0u8; n];
            TcpHeader::fill_checksum(&mut seg, 1, 2);
            assert_eq!(seg, vec![0u8; n], "short segment must be untouched");
        }
    }

    #[test]
    fn header_parsers_survive_adversarial_bytes() {
        // Every parser must return Err — never panic — on arbitrary junk.
        let mut rng = nf_support::rng::Rng::new(0xadbeef);
        for _ in 0..2000 {
            let len = rng.gen_below(64) as usize;
            let buf: Vec<u8> = (0..len).map(|_| rng.gen_below(256) as u8).collect();
            let _ = EthernetFrame::parse(&buf);
            let _ = Ipv4Header::parse(&buf);
            let _ = TcpHeader::parse(&buf);
            let _ = UdpHeader::parse(&buf);
        }
    }
}
