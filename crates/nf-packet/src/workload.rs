//! Packet workload sources for the sharded runtime's streaming path.
//!
//! Three [`WorkloadSource`] implementations over [`Packet`]:
//!
//! * [`GenSource`] — the seeded [`PacketGen`] as a bounded stream.
//! * [`NfwReader`] — the compact `.nfw` binary trace format: a 20-byte
//!   header (`NFW1` magic, seed, packet count) followed by
//!   length-prefixed packet records, written by [`NfwWriter`]. The
//!   reader is a plain chunked `BufReader` (no mmap), so a
//!   million-packet trace streams at constant memory.
//! * [`JsonTraceSource`] — the CLI's JSON `{"trace": [{...}, ...]}`
//!   workload files, scanned record by record instead of materializing
//!   the whole document; a malformed record is reported with its byte
//!   offset.
//!
//! The in-memory case is covered by `nf_support::workload::SliceSource`.
//!
//! The `.nfw` record codec encodes every [`Packet`] field directly
//! (big-endian), unlike `to_wire`/`from_wire` which round-trip through
//! real headers and so cannot represent non-IPv4 ethertypes or
//! `Transport::Other` losslessly.

use crate::field::Field;
use crate::gen::PacketGen;
use crate::packet::{Packet, Transport};
use crate::wire::TcpFlags;
use nf_support::bytes::PutBytes;
use nf_support::json::Value;
use nf_support::workload::{read_record, write_record, WorkloadError, WorkloadSource};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};

/// `.nfw` file magic, first 4 bytes of the header.
pub const NFW_MAGIC: &[u8; 4] = b"NFW1";

/// `.nfw` header length: magic (4) + seed (8) + count (8).
pub const NFW_HEADER_LEN: u64 = 20;

const TAG_TCP: u8 = 0;
const TAG_UDP: u8 = 1;
const TAG_OTHER: u8 = 2;

/// Append the lossless `.nfw` record encoding of `pkt` to `buf`.
pub fn encode_packet(pkt: &Packet, buf: &mut Vec<u8>) {
    buf.put_u64(pkt.eth_src);
    buf.put_u64(pkt.eth_dst);
    buf.put_u16(pkt.eth_type);
    buf.put_u32(pkt.ip_src);
    buf.put_u32(pkt.ip_dst);
    buf.put_u8(pkt.ip_proto);
    buf.put_u8(pkt.ip_ttl);
    buf.put_u16(pkt.ip_id);
    match &pkt.transport {
        Transport::Tcp { sport, dport, seq, ack, flags } => {
            buf.put_u8(TAG_TCP);
            buf.put_u16(*sport);
            buf.put_u16(*dport);
            buf.put_u32(*seq);
            buf.put_u32(*ack);
            buf.put_u8(*flags);
        }
        Transport::Udp { sport, dport } => {
            buf.put_u8(TAG_UDP);
            buf.put_u16(*sport);
            buf.put_u16(*dport);
        }
        Transport::Other => buf.put_u8(TAG_OTHER),
    }
    buf.put_u32(pkt.payload.len() as u32);
    buf.put_slice(&pkt.payload);
}

/// Decode one `.nfw` record produced by [`encode_packet`]. The record
/// must be consumed exactly; trailing bytes are an error.
pub fn decode_packet(mut b: &[u8]) -> Result<Packet, String> {
    fn take<'a>(b: &mut &'a [u8], n: usize) -> Result<&'a [u8], String> {
        if b.len() < n {
            return Err(format!("record short: wanted {n} more bytes, have {}", b.len()));
        }
        let (head, tail) = b.split_at(n);
        *b = tail;
        Ok(head)
    }
    fn u8_(b: &mut &[u8]) -> Result<u8, String> {
        Ok(take(b, 1)?[0])
    }
    // `take` returns exactly `n` bytes, so the array conversions
    // cannot fail; fold the impossible case into the short-record
    // error rather than panicking.
    fn u16_(b: &mut &[u8]) -> Result<u16, String> {
        let s = take(b, 2)?;
        Ok(u16::from_be_bytes(s.try_into().map_err(|_| "bad u16 slice")?))
    }
    fn u32_(b: &mut &[u8]) -> Result<u32, String> {
        let s = take(b, 4)?;
        Ok(u32::from_be_bytes(s.try_into().map_err(|_| "bad u32 slice")?))
    }
    fn u64_(b: &mut &[u8]) -> Result<u64, String> {
        let s = take(b, 8)?;
        Ok(u64::from_be_bytes(s.try_into().map_err(|_| "bad u64 slice")?))
    }
    let mut pkt = Packet {
        eth_src: u64_(&mut b)?,
        eth_dst: u64_(&mut b)?,
        eth_type: u16_(&mut b)?,
        ip_src: u32_(&mut b)?,
        ip_dst: u32_(&mut b)?,
        ip_proto: u8_(&mut b)?,
        ip_ttl: u8_(&mut b)?,
        ip_id: u16_(&mut b)?,
        transport: Transport::Other,
        payload: Vec::new(),
    };
    pkt.transport = match u8_(&mut b)? {
        TAG_TCP => Transport::Tcp {
            sport: u16_(&mut b)?,
            dport: u16_(&mut b)?,
            seq: u32_(&mut b)?,
            ack: u32_(&mut b)?,
            flags: u8_(&mut b)?,
        },
        TAG_UDP => Transport::Udp { sport: u16_(&mut b)?, dport: u16_(&mut b)? },
        TAG_OTHER => Transport::Other,
        t => return Err(format!("unknown transport tag {t}")),
    };
    let plen = u32_(&mut b)? as usize;
    pkt.payload = take(&mut b, plen)?.to_vec();
    if !b.is_empty() {
        return Err(format!("{} trailing bytes after payload", b.len()));
    }
    Ok(pkt)
}

/// Streaming writer for the `.nfw` trace format.
///
/// The header's count field is written as a placeholder on
/// [`create`](Self::create) and patched on [`finish`](Self::finish), so
/// packets can be pushed one at a time without knowing the total up
/// front. A file that is dropped without `finish` keeps count 0 and is
/// rejected by the reader's count check.
#[derive(Debug)]
pub struct NfwWriter {
    w: BufWriter<File>,
    count: u64,
    buf: Vec<u8>,
}

impl NfwWriter {
    /// Create (truncate) `path` and write the header with `seed` and a
    /// zero packet count.
    pub fn create(path: &str, seed: u64) -> std::io::Result<NfwWriter> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(NFW_MAGIC)?;
        w.write_all(&seed.to_be_bytes())?;
        w.write_all(&0u64.to_be_bytes())?;
        Ok(NfwWriter { w, count: 0, buf: Vec::with_capacity(64) })
    }

    /// Append one packet record.
    pub fn push(&mut self, pkt: &Packet) -> std::io::Result<()> {
        self.buf.clear();
        encode_packet(pkt, &mut self.buf);
        write_record(&mut self.w, &self.buf)?;
        self.count += 1;
        Ok(())
    }

    /// Patch the header's packet count and flush; returns the count.
    pub fn finish(mut self) -> std::io::Result<u64> {
        self.w.flush()?;
        let f = self.w.get_mut();
        f.seek(SeekFrom::Start(12))?;
        f.write_all(&self.count.to_be_bytes())?;
        f.flush()?;
        Ok(self.count)
    }
}

/// Chunked reader for `.nfw` traces; a [`WorkloadSource`] yielding the
/// recorded packets in order at constant memory.
#[derive(Debug)]
pub struct NfwReader {
    r: BufReader<File>,
    seed: u64,
    count: u64,
    read: u64,
    offset: u64,
    buf: Vec<u8>,
    done: bool,
}

impl NfwReader {
    /// Open `path` and validate its header.
    pub fn open(path: &str) -> Result<NfwReader, WorkloadError> {
        let f = File::open(path)
            .map_err(|e| WorkloadError::msg(format!("{path}: {e}")))?;
        let mut r = BufReader::new(f);
        let mut header = [0u8; NFW_HEADER_LEN as usize];
        r.read_exact(&mut header)
            .map_err(|e| WorkloadError::at(0, format!("short .nfw header: {e}")))?;
        if &header[..4] != NFW_MAGIC {
            return Err(WorkloadError::at(0, "not an .nfw file (bad magic)".to_string()));
        }
        // The header array is fixed-size, so the range conversions
        // cannot fail; report rather than panic if they ever do.
        let word = |range: std::ops::Range<usize>| -> Result<u64, WorkloadError> {
            Ok(u64::from_be_bytes(header[range].try_into().map_err(
                |_| WorkloadError::at(0, "malformed .nfw header".to_string()),
            )?))
        };
        let seed = word(4..12)?;
        let count = word(12..20)?;
        Ok(NfwReader {
            r,
            seed,
            count,
            read: 0,
            offset: NFW_HEADER_LEN,
            buf: Vec::with_capacity(64),
            done: false,
        })
    }

    /// The seed recorded in the header (provenance of generated traces).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The packet count recorded in the header.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl WorkloadSource for NfwReader {
    type Item = Packet;

    fn next_batch(&mut self, out: &mut Vec<Packet>, max: usize) -> Result<usize, WorkloadError> {
        if self.done {
            return Ok(0);
        }
        let mut n = 0;
        while n < max {
            let record_at = self.offset;
            if !read_record(&mut self.r, &mut self.offset, &mut self.buf)? {
                self.done = true;
                if self.read != self.count {
                    return Err(WorkloadError::at(
                        record_at,
                        format!(
                            "trace ended after {} of {} packets (truncated or unfinished writer)",
                            self.read, self.count
                        ),
                    ));
                }
                break;
            }
            let pkt = decode_packet(&self.buf)
                .map_err(|e| WorkloadError::at(record_at, format!("bad packet record: {e}")))?;
            out.push(pkt);
            self.read += 1;
            n += 1;
        }
        Ok(n)
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.count)
    }
}

/// The seeded [`PacketGen`] as a bounded [`WorkloadSource`].
#[derive(Debug)]
pub struct GenSource {
    gen: PacketGen,
    remaining: u64,
    total: u64,
}

impl GenSource {
    /// A source yielding `total` packets from `PacketGen::new(seed)`.
    pub fn new(seed: u64, total: u64) -> GenSource {
        GenSource { gen: PacketGen::new(seed), remaining: total, total }
    }
}

impl WorkloadSource for GenSource {
    type Item = Packet;

    fn next_batch(&mut self, out: &mut Vec<Packet>, max: usize) -> Result<usize, WorkloadError> {
        let n = (max as u64).min(self.remaining) as usize;
        for _ in 0..n {
            out.push(self.gen.next_packet());
        }
        self.remaining -= n as u64;
        Ok(n)
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.total)
    }
}

/// Streaming reader for the CLI's JSON workload traces
/// (`{"trace": [{"ip.src": 1, ...}, ...]}`).
///
/// The file is scanned byte by byte: once the top-level `"trace"` array
/// is located, each balanced `{...}` element is extracted and parsed
/// individually, so packets reach the engine in batches instead of as
/// one materialized vector — and a malformed or truncated trailing
/// record is diagnosed with the byte offset where it starts.
#[derive(Debug)]
pub struct JsonTraceSource {
    r: BufReader<File>,
    offset: u64,
    peeked: Option<u8>,
    index: u64,
    done: bool,
}

impl JsonTraceSource {
    /// Open `path` and scan to the start of its top-level `"trace"`
    /// array. Returns `Ok(None)` when the document has no such key (the
    /// caller falls back to the small seed/packets form).
    pub fn open(path: &str) -> Result<Option<JsonTraceSource>, WorkloadError> {
        let f = File::open(path)
            .map_err(|e| WorkloadError::msg(format!("{path}: {e}")))?;
        let mut src = JsonTraceSource {
            r: BufReader::new(f),
            offset: 0,
            peeked: None,
            index: 0,
            done: false,
        };
        if !src.seek_trace_array()? {
            return Ok(None);
        }
        Ok(Some(src))
    }

    fn next_byte(&mut self) -> Result<Option<u8>, WorkloadError> {
        if let Some(b) = self.peeked.take() {
            self.offset += 1;
            return Ok(Some(b));
        }
        let mut one = [0u8; 1];
        loop {
            match self.r.read(&mut one) {
                Ok(0) => return Ok(None),
                Ok(_) => {
                    self.offset += 1;
                    return Ok(Some(one[0]));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(WorkloadError::at(self.offset, format!("read failed: {e}")));
                }
            }
        }
    }

    fn peek_byte(&mut self) -> Result<Option<u8>, WorkloadError> {
        if self.peeked.is_none() {
            if let Some(b) = self.next_byte()? {
                self.peeked = Some(b);
                self.offset -= 1;
            }
        }
        Ok(self.peeked)
    }

    fn skip_ws(&mut self) -> Result<(), WorkloadError> {
        while let Some(b) = self.peek_byte()? {
            if b.is_ascii_whitespace() {
                self.next_byte()?;
            } else {
                break;
            }
        }
        Ok(())
    }

    /// Scan for a depth-1 `"trace"` key followed by `:` and `[`,
    /// consuming through the opening bracket. Tracks string/escape
    /// state so `"trace"` inside values or nested objects never
    /// matches.
    fn seek_trace_array(&mut self) -> Result<bool, WorkloadError> {
        let mut depth: u32 = 0;
        loop {
            self.skip_ws()?;
            let Some(b) = self.next_byte()? else { return Ok(false) };
            match b {
                b'{' | b'[' => depth += 1,
                b'}' | b']' => depth = depth.saturating_sub(1),
                b'"' => {
                    let s = self.read_string_body()?;
                    if depth == 1 && s == "trace" {
                        self.skip_ws()?;
                        if self.peek_byte()? == Some(b':') {
                            self.next_byte()?;
                            self.skip_ws()?;
                            let at = self.offset;
                            match self.next_byte()? {
                                Some(b'[') => return Ok(true),
                                _ => {
                                    return Err(WorkloadError::at(
                                        at,
                                        "`trace` must be an array of packet objects".to_string(),
                                    ));
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Consume a JSON string body (opening quote already consumed),
    /// returning its raw content with escapes left intact — good enough
    /// for key matching, which never needs unescaping for `trace`.
    fn read_string_body(&mut self) -> Result<String, WorkloadError> {
        let start = self.offset;
        let mut out = Vec::new();
        loop {
            let Some(b) = self.next_byte()? else {
                return Err(WorkloadError::at(start, "unterminated string".to_string()));
            };
            match b {
                b'"' => break,
                b'\\' => {
                    out.push(b);
                    if let Some(esc) = self.next_byte()? {
                        out.push(esc);
                    }
                }
                _ => out.push(b),
            }
        }
        String::from_utf8(out)
            .map_err(|_| WorkloadError::at(start, "non-UTF-8 string".to_string()))
    }

    /// Extract the next balanced `{...}` element of the trace array as
    /// text; `Ok(None)` when the closing `]` is reached.
    fn next_object_text(&mut self) -> Result<Option<(u64, String)>, WorkloadError> {
        self.skip_ws()?;
        if self.peek_byte()? == Some(b',') {
            self.next_byte()?;
            self.skip_ws()?;
        }
        let at = self.offset;
        match self.peek_byte()? {
            Some(b']') => {
                self.next_byte()?;
                self.done = true;
                return Ok(None);
            }
            Some(b'{') => {}
            Some(b) => {
                return Err(WorkloadError::at(
                    at,
                    format!("trace[{}] must be an object, found `{}`", self.index, b as char),
                ));
            }
            None => {
                return Err(WorkloadError::at(
                    at,
                    format!("trace array truncated before trace[{}] closed", self.index),
                ));
            }
        }
        let mut text = Vec::new();
        let mut depth: u32 = 0;
        let mut in_string = false;
        loop {
            let Some(b) = self.next_byte()? else {
                return Err(WorkloadError::at(
                    at,
                    format!("trace[{}] truncated mid-record", self.index),
                ));
            };
            text.push(b);
            if in_string {
                match b {
                    b'\\' => {
                        if let Some(esc) = self.next_byte()? {
                            text.push(esc);
                        }
                    }
                    b'"' => in_string = false,
                    _ => {}
                }
                continue;
            }
            match b {
                b'"' => in_string = true,
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        let text = String::from_utf8(text)
            .map_err(|_| WorkloadError::at(at, format!("trace[{}] is not UTF-8", self.index)))?;
        Ok(Some((at, text)))
    }
}

/// Convert one parsed trace object into a [`Packet`], mirroring the
/// CLI's historical field semantics (TCP base packet, `Field` paths as
/// keys, integer values).
fn trace_object_to_packet(index: u64, v: &Value) -> Result<Packet, String> {
    let Value::Object(fields) = v else {
        return Err(format!("trace[{index}] must be an object"));
    };
    let mut pkt = Packet::tcp(0, 0, 0, 0, TcpFlags(0));
    for (key, fv) in fields {
        let field = Field::from_path(key)
            .ok_or_else(|| format!("trace[{index}]: unknown field `{key}`"))?;
        let Value::Int(n) = fv else {
            return Err(format!("trace[{index}].{key} must be an integer"));
        };
        pkt.set(field, *n as u64)
            .map_err(|e| format!("trace[{index}].{key}: {e}"))?;
    }
    Ok(pkt)
}

impl WorkloadSource for JsonTraceSource {
    type Item = Packet;

    fn next_batch(&mut self, out: &mut Vec<Packet>, max: usize) -> Result<usize, WorkloadError> {
        if self.done {
            return Ok(0);
        }
        let mut n = 0;
        while n < max {
            let Some((at, text)) = self.next_object_text()? else { break };
            let v = Value::parse(&text).map_err(|e| {
                WorkloadError::at(at, format!("trace[{}]: {e}", self.index))
            })?;
            let pkt = trace_object_to_packet(self.index, &v)
                .map_err(|e| WorkloadError::at(at, e))?;
            out.push(pkt);
            self.index += 1;
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_support::check::{self, Config, Gen};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> String {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir()
            .join(format!("nfw-test-{}-{tag}-{n}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    fn arb_packet() -> Gen<Packet> {
        Gen::new(|rng| {
            let mut pkt = Packet {
                eth_src: rng.next_u64() & 0xffff_ffff_ffff,
                eth_dst: rng.next_u64() & 0xffff_ffff_ffff,
                eth_type: rng.next_u64() as u16,
                ip_src: rng.next_u64() as u32,
                ip_dst: rng.next_u64() as u32,
                ip_proto: rng.next_u64() as u8,
                ip_ttl: rng.next_u64() as u8,
                ip_id: rng.next_u64() as u16,
                transport: Transport::Other,
                payload: (0..rng.gen_below(32)).map(|_| rng.next_u64() as u8).collect(),
            };
            pkt.transport = match rng.gen_below(3) {
                0 => Transport::Tcp {
                    sport: rng.next_u64() as u16,
                    dport: rng.next_u64() as u16,
                    seq: rng.next_u64() as u32,
                    ack: rng.next_u64() as u32,
                    flags: rng.next_u64() as u8,
                },
                1 => Transport::Udp {
                    sport: rng.next_u64() as u16,
                    dport: rng.next_u64() as u16,
                },
                _ => Transport::Other,
            };
            pkt
        })
    }

    #[test]
    fn record_codec_round_trips_any_packet() {
        check::check(
            "nfw_record_round_trip",
            &Config::with_cases(200),
            &check::vec_of(arb_packet(), 0, 8),
            |pkts| {
                for pkt in pkts {
                    let mut buf = Vec::new();
                    encode_packet(pkt, &mut buf);
                    assert_eq!(&decode_packet(&buf).unwrap(), pkt);
                }
            },
        );
    }

    #[test]
    fn nfw_file_round_trips_and_reports_header() {
        let path = temp_path("roundtrip");
        let pkts = PacketGen::new(42).batch(257);
        let mut w = NfwWriter::create(&path, 42).unwrap();
        for p in &pkts {
            w.push(p).unwrap();
        }
        assert_eq!(w.finish().unwrap(), 257);

        let mut r = NfwReader::open(&path).unwrap();
        assert_eq!(r.seed(), 42);
        assert_eq!(r.count(), 257);
        assert_eq!(r.size_hint(), Some(257));
        let mut out = Vec::new();
        loop {
            if r.next_batch(&mut out, 32).unwrap() == 0 {
                break;
            }
        }
        assert_eq!(out, pkts);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_nfw_reports_byte_offset() {
        let path = temp_path("trunc");
        let pkts = PacketGen::new(7).batch(10);
        let mut w = NfwWriter::create(&path, 7).unwrap();
        for p in &pkts {
            w.push(p).unwrap();
        }
        w.finish().unwrap();
        // Chop the tail off mid-record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let mut r = NfwReader::open(&path).unwrap();
        let mut out = Vec::new();
        let err = loop {
            match r.next_batch(&mut out, 4) {
                Ok(0) => panic!("truncation must surface as an error"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(err.offset.is_some(), "{err}");
        assert!(err.msg.contains("truncated"), "{err}");
        assert!(out.len() < 10, "the bad record never reaches the engine");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unfinished_writer_is_detected_by_count_check() {
        let path = temp_path("unfinished");
        let mut w = NfwWriter::create(&path, 0).unwrap();
        for p in &PacketGen::new(0).batch(3) {
            w.push(p).unwrap();
        }
        // Simulate a crash: flush records but never patch the count.
        w.w.flush().unwrap();
        drop(w);
        let mut r = NfwReader::open(&path).unwrap();
        let mut out = Vec::new();
        let err = loop {
            match r.next_batch(&mut out, 8) {
                Ok(0) => panic!("count mismatch must surface as an error"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(err.msg.contains("unfinished"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gen_source_matches_batch() {
        let mut src = GenSource::new(5, 100);
        assert_eq!(src.size_hint(), Some(100));
        let mut out = Vec::new();
        while src.next_batch(&mut out, 33).unwrap() > 0 {}
        assert_eq!(out, PacketGen::new(5).batch(100));
    }

    #[test]
    fn json_trace_streams_records() {
        let path = temp_path("json");
        std::fs::write(
            &path,
            r#"{ "comment": "trace",
                "trace": [
                  {"ip.src": 1, "tcp.dport": 80},
                  {"ip.src": 2, "ip.proto": 17}
                ] }"#,
        )
        .unwrap();
        let mut src = JsonTraceSource::open(&path).unwrap().expect("has trace");
        let mut out = Vec::new();
        while src.next_batch(&mut out, 1).unwrap() > 0 {}
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].ip_src, 1);
        assert!(matches!(out[0].transport, Transport::Tcp { dport: 80, .. }));
        assert_eq!(out[1].ip_src, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_without_trace_falls_back() {
        let path = temp_path("seed");
        std::fs::write(&path, r#"{"seed": 3, "packets": 10}"#).unwrap();
        assert!(JsonTraceSource::open(&path).unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_trailing_record_names_its_byte_offset() {
        let path = temp_path("badjson");
        let text = r#"{"trace": [{"ip.src": 1}, {"ip.src": "oops"}]}"#;
        std::fs::write(&path, text).unwrap();
        let bad_at = text.find(r#"{"ip.src": "oops"#).unwrap() as u64;
        let mut src = JsonTraceSource::open(&path).unwrap().expect("has trace");
        let mut out = Vec::new();
        let err = loop {
            match src.next_batch(&mut out, 8) {
                Ok(0) => panic!("malformed record must error"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err.offset, Some(bad_at), "{err}");
        assert!(err.msg.contains("trace[1]"), "{err}");
        assert_eq!(out.len(), 1, "the good leading record still streamed");

        // A trace cut off mid-record diagnoses the truncation point.
        let cut = &text[..text.len() - 10];
        std::fs::write(&path, cut).unwrap();
        let mut src = JsonTraceSource::open(&path).unwrap().expect("has trace");
        let mut out = Vec::new();
        let err = loop {
            match src.next_batch(&mut out, 8) {
                Ok(0) => panic!("truncated trace must error"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(err.offset.is_some() && err.msg.contains("truncated"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
