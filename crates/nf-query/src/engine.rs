//! The red-green incremental query engine.
//!
//! Every analysis fact the lint pipeline derives — parse, the
//! normalised packet loop, types, CFG, PDG, dominators, the packet
//! slice, StateAlyzer classes, each lint pass, the ShardingReport, and
//! the final [`LintReport`] — is a *query*: a memoized function of the
//! document text keyed by `(document, QueryKind)`. Queries record the
//! other queries they read (their dependency edges), and the engine
//! tracks two revisions per memo à la salsa:
//!
//! * `verified_at` — the last engine revision at which this memo was
//!   known up to date;
//! * `changed_at` — the revision at which its *value* last actually
//!   changed.
//!
//! A fetch first tries the green path: if the memo was verified at the
//! current revision it is returned outright; otherwise its recorded
//! dependencies are fetched (recursively) and if none `changed_at`
//! later than this memo's `verified_at`, the memo is revalidated
//! without recomputing. Only then does the red path run the query
//! function — and if the freshly computed value fingerprints identical
//! to the old one, the engine *backdates*: it keeps the old value (and
//! its `changed_at`), so every downstream query still validates green.
//! That is the early-cutoff that makes a trailing-comment edit cost one
//! re-parse and nothing else.
//!
//! Values are stored as `Arc<Result<T, String>>`: broken documents
//! memoize their error exactly like facts, so an engine-driven lint of
//! unparseable source returns the same `Err` string a from-scratch
//! [`nfl_lint::lint_source`] call would.

use nf_support::json::ToJson;
use nf_trace::Tracer;
use nfl_analysis::cfg::{build_cfg, Cfg};
use nfl_analysis::dom::{dominators, post_dominators, DomTree};
use nfl_analysis::normalize::PacketLoop;
use nfl_analysis::pdg::{default_boundary, Pdg};
use nfl_lang::fingerprint::{self, Fnv64};
use nfl_lang::types::TypeInfo;
use nfl_lang::{Span, StmtId};
use nfl_lint::{AnalysisCtx, Diagnostic, LintPass, LintReport, LintSink, ShardingReport};
use nfl_slicer::statealyzer::{statealyzer, StateAlyzerInput, VarClasses};
use nfl_slicer::static_slice::packet_slice;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// One kind of derived fact. Together with a document name this keys a
/// memo slot; the variants mirror the stages of
/// [`AnalysisCtx::build`] + [`nfl_lint::PassManager`] exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QueryKind {
    /// `parse_and_check` of the document text.
    Parse,
    /// The normalised (socket-unfolded where needed) packet loop.
    Normalize,
    /// Type information of the normalised program.
    Types,
    /// Boundary variables (globals + parameters defined at entry).
    Boundary,
    /// CFG of the per-packet function.
    Cfg,
    /// PDG (def-use + reaching defs + control deps) over that CFG.
    Pdg,
    /// Dominator tree.
    Dominators,
    /// Post-dominator tree.
    PostDominators,
    /// The packet-processing slice (Algorithm 1 lines 1–4).
    PacketSlice,
    /// StateAlyzer classification (Table 1).
    StateAlyzer,
    /// The assembled [`AnalysisCtx`] lint passes run over.
    Ctx,
    /// One lint pass, by index into [`nfl_lint::default_passes`] order.
    LintPass(u8),
    /// The [`ShardingReport`] extracted from the sharding pass.
    Sharding,
    /// The merged, sorted [`LintReport`].
    Report,
}

/// A dependency edge recorded by a memo: either the raw document text
/// or another query on the same document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dep {
    /// The document's source text (the only input the graph reads).
    Source,
    /// A derived fact.
    Query(QueryKind),
}

/// Diagnostics plus the optional sharding report one lint pass emitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassOutput {
    /// The pass's findings, in emission order (unsorted — the report
    /// query merges and sorts across passes).
    pub diagnostics: Vec<Diagnostic>,
    /// Set by the sharding pass only.
    pub sharding: Option<ShardingReport>,
}

/// A memoized query value. Every variant wraps `Arc<Result<..>>` so
/// cached facts (and cached *errors*) are shared, not recloned.
#[derive(Clone)]
pub enum QueryValue {
    /// [`QueryKind::Parse`].
    Parse(Arc<Result<nfl_lang::Program, String>>),
    /// [`QueryKind::Normalize`].
    Loop(Arc<Result<PacketLoop, String>>),
    /// [`QueryKind::Types`].
    Types(Arc<Result<TypeInfo, String>>),
    /// [`QueryKind::Boundary`].
    Boundary(Arc<Result<BTreeSet<String>, String>>),
    /// [`QueryKind::Cfg`].
    Cfg(Arc<Result<Cfg, String>>),
    /// [`QueryKind::Pdg`].
    Pdg(Arc<Result<Pdg, String>>),
    /// [`QueryKind::Dominators`] / [`QueryKind::PostDominators`].
    Dom(Arc<Result<DomTree, String>>),
    /// [`QueryKind::PacketSlice`].
    Slice(Arc<Result<HashSet<StmtId>, String>>),
    /// [`QueryKind::StateAlyzer`].
    Classes(Arc<Result<VarClasses, String>>),
    /// [`QueryKind::Ctx`].
    Ctx(Arc<Result<AnalysisCtx, String>>),
    /// [`QueryKind::LintPass`].
    Pass(Arc<Result<PassOutput, String>>),
    /// [`QueryKind::Sharding`].
    Sharding(Arc<Result<ShardingReport, String>>),
    /// [`QueryKind::Report`].
    Report(Arc<Result<LintReport, String>>),
}

/// Accessor error for a memo holding an unexpected variant — cannot
/// happen for keys the engine itself writes, but the accessors stay
/// total rather than panicking.
const WRONG_KIND: &str = "internal query error: memo holds an unexpected value kind";

macro_rules! accessor {
    ($fn_name:ident, $variant:ident, $ty:ty) => {
        fn $fn_name(&self) -> Arc<Result<$ty, String>> {
            match self {
                QueryValue::$variant(v) => v.clone(),
                _ => Arc::new(Err(WRONG_KIND.to_string())),
            }
        }
    };
}

impl QueryValue {
    accessor!(as_parse, Parse, nfl_lang::Program);
    accessor!(as_loop, Loop, PacketLoop);
    accessor!(as_types, Types, TypeInfo);
    accessor!(as_boundary, Boundary, BTreeSet<String>);
    accessor!(as_cfg, Cfg, Cfg);
    accessor!(as_pdg, Pdg, Pdg);
    accessor!(as_dom, Dom, DomTree);
    accessor!(as_slice, Slice, HashSet<StmtId>);
    accessor!(as_classes, Classes, VarClasses);
    accessor!(as_ctx, Ctx, AnalysisCtx);
    accessor!(as_pass, Pass, PassOutput);
    accessor!(as_sharding, Sharding, ShardingReport);
    accessor!(as_report, Report, LintReport);
}

struct Memo {
    value: QueryValue,
    fingerprint: u64,
    deps: Vec<Dep>,
    verified_at: u64,
    changed_at: u64,
}

struct DocInput {
    text: Arc<String>,
    hash: u64,
    changed_at: u64,
}

/// The long-lived incremental engine. Feed documents in with
/// [`Engine::set_source`]; ask for facts with [`Engine::lint_report`]
/// and friends. Edits bump the engine revision only when the text
/// actually changed, so re-feeding identical bytes is free.
pub struct Engine {
    tracer: Tracer,
    rev: u64,
    docs: BTreeMap<String, DocInput>,
    memo: HashMap<(String, QueryKind), Memo>,
    passes: Vec<Box<dyn LintPass>>,
    sharding_idx: u8,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with tracing disabled.
    pub fn new() -> Engine {
        Engine::with_tracer(Tracer::disabled())
    }

    /// An engine recording `query.*` hit/recompute metrics into
    /// `tracer`.
    pub fn with_tracer(tracer: Tracer) -> Engine {
        let passes = nfl_lint::default_passes();
        let sharding_idx = passes
            .iter()
            .position(|p| p.name() == "sharding")
            .unwrap_or(passes.len().saturating_sub(1)) as u8;
        Engine {
            tracer,
            rev: 0,
            docs: BTreeMap::new(),
            memo: HashMap::new(),
            passes,
            sharding_idx,
        }
    }

    /// The tracer metrics are recorded into.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The current engine revision (bumped per real edit).
    pub fn revision(&self) -> u64 {
        self.rev
    }

    /// Names of all loaded documents.
    pub fn doc_names(&self) -> Vec<String> {
        self.docs.keys().cloned().collect()
    }

    /// The current text of a loaded document.
    pub fn source(&self, doc: &str) -> Option<Arc<String>> {
        self.docs.get(doc).map(|d| d.text.clone())
    }

    /// Load or edit a document. Returns `true` when the text differed
    /// from what the engine already held (and therefore bumped the
    /// revision); feeding identical bytes is a no-op, so callers may
    /// re-read files on coarse signals (mtime) without invalidating.
    pub fn set_source(&mut self, doc: &str, text: &str) -> bool {
        let hash = fingerprint::fnv64_str(text);
        if let Some(d) = self.docs.get(doc) {
            if d.hash == hash {
                return false;
            }
        }
        self.rev += 1;
        self.docs.insert(
            doc.to_string(),
            DocInput {
                text: Arc::new(text.to_string()),
                hash,
                changed_at: self.rev,
            },
        );
        if self.tracer.is_enabled() {
            self.tracer.count("query.invalidations", 1);
        }
        true
    }

    /// Unload a document and drop its memos. Returns `true` if it was
    /// loaded.
    pub fn remove_source(&mut self, doc: &str) -> bool {
        if self.docs.remove(doc).is_some() {
            self.rev += 1;
            self.memo.retain(|(d, _), _| d != doc);
            true
        } else {
            false
        }
    }

    /// The merged lint report for `doc` — byte-identical (JSON and
    /// diagnostics) to a from-scratch [`nfl_lint::lint_source`] with
    /// the same name and text.
    pub fn lint_report(&mut self, doc: &str) -> Arc<Result<LintReport, String>> {
        self.fetch(doc, QueryKind::Report).as_report()
    }

    /// The sharding report for `doc`.
    pub fn sharding_report(&mut self, doc: &str) -> Arc<Result<ShardingReport, String>> {
        self.fetch(doc, QueryKind::Sharding).as_sharding()
    }

    /// The assembled analysis context for `doc` (hover and other
    /// IDE-ish consumers read classes/types out of it).
    pub fn analysis_ctx(&mut self, doc: &str) -> Arc<Result<AnalysisCtx, String>> {
        self.fetch(doc, QueryKind::Ctx).as_ctx()
    }

    /// Metric label of a query kind (`query.<label>.hit` etc.).
    fn label(&self, kind: QueryKind) -> String {
        match kind {
            QueryKind::Parse => "parse".into(),
            QueryKind::Normalize => "normalize".into(),
            QueryKind::Types => "types".into(),
            QueryKind::Boundary => "boundary".into(),
            QueryKind::Cfg => "cfg".into(),
            QueryKind::Pdg => "pdg".into(),
            QueryKind::Dominators => "dom".into(),
            QueryKind::PostDominators => "postdom".into(),
            QueryKind::PacketSlice => "slice".into(),
            QueryKind::StateAlyzer => "statealyzer".into(),
            QueryKind::Ctx => "ctx".into(),
            QueryKind::LintPass(i) => format!(
                "pass.{}",
                self.passes
                    .get(i as usize)
                    .map(|p| p.name())
                    .unwrap_or("unknown")
            ),
            QueryKind::Sharding => "sharding".into(),
            QueryKind::Report => "report".into(),
        }
    }

    /// The revision at which a dependency's value last changed,
    /// bringing it up to date first.
    fn dep_changed_at(&mut self, doc: &str, dep: Dep) -> u64 {
        match dep {
            Dep::Source => self
                .docs
                .get(doc)
                .map(|d| d.changed_at)
                .unwrap_or(self.rev),
            Dep::Query(kind) => {
                self.fetch(doc, kind);
                self.memo
                    .get(&(doc.to_string(), kind))
                    .map(|m| m.changed_at)
                    .unwrap_or(self.rev)
            }
        }
    }

    /// Fetch a dependency and return its value fingerprint (for
    /// queries whose own fingerprint derives from their inputs).
    fn dep_fp(&mut self, doc: &str, kind: QueryKind) -> u64 {
        self.fetch(doc, kind);
        self.memo
            .get(&(doc.to_string(), kind))
            .map(|m| m.fingerprint)
            .unwrap_or(0)
    }

    /// The core red-green fetch (see the module docs).
    fn fetch(&mut self, doc: &str, kind: QueryKind) -> QueryValue {
        let key = (doc.to_string(), kind);
        // Green fast path: verified this revision.
        if let Some(m) = self.memo.get(&key) {
            if m.verified_at == self.rev {
                let v = m.value.clone();
                if self.tracer.is_enabled() {
                    self.tracer.count(&format!("query.{}.hit", self.label(kind)), 1);
                }
                return v;
            }
            // Green slow path: revalidate recorded deps in order.
            let deps = m.deps.clone();
            let verified_at = m.verified_at;
            let mut clean = true;
            for d in deps {
                if self.dep_changed_at(doc, d) > verified_at {
                    clean = false;
                    break;
                }
            }
            if clean {
                if let Some(m) = self.memo.get_mut(&key) {
                    m.verified_at = self.rev;
                    let v = m.value.clone();
                    if self.tracer.is_enabled() {
                        self.tracer.count(&format!("query.{}.hit", self.label(kind)), 1);
                    }
                    return v;
                }
            }
        }
        // Red path: recompute.
        let start = Instant::now();
        let (value, fp, deps) = self.compute(doc, kind);
        if self.tracer.is_enabled() {
            let label = self.label(kind);
            self.tracer.count(&format!("query.{label}.recompute"), 1);
            self.tracer.observe_ns(
                &format!("query.{label}.recompute.ns"),
                start.elapsed().as_nanos() as u64,
            );
        }
        // Early cutoff with backdating: same fingerprint ⇒ keep the old
        // value Arc and its changed_at, so downstream validates green.
        let (value, changed_at) = match self.memo.get(&key) {
            Some(old) if old.fingerprint == fp => {
                if self.tracer.is_enabled() {
                    self.tracer
                        .count(&format!("query.{}.cutoff", self.label(kind)), 1);
                }
                (old.value.clone(), old.changed_at)
            }
            _ => (value, self.rev),
        };
        self.memo.insert(
            key,
            Memo {
                value: value.clone(),
                fingerprint: fp,
                deps,
                verified_at: self.rev,
                changed_at,
            },
        );
        value
    }

    /// Run one query function. Each arm mirrors the corresponding step
    /// of [`AnalysisCtx::build`]/[`AnalysisCtx::from_loop`] or the pass
    /// manager, so engine results equal from-scratch results exactly.
    fn compute(&mut self, doc: &str, kind: QueryKind) -> (QueryValue, u64, Vec<Dep>) {
        match kind {
            QueryKind::Parse => {
                let res = match self.docs.get(doc).map(|d| d.text.clone()) {
                    None => Err(format!("document `{doc}` is not loaded")),
                    Some(text) => nfl_lang::parse_and_check(&text),
                };
                let fp = match &res {
                    Ok(p) => fingerprint::program_fingerprint(p),
                    Err(e) => err_fp("parse", e),
                };
                (QueryValue::Parse(Arc::new(res)), fp, vec![Dep::Source])
            }
            QueryKind::Normalize => {
                let parse = self.fetch(doc, QueryKind::Parse).as_parse();
                let res = match parse.as_ref() {
                    Err(e) => Err(e.clone()),
                    Ok(p) => AnalysisCtx::normalize_loop(p),
                };
                let fp = match &res {
                    Ok(pl) => {
                        let mut h = Fnv64::new();
                        h.u64(fingerprint::program_fingerprint(&pl.program));
                        h.str(&pl.func);
                        h.str(&pl.pkt_param);
                        h.finish()
                    }
                    Err(e) => err_fp("normalize", e),
                };
                (
                    QueryValue::Loop(Arc::new(res)),
                    fp,
                    vec![Dep::Query(QueryKind::Parse)],
                )
            }
            QueryKind::Types => {
                let lp = self.fetch(doc, QueryKind::Normalize).as_loop();
                let res = match lp.as_ref() {
                    Err(e) => Err(e.clone()),
                    Ok(pl) => nfl_lang::types::check(&pl.program).map_err(|e| e.to_string()),
                };
                let fp = match &res {
                    Ok(_) => mix_tag("types", self.dep_fp(doc, QueryKind::Normalize)),
                    Err(e) => err_fp("types", e),
                };
                (
                    QueryValue::Types(Arc::new(res)),
                    fp,
                    vec![Dep::Query(QueryKind::Normalize)],
                )
            }
            QueryKind::Boundary => {
                let lp = self.fetch(doc, QueryKind::Normalize).as_loop();
                let res = match lp.as_ref() {
                    Err(e) => Err(e.clone()),
                    Ok(pl) => Ok(default_boundary(&pl.program, &pl.func)),
                };
                let fp = match &res {
                    Ok(b) => {
                        let mut h = Fnv64::new();
                        h.str("boundary");
                        for name in b {
                            h.str(name);
                        }
                        h.finish()
                    }
                    Err(e) => err_fp("boundary", e),
                };
                (
                    QueryValue::Boundary(Arc::new(res)),
                    fp,
                    vec![Dep::Query(QueryKind::Normalize)],
                )
            }
            QueryKind::Cfg => {
                let lp = self.fetch(doc, QueryKind::Normalize).as_loop();
                // Fingerprint on the *function* alone: an edit elsewhere
                // in the program re-runs this cheap constructor but cuts
                // off before the expensive downstream queries.
                let (res, fp) = match lp.as_ref() {
                    Err(e) => (Err(e.clone()), err_fp("cfg", e)),
                    Ok(pl) => match pl.program.function(&pl.func) {
                        None => {
                            let e = format!("internal: no function `{}`", pl.func);
                            (Err(e.clone()), err_fp("cfg", &e))
                        }
                        Some(f) => (
                            Ok(build_cfg(f)),
                            mix_tag("cfg", fingerprint::function_fingerprint(f)),
                        ),
                    },
                };
                (
                    QueryValue::Cfg(Arc::new(res)),
                    fp,
                    vec![Dep::Query(QueryKind::Normalize)],
                )
            }
            QueryKind::Pdg => {
                let lp = self.fetch(doc, QueryKind::Normalize).as_loop();
                let boundary = self.fetch(doc, QueryKind::Boundary).as_boundary();
                let cfg = self.fetch(doc, QueryKind::Cfg).as_cfg();
                let res = match (lp.as_ref(), boundary.as_ref(), cfg.as_ref()) {
                    (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => Err(e.clone()),
                    (Ok(pl), Ok(b), Ok(c)) => Ok(Pdg::build_with_cfg(&pl.program, b, c.clone())),
                };
                let fp = match &res {
                    Ok(_) => {
                        let mut h = Fnv64::new();
                        h.str("pdg");
                        h.u64(self.dep_fp(doc, QueryKind::Normalize));
                        h.u64(self.dep_fp(doc, QueryKind::Boundary));
                        h.u64(self.dep_fp(doc, QueryKind::Cfg));
                        h.finish()
                    }
                    Err(e) => err_fp("pdg", e),
                };
                (
                    QueryValue::Pdg(Arc::new(res)),
                    fp,
                    vec![
                        Dep::Query(QueryKind::Normalize),
                        Dep::Query(QueryKind::Boundary),
                        Dep::Query(QueryKind::Cfg),
                    ],
                )
            }
            QueryKind::Dominators | QueryKind::PostDominators => {
                let cfg = self.fetch(doc, QueryKind::Cfg).as_cfg();
                let res = match cfg.as_ref() {
                    Err(e) => Err(e.clone()),
                    Ok(c) => Ok(if kind == QueryKind::Dominators {
                        dominators(c)
                    } else {
                        post_dominators(c)
                    }),
                };
                let tag = if kind == QueryKind::Dominators { "dom" } else { "postdom" };
                let fp = match &res {
                    Ok(t) => {
                        let mut h = Fnv64::new();
                        h.str(tag);
                        h.u64(t.root as u64);
                        for idom in &t.idom {
                            match idom {
                                None => h.byte(0),
                                Some(n) => {
                                    h.byte(1);
                                    h.u64(*n as u64);
                                }
                            }
                        }
                        h.finish()
                    }
                    Err(e) => err_fp(tag, e),
                };
                (
                    QueryValue::Dom(Arc::new(res)),
                    fp,
                    vec![Dep::Query(QueryKind::Cfg)],
                )
            }
            QueryKind::PacketSlice => {
                let lp = self.fetch(doc, QueryKind::Normalize).as_loop();
                let pdg = self.fetch(doc, QueryKind::Pdg).as_pdg();
                let res = match (lp.as_ref(), pdg.as_ref()) {
                    (Err(e), _) | (_, Err(e)) => Err(e.clone()),
                    (Ok(pl), Ok(p)) => Ok(packet_slice(p, &pl.program, &pl.func).stmts),
                };
                let fp = match &res {
                    Ok(stmts) => {
                        let mut ids: Vec<u32> = stmts.iter().map(|s| s.0).collect();
                        ids.sort_unstable();
                        let mut h = Fnv64::new();
                        h.str("slice");
                        for id in ids {
                            h.u64(u64::from(id));
                        }
                        h.finish()
                    }
                    Err(e) => err_fp("slice", e),
                };
                (
                    QueryValue::Slice(Arc::new(res)),
                    fp,
                    vec![Dep::Query(QueryKind::Normalize), Dep::Query(QueryKind::Pdg)],
                )
            }
            QueryKind::StateAlyzer => {
                let lp = self.fetch(doc, QueryKind::Normalize).as_loop();
                let slice = self.fetch(doc, QueryKind::PacketSlice).as_slice();
                let info = self.fetch(doc, QueryKind::Types).as_types();
                let res = match (lp.as_ref(), slice.as_ref(), info.as_ref()) {
                    (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => Err(e.clone()),
                    (Ok(pl), Ok(s), Ok(i)) => {
                        Ok(statealyzer(pl, s, i, StateAlyzerInput::WholeProgram))
                    }
                };
                let fp = match &res {
                    Ok(c) => {
                        let mut h = Fnv64::new();
                        h.str("statealyzer");
                        for set in [&c.pkt_vars, &c.cfg_vars, &c.ois_vars, &c.log_vars] {
                            h.u64(set.len() as u64);
                            for v in set.iter() {
                                h.str(v);
                            }
                        }
                        h.u64(c.stmts_examined as u64);
                        h.finish()
                    }
                    Err(e) => err_fp("statealyzer", e),
                };
                (
                    QueryValue::Classes(Arc::new(res)),
                    fp,
                    vec![
                        Dep::Query(QueryKind::Normalize),
                        Dep::Query(QueryKind::PacketSlice),
                        Dep::Query(QueryKind::Types),
                    ],
                )
            }
            QueryKind::Ctx => {
                let deps = vec![
                    Dep::Query(QueryKind::Normalize),
                    Dep::Query(QueryKind::Types),
                    Dep::Query(QueryKind::Boundary),
                    Dep::Query(QueryKind::Pdg),
                    Dep::Query(QueryKind::Dominators),
                    Dep::Query(QueryKind::PostDominators),
                    Dep::Query(QueryKind::PacketSlice),
                    Dep::Query(QueryKind::StateAlyzer),
                ];
                let lp = self.fetch(doc, QueryKind::Normalize).as_loop();
                let info = self.fetch(doc, QueryKind::Types).as_types();
                let boundary = self.fetch(doc, QueryKind::Boundary).as_boundary();
                let pdg = self.fetch(doc, QueryKind::Pdg).as_pdg();
                let dom = self.fetch(doc, QueryKind::Dominators).as_dom();
                let post_dom = self.fetch(doc, QueryKind::PostDominators).as_dom();
                let slice = self.fetch(doc, QueryKind::PacketSlice).as_slice();
                let classes = self.fetch(doc, QueryKind::StateAlyzer).as_classes();
                // Error precedence mirrors AnalysisCtx::build: the
                // normalisation error first, then the type error.
                let res = match (
                    lp.as_ref(),
                    info.as_ref(),
                    boundary.as_ref(),
                    pdg.as_ref(),
                    dom.as_ref(),
                    post_dom.as_ref(),
                    slice.as_ref(),
                    classes.as_ref(),
                ) {
                    (Err(e), ..) => Err(e.clone()),
                    (_, Err(e), ..) => Err(e.clone()),
                    (_, _, Err(e), ..) => Err(e.clone()),
                    (_, _, _, Err(e), ..) => Err(e.clone()),
                    (_, _, _, _, Err(e), ..) => Err(e.clone()),
                    (_, _, _, _, _, Err(e), ..) => Err(e.clone()),
                    (_, _, _, _, _, _, Err(e), _) => Err(e.clone()),
                    (_, _, _, _, _, _, _, Err(e)) => Err(e.clone()),
                    (
                        Ok(nf_loop),
                        Ok(info),
                        Ok(boundary),
                        Ok(pdg),
                        Ok(dom),
                        Ok(post_dom),
                        Ok(pkt_slice),
                        Ok(classes),
                    ) => Ok(AnalysisCtx {
                        nf_loop: nf_loop.clone(),
                        info: info.clone(),
                        pdg: pdg.clone(),
                        dom: dom.clone(),
                        post_dom: post_dom.clone(),
                        pkt_slice: pkt_slice.clone(),
                        classes: classes.clone(),
                        boundary: boundary.clone(),
                    }),
                };
                let fp = match &res {
                    Ok(_) => {
                        let mut h = Fnv64::new();
                        h.str("ctx");
                        for d in &deps {
                            if let Dep::Query(k) = d {
                                h.u64(self.dep_fp(doc, *k));
                            }
                        }
                        h.finish()
                    }
                    Err(e) => err_fp("ctx", e),
                };
                (QueryValue::Ctx(Arc::new(res)), fp, deps)
            }
            QueryKind::LintPass(i) => {
                let ctx = self.fetch(doc, QueryKind::Ctx).as_ctx();
                let res = match ctx.as_ref() {
                    Err(e) => Err(e.clone()),
                    Ok(ctx) => match self.passes.get(i as usize) {
                        None => Err(format!("internal: no lint pass at index {i}")),
                        Some(pass) => {
                            let mut sink = LintSink::default();
                            pass.run(ctx, &mut sink);
                            Ok(PassOutput {
                                diagnostics: sink.diagnostics,
                                sharding: sink.sharding,
                            })
                        }
                    },
                };
                let fp = match &res {
                    Ok(out) => {
                        let mut h = Fnv64::new();
                        h.str("pass");
                        h.u64(u64::from(i));
                        for d in &out.diagnostics {
                            hash_diag(&mut h, d);
                        }
                        match &out.sharding {
                            None => h.byte(0),
                            Some(sh) => {
                                h.byte(1);
                                h.str(&sh.to_json().render());
                            }
                        }
                        h.finish()
                    }
                    Err(e) => err_fp("pass", e),
                };
                (
                    QueryValue::Pass(Arc::new(res)),
                    fp,
                    vec![Dep::Query(QueryKind::Ctx)],
                )
            }
            QueryKind::Sharding => {
                let pass_kind = QueryKind::LintPass(self.sharding_idx);
                let out = self.fetch(doc, pass_kind).as_pass();
                let res = match out.as_ref() {
                    Err(e) => Err(e.clone()),
                    Ok(po) => Ok(po.sharding.clone().unwrap_or_default()),
                };
                let fp = match &res {
                    Ok(sh) => {
                        let mut h = Fnv64::new();
                        h.str("sharding");
                        h.str(&sh.to_json().render());
                        h.finish()
                    }
                    Err(e) => err_fp("sharding", e),
                };
                (
                    QueryValue::Sharding(Arc::new(res)),
                    fp,
                    vec![Dep::Query(pass_kind)],
                )
            }
            QueryKind::Report => {
                let mut deps = vec![Dep::Query(QueryKind::Normalize)];
                for i in 0..self.passes.len() {
                    deps.push(Dep::Query(QueryKind::LintPass(i as u8)));
                }
                let lp = self.fetch(doc, QueryKind::Normalize).as_loop();
                let mut sink = LintSink::default();
                let mut first_err: Option<String> = None;
                for i in 0..self.passes.len() {
                    let out = self.fetch(doc, QueryKind::LintPass(i as u8)).as_pass();
                    match out.as_ref() {
                        Err(e) => {
                            first_err = Some(e.clone());
                            break;
                        }
                        Ok(po) => {
                            sink.diagnostics.extend(po.diagnostics.iter().cloned());
                            if let Some(sh) = &po.sharding {
                                sink.sharding = Some(sh.clone());
                            }
                        }
                    }
                }
                let res = match (first_err, lp.as_ref()) {
                    (Some(e), _) => Err(e),
                    (None, Err(e)) => Err(e.clone()),
                    (None, Ok(pl)) => {
                        nfl_lint::finish_sink(&mut sink);
                        Ok(LintReport {
                            name: doc.to_string(),
                            diagnostics: sink.diagnostics,
                            sharding: sink.sharding.unwrap_or_default(),
                            source: pl.program.source.clone(),
                        })
                    }
                };
                let fp = match &res {
                    Ok(r) => {
                        let mut h = Fnv64::new();
                        h.str("report");
                        h.str(&r.to_json().render());
                        h.finish()
                    }
                    Err(e) => err_fp("report", e),
                };
                (QueryValue::Report(Arc::new(res)), fp, deps)
            }
        }
    }
}

fn err_fp(tag: &str, e: &str) -> u64 {
    let mut h = Fnv64::new();
    h.str("err");
    h.str(tag);
    h.str(e);
    h.finish()
}

fn mix_tag(tag: &str, fp: u64) -> u64 {
    let mut h = Fnv64::new();
    h.str(tag);
    h.u64(fp);
    h.finish()
}

fn hash_span(h: &mut Fnv64, s: Span) {
    h.u64(s.start as u64);
    h.u64(s.end as u64);
    h.u64(u64::from(s.line));
}

fn hash_diag(h: &mut Fnv64, d: &Diagnostic) {
    h.str(d.code.as_str());
    h.str(d.severity.as_str());
    hash_span(h, d.span);
    match &d.var {
        None => h.byte(0),
        Some(v) => {
            h.byte(1);
            h.str(v);
        }
    }
    h.str(&d.message);
}
