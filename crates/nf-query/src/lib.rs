//! nf-query — a demand-driven, memoized incremental analysis engine
//! over the NFL lint pipeline.
//!
//! The batch pipeline (`nfl-lint`) rebuilds every analysis fact from
//! scratch per invocation — fine for CI, wasteful for editor loops
//! where one function changed and nine NFs didn't. This crate turns
//! each pipeline stage into a *query* keyed on per-function content
//! fingerprints and memoizes results in a long-lived [`Engine`]
//! (salsa-style red-green revalidation with early cutoff; see
//! [`engine`] for the algorithm). On top of the engine sit two
//! front-ends:
//!
//! * [`watch`] — diffing state for `nfactor lint --watch`: re-lint
//!   dirty documents, print only the diagnostics that appeared or
//!   disappeared;
//! * [`lsp`] — a minimal stdio JSON-RPC language server
//!   (`nfactor lsp`): publishes NFL001–NFL009 diagnostics on
//!   open/change and answers hover with the variable's StateAlyzer
//!   class and sharding verdict.
//!
//! Cache behaviour is observable through `query.<label>.hit`,
//! `query.<label>.recompute`, `query.<label>.recompute.ns`, and
//! `query.<label>.cutoff` metrics on the engine's
//! [`Tracer`](nf_trace::Tracer).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lsp;
pub mod watch;

pub use engine::{Engine, PassOutput, QueryKind, QueryValue};
pub use watch::{render_lines, WatchDelta, WatchState};
