//! A minimal NFL language server (`nfactor lsp`).
//!
//! Speaks JSON-RPC 2.0 over stdio with `Content-Length` framing — the
//! subset editors actually need for a lint-driven workflow:
//!
//! * `initialize` / `initialized` / `shutdown` / `exit`;
//! * `textDocument/didOpen`, `didChange` (full sync), `didClose` —
//!   each feeds the [`Engine`] and publishes
//!   `textDocument/publishDiagnostics` with the NFL001–NFL009
//!   findings (the incremental engine means an unchanged dependency
//!   chain costs a re-parse, not a re-analysis);
//! * `textDocument/hover` — the word under the cursor is looked up in
//!   the StateAlyzer classes (pktVar/cfgVar/oisVar/logVar) and, for
//!   `state` maps, the per-state sharding verdict.
//!
//! Known limitation: for socket-shaped NFs the analysis runs over the
//! *unfolded* program, so published diagnostic ranges index the
//! unfolded source, which can drift from the client's buffer. Plain
//! packet-callback NFs (the common case) line up exactly.

use crate::engine::Engine;
use nf_support::json::Value;
use nfl_lang::{LineIndex, Span};
use nfl_lint::Severity;
use std::io::{self, BufRead, Write};

/// Serve LSP requests from `reader`, writing responses to `writer`,
/// until `exit` or EOF. Diagnostics are computed by `engine`, so a
/// long-lived server accumulates warm caches across edits.
pub fn serve(
    engine: &mut Engine,
    reader: &mut impl BufRead,
    writer: &mut impl Write,
) -> io::Result<()> {
    while let Some(body) = read_message(reader)? {
        let msg = match Value::parse(&body) {
            Ok(v) => v,
            Err(_) => continue,
        };
        let id = msg.get("id").cloned();
        let method = msg.get("method").and_then(|m| m.as_str()).unwrap_or("");
        let params = msg.get("params").cloned().unwrap_or(Value::Null);
        match method {
            "initialize" => {
                if let Some(id) = id {
                    let result = obj(vec![
                        (
                            "capabilities",
                            obj(vec![
                                ("textDocumentSync", Value::Int(1)),
                                ("hoverProvider", Value::Bool(true)),
                            ]),
                        ),
                        (
                            "serverInfo",
                            obj(vec![("name", Value::Str("nfactor-lsp".into()))]),
                        ),
                    ]);
                    respond(writer, id, result)?;
                }
            }
            "initialized" => {}
            "shutdown" => {
                if let Some(id) = id {
                    respond(writer, id, Value::Null)?;
                }
            }
            "exit" => return Ok(()),
            "textDocument/didOpen" => {
                let doc = params.get("textDocument");
                let uri = doc.and_then(|d| d.get("uri")).and_then(|u| u.as_str());
                let text = doc.and_then(|d| d.get("text")).and_then(|t| t.as_str());
                if let (Some(uri), Some(text)) = (uri, text) {
                    let uri = uri.to_string();
                    engine.set_source(&uri, text);
                    publish(engine, writer, &uri)?;
                }
            }
            "textDocument/didChange" => {
                let uri = params
                    .get("textDocument")
                    .and_then(|d| d.get("uri"))
                    .and_then(|u| u.as_str())
                    .map(str::to_string);
                let text = params
                    .get("contentChanges")
                    .and_then(|c| c.as_array())
                    .and_then(|a| a.last())
                    .and_then(|c| c.get("text"))
                    .and_then(|t| t.as_str());
                if let (Some(uri), Some(text)) = (uri, text) {
                    engine.set_source(&uri, text);
                    publish(engine, writer, &uri)?;
                }
            }
            "textDocument/didClose" => {
                let uri = params
                    .get("textDocument")
                    .and_then(|d| d.get("uri"))
                    .and_then(|u| u.as_str())
                    .map(str::to_string);
                if let Some(uri) = uri {
                    engine.remove_source(&uri);
                    publish_diags(writer, &uri, Vec::new())?;
                }
            }
            "textDocument/hover" => {
                if let Some(id) = id {
                    let result = hover(engine, &params);
                    respond(writer, id, result)?;
                }
            }
            _ => {
                // Unknown *request* (has an id): JSON-RPC method-not-found.
                // Unknown notifications are ignored, per the spec.
                if let Some(id) = id {
                    let err = obj(vec![
                        ("code", Value::Int(-32601)),
                        ("message", Value::Str(format!("method not found: {method}"))),
                    ]);
                    let resp = obj(vec![
                        ("jsonrpc", Value::Str("2.0".into())),
                        ("id", id),
                        ("error", err),
                    ]);
                    write_message(writer, &resp)?;
                }
            }
        }
    }
    Ok(())
}

/// Read one `Content-Length`-framed message; `None` at EOF.
fn read_message(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Ok(None); // EOF
        }
        let line = line.trim_end();
        if line.is_empty() {
            break; // end of headers
        }
        if let Some(rest) = header_value(line, "Content-Length") {
            content_length = rest.trim().parse::<usize>().ok();
        }
    }
    let len = match content_length {
        Some(n) => n,
        None => return Ok(None), // malformed frame: bail out cleanly
    };
    let mut buf = vec![0u8; len];
    reader.read_exact(&mut buf)?;
    Ok(Some(String::from_utf8_lossy(&buf).into_owned()))
}

/// Case-insensitive `Header: value` match.
fn header_value<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let (head, rest) = line.split_once(':')?;
    if head.trim().eq_ignore_ascii_case(name) {
        Some(rest)
    } else {
        None
    }
}

fn write_message(writer: &mut impl Write, v: &Value) -> io::Result<()> {
    let body = v.render();
    write!(writer, "Content-Length: {}\r\n\r\n{}", body.len(), body)?;
    writer.flush()
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn respond(writer: &mut impl Write, id: Value, result: Value) -> io::Result<()> {
    let resp = obj(vec![
        ("jsonrpc", Value::Str("2.0".into())),
        ("id", id),
        ("result", result),
    ]);
    write_message(writer, &resp)
}

/// Lint `uri` through the engine and publish its diagnostics.
fn publish(engine: &mut Engine, writer: &mut impl Write, uri: &str) -> io::Result<()> {
    let report = engine.lint_report(uri);
    let diags = match report.as_ref() {
        Err(e) => vec![lsp_diag(
            zero_range(),
            1,
            &format!("nfl: {e}"),
        )],
        Ok(r) => {
            let index = LineIndex::new(&r.source);
            r.diagnostics
                .iter()
                .map(|d| {
                    let severity = match d.severity {
                        Severity::Error => 1,
                        Severity::Warning => 2,
                        Severity::Note => 3,
                    };
                    let mut message = format!("[{}] {}", d.code.as_str(), d.message);
                    if let Some(v) = &d.var {
                        message.push_str(&format!(" ({v})"));
                    }
                    lsp_diag(span_range(&index, d.span), severity, &message)
                })
                .collect()
        }
    };
    publish_diags(writer, uri, diags)
}

fn publish_diags(writer: &mut impl Write, uri: &str, diags: Vec<Value>) -> io::Result<()> {
    let note = obj(vec![
        ("jsonrpc", Value::Str("2.0".into())),
        ("method", Value::Str("textDocument/publishDiagnostics".into())),
        (
            "params",
            obj(vec![
                ("uri", Value::Str(uri.to_string())),
                ("diagnostics", Value::Array(diags)),
            ]),
        ),
    ]);
    write_message(writer, &note)
}

fn lsp_diag(range: Value, severity: i64, message: &str) -> Value {
    obj(vec![
        ("range", range),
        ("severity", Value::Int(severity)),
        ("source", Value::Str("nfactor".into())),
        ("message", Value::Str(message.to_string())),
    ])
}

fn position(line: u32, character: u32) -> Value {
    obj(vec![
        ("line", Value::Int(i64::from(line))),
        ("character", Value::Int(i64::from(character))),
    ])
}

fn zero_range() -> Value {
    obj(vec![("start", position(0, 0)), ("end", position(0, 0))])
}

/// Convert a byte [`Span`] into a 0-based LSP range.
fn span_range(index: &LineIndex, span: Span) -> Value {
    let (sl, sc) = index.line_col(span.start);
    let (el, ec) = index.line_col(span.end);
    obj(vec![
        (
            "start",
            position(sl.saturating_sub(1), sc.saturating_sub(1)),
        ),
        ("end", position(el.saturating_sub(1), ec.saturating_sub(1))),
    ])
}

/// Answer a hover request: the word under the cursor, classified.
fn hover(engine: &mut Engine, params: &Value) -> Value {
    let uri = match params
        .get("textDocument")
        .and_then(|d| d.get("uri"))
        .and_then(|u| u.as_str())
    {
        Some(u) => u.to_string(),
        None => return Value::Null,
    };
    let line = params
        .get("position")
        .and_then(|p| p.get("line"))
        .and_then(|l| l.as_int())
        .unwrap_or(0);
    let character = params
        .get("position")
        .and_then(|p| p.get("character"))
        .and_then(|c| c.as_int())
        .unwrap_or(0);
    let text = match engine.source(&uri) {
        Some(t) => t,
        None => return Value::Null,
    };
    let word = match word_at(&text, line as u32, character as usize) {
        Some(w) => w,
        None => return Value::Null,
    };

    let mut sections: Vec<String> = Vec::new();
    let ctx = engine.analysis_ctx(&uri);
    if let Ok(ctx) = ctx.as_ref() {
        if let Some(class) = ctx.classes.class_of(&word) {
            sections.push(format!("`{word}` — StateAlyzer class **{class}**"));
        }
    }
    let sharding = engine.sharding_report(&uri);
    if let Ok(report) = sharding.as_ref() {
        if let Some(v) = report.get(&word) {
            let mut s = format!(
                "sharding verdict: **{}** — {}",
                v.verdict().as_str(),
                v.reason()
            );
            if let Some(d) = v.dispatch() {
                s.push_str(&format!("\n\ndispatch key: `{}`", d.render()));
            }
            sections.push(s);
        }
    }
    if sections.is_empty() {
        return Value::Null;
    }
    obj(vec![(
        "contents",
        obj(vec![
            ("kind", Value::Str("markdown".into())),
            ("value", Value::Str(sections.join("\n\n"))),
        ]),
    )])
}

/// The identifier at 0-based (line, character) in `text`, if any.
fn word_at(text: &str, line: u32, character: usize) -> Option<String> {
    let index = LineIndex::new(text);
    let line_str = index.line_text(text, line + 1)?;
    let bytes = line_str.as_bytes();
    let at = character.min(bytes.len());
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    // Allow hovering just past the last character of a word.
    let mut start = at;
    if start >= bytes.len() || !is_word(bytes[start]) {
        if start > 0 && is_word(bytes[start - 1]) {
            start -= 1;
        } else {
            return None;
        }
    }
    while start > 0 && is_word(bytes[start - 1]) {
        start -= 1;
    }
    let mut end = start;
    while end < bytes.len() && is_word(bytes[end]) {
        end += 1;
    }
    let word = line_str.get(start..end)?;
    if word.is_empty() || word.as_bytes().first().is_some_and(|b| b.is_ascii_digit()) {
        None
    } else {
        Some(word.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_extraction() {
        assert_eq!(word_at("let counts = 1;", 0, 5), Some("counts".into()));
        assert_eq!(word_at("let counts = 1;", 0, 4), Some("counts".into()));
        // Just past the end of the word.
        assert_eq!(word_at("let counts = 1;", 0, 10), Some("counts".into()));
        assert_eq!(word_at("let counts = 1;", 0, 11), None);
        assert_eq!(word_at("m[src] = 1;", 0, 2), Some("src".into()));
        // Numbers are not identifiers.
        assert_eq!(word_at("x = 42;", 0, 4), None);
        // Out-of-range line.
        assert_eq!(word_at("x", 3, 0), None);
    }

    #[test]
    fn header_matching_is_case_insensitive() {
        assert_eq!(header_value("content-length: 12", "Content-Length"), Some(" 12"));
        assert_eq!(header_value("Content-Type: x", "Content-Length"), None);
    }
}
