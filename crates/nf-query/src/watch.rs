//! Diagnostic diffing for `nfactor lint --watch`.
//!
//! Watch mode re-lints dirty documents through the [`Engine`] and
//! reprints only what *changed*: a [`WatchState`] remembers the
//! rendered one-line diagnostics per document and [`WatchState::diff`]
//! returns the lines that appeared and disappeared since the previous
//! report. Lines are compared as multisets, so two identical messages
//! on different iterations don't ping-pong.
//!
//! [`Engine`]: crate::Engine

use nfl_lint::LintReport;
use std::collections::BTreeMap;

/// One-line renderings of a lint result, e.g.
/// `warning[NFL001] fw.nfl:12: value assigned to `x` is never read`.
/// A failed lint renders as a single `error <doc>: <message>` line.
pub fn render_lines(doc: &str, report: &Result<LintReport, String>) -> Vec<String> {
    match report {
        Err(e) => vec![format!("error {doc}: {e}")],
        Ok(r) => r
            .diagnostics
            .iter()
            .map(|d| {
                let mut line = format!(
                    "{}[{}] {}:{}: {}",
                    d.severity,
                    d.code.as_str(),
                    doc,
                    d.span.line,
                    d.message
                );
                if let Some(v) = &d.var {
                    line.push_str(&format!(" ({v})"));
                }
                line
            })
            .collect(),
    }
}

/// What changed for one document between two lint runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WatchDelta {
    /// Diagnostics present now but not before.
    pub added: Vec<String>,
    /// Diagnostics present before but gone now.
    pub removed: Vec<String>,
    /// Total diagnostics now.
    pub total: usize,
}

impl WatchDelta {
    /// Did anything change?
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Remembered diagnostics per document across watch iterations.
#[derive(Debug, Default)]
pub struct WatchState {
    last: BTreeMap<String, Vec<String>>,
}

impl WatchState {
    /// Empty state: the first `diff` per document reports every
    /// diagnostic as added.
    pub fn new() -> WatchState {
        WatchState::default()
    }

    /// Record `report` for `doc` and return the delta against the
    /// previous record.
    pub fn diff(&mut self, doc: &str, report: &Result<LintReport, String>) -> WatchDelta {
        let lines = render_lines(doc, report);
        let old = self.last.insert(doc.to_string(), lines.clone());
        let old = old.unwrap_or_default();
        WatchDelta {
            added: multiset_sub(&lines, &old),
            removed: multiset_sub(&old, &lines),
            total: lines.len(),
        }
    }

    /// Forget a document (e.g. its file disappeared).
    pub fn forget(&mut self, doc: &str) -> Vec<String> {
        self.last.remove(doc).unwrap_or_default()
    }
}

/// Lines of `a` not matched one-for-one by lines of `b`, preserving
/// `a`'s order.
fn multiset_sub(a: &[String], b: &[String]) -> Vec<String> {
    let mut budget: BTreeMap<&str, usize> = BTreeMap::new();
    for line in b {
        *budget.entry(line.as_str()).or_insert(0) += 1;
    }
    a.iter()
        .filter(|line| {
            match budget.get_mut(line.as_str()) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    false
                }
                _ => true,
            }
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = r#"
        state m = map();
        fn cb(pkt: packet) {
            let src = pkt.ip.src;
            if src not in m { m[src] = 0; }
            m[src] = m[src] + 1;
            send(pkt);
        }
        fn main() { sniff(cb); }
    "#;

    const DEAD_STORE: &str = r#"
        state m = map();
        fn cb(pkt: packet) {
            let src = pkt.ip.src;
            let unused = 7;
            if src not in m { m[src] = 0; }
            m[src] = m[src] + 1;
            send(pkt);
        }
        fn main() { sniff(cb); }
    "#;

    #[test]
    fn first_diff_reports_everything_added() {
        let mut state = WatchState::new();
        let report = nfl_lint::lint_source("nf", DEAD_STORE).map_err(|e| e.to_string());
        let delta = state.diff("nf", &report);
        assert!(!delta.added.is_empty());
        assert!(delta.removed.is_empty());
        assert_eq!(delta.total, delta.added.len());
        assert!(delta.added.iter().any(|l| l.contains("NFL001")));
    }

    #[test]
    fn unchanged_rerun_is_empty_delta() {
        let mut state = WatchState::new();
        let report = nfl_lint::lint_source("nf", DEAD_STORE).map_err(|e| e.to_string());
        state.diff("nf", &report);
        let delta = state.diff("nf", &report);
        assert!(delta.is_empty());
        assert_eq!(delta.total, state.forget("nf").len());
    }

    #[test]
    fn fixing_the_source_reports_removals() {
        let mut state = WatchState::new();
        let broken = nfl_lint::lint_source("nf", DEAD_STORE).map_err(|e| e.to_string());
        let fixed = nfl_lint::lint_source("nf", CLEAN).map_err(|e| e.to_string());
        state.diff("nf", &broken);
        let delta = state.diff("nf", &fixed);
        assert!(delta.added.is_empty());
        assert!(delta.removed.iter().any(|l| l.contains("NFL001")));
    }

    #[test]
    fn parse_error_renders_single_line() {
        let lines = render_lines("bad", &Err("oops".to_string()));
        assert_eq!(lines, vec!["error bad: oops".to_string()]);
    }
}
