//! Engine correctness: incremental results must be indistinguishable
//! from from-scratch `nfl_lint::lint_source` runs, and the red-green
//! machinery must actually skip work (hits, early cutoff).

use nf_query::Engine;
use nf_trace::Tracer;

fn counter(engine: &Engine, name: &str) -> u64 {
    engine.tracer().metrics().counter(name).unwrap_or(0)
}

const ALL_LABELS: &[&str] = &[
    "parse",
    "normalize",
    "types",
    "boundary",
    "cfg",
    "pdg",
    "dom",
    "postdom",
    "slice",
    "statealyzer",
    "ctx",
    "pass.dead-store",
    "pass.unreachable-code",
    "pass.unused-config",
    "pass.use-before-init",
    "pass.unguarded-map-read",
    "pass.class-mismatch",
    "pass.sharding",
    "report",
];

fn recompute_counts(engine: &Engine) -> Vec<(String, u64)> {
    ALL_LABELS
        .iter()
        .map(|l| {
            (
                l.to_string(),
                counter(engine, &format!("query.{l}.recompute")),
            )
        })
        .collect()
}

#[test]
fn cold_engine_matches_lint_source_over_corpus() {
    let mut engine = Engine::new();
    for nf in nf_corpus::default_corpus() {
        engine.set_source(nf.name, &nf.source);
    }
    for nf in nf_corpus::default_corpus() {
        let fresh = nfl_lint::lint_source(nf.name, &nf.source);
        let incr = engine.lint_report(nf.name);
        match (&fresh, incr.as_ref()) {
            (Ok(f), Ok(i)) => {
                use nf_support::json::ToJson;
                assert_eq!(
                    f.to_json().render(),
                    i.to_json().render(),
                    "JSON mismatch for {}",
                    nf.name
                );
                assert_eq!(f.render_text(), i.render_text(), "text mismatch for {}", nf.name);
                assert_eq!(f.source, i.source, "carried source mismatch for {}", nf.name);
                // The sharding query agrees with the report's embedded copy.
                let sh = engine.sharding_report(nf.name);
                assert_eq!(
                    sh.as_ref().as_ref().ok(),
                    Some(&i.sharding),
                    "sharding query mismatch for {}",
                    nf.name
                );
            }
            (Err(f), Err(i)) => assert_eq!(f, i, "error mismatch for {}", nf.name),
            (f, i) => panic!(
                "divergent outcome for {}: fresh {:?} vs incremental {:?}",
                nf.name,
                f.is_ok(),
                i.is_ok()
            ),
        }
    }
}

#[test]
fn fully_cached_rerun_recomputes_nothing() {
    let mut engine = Engine::with_tracer(Tracer::enabled());
    for nf in nf_corpus::default_corpus() {
        engine.set_source(nf.name, &nf.source);
    }
    let mut first = Vec::new();
    for nf in nf_corpus::default_corpus() {
        first.push(engine.lint_report(nf.name));
    }
    let before = recompute_counts(&engine);
    let hits_before = counter(&engine, "query.report.hit");
    for (i, nf) in nf_corpus::default_corpus().iter().enumerate() {
        use nf_support::json::ToJson;
        let again = engine.lint_report(nf.name);
        let a = again.as_ref().as_ref().map(|r| r.to_json().render());
        let b = first[i].as_ref().as_ref().map(|r| r.to_json().render());
        assert_eq!(a, b, "warm rerun changed the report for {}", nf.name);
    }
    assert_eq!(
        recompute_counts(&engine),
        before,
        "a fully cached rerun recomputed something"
    );
    assert_eq!(
        counter(&engine, "query.report.hit"),
        hits_before + nf_corpus::default_corpus().len() as u64,
        "warm reruns should be report-level cache hits"
    );
}

#[test]
fn trailing_comment_edit_recomputes_only_parse() {
    let mut engine = Engine::with_tracer(Tracer::enabled());
    for nf in nf_corpus::default_corpus() {
        engine.set_source(nf.name, &nf.source);
    }
    for nf in nf_corpus::default_corpus() {
        engine.lint_report(nf.name);
    }
    let nf = &nf_corpus::default_corpus()[0];
    let before_report = engine.lint_report(nf.name);
    let before = recompute_counts(&engine);
    let cutoffs_before = counter(&engine, "query.parse.cutoff");

    let edited = format!("{}\n// a trailing comment, analysis-invisible\n", nf.source);
    assert!(engine.set_source(nf.name, &edited), "edit must dirty the doc");
    let after_report = engine.lint_report(nf.name);

    let after = recompute_counts(&engine);
    for ((label, b), (_, a)) in before.iter().zip(after.iter()) {
        if label == "parse" {
            assert_eq!(*a, b + 1, "parse should recompute exactly once");
        } else {
            assert_eq!(a, b, "{label} recomputed after a trivia-only edit");
        }
    }
    assert_eq!(
        counter(&engine, "query.parse.cutoff"),
        cutoffs_before + 1,
        "the re-parse should early-cut (identical program fingerprint)"
    );
    use nf_support::json::ToJson;
    assert_eq!(
        before_report.as_ref().as_ref().map(|r| r.to_json().render()),
        after_report.as_ref().as_ref().map(|r| r.to_json().render()),
        "trivia edit changed the report"
    );
}

#[test]
fn semantic_edit_reanalyzes_and_matches_fresh() {
    let mut engine = Engine::with_tracer(Tracer::enabled());
    let base = r#"
        state m = map();
        fn cb(pkt: packet) {
            let src = pkt.ip.src;
            if src not in m { m[src] = 0; }
            m[src] = m[src] + 1;
            send(pkt);
        }
        fn main() { sniff(cb); }
    "#;
    let edited = r#"
        state m = map();
        fn cb(pkt: packet) {
            let src = pkt.ip.src;
            let unused = 7;
            if src not in m { m[src] = 0; }
            m[src] = m[src] + 1;
            send(pkt);
        }
        fn main() { sniff(cb); }
    "#;
    engine.set_source("nf", base);
    let clean = engine.lint_report("nf");
    assert!(clean.as_ref().as_ref().is_ok_and(|r| r.diagnostics.is_empty()));

    engine.set_source("nf", edited);
    let dirty = engine.lint_report("nf");
    let fresh = nfl_lint::lint_source("nf", edited);
    use nf_support::json::ToJson;
    assert_eq!(
        dirty.as_ref().as_ref().map(|r| r.to_json().render()).ok(),
        fresh.as_ref().map(|r| r.to_json().render()).ok(),
        "incremental result diverged from from-scratch after a semantic edit"
    );
    assert!(dirty
        .as_ref()
        .as_ref()
        .is_ok_and(|r| r.diagnostics.iter().any(|d| d.code.as_str() == "NFL001")));
}

#[test]
fn error_documents_memoize_and_recover() {
    let mut engine = Engine::new();
    let broken = "fn cb(pkt: packet { send(pkt); }";
    engine.set_source("nf", broken);
    let fresh_err = nfl_lint::lint_source("nf", broken).err();
    let incr = engine.lint_report("nf");
    assert_eq!(incr.as_ref().as_ref().err(), fresh_err.as_ref(), "error strings must match");
    // Cached error: asking again returns the same Arc'd error.
    let again = engine.lint_report("nf");
    assert_eq!(again.as_ref().as_ref().err(), fresh_err.as_ref());

    let fixed = r#"
        state m = map();
        fn cb(pkt: packet) {
            let src = pkt.ip.src;
            if src not in m { m[src] = 0; }
            m[src] = m[src] + 1;
            send(pkt);
        }
        fn main() { sniff(cb); }
    "#;
    engine.set_source("nf", fixed);
    let ok = engine.lint_report("nf");
    assert!(ok.as_ref().as_ref().is_ok(), "engine did not recover from a parse error");
}

#[test]
fn unloaded_document_is_an_error_not_a_panic() {
    let mut engine = Engine::new();
    let r = engine.lint_report("missing");
    assert!(r
        .as_ref()
        .as_ref()
        .err()
        .is_some_and(|e| e.contains("not loaded")));
}

#[test]
fn edits_are_isolated_across_documents() {
    let mut engine = Engine::with_tracer(Tracer::enabled());
    for nf in nf_corpus::default_corpus() {
        engine.set_source(nf.name, &nf.source);
    }
    for nf in nf_corpus::default_corpus() {
        engine.lint_report(nf.name);
    }
    let parse_before = counter(&engine, "query.parse.recompute");
    // Semantic edit to one document only.
    let nf = &nf_corpus::default_corpus()[0];
    let edited = format!("{}\nfn extra_helper() {{ let x = 1; }}\n", nf.source);
    engine.set_source(nf.name, &edited);
    for nf in nf_corpus::default_corpus() {
        engine.lint_report(nf.name);
    }
    assert_eq!(
        counter(&engine, "query.parse.recompute"),
        parse_before + 1,
        "only the edited document should re-parse"
    );
}

#[test]
fn identical_set_source_is_a_noop() {
    let mut engine = Engine::new();
    let nf = &nf_corpus::default_corpus()[0];
    assert!(engine.set_source(nf.name, &nf.source));
    let rev = engine.revision();
    assert!(!engine.set_source(nf.name, &nf.source));
    assert_eq!(engine.revision(), rev, "identical bytes must not bump the revision");
}
