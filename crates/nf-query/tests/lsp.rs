//! Drive the LSP server through an in-memory stdio pair: handshake,
//! open-with-findings, hover, fix-the-source, shutdown.

use nf_query::{lsp, Engine};
use nf_support::json::Value;
use std::io::Cursor;

const DEAD_STORE: &str = r#"state m = map();
fn cb(pkt: packet) {
    let src = pkt.ip.src;
    let unused = 7;
    if src not in m { m[src] = 0; }
    m[src] = m[src] + 1;
    send(pkt);
}
fn main() { sniff(cb); }
"#;

const CLEAN: &str = r#"state m = map();
fn cb(pkt: packet) {
    let src = pkt.ip.src;
    if src not in m { m[src] = 0; }
    m[src] = m[src] + 1;
    send(pkt);
}
fn main() { sniff(cb); }
"#;

fn frame(body: &Value) -> String {
    let body = body.render();
    format!("Content-Length: {}\r\n\r\n{}", body.len(), body)
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn request(id: i64, method: &str, params: Value) -> Value {
    obj(vec![
        ("jsonrpc", Value::Str("2.0".into())),
        ("id", Value::Int(id)),
        ("method", Value::Str(method.into())),
        ("params", params),
    ])
}

fn notification(method: &str, params: Value) -> Value {
    obj(vec![
        ("jsonrpc", Value::Str("2.0".into())),
        ("method", Value::Str(method.into())),
        ("params", params),
    ])
}

fn text_doc(uri: &str) -> Value {
    obj(vec![("uri", Value::Str(uri.into()))])
}

/// Split `Content-Length`-framed messages out of the server's output.
fn parse_frames(out: &[u8]) -> Vec<Value> {
    let text = String::from_utf8_lossy(out);
    let mut frames = Vec::new();
    let mut rest = text.as_ref();
    while let Some(idx) = rest.find("\r\n\r\n") {
        let header = &rest[..idx];
        let len: usize = header
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length:"))
            .and_then(|v| v.trim().parse().ok())
            .expect("missing Content-Length header");
        let body = &rest[idx + 4..idx + 4 + len];
        frames.push(Value::parse(body).expect("bad JSON frame"));
        rest = &rest[idx + 4 + len..];
    }
    frames
}

fn response_for<'a>(frames: &'a [Value], id: i64) -> Option<&'a Value> {
    frames
        .iter()
        .find(|f| f.get("id").and_then(|i| i.as_int()) == Some(id))
}

fn diagnostics_published<'a>(frames: &'a [Value]) -> Vec<&'a [Value]> {
    frames
        .iter()
        .filter(|f| {
            f.get("method").and_then(|m| m.as_str()) == Some("textDocument/publishDiagnostics")
        })
        .filter_map(|f| f.get("params")?.get("diagnostics")?.as_array())
        .collect()
}

#[test]
fn full_session() {
    let uri = "file:///nf/demo.nfl";
    let mut input = String::new();
    input.push_str(&frame(&request(1, "initialize", obj(vec![]))));
    input.push_str(&frame(&notification("initialized", obj(vec![]))));
    input.push_str(&frame(&notification(
        "textDocument/didOpen",
        obj(vec![(
            "textDocument",
            obj(vec![
                ("uri", Value::Str(uri.into())),
                ("languageId", Value::Str("nfl".into())),
                ("version", Value::Int(1)),
                ("text", Value::Str(DEAD_STORE.into())),
            ]),
        )]),
    )));
    // Hover over `m` in `state m = map();` (line 0, character 6).
    input.push_str(&frame(&request(
        2,
        "textDocument/hover",
        obj(vec![
            ("textDocument", text_doc(uri)),
            (
                "position",
                obj(vec![("line", Value::Int(0)), ("character", Value::Int(6))]),
            ),
        ]),
    )));
    // Unknown request must earn a -32601, not a hang.
    input.push_str(&frame(&request(3, "textDocument/definition", obj(vec![]))));
    input.push_str(&frame(&notification(
        "textDocument/didChange",
        obj(vec![
            ("textDocument", text_doc(uri)),
            (
                "contentChanges",
                Value::Array(vec![obj(vec![("text", Value::Str(CLEAN.into()))])]),
            ),
        ]),
    )));
    input.push_str(&frame(&request(4, "shutdown", Value::Null)));
    input.push_str(&frame(&notification("exit", Value::Null)));

    let mut engine = Engine::new();
    let mut reader = Cursor::new(input.into_bytes());
    let mut out: Vec<u8> = Vec::new();
    lsp::serve(&mut engine, &mut reader, &mut out).expect("serve failed");

    let frames = parse_frames(&out);

    // 1. initialize response advertises full sync + hover.
    let init = response_for(&frames, 1).expect("no initialize response");
    let caps = init.get("result").and_then(|r| r.get("capabilities")).expect("no capabilities");
    assert_eq!(
        caps.get("textDocumentSync").and_then(|v| v.as_int()),
        Some(1)
    );
    assert_eq!(caps.get("hoverProvider").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(
        init.get("result")
            .and_then(|r| r.get("serverInfo"))
            .and_then(|s| s.get("name"))
            .and_then(|n| n.as_str()),
        Some("nfactor-lsp")
    );

    // 2. didOpen published the dead-store warning.
    let published = diagnostics_published(&frames);
    assert!(published.len() >= 2, "expected publishes for open and change");
    let first = published[0];
    assert!(
        first.iter().any(|d| d
            .get("message")
            .and_then(|m| m.as_str())
            .is_some_and(|m| m.contains("NFL001"))),
        "didOpen publish missing NFL001: {first:?}"
    );
    // Ranges are 0-based and on the `let unused` line (line 3).
    assert!(first.iter().any(|d| d
        .get("range")
        .and_then(|r| r.get("start"))
        .and_then(|s| s.get("line"))
        .and_then(|l| l.as_int())
        == Some(3)));

    // 3. Hover over the state map names its class and verdict.
    let hover = response_for(&frames, 2).expect("no hover response");
    let text = hover
        .get("result")
        .and_then(|r| r.get("contents"))
        .and_then(|c| c.get("value"))
        .and_then(|v| v.as_str())
        .expect("hover has no markdown contents");
    assert!(text.contains("`m`"), "hover missing variable name: {text}");
    assert!(
        text.contains("per-flow") || text.contains("pktVar") || text.contains("oisVar"),
        "hover missing class/verdict: {text}"
    );

    // 4. Unknown method → method-not-found.
    let unknown = response_for(&frames, 3).expect("no response for unknown method");
    assert_eq!(
        unknown
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(|c| c.as_int()),
        Some(-32601)
    );

    // 5. The fix cleared the diagnostics.
    let last = published.last().expect("no final publish");
    assert!(last.is_empty(), "expected empty diagnostics after fix: {last:?}");

    // 6. shutdown answered with null.
    let shutdown = response_for(&frames, 4).expect("no shutdown response");
    assert_eq!(shutdown.get("result"), Some(&Value::Null));
}

#[test]
fn parse_error_becomes_a_diagnostic() {
    let uri = "file:///nf/broken.nfl";
    let mut input = String::new();
    input.push_str(&frame(&request(1, "initialize", obj(vec![]))));
    input.push_str(&frame(&notification(
        "textDocument/didOpen",
        obj(vec![(
            "textDocument",
            obj(vec![
                ("uri", Value::Str(uri.into())),
                ("text", Value::Str("fn cb(pkt: packet { }".into())),
            ]),
        )]),
    )));
    input.push_str(&frame(&notification("exit", Value::Null)));

    let mut engine = Engine::new();
    let mut reader = Cursor::new(input.into_bytes());
    let mut out: Vec<u8> = Vec::new();
    lsp::serve(&mut engine, &mut reader, &mut out).expect("serve failed");

    let frames = parse_frames(&out);
    let published = diagnostics_published(&frames);
    assert_eq!(published.len(), 1);
    assert_eq!(published[0].len(), 1, "parse error should publish one diagnostic");
    assert_eq!(
        published[0][0].get("severity").and_then(|s| s.as_int()),
        Some(1),
        "parse errors are LSP severity 1"
    );
}
