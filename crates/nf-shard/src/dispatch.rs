//! RSS-style packet steering: hash the lint-derived dispatch fields to
//! pick a shard.
//!
//! Soundness rests on one property: the shard a packet is steered to
//! must be a function of the map entry it will touch. A *plain* key
//! hashes the raw field values of the dispatch key — those values are
//! components of the entry key, so the property holds. A *symmetric*
//! key canonicalises direction first: the firewall writes a pinhole
//! with `(dst, dport, src, sport)` and probes it with
//! `(src, sport, dst, dport)`, so the engine hashes the lexicographic
//! minimum of the field values and their mirrored values — a flow and
//! its reply direction then agree on the shard, whichever side is seen.
//!
//! Packets missing a dispatch field (an ICMP packet has no ports) read
//! the field as 0: every such packet still steers deterministically,
//! and the interpreter's own guards decide what to do with it.

use nf_packet::{Field, Packet};
use nfl_lint::{mirror_field, DispatchKey};

/// 64-bit FNV-1a over a sequence of field values — the reference form
/// the tests pin [`dispatch_hash`]'s allocation-free path against.
#[cfg(test)]
fn fnv1a(values: &[u64]) -> u64 {
    fnv1a_fold(values.iter().copied())
}

/// [`fnv1a`] over an iterator, so the per-packet hash path never
/// materialises the value sequence (see [`dispatch_hash`]).
fn fnv1a_fold(values: impl Iterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Read `f` from `pkt`, defaulting to 0 when the packet's protocol does
/// not carry the field.
fn field_value(pkt: &Packet, f: Field) -> u64 {
    pkt.get(f).unwrap_or(0)
}

/// The values a dispatch key hashes for `pkt`: the canonical direction
/// for symmetric keys, the raw field values otherwise.
pub fn dispatch_values(key: &DispatchKey, pkt: &Packet) -> Vec<u64> {
    let forward: Vec<u64> = key.fields().iter().map(|f| field_value(pkt, *f)).collect();
    if !key.symmetric() {
        return forward;
    }
    let reverse: Vec<u64> = key
        .fields()
        .iter()
        .map(|f| field_value(pkt, mirror_field(*f)))
        .collect();
    if reverse < forward {
        reverse
    } else {
        forward
    }
}

/// The full 64-bit dispatch hash of `pkt` under `key` — the quantity
/// [`shard_of`] reduces modulo the shard count. The skew-aware
/// rebalancer keys its seen-flow table on this, so two packets steer
/// together iff they hash identically.
pub fn dispatch_hash(key: &DispatchKey, pkt: &Packet) -> u64 {
    // Allocation-free equivalent of `fnv1a(&dispatch_values(..))`:
    // this runs once per packet on the dispatcher thread, so the
    // `Vec`s behind `dispatch_values` would be the hot path's only
    // heap traffic. The canonical-direction choice compares the two
    // orientations field by field, exactly as the `Vec` comparison
    // would (`reverse < forward` lexicographically).
    let fields = key.fields();
    if !key.symmetric() {
        return fnv1a_fold(fields.iter().map(|f| field_value(pkt, *f)));
    }
    let mut reversed = false;
    for f in fields {
        let fw = field_value(pkt, *f);
        let rv = field_value(pkt, mirror_field(*f));
        if rv != fw {
            reversed = rv < fw;
            break;
        }
    }
    if reversed {
        fnv1a_fold(fields.iter().map(|f| field_value(pkt, mirror_field(*f))))
    } else {
        fnv1a_fold(fields.iter().map(|f| field_value(pkt, *f)))
    }
}

/// The shard (in `0..shards`) that owns `pkt` under `key`.
pub fn shard_of(key: &DispatchKey, pkt: &Packet, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    (dispatch_hash(key, pkt) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_packet::PacketGen;

    fn plain(fields: Vec<Field>) -> DispatchKey {
        DispatchKey::new(fields, false)
    }

    #[test]
    fn dispatch_is_deterministic_and_in_range() {
        let key = plain(vec![Field::IpSrc, Field::TcpSport]);
        let mut gen = PacketGen::new(7);
        for _ in 0..200 {
            let pkt = gen.next_packet();
            let s = shard_of(&key, &pkt, 4);
            assert!(s < 4);
            assert_eq!(s, shard_of(&key, &pkt, 4));
        }
    }

    #[test]
    fn non_key_fields_do_not_steer() {
        let key = plain(vec![Field::IpSrc]);
        let mut gen = PacketGen::new(7);
        for _ in 0..100 {
            let mut pkt = gen.next_packet();
            let before = shard_of(&key, &pkt, 8);
            pkt.set(Field::IpTtl, 1).unwrap();
            let _ = pkt.set(Field::TcpDport, 9999);
            assert_eq!(before, shard_of(&key, &pkt, 8));
        }
    }

    /// The allocation-free hash path must agree bit-for-bit with
    /// hashing the materialised [`dispatch_values`] sequence — the
    /// rebalancer's seen-flow table and the telemetry hot-key sketches
    /// both key on these values, so the two views must never drift.
    #[test]
    fn hash_matches_materialized_values() {
        let keys = [
            plain(vec![Field::IpSrc, Field::TcpSport]),
            DispatchKey::new(
                vec![Field::IpSrc, Field::TcpSport, Field::IpDst, Field::TcpDport],
                true,
            ),
            DispatchKey::new(vec![Field::IpSrc, Field::IpDst], true),
        ];
        let mut gen = PacketGen::new(0xD15);
        for _ in 0..300 {
            let pkt = gen.next_packet();
            for key in &keys {
                assert_eq!(
                    dispatch_hash(key, &pkt),
                    fnv1a(&dispatch_values(key, &pkt)),
                    "hash diverges from materialised values"
                );
            }
        }
    }

    #[test]
    fn symmetric_key_colocates_reverse_flow() {
        let key = DispatchKey::new(
            vec![Field::IpSrc, Field::TcpSport, Field::IpDst, Field::TcpDport],
            true,
        );
        let mut gen = PacketGen::new(11);
        for _ in 0..100 {
            let pkt = gen.next_packet();
            let mut rev = pkt.clone();
            let (src, dst) = (field_value(&pkt, Field::IpSrc), field_value(&pkt, Field::IpDst));
            rev.set(Field::IpSrc, dst).unwrap();
            rev.set(Field::IpDst, src).unwrap();
            let (sp, dp) = (
                field_value(&pkt, Field::TcpSport),
                field_value(&pkt, Field::TcpDport),
            );
            if rev.set(Field::TcpSport, dp).is_ok() && rev.set(Field::TcpDport, sp).is_ok() {
                assert_eq!(shard_of(&key, &pkt, 8), shard_of(&key, &rev, 8));
            }
        }
    }

    #[test]
    fn spread_is_not_degenerate() {
        // 4 shards, 400 random packets keyed by src: every shard should
        // see some traffic.
        let key = plain(vec![Field::IpSrc]);
        let mut gen = PacketGen::new(3);
        let mut seen = [0usize; 4];
        for _ in 0..400 {
            seen[shard_of(&key, &gen.next_packet(), 4)] += 1;
        }
        assert!(seen.iter().all(|&c| c > 0), "{seen:?}");
    }
}
