//! The sharded execution engine.
//!
//! A [`ShardEngine`] runs one NF — either its NFL interpreter or its
//! synthesized model ([`Backend`]) — across `n` worker shards, placing
//! state as the [`ShardPlan`] dictates:
//!
//! * **Partitioned** plans steer each packet to the shard its dispatch
//!   hash picks; every shard owns an independent copy of the program
//!   state, and per-flow maps partition because all packets of a flow
//!   (and, for symmetric keys, its reply direction) land on one shard.
//!   There is deliberately **no work stealing**: stealing a packet
//!   would move it away from the shard that owns its flow state, which
//!   is exactly the locality the dispatch hash exists to preserve.
//! * **Global-lock** plans (shared state) run one program instance
//!   behind a ticket lock: workers take packets round-robin but process
//!   them in global arrival order, so the result is bit-identical to a
//!   single-threaded run — correct, serialised, and measured as such.
//!
//! After a run, per-shard states are merged back into one view
//! ([`ShardRun::merged`]): partitioned maps union (their key sets are
//! disjoint by construction — a collision is reported as an engine
//! bug), log-only counters sum their per-shard deltas, and replicated
//! state is checked untouched.
//!
//! Three run modes support the differential oracle and the bench:
//! [`ShardEngine::run`] (real `std::thread` workers over SPSC rings),
//! [`ShardEngine::run_sequential`] (same dispatch, executed on one
//! thread with per-shard busy-time accounting — deterministic
//! makespan measurement for single-core hosts), and
//! [`ShardEngine::run_single`] (the one-shard reference).

use crate::dispatch::shard_of;
use crate::plan::{RunMode, ShardPlan};
use nf_compile::{CompiledProgram, CompiledState};
use nf_model::{Model, ModelState};
use nf_packet::Packet;
use nf_trace::Tracer;
use nfactor_core::{Pipeline, Synthesis};
use nfl_interp::{Interp, Value};
use nfl_lint::{ShardingReport, StateShard};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Ring capacity per worker; deep enough to absorb dispatch bursts,
/// shallow enough to bound memory.
const RING_CAP: usize = 1024;

/// Sentinel error a global-lock worker returns when it bailed out
/// because *another* shard poisoned the ticket; filtered at join time
/// in favour of the root cause.
const ABORTED: &str = "aborted: another shard failed";

/// Poisons the ticket counter unless disarmed — so a worker that exits
/// abnormally (error return or panic) can never leave its peers
/// spinning on a ticket that will not come.
struct PoisonTicket {
    turn: Arc<AtomicU64>,
    armed: bool,
}

impl Drop for PoisonTicket {
    fn drop(&mut self) {
        if self.armed {
            self.turn.store(u64::MAX, Ordering::Release);
        }
    }
}

/// What executes on each shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The NFL interpreter over the normalised program.
    Interp,
    /// The synthesized model evaluator.
    Model,
    /// The model compiled to a flattened XFSM dispatch engine
    /// (`nf-compile`): decision-tree flow classification, memoized
    /// state tags, dense state arenas.
    Compiled,
}

/// Errors from building or running a shard engine.
#[derive(Debug)]
pub enum ShardError {
    /// Lint or parse failure while building.
    Build(String),
    /// A shard hit a runtime error processing a packet.
    Runtime(String),
    /// Thread spawn/join failure.
    Thread(String),
    /// State merge detected an invariant violation (a partitioning or
    /// replication bug).
    Merge(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Build(m) => write!(f, "build: {m}"),
            ShardError::Runtime(m) => write!(f, "runtime: {m}"),
            ShardError::Thread(m) => write!(f, "thread: {m}"),
            ShardError::Merge(m) => write!(f, "merge: {m}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Per-shard program state: an interpreter, a model-state instance, or
/// a compiled program plus its dense state arena (the program itself is
/// immutable and shared across shards via `Arc`).
#[derive(Debug, Clone)]
enum BackendState {
    Interp(Interp),
    Model(ModelState),
    Compiled {
        prog: Arc<CompiledProgram>,
        state: CompiledState,
    },
}

impl BackendState {
    /// Process one packet, returning `(outputs, dropped)`.
    fn step(&mut self, model: Option<&Model>, pkt: &Packet) -> Result<(Vec<Packet>, bool), String> {
        match self {
            BackendState::Interp(i) => i
                .process(pkt)
                .map(|r| (r.outputs, r.dropped))
                .map_err(|e| e.to_string()),
            BackendState::Model(ms) => {
                let Some(m) = model else {
                    return Err("model backend without a model".into());
                };
                ms.step(m, pkt)
                    .map(|s| {
                        let dropped = s.output.is_none();
                        (s.output.into_iter().collect(), dropped)
                    })
                    .map_err(|e| e.to_string())
            }
            BackendState::Compiled { prog, state } => state
                .step(prog, pkt)
                .map(|s| {
                    let dropped = s.output.is_none();
                    (s.output.into_iter().collect(), dropped)
                })
                .map_err(|e| e.to_string()),
        }
    }

    /// A by-name snapshot of all persistent state.
    fn snapshot(&self) -> BTreeMap<String, Value> {
        match self {
            BackendState::Interp(i) => i
                .globals
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            BackendState::Model(ms) => {
                let mut out = BTreeMap::new();
                for (k, v) in &ms.configs {
                    out.insert(k.clone(), v.clone());
                }
                for (k, v) in &ms.scalars {
                    out.insert(k.clone(), v.clone());
                }
                for (k, m) in &ms.maps {
                    out.insert(k.clone(), Value::Map(m.clone()));
                }
                out
            }
            BackendState::Compiled { prog, state } => state.snapshot(prog),
        }
    }
}

/// The observable result of processing one packet, tagged with its
/// global arrival sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqOutput {
    /// Global arrival index of the input packet.
    pub seq: u64,
    /// The shard that processed it.
    pub shard: usize,
    /// Packets emitted by `send`, in order.
    pub outputs: Vec<Packet>,
    /// Whether the packet was dropped.
    pub dropped: bool,
}

/// The merged result of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Per-packet results, sorted by arrival sequence.
    pub outputs: Vec<SeqOutput>,
    /// Merged state: per-flow maps unioned, log counters delta-summed,
    /// replicated state verified, keyed by variable name.
    pub merged: BTreeMap<String, Value>,
    /// Packets processed by each shard.
    pub per_shard_pkts: Vec<u64>,
    /// Busy (processing) nanoseconds per shard.
    pub busy_ns: Vec<u64>,
    /// Whether shards ran without cross-shard locking.
    pub partitioned: bool,
}

impl ShardRun {
    /// Total packets processed.
    pub fn total_pkts(&self) -> u64 {
        self.per_shard_pkts.iter().sum()
    }

    /// The run's critical path: with partitioned shards the slowest
    /// shard bounds completion; under the global lock the work is
    /// serialised, so the critical path is the sum.
    pub fn makespan_ns(&self) -> u64 {
        if self.partitioned {
            self.busy_ns.iter().copied().max().unwrap_or(0)
        } else {
            self.busy_ns.iter().sum()
        }
    }

    /// The externally observable behaviour, shard assignment erased —
    /// what a differential oracle compares across shard counts.
    pub fn output_signature(&self) -> Vec<(u64, Vec<Packet>, bool)> {
        self.outputs
            .iter()
            .map(|o| (o.seq, o.outputs.clone(), o.dropped))
            .collect()
    }
}

/// What one worker hands back at join time.
struct WorkerOut {
    outputs: Vec<SeqOutput>,
    snapshot: BTreeMap<String, Value>,
    pkts: u64,
    busy_ns: u64,
}

/// A sharded runtime instance for one NF.
pub struct ShardEngine {
    name: String,
    shards: usize,
    plan: ShardPlan,
    report: ShardingReport,
    tracer: Tracer,
    proto: BackendState,
    model: Option<Arc<Model>>,
}

impl ShardEngine {
    /// Build an engine from NFL source: lints the program for the
    /// placement plan, then instantiates the selected backend. Shard
    /// count and tracer come from the [`Pipeline`].
    pub fn from_source(
        pipeline: &Pipeline,
        src: &str,
        backend: Backend,
    ) -> Result<ShardEngine, ShardError> {
        match backend {
            Backend::Interp => {
                let lint = nfl_lint::lint_source(pipeline.name(), src)
                    .map_err(ShardError::Build)?;
                // The lint analyses the (possibly socket-unfolded)
                // program; run the same text so state names line up.
                let program =
                    nfl_lang::parse_and_check(&lint.source).map_err(ShardError::Build)?;
                let nf_loop =
                    nfl_analysis::normalize(&program).map_err(|e| ShardError::Build(e.to_string()))?;
                let interp =
                    Interp::new(&nf_loop).map_err(|e| ShardError::Build(e.to_string()))?;
                Ok(ShardEngine {
                    name: pipeline.name().to_string(),
                    shards: pipeline.shards(),
                    plan: ShardPlan::from_report(&lint.sharding),
                    report: lint.sharding,
                    tracer: pipeline.tracer().clone(),
                    proto: BackendState::Interp(interp),
                    model: None,
                })
            }
            Backend::Model | Backend::Compiled => {
                let syn = pipeline
                    .synthesize(src)
                    .map_err(|e| ShardError::Build(e.to_string()))?;
                ShardEngine::from_synthesis(pipeline, &syn, backend)
            }
        }
    }

    /// Build an engine from an existing [`Synthesis`] (avoids
    /// re-running the pipeline when the caller already has one) for any
    /// backend: the interpreter runs the synthesis's normalised
    /// program, the model backend its synthesized model, and the
    /// compiled backend the model lowered by `nf-compile` against the
    /// program's initial configuration and state.
    pub fn from_synthesis(
        pipeline: &Pipeline,
        syn: &Synthesis,
        backend: Backend,
    ) -> Result<ShardEngine, ShardError> {
        let lint = nfl_lint::lint_program(&syn.name, &syn.nf_loop.program)
            .map_err(ShardError::Build)?;
        let interp =
            Interp::new(&syn.nf_loop).map_err(|e| ShardError::Build(e.to_string()))?;
        let tracer = pipeline.tracer().clone();
        let (proto, model) = match backend {
            Backend::Interp => (BackendState::Interp(interp), None),
            Backend::Model => {
                let init = nfactor_core::accuracy::initial_model_state(syn, &interp);
                (
                    BackendState::Model(init),
                    Some(Arc::new(syn.model.clone())),
                )
            }
            Backend::Compiled => {
                let init = nfactor_core::accuracy::initial_model_state(syn, &interp);
                let t0 = Instant::now();
                let prog = nf_compile::compile(&syn.model, &init)
                    .map_err(|e| ShardError::Build(e.to_string()))?;
                tracer.observe_ns("compile.ns", t0.elapsed().as_nanos() as u64);
                tracer.count("compiled.nodes", prog.node_count() as u64);
                tracer.count("compiled.table.entries", prog.entry_count() as u64);
                let state = nf_compile::CompiledState::new(&prog);
                (
                    BackendState::Compiled {
                        prog: Arc::new(prog),
                        state,
                    },
                    None,
                )
            }
        };
        Ok(ShardEngine {
            name: syn.name.clone(),
            shards: pipeline.shards(),
            plan: ShardPlan::from_report(&lint.sharding),
            report: lint.sharding,
            tracer,
            proto,
            model,
        })
    }

    /// The NF name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of shards this engine fans out to.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The placement plan in force.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The lint report the plan was derived from.
    pub fn report(&self) -> &ShardingReport {
        &self.report
    }

    /// Run threaded: one `std::thread` worker per shard, fed over SPSC
    /// rings, packets steered by the plan.
    pub fn run(&self, packets: &[Packet]) -> Result<ShardRun, ShardError> {
        match self.plan.mode().clone() {
            RunMode::Partitioned(key) => self.run_partitioned_threaded(&key, packets),
            RunMode::GlobalLock => self.run_global_threaded(packets),
        }
    }

    /// Run the same dispatch on one thread, accounting busy time per
    /// shard — the deterministic way to measure partitioned speedup on
    /// a host without `shards` free cores.
    pub fn run_sequential(&self, packets: &[Packet]) -> Result<ShardRun, ShardError> {
        match self.plan.mode().clone() {
            RunMode::Partitioned(key) => self.run_sequential_n(self.shards, |p| {
                shard_of(&key, p, self.shards)
            }, true, packets),
            RunMode::GlobalLock => {
                // One state instance; round-robin accounting, serialised
                // critical path.
                self.run_global_sequential(packets)
            }
        }
    }

    /// The single-threaded reference run every sharded run must match.
    pub fn run_single(&self, packets: &[Packet]) -> Result<ShardRun, ShardError> {
        self.run_sequential_n(1, |_| 0, true, packets)
    }

    fn run_partitioned_threaded(
        &self,
        key: &nfl_lint::DispatchKey,
        packets: &[Packet],
    ) -> Result<ShardRun, ShardError> {
        let n = self.shards;
        let outs = std::thread::scope(|scope| -> Result<Vec<WorkerOut>, ShardError> {
            let mut producers = Vec::with_capacity(n);
            let mut handles = Vec::with_capacity(n);
            for w in 0..n {
                let (tx, rx) = nf_support::spsc::ring::<(u64, Packet)>(RING_CAP);
                producers.push(tx);
                let mut state = self.proto.clone();
                let model = self.model.clone();
                let tracer = self.tracer.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("nf-shard-{w}"))
                    .spawn_scoped(scope, move || -> Result<WorkerOut, String> {
                        let mut outputs = Vec::new();
                        let (mut pkts, mut busy_ns) = (0u64, 0u64);
                        loop {
                            let wait = Instant::now();
                            let Some((seq, pkt)) = rx.recv() else { break };
                            tracer.observe_ns(
                                &format!("shard.{w}.ring.wait.ns"),
                                wait.elapsed().as_nanos() as u64,
                            );
                            let t0 = Instant::now();
                            let (outs, dropped) = state.step(model.as_deref(), &pkt)?;
                            busy_ns += t0.elapsed().as_nanos() as u64;
                            pkts += 1;
                            outputs.push(SeqOutput {
                                seq,
                                shard: w,
                                outputs: outs,
                                dropped,
                            });
                        }
                        tracer.count(&format!("shard.{w}.pkts"), pkts);
                        Ok(WorkerOut {
                            outputs,
                            snapshot: state.snapshot(),
                            pkts,
                            busy_ns,
                        })
                    })
                    .map_err(|e| ShardError::Thread(e.to_string()))?;
                handles.push(handle);
            }
            for (i, pkt) in packets.iter().enumerate() {
                let w = shard_of(key, pkt, n);
                if producers[w].send((i as u64, pkt.clone())).is_err() {
                    // The worker exited early (runtime error); its join
                    // below reports why.
                    break;
                }
            }
            drop(producers);
            let mut outs = Vec::with_capacity(n);
            for handle in handles {
                match handle.join() {
                    Ok(Ok(out)) => outs.push(out),
                    Ok(Err(e)) => return Err(ShardError::Runtime(e)),
                    Err(_) => return Err(ShardError::Thread("worker panicked".into())),
                }
            }
            Ok(outs)
        })?;
        self.assemble(outs, true)
    }

    fn run_global_threaded(&self, packets: &[Packet]) -> Result<ShardRun, ShardError> {
        let n = self.shards;
        let shared = Arc::new(Mutex::new(self.proto.clone()));
        let turn = Arc::new(AtomicU64::new(0));
        let outs = std::thread::scope(|scope| -> Result<Vec<WorkerOut>, ShardError> {
            let mut producers = Vec::with_capacity(n);
            let mut handles = Vec::with_capacity(n);
            for w in 0..n {
                let (tx, rx) = nf_support::spsc::ring::<(u64, Packet)>(RING_CAP);
                producers.push(tx);
                let shared = Arc::clone(&shared);
                let turn = Arc::clone(&turn);
                let model = self.model.clone();
                let tracer = self.tracer.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("nf-shard-{w}"))
                    .spawn_scoped(scope, move || -> Result<WorkerOut, String> {
                        let mut poison = PoisonTicket {
                            turn: Arc::clone(&turn),
                            armed: true,
                        };
                        let mut outputs = Vec::new();
                        let (mut pkts, mut busy_ns) = (0u64, 0u64);
                        while let Some((seq, pkt)) = rx.recv() {
                            // Ticket lock: process strictly in arrival
                            // order so the run is bit-identical to the
                            // single-threaded reference. `u64::MAX` is
                            // the poison ticket a failing shard leaves
                            // behind so nobody spins forever.
                            let wait = Instant::now();
                            let mut spins = 0u32;
                            loop {
                                match turn.load(Ordering::Acquire) {
                                    t if t == seq => break,
                                    u64::MAX => {
                                        return Err(ABORTED.into());
                                    }
                                    _ => {
                                        spins += 1;
                                        if spins > 64 {
                                            std::thread::yield_now();
                                        } else {
                                            std::hint::spin_loop();
                                        }
                                    }
                                }
                            }
                            let mut guard =
                                shared.lock().unwrap_or_else(|e| e.into_inner());
                            tracer.observe_ns(
                                "lock.wait.ns",
                                wait.elapsed().as_nanos() as u64,
                            );
                            let t0 = Instant::now();
                            let step = guard.step(model.as_deref(), &pkt);
                            drop(guard);
                            match &step {
                                Ok(_) => turn.store(seq + 1, Ordering::Release),
                                Err(_) => turn.store(u64::MAX, Ordering::Release),
                            }
                            let (outs, dropped) = step?;
                            busy_ns += t0.elapsed().as_nanos() as u64;
                            pkts += 1;
                            outputs.push(SeqOutput {
                                seq,
                                shard: w,
                                outputs: outs,
                                dropped,
                            });
                        }
                        poison.armed = false;
                        tracer.count(&format!("shard.{w}.pkts"), pkts);
                        Ok(WorkerOut {
                            outputs,
                            snapshot: BTreeMap::new(),
                            pkts,
                            busy_ns,
                        })
                    })
                    .map_err(|e| ShardError::Thread(e.to_string()))?;
                handles.push(handle);
            }
            for (i, pkt) in packets.iter().enumerate() {
                // Round-robin: the ticket serialises processing anyway.
                if producers[i % n].send((i as u64, pkt.clone())).is_err() {
                    break;
                }
            }
            drop(producers);
            // Join everything, then report the root cause rather than a
            // bystander's abort.
            let mut outs = Vec::with_capacity(n);
            let mut aborted = false;
            let mut failure: Option<ShardError> = None;
            for handle in handles {
                match handle.join() {
                    Ok(Ok(out)) => outs.push(out),
                    Ok(Err(e)) if e == ABORTED => aborted = true,
                    Ok(Err(e)) => failure = failure.or(Some(ShardError::Runtime(e))),
                    Err(_) => {
                        turn.store(u64::MAX, Ordering::Release);
                        failure =
                            failure.or(Some(ShardError::Thread("worker panicked".into())));
                    }
                }
            }
            if let Some(err) = failure {
                return Err(err);
            }
            if aborted {
                return Err(ShardError::Thread("worker aborted without a cause".into()));
            }
            Ok(outs)
        })?;
        let mut outputs: Vec<SeqOutput> = outs.iter().flat_map(|o| o.outputs.clone()).collect();
        outputs.sort_by_key(|o| o.seq);
        let merged = shared.lock().unwrap_or_else(|e| e.into_inner()).snapshot();
        Ok(ShardRun {
            outputs,
            merged,
            per_shard_pkts: outs.iter().map(|o| o.pkts).collect(),
            busy_ns: outs.iter().map(|o| o.busy_ns).collect(),
            partitioned: false,
        })
    }

    fn run_sequential_n(
        &self,
        n: usize,
        mut pick: impl FnMut(&Packet) -> usize,
        partitioned: bool,
        packets: &[Packet],
    ) -> Result<ShardRun, ShardError> {
        let mut states: Vec<BackendState> = (0..n).map(|_| self.proto.clone()).collect();
        let mut outputs = Vec::with_capacity(packets.len());
        let mut pkts = vec![0u64; n];
        let mut busy = vec![0u64; n];
        for (i, pkt) in packets.iter().enumerate() {
            let w = pick(pkt).min(n - 1);
            let t0 = Instant::now();
            let (outs, dropped) = states[w]
                .step(self.model.as_deref(), pkt)
                .map_err(ShardError::Runtime)?;
            busy[w] += t0.elapsed().as_nanos() as u64;
            pkts[w] += 1;
            outputs.push(SeqOutput {
                seq: i as u64,
                shard: w,
                outputs: outs,
                dropped,
            });
        }
        for (w, count) in pkts.iter().enumerate() {
            self.tracer.count(&format!("shard.{w}.pkts"), *count);
        }
        let outs: Vec<WorkerOut> = states
            .into_iter()
            .zip(pkts)
            .zip(busy)
            .map(|((state, pkts), busy_ns)| WorkerOut {
                outputs: Vec::new(),
                snapshot: state.snapshot(),
                pkts,
                busy_ns,
            })
            .collect();
        let mut run = self.assemble(outs, partitioned)?;
        run.outputs = outputs;
        Ok(run)
    }

    fn run_global_sequential(&self, packets: &[Packet]) -> Result<ShardRun, ShardError> {
        let n = self.shards;
        let mut state = self.proto.clone();
        let mut outputs = Vec::with_capacity(packets.len());
        let mut pkts = vec![0u64; n];
        let mut busy = vec![0u64; n];
        for (i, pkt) in packets.iter().enumerate() {
            let w = i % n;
            let t0 = Instant::now();
            let (outs, dropped) = state
                .step(self.model.as_deref(), pkt)
                .map_err(ShardError::Runtime)?;
            busy[w] += t0.elapsed().as_nanos() as u64;
            pkts[w] += 1;
            outputs.push(SeqOutput {
                seq: i as u64,
                shard: w,
                outputs: outs,
                dropped,
            });
        }
        for (w, count) in pkts.iter().enumerate() {
            self.tracer.count(&format!("shard.{w}.pkts"), *count);
        }
        Ok(ShardRun {
            outputs,
            merged: state.snapshot(),
            per_shard_pkts: pkts,
            busy_ns: busy,
            partitioned: false,
        })
    }

    /// Sort outputs and merge per-shard snapshots.
    fn assemble(&self, outs: Vec<WorkerOut>, partitioned: bool) -> Result<ShardRun, ShardError> {
        let mut outputs: Vec<SeqOutput> = outs.iter().flat_map(|o| o.outputs.clone()).collect();
        outputs.sort_by_key(|o| o.seq);
        let initial = self.proto.snapshot();
        let snapshots: Vec<&BTreeMap<String, Value>> =
            outs.iter().map(|o| &o.snapshot).collect();
        let merged = merge_states(&self.report, &initial, &snapshots)?;
        Ok(ShardRun {
            outputs,
            merged,
            per_shard_pkts: outs.iter().map(|o| o.pkts).collect(),
            busy_ns: outs.iter().map(|o| o.busy_ns).collect(),
            partitioned,
        })
    }
}

/// Merge per-shard state snapshots into one view, per the report's
/// verdicts.
fn merge_states(
    report: &ShardingReport,
    initial: &BTreeMap<String, Value>,
    shards: &[&BTreeMap<String, Value>],
) -> Result<BTreeMap<String, Value>, ShardError> {
    let mut merged = BTreeMap::new();
    for (name, init) in initial {
        let verdict = report.get(name).map(|s| s.verdict());
        let values: Vec<&Value> = shards.iter().filter_map(|s| s.get(name)).collect();
        let Some(first) = values.first() else {
            merged.insert(name.clone(), init.clone());
            continue;
        };
        let out = match verdict {
            Some(StateShard::PerFlow) => merge_partitioned_map(name, init, &values)?,
            Some(StateShard::LogOnly) => merge_log(name, init, &values)?,
            Some(StateShard::Shared) => (*first).clone(),
            // Read-only state and configs/consts (no verdict) must be
            // identical everywhere — drift means a placement bug.
            Some(StateShard::ReadOnly) | None => {
                if let Some(bad) = values.iter().find(|v| **v != *first) {
                    return Err(ShardError::Merge(format!(
                        "replicated `{name}` diverged across shards: {first:?} vs {bad:?}"
                    )));
                }
                (*first).clone()
            }
        };
        merged.insert(name.clone(), out);
    }
    Ok(merged)
}

/// Union a partitioned map's per-shard copies. Entries that changed
/// from their initial value must come from exactly one shard.
fn merge_partitioned_map(
    name: &str,
    init: &Value,
    values: &[&Value],
) -> Result<Value, ShardError> {
    let Value::Map(init_map) = init else {
        // A per-flow verdict on a non-map is unexpected; keep the first
        // copy rather than invent semantics.
        return Ok((*values[0]).clone());
    };
    let mut union = init_map.clone();
    for v in values {
        let Value::Map(m) = v else {
            return Err(ShardError::Merge(format!(
                "partitioned `{name}` is not a map on some shard"
            )));
        };
        for (k, val) in m {
            if init_map.get(k) == Some(val) {
                continue; // unchanged initial entry, owned by no one
            }
            match union.get(k) {
                Some(existing) if existing != val && init_map.get(k) != Some(existing) => {
                    return Err(ShardError::Merge(format!(
                        "partitioned `{name}` key {k:?} written by multiple shards"
                    )));
                }
                _ => {
                    union.insert(k.clone(), val.clone());
                }
            }
        }
    }
    // Entries deleted (map_remove) on their owning shard must not
    // survive via another shard's untouched initial copy.
    let mut removed: Vec<nfl_interp::ValueKey> = Vec::new();
    for k in init_map.keys() {
        if values.iter().any(|v| match v {
            Value::Map(m) => !m.contains_key(k),
            _ => false,
        }) {
            removed.push(k.clone());
        }
    }
    for k in removed {
        union.remove(&k);
    }
    Ok(Value::Map(union))
}

/// Merge log-only state by summing per-shard deltas over the initial
/// value (integers; integer-valued map entries likewise).
fn merge_log(name: &str, init: &Value, values: &[&Value]) -> Result<Value, ShardError> {
    match init {
        Value::Int(base) => {
            let mut total = *base;
            for v in values {
                let Value::Int(x) = v else {
                    return Err(ShardError::Merge(format!(
                        "log-only `{name}` is not an integer on some shard"
                    )));
                };
                total += x - base;
            }
            Ok(Value::Int(total))
        }
        Value::Map(init_map) => {
            let mut out = init_map.clone();
            for v in values {
                let Value::Map(m) = v else {
                    return Err(ShardError::Merge(format!(
                        "log-only `{name}` is not a map on some shard"
                    )));
                };
                for (k, val) in m {
                    let base = init_map.get(k).and_then(|b| b.as_int()).unwrap_or(0);
                    let Some(x) = val.as_int() else {
                        return Err(ShardError::Merge(format!(
                            "log-only `{name}` entry {k:?} is not an integer"
                        )));
                    };
                    let cur = out.get(k).and_then(|c| c.as_int()).unwrap_or(base);
                    out.insert(k.clone(), Value::Int(cur + (x - base)));
                }
            }
            Ok(Value::Map(out))
        }
        other => {
            // Non-numeric log state: all shards must agree or the merge
            // has no meaning.
            if let Some(bad) = values.iter().find(|v| **v != other) {
                return Err(ShardError::Merge(format!(
                    "log-only `{name}` has non-mergeable type and diverged: {bad:?}"
                )));
            }
            Ok(other.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_packet::PacketGen;

    fn pipeline(name: &str, shards: usize) -> Pipeline {
        match Pipeline::builder().name(name).shards(shards).build() {
            Ok(p) => p,
            Err(e) => unreachable!("builder: {e}"),
        }
    }

    const RATELIMITER_ISH: &str = r#"
        config MAX = 3;
        state buckets = map();
        state passed = 0;
        fn cb(pkt: packet) {
            let src = pkt.ip.src;
            if src not in buckets { buckets[src] = MAX; }
            if buckets[src] > 0 {
                buckets[src] = buckets[src] - 1;
                passed = passed + 1;
                send(pkt);
            } else {
                drop(pkt);
            }
        }
        fn main() { sniff(cb); }
    "#;

    #[test]
    fn threaded_matches_single_on_per_flow_nf() {
        let engine =
            ShardEngine::from_source(&pipeline("rl", 4), RATELIMITER_ISH, Backend::Interp)
                .unwrap();
        assert!(engine.plan().partitioned());
        let packets = PacketGen::new(42).batch(300);
        let sharded = engine.run(&packets).unwrap();
        let single = engine.run_single(&packets).unwrap();
        assert_eq!(sharded.output_signature(), single.output_signature());
        assert_eq!(sharded.merged, single.merged);
        assert_eq!(sharded.total_pkts(), 300);
        assert_eq!(sharded.per_shard_pkts.len(), 4);
    }

    #[test]
    fn sequential_matches_threaded() {
        let engine =
            ShardEngine::from_source(&pipeline("rl", 4), RATELIMITER_ISH, Backend::Interp)
                .unwrap();
        let packets = PacketGen::new(7).batch(200);
        let seq = engine.run_sequential(&packets).unwrap();
        let thr = engine.run(&packets).unwrap();
        assert_eq!(seq.output_signature(), thr.output_signature());
        assert_eq!(seq.merged, thr.merged);
        assert!(seq.partitioned);
    }

    #[test]
    fn global_lock_matches_single_on_shared_nf() {
        let src = r#"
            state next = 0;
            state m = map();
            fn cb(pkt: packet) {
                if pkt.ip.src in m { send(pkt); } else {
                    m[pkt.ip.src] = next;
                    next = next + 1;
                    drop(pkt);
                }
            }
            fn main() { sniff(cb); }
        "#;
        let engine = ShardEngine::from_source(&pipeline("alloc", 4), src, Backend::Interp).unwrap();
        assert!(!engine.plan().partitioned());
        let packets = PacketGen::new(3).batch(250);
        let sharded = engine.run(&packets).unwrap();
        let single = engine.run_single(&packets).unwrap();
        assert_eq!(sharded.output_signature(), single.output_signature());
        assert_eq!(sharded.merged, single.merged);
        assert!(!sharded.partitioned);
    }

    #[test]
    fn log_counters_delta_sum_across_shards() {
        let engine =
            ShardEngine::from_source(&pipeline("rl", 4), RATELIMITER_ISH, Backend::Interp)
                .unwrap();
        let packets = PacketGen::new(9).batch(120);
        let sharded = engine.run(&packets).unwrap();
        let single = engine.run_single(&packets).unwrap();
        // `passed` is log-only: per-shard copies must sum to the
        // single-threaded count.
        assert_eq!(sharded.merged.get("passed"), single.merged.get("passed"));
        let sent = sharded.outputs.iter().filter(|o| !o.dropped).count() as i64;
        assert_eq!(sharded.merged.get("passed"), Some(&Value::Int(sent)));
    }

    #[test]
    fn map_remove_does_not_resurrect_across_shards() {
        // Every packet toggles its flow's entry: insert on first sight,
        // remove on second. With entries created and removed on the
        // owning shard, the merged map must equal the single-threaded
        // result (no resurrection from other shards' initial copies).
        let src = r#"
            state m = map();
            fn cb(pkt: packet) {
                let k = pkt.ip.src;
                if k in m { map_remove(m, k); drop(pkt); } else { m[k] = 1; send(pkt); }
            }
            fn main() { sniff(cb); }
        "#;
        let engine = ShardEngine::from_source(&pipeline("toggle", 4), src, Backend::Interp).unwrap();
        let packets = PacketGen::new(5).batch(300);
        let sharded = engine.run(&packets).unwrap();
        let single = engine.run_single(&packets).unwrap();
        assert_eq!(sharded.merged, single.merged);
        assert_eq!(sharded.output_signature(), single.output_signature());
    }

    #[test]
    fn tracer_records_per_shard_metrics() {
        let tracer = Tracer::enabled();
        let p = match Pipeline::builder()
            .name("rl")
            .shards(2)
            .tracer(tracer.clone())
            .build()
        {
            Ok(p) => p,
            Err(e) => unreachable!("builder: {e}"),
        };
        let engine = ShardEngine::from_source(&p, RATELIMITER_ISH, Backend::Interp).unwrap();
        let packets = PacketGen::new(1).batch(50);
        engine.run(&packets).unwrap();
        let metrics = tracer.metrics();
        let total: u64 = (0..2)
            .filter_map(|w| metrics.counter(&format!("shard.{w}.pkts")))
            .sum();
        assert_eq!(total, 50);
    }
}
