//! The sharded execution engine.
//!
//! A [`ShardEngine`] runs one NF — either its NFL interpreter or its
//! synthesized model ([`Backend`]) — across `n` worker shards, placing
//! state as the [`ShardPlan`] dictates:
//!
//! * **Partitioned** plans steer each packet to the shard its dispatch
//!   hash picks; every shard owns an independent copy of the program
//!   state, and per-flow maps partition because all packets of a flow
//!   (and, for symmetric keys, its reply direction) land on one shard.
//!   There is deliberately **no work stealing**: stealing a packet
//!   would move it away from the shard that owns its flow state, which
//!   is exactly the locality the dispatch hash exists to preserve.
//! * **Global-lock** plans (shared state) run one program instance
//!   behind a ticket lock: workers take packets round-robin but process
//!   them in global arrival order, so the result is bit-identical to a
//!   single-threaded run — correct, serialised, and measured as such.
//!
//! After a run, per-shard states are merged back into one view
//! ([`ShardRun::merged`]): partitioned maps union (their key sets are
//! disjoint by construction — a collision is reported as an engine
//! bug), log-only counters sum their per-shard deltas, and replicated
//! state is checked untouched.
//!
//! All execution goes through one entry point,
//! [`ShardEngine::run_with`], which pulls packets from a streaming
//! [`WorkloadSource`] in configurable batches ([`BatchConfig`]): the
//! dispatcher hashes and bins a whole batch before a single ring push
//! per shard, and workers drain whole bins between telemetry flushes.
//! [`RunMode`] selects threaded execution (real `std::thread` workers
//! over SPSC rings), sequential (the same dispatch executed on one
//! thread with per-shard busy-time accounting — deterministic
//! makespan measurement for single-core hosts), or the one-shard
//! reference run.
//!
//! With [`BatchConfig::rebalance`] a partitioned dispatcher also
//! counters skew: when a shard's queue stays above the high-water mark
//! and the dispatcher-side hot-key sketch confirms a guaranteed heavy
//! hitter there, genuinely *new* flows that hash to the hot shard are
//! pinned to the least-loaded shard through an epoch-stamped seen-flow
//! table. Flows that have been seen before are never moved, so every
//! flow keeps exactly one owner for the whole run — which is why the
//! sharded≡single differential invariant survives rebalancing
//! unconditionally.
//!
//! Every mode runs **supervised**: each packet's eval is wrapped in
//! `catch_unwind` behind a pre-image journal, so a panic or runtime
//! error rolls partial state writes back and quarantines the packet
//! ([`crate::supervise`]) instead of aborting the run; the compiled
//! backend additionally falls back to the model evaluator per packet
//! on a compiled-engine error. A deterministic [`FaultPlan`] in the
//! [`RunConfig`] threads through dispatch and eval so the chaos
//! differential suite can prove that non-quarantined behaviour is
//! byte-identical to the fault-free run.

use crate::dispatch::{dispatch_hash, dispatch_values};
use crate::plan::{PlanMode, ShardPlan};
use crate::telemetry::{FlightOutcome, RunStats, ShardStats, TelemetryConfig, WorkerTelemetry};
use crate::supervise::{
    panic_message, quiet_catch_unwind, scramble_packet, Quarantine, QuarantineRecord,
    SupervisorPolicy, INJECTED_RING_DEADLINE,
};
use nf_compile::{CompiledProgram, CompiledState};
use nf_model::{Model, ModelState};
use nf_packet::Packet;
use nf_support::fault::{FaultKind, FaultPlan};
use nf_support::sketch::TopK;
use nf_support::spsc::{Backoff, Producer, TrySendError};
use nf_support::workload::{SliceSource, WorkloadSource};
use nf_trace::{Histogram, Tracer};
use nfactor_core::{Pipeline, Synthesis};
use nfl_interp::{Interp, Value, ValueKey};
use nfl_lint::{ShardingReport, StateShard};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Ring capacity per worker; deep enough to absorb dispatch bursts,
/// shallow enough to bound memory.
const RING_CAP: usize = 1024;

/// Bounds for the `shard.N.batch.fill` histogram: how full dispatch
/// bins are when pushed over a ring (1 = degenerate per-packet
/// dispatch).
const BATCH_FILL_BOUNDS: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// One dispatch bin: `(arrival seq, per-shard ordinal, packet)` rows
/// pushed over the ring as a unit.
type Bin = Vec<(u64, u64, Packet)>;

/// Sentinel error a global-lock worker returns when it bailed out
/// because *another* shard poisoned the ticket; filtered at join time
/// in favour of the root cause.
const ABORTED: &str = "aborted: another shard failed";

/// Poisons the ticket counter unless disarmed — so a worker that exits
/// abnormally (error return or panic) can never leave its peers
/// spinning on a ticket that will not come.
struct PoisonTicket {
    turn: Arc<AtomicU64>,
    armed: bool,
}

impl Drop for PoisonTicket {
    fn drop(&mut self) {
        if self.armed {
            self.turn.store(u64::MAX, Ordering::Release);
        }
    }
}

/// What executes on each shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The NFL interpreter over the normalised program.
    Interp,
    /// The synthesized model evaluator.
    Model,
    /// The model compiled to a flattened XFSM dispatch engine
    /// (`nf-compile`): decision-tree flow classification, memoized
    /// state tags, dense state arenas.
    Compiled,
}

/// Errors from building or running a shard engine.
#[derive(Debug)]
pub enum ShardError {
    /// Lint or parse failure while building.
    Build(String),
    /// A shard hit a runtime error processing a packet.
    Runtime(String),
    /// Thread spawn/join failure.
    Thread(String),
    /// State merge detected an invariant violation (a partitioning or
    /// replication bug).
    Merge(String),
    /// The workload source failed mid-stream (truncated trace file,
    /// malformed record).
    Workload(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Build(m) => write!(f, "build: {m}"),
            ShardError::Runtime(m) => write!(f, "runtime: {m}"),
            ShardError::Thread(m) => write!(f, "thread: {m}"),
            ShardError::Merge(m) => write!(f, "merge: {m}"),
            ShardError::Workload(m) => write!(f, "workload: {m}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// How [`ShardEngine::run_with`] executes the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Real `std::thread` workers fed over SPSC rings.
    Threaded,
    /// The same dispatch executed on one thread with per-shard
    /// busy-time accounting — the deterministic way to measure
    /// partitioned speedup on a host without enough free cores.
    Sequential,
    /// The one-shard reference run every sharded run must match.
    Single,
}

/// Batched-dispatch tuning for [`RunConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Packets hashed and binned per dispatch round — and per ring
    /// push. Clamped up to 1 (1 reproduces per-packet dispatch).
    pub size: usize,
    /// Enable skew-aware rebalancing of new flows off overloaded
    /// shards (partitioned plans only; a no-op under the global lock).
    pub rebalance: bool,
    /// Queue-depth high-water mark that opens a divert; `0` picks a
    /// mode-appropriate default (3/4 of the ring in bins for threaded
    /// runs, 3/4 of the batch size for sequential ones).
    pub high_water: u64,
    /// Seen-flow table capacity. When the table is full, migration
    /// stops and new flows route by pure hash — bounded memory, still
    /// sound.
    pub table_cap: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            size: 32,
            rebalance: false,
            high_water: 0,
            table_cap: 65_536,
        }
    }
}

/// The unified run configuration for [`ShardEngine::run_with`] — the
/// one knob surface that replaced the six `run*` entry points.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Execution mode: threaded, sequential, or single-shard.
    pub mode: RunMode,
    /// Deterministic fault plan injected into dispatch and eval;
    /// `None` runs fault-free.
    pub fault_plan: Option<FaultPlan>,
    /// Batch size and rebalancing knobs.
    pub batch: BatchConfig,
    /// Keep per-packet [`SeqOutput`]s (the differential oracles need
    /// them). `false` streams at constant memory, counting outcomes
    /// into [`ShardRun::forwarded`] instead.
    pub keep_outputs: bool,
}

impl RunConfig {
    fn with_mode(mode: RunMode) -> RunConfig {
        RunConfig {
            mode,
            fault_plan: None,
            batch: BatchConfig::default(),
            keep_outputs: true,
        }
    }

    /// A threaded run with default batching and no faults.
    pub fn threaded() -> RunConfig {
        RunConfig::with_mode(RunMode::Threaded)
    }

    /// A sequential run with default batching and no faults.
    pub fn sequential() -> RunConfig {
        RunConfig::with_mode(RunMode::Sequential)
    }

    /// The single-shard reference run.
    pub fn single() -> RunConfig {
        RunConfig::with_mode(RunMode::Single)
    }

    /// Inject a deterministic fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> RunConfig {
        self.fault_plan = Some(faults);
        self
    }

    /// Replace the batching knobs.
    pub fn with_batch(mut self, batch: BatchConfig) -> RunConfig {
        self.batch = batch;
        self
    }

    /// Toggle skew-aware rebalancing.
    pub fn with_rebalance(mut self, on: bool) -> RunConfig {
        self.batch.rebalance = on;
        self
    }
}

/// One view over a run's fault/supervision counters — the single home
/// the CLI's fault-summary block and `stats_json` read, so new
/// counters (rebalance migrations) have exactly one place to land.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSummary {
    /// Packets quarantined at eval.
    pub quarantined: u64,
    /// Packets dropped at dispatch past the ring retry deadline.
    pub dropped: u64,
    /// Worker restarts performed by the supervisor.
    pub restarts: u64,
    /// Failed enqueue attempts (ring full) absorbed by dispatch
    /// backoff.
    pub retries: u64,
    /// Per-packet compiled→model fallbacks.
    pub fallbacks: u64,
    /// New flows the skew-aware rebalancer migrated off overloaded
    /// shards.
    pub migrations: u64,
}

impl FaultSummary {
    /// Whether anything in the summary is nonzero (the CLI prints the
    /// block only then).
    pub fn any(&self) -> bool {
        self.quarantined > 0
            || self.dropped > 0
            || self.restarts > 0
            || self.retries > 0
            || self.fallbacks > 0
            || self.migrations > 0
    }
}

/// Per-shard program state: an interpreter, a model-state instance, or
/// a compiled program plus its dense state arena (the program itself is
/// immutable and shared across shards via `Arc`).
#[derive(Debug, Clone)]
enum BackendState {
    Interp(Interp),
    Model(ModelState),
    Compiled {
        prog: Arc<CompiledProgram>,
        state: CompiledState,
    },
}

impl BackendState {
    /// Process one packet, returning `(outputs, dropped)`.
    fn step(&mut self, model: Option<&Model>, pkt: &Packet) -> Result<(Vec<Packet>, bool), String> {
        match self {
            BackendState::Interp(i) => i
                .process(pkt)
                .map(|r| (r.outputs, r.dropped))
                .map_err(|e| e.to_string()),
            BackendState::Model(ms) => {
                let Some(m) = model else {
                    return Err("model backend without a model".into());
                };
                ms.step(m, pkt)
                    .map(|s| {
                        let dropped = s.output.is_none();
                        (s.output.into_iter().collect(), dropped)
                    })
                    .map_err(|e| e.to_string())
            }
            BackendState::Compiled { prog, state } => state
                .step(prog, pkt)
                .map(|s| {
                    let dropped = s.output.is_none();
                    (s.output.into_iter().collect(), dropped)
                })
                .map_err(|e| e.to_string()),
        }
    }

    /// A by-name snapshot of all persistent state.
    fn snapshot(&self) -> BTreeMap<String, Value> {
        match self {
            BackendState::Interp(i) => i
                .globals
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            BackendState::Model(ms) => {
                let mut out = BTreeMap::new();
                for (k, v) in &ms.configs {
                    out.insert(k.clone(), v.clone());
                }
                for (k, v) in &ms.scalars {
                    out.insert(k.clone(), v.clone());
                }
                for (k, m) in &ms.maps {
                    out.insert(k.clone(), Value::Map(m.clone()));
                }
                out
            }
            BackendState::Compiled { prog, state } => state.snapshot(prog),
        }
    }

    /// The backend's display name (quarantine records, metrics).
    fn label(&self) -> &'static str {
        match self {
            BackendState::Interp(_) => "interp",
            BackendState::Model(_) => "model",
            BackendState::Compiled { .. } => "compiled",
        }
    }

    /// Capture the pre-image of everything a packet eval can mutate.
    fn journal(&self) -> Journal {
        match self {
            BackendState::Interp(i) => Journal::Interp {
                globals: i.globals.clone(),
                packets_seen: i.packets_seen(),
            },
            BackendState::Model(ms) => Journal::Model {
                scalars: ms.scalars.clone(),
                maps: ms.maps.clone(),
            },
            BackendState::Compiled { state, .. } => Journal::Compiled {
                generation: state.generation(),
            },
        }
    }

    /// Restore the pre-image captured by [`journal`](Self::journal): a
    /// failed packet leaves no trace, however far into a fire it got.
    fn rollback(&mut self, journal: Journal) {
        match (self, journal) {
            (BackendState::Interp(i), Journal::Interp { globals, packets_seen }) => {
                i.globals = globals;
                i.rewind_packets_seen(packets_seen);
            }
            (BackendState::Model(ms), Journal::Model { scalars, maps }) => {
                ms.scalars = scalars;
                ms.maps = maps;
            }
            (BackendState::Compiled { state, .. }, Journal::Compiled { generation }) => {
                if state.generation() != generation {
                    state.revert();
                }
            }
            // A journal is only ever replayed into the state it was
            // captured from; a variant mismatch cannot happen.
            _ => {}
        }
    }

    /// Supervisor restart: rebuild derived caches from the persistent
    /// state snapshot. Only the compiled backend carries derived state
    /// (the predicate memo and its generation counter); the interpreter
    /// and model evaluator *are* their persistent state, so a restart
    /// is a no-op for them beyond the supervisor's accounting.
    fn refresh(&mut self) {
        if let BackendState::Compiled { prog, state } = self {
            let snap = state.snapshot(prog);
            let mut fresh = CompiledState::new(prog);
            if fresh.restore(prog, &snap).is_ok() {
                *state = fresh;
            }
        }
    }

    /// The per-packet compiled→model fallback: evaluate this packet on
    /// the reference model over the compiled state's snapshot, then
    /// write the model's post-state back into the dense arenas. The
    /// compiled engine's one-sided contract (identical behaviour
    /// wherever the reference succeeds) makes this exact: any packet
    /// the model can evaluate produces the same output either way.
    fn fallback_step(
        &mut self,
        fb_model: &Model,
        template: &ModelState,
        pkt: &Packet,
    ) -> Result<(Vec<Packet>, bool), String> {
        let BackendState::Compiled { prog, state } = self else {
            return Err("fallback is only defined for the compiled backend".into());
        };
        let snap = state.snapshot(prog);
        // Seed from the template (the t=0 ModelState the program was
        // compiled against) so the config/scalar/map split matches the
        // model's view, then overlay the live snapshot.
        let mut ms = template.clone();
        for (k, v) in &snap {
            if ms.configs.contains_key(k) {
                continue;
            }
            match v {
                Value::Map(m) => {
                    ms.maps.insert(k.clone(), m.clone());
                }
                other => {
                    ms.scalars.insert(k.clone(), other.clone());
                }
            }
        }
        let s = ms.step(fb_model, pkt).map_err(|e| e.to_string())?;
        let mut post = BTreeMap::new();
        for (k, v) in &ms.configs {
            post.insert(k.clone(), v.clone());
        }
        for (k, v) in &ms.scalars {
            post.insert(k.clone(), v.clone());
        }
        for (k, m) in &ms.maps {
            post.insert(k.clone(), Value::Map(m.clone()));
        }
        state.restore(prog, &post)?;
        let dropped = s.output.is_none();
        Ok((s.output.into_iter().collect(), dropped))
    }
}

/// Pre-image of one packet's mutable state, captured before eval and
/// restored on contained failure (see [`BackendState::journal`]).
enum Journal {
    Interp {
        globals: HashMap<String, Value>,
        packets_seen: u64,
    },
    Model {
        scalars: BTreeMap<String, Value>,
        maps: BTreeMap<String, BTreeMap<ValueKey, Value>>,
    },
    /// The compiled backend journals only its step generation: its
    /// `step` is two-phase (all fallible evaluation precedes an
    /// infallible commit) and banks per-entry pre-images as it
    /// commits, so rollback is `CompiledState::revert` — O(entries
    /// the packet touched), where a full pre-clone would be O(live
    /// flows) per packet. The generation tells rollback whether a
    /// step began at all: an injected fault fails *before* stepping,
    /// and replaying the previous packet's undo log there would
    /// un-commit a successful packet. The interpreter mutates state
    /// mid-eval, so it still needs the full pre-image.
    Compiled { generation: u64 },
}

/// One isolated eval: apply eval-side faults, journal, step under
/// `catch_unwind`, roll back on any failure. `Err` carries the
/// quarantine reason, and the state is pre-packet clean whenever it is
/// returned. A compiled-engine *error* (not a panic) retries the packet
/// on the model evaluator when a fallback is available.
#[allow(clippy::too_many_arguments)]
fn supervised_step(
    state: &mut BackendState,
    model: Option<&Model>,
    fallback: Option<&(Model, ModelState)>,
    shard: usize,
    nth: u64,
    pkt: &Packet,
    faults: &FaultPlan,
    fallbacks: &mut u64,
) -> Result<(Vec<Packet>, bool), String> {
    let (mut inject_panic, mut inject_err, mut garbage) = (false, false, false);
    if !faults.is_empty() {
        for k in faults.at(shard, nth) {
            match k {
                FaultKind::Panic => inject_panic = true,
                FaultKind::EvalError => inject_err = true,
                FaultKind::Garbage => garbage = true,
                FaultKind::Delay(us) => std::thread::sleep(Duration::from_micros(us)),
                FaultKind::RingOverflow(_) => {} // dispatch-side, handled there
            }
        }
    }
    if garbage {
        // The dispatcher scrambled this packet in flight; reject it
        // before eval so no corrupted bytes reach the state.
        return Err("garbage packet detected before eval".into());
    }
    let journal = state.journal();
    let stepped = quiet_catch_unwind(|| {
        if inject_panic {
            panic!("injected fault: panic on shard {shard} packet {nth}");
        }
        if inject_err {
            return Err(format!("injected fault: eval error on shard {shard} packet {nth}"));
        }
        state.step(model, pkt)
    });
    match stepped {
        Ok(Ok(out)) => Ok(out),
        Ok(Err(e)) => {
            state.rollback(journal);
            if let Some((fb_model, template)) = fallback {
                match state.fallback_step(fb_model, template, pkt) {
                    Ok(out) => {
                        *fallbacks += 1;
                        return Ok(out);
                    }
                    Err(fe) => return Err(format!("{e}; model fallback failed: {fe}")),
                }
            }
            Err(e)
        }
        Err(msg) => {
            state.rollback(journal);
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Dispatch-side faults at `(shard, nth)`: forced ring-full attempts
/// and whether to scramble the packet.
fn dispatch_faults(faults: &FaultPlan, shard: usize, nth: u64) -> (u64, bool) {
    if faults.is_empty() {
        // Fault-free runs stay off the per-packet lookup path.
        return (0, false);
    }
    let (mut forced, mut garbage) = (0u64, false);
    for k in faults.at(shard, nth) {
        match k {
            FaultKind::RingOverflow(a) => forced = forced.max(a),
            FaultKind::Garbage => garbage = true,
            _ => {}
        }
    }
    (forced, garbage)
}

/// The ring deadline in force for one dispatch: the policy's, or the
/// injected default when a ring-overflow fault is forcing fulls.
fn ring_deadline(policy: &SupervisorPolicy, forced: u64) -> Option<u32> {
    policy
        .ring_deadline
        .or(if forced > 0 { Some(INJECTED_RING_DEADLINE) } else { None })
}

/// Enqueue one bin with bounded retry: spin-then-yield backoff on a
/// full ring, dropping the whole bin once the policy deadline is
/// exhausted (forced ring-full faults are simulated per packet at bin
/// time, before binning). `Ok(true)` = delivered, `Ok(false)` =
/// dropped past the deadline, `Err(())` = the worker is gone (its join
/// reports why).
fn send_bin(
    tx: &Producer<Bin>,
    bin: Bin,
    policy: &SupervisorPolicy,
    retries: &mut u64,
    wait_ns: &mut u64,
) -> Result<bool, ()> {
    let mut bin = bin;
    let mut attempts = 0u64;
    let mut backoff = Backoff::new();
    // Time spent in the retry path is ring-full *waiting*, not
    // dispatch work; it is accounted separately so the dispatch-plane
    // cost (`dispatch_ns - dispatch_wait_ns`) stays meaningful even
    // when the workers are the bottleneck. The clock starts only on
    // the first full ring, so the delivered-first-try fast path never
    // touches it.
    let mut waited: Option<std::time::Instant> = None;
    let result = loop {
        match tx.try_send(bin) {
            Ok(()) => break Ok(true),
            Err((_, TrySendError::Disconnected)) => break Err(()),
            Err((b, TrySendError::Full)) => bin = b,
        }
        waited.get_or_insert_with(std::time::Instant::now);
        attempts += 1;
        *retries += 1;
        if let Some(d) = policy.ring_deadline {
            if attempts > u64::from(d) {
                break Ok(false);
            }
        }
        backoff.snooze();
    };
    if let Some(t0) = waited {
        *wait_ns += t0.elapsed().as_nanos() as u64;
    }
    result
}

/// Flush one dispatch bin: record its fill, push it over the ring, and
/// account a whole-bin drop past the policy deadline. `Err(())` means
/// the worker is gone.
#[allow(clippy::too_many_arguments)]
fn flush_bin(
    bin: &mut Bin,
    batch: usize,
    tx: &Producer<Bin>,
    policy: &SupervisorPolicy,
    retries: &mut u64,
    wait_ns: &mut u64,
    fill: Option<&mut Histogram>,
    dropped_seqs: &mut Vec<u64>,
    dropped_shard: &mut u64,
) -> Result<(), ()> {
    if bin.is_empty() {
        return Ok(());
    }
    if let Some(h) = fill {
        h.observe(bin.len() as u64);
    }
    let out = std::mem::replace(bin, Vec::with_capacity(batch));
    let seqs: Vec<u64> = out.iter().map(|(s, _, _)| *s).collect();
    match send_bin(tx, out, policy, retries, wait_ns)? {
        true => Ok(()),
        false => {
            *dropped_shard += seqs.len() as u64;
            dropped_seqs.extend(seqs);
            Ok(())
        }
    }
}

/// [`flush_bin`] for the global-lock dispatcher, which must also mark
/// any dropped seq as skipped and advance the ticket turn past it so
/// later packets are not deadlocked behind a hole in the order.
#[allow(clippy::too_many_arguments)]
fn flush_bin_global(
    bin: &mut Bin,
    batch: usize,
    tx: &Producer<Bin>,
    policy: &SupervisorPolicy,
    retries: &mut u64,
    wait_ns: &mut u64,
    fill: Option<&mut Histogram>,
    dropped_seqs: &mut Vec<u64>,
    dropped_shard: &mut u64,
    skipped: &Mutex<BTreeSet<u64>>,
    turn: &AtomicU64,
) -> Result<(), ()> {
    let before = dropped_seqs.len();
    flush_bin(bin, batch, tx, policy, retries, wait_ns, fill, dropped_seqs, dropped_shard)?;
    for &seq in &dropped_seqs[before..] {
        skipped.lock().unwrap_or_else(|e| e.into_inner()).insert(seq);
        let _ = turn.compare_exchange(seq, seq + 1, Ordering::AcqRel, Ordering::Acquire);
    }
    Ok(())
}

/// The default divert high-water mark for threaded runs: 3/4 of the
/// ring depth, measured in bins.
fn threaded_high_water(cfg: &BatchConfig, ring_bins: usize) -> u64 {
    if cfg.high_water > 0 {
        cfg.high_water
    } else {
        (ring_bins as u64 * 3 / 4).max(1)
    }
}

/// The default divert high-water mark for sequential runs, where the
/// load signal is per-round bin fill: 3/4 of the batch size.
fn sequential_high_water(cfg: &BatchConfig, batch: usize) -> u64 {
    if cfg.high_water > 0 {
        cfg.high_water
    } else {
        (batch as u64 * 3 / 4).max(1)
    }
}

/// Whether a shard's hot-key sketch proves a genuine heavy hitter: the
/// top entry's count lower bound (count − err) must clear the sketch's
/// tracking guarantee, so mere uniform load never opens a divert.
fn has_heavy_hitter(sketch: &TopK<Vec<u64>>) -> bool {
    sketch
        .entries()
        .first()
        .is_some_and(|e| e.count.saturating_sub(e.err) > sketch.guarantee())
}

/// Dispatcher-side skew rebalancer.
///
/// Soundness rests on one rule: **only flows the dispatcher has never
/// seen migrate**. Every flow hash gets a pinned shard the first time
/// it appears (usually its hash shard; the divert target while a
/// divert is open) and keeps it for the whole run, so each flow has
/// exactly one owner and per-flow partitioned state never splits. When
/// the seen-flow table hits its capacity, migration simply stops —
/// flows not in the table route by pure hash, which is the same stable
/// assignment they would have had anyway.
struct Rebalancer {
    enabled: bool,
    high_water: u64,
    /// flow hash → (pinned shard, epoch the pin was made in).
    table: HashMap<u64, (usize, u64)>,
    cap: usize,
    /// Open divert per shard: new flows hashing there go to the target.
    divert: Vec<Option<usize>>,
    epoch: u64,
    migrations: u64,
}

impl Rebalancer {
    fn new(cfg: &BatchConfig, shards: usize, high_water: u64, allowed: bool) -> Rebalancer {
        Rebalancer {
            enabled: cfg.rebalance && allowed && shards > 1,
            high_water,
            table: HashMap::new(),
            cap: cfg.table_cap.max(1),
            divert: vec![None; shards],
            epoch: 0,
            migrations: 0,
        }
    }

    /// Route one packet: its hash shard, unless the flow is pinned
    /// elsewhere or is brand new while a divert is open on its shard.
    fn route(&mut self, hash: u64, hash_shard: usize) -> usize {
        if !self.enabled {
            return hash_shard;
        }
        if let Some(&(shard, _)) = self.table.get(&hash) {
            return shard;
        }
        if self.table.len() >= self.cap {
            // Table full: this flow routes by hash forever — stable,
            // so still sound. Do not insert.
            return hash_shard;
        }
        let target = self.divert[hash_shard].unwrap_or(hash_shard);
        self.table.insert(hash, (target, self.epoch));
        if target != hash_shard {
            self.migrations += 1;
        }
        target
    }

    /// Batch-boundary control step: close diverts whose shard has
    /// drained to half the high-water mark, open one (to the
    /// least-loaded shard) where load is high *and* the sketch proves a
    /// heavy hitter.
    fn boundary(&mut self, loads: &[u64], sketches: &[TopK<Vec<u64>>]) {
        if !self.enabled {
            return;
        }
        for s in 0..self.divert.len() {
            if self.divert[s].is_some() {
                if loads[s] <= self.high_water / 2 {
                    self.divert[s] = None;
                }
            } else if loads[s] > self.high_water
                && sketches.get(s).is_some_and(has_heavy_hitter)
            {
                let target = (0..loads.len())
                    .filter(|&t| t != s)
                    .min_by_key(|&t| loads[t]);
                if let Some(t) = target {
                    self.epoch += 1;
                    self.divert[s] = Some(t);
                }
            }
        }
    }
}

/// Simulate the old per-packet retry loop for *forced* ring-full
/// faults at bin time, in every mode (bins mean the ring is pushed
/// once per batch, so a forced per-packet full can no longer collide
/// with a genuinely full ring). Returns whether the packet is
/// delivered to its bin.
fn simulate_dispatch(forced: u64, policy: &SupervisorPolicy, retries: &mut u64) -> bool {
    let deadline = ring_deadline(policy, forced);
    let mut attempts = 0u64;
    while attempts < forced {
        attempts += 1;
        *retries += 1;
        if let Some(d) = deadline {
            if attempts > u64::from(d) {
                return false;
            }
        }
    }
    true
}

/// Per-shard supervision bookkeeping wrapped around one shard's
/// [`BackendState`]: the quarantine buffer, the consecutive-failure
/// streak, and restart accounting.
struct ShardWorker {
    shard: usize,
    state: BackendState,
    model: Option<Arc<Model>>,
    fallback: Option<Arc<(Model, ModelState)>>,
    faults: FaultPlan,
    policy: SupervisorPolicy,
    label: &'static str,
    quarantine: Quarantine,
    fail_streak: u32,
    restarts: u64,
    fallbacks: u64,
}

impl ShardWorker {
    /// Supervised processing of one packet; `None` means quarantined.
    fn process(&mut self, seq: u64, nth: u64, pkt: &Packet) -> Option<(Vec<Packet>, bool)> {
        match supervised_step(
            &mut self.state,
            self.model.as_deref(),
            self.fallback.as_deref(),
            self.shard,
            nth,
            pkt,
            &self.faults,
            &mut self.fallbacks,
        ) {
            Ok(out) => {
                self.fail_streak = 0;
                Some(out)
            }
            Err(error) => {
                self.quarantine.push(QuarantineRecord {
                    seq,
                    shard: self.shard,
                    backend: self.label,
                    error,
                    packet: pkt.clone(),
                });
                self.fail_streak += 1;
                if self.fail_streak >= self.policy.restart_after {
                    self.state.refresh();
                    self.restarts += 1;
                    self.fail_streak = 0;
                }
                None
            }
        }
    }

    fn into_out(
        self,
        outputs: Vec<SeqOutput>,
        pkts: u64,
        busy_ns: u64,
        forwarded: u64,
        stats: Option<ShardStats>,
    ) -> WorkerOut {
        let snapshot = self.state.snapshot();
        let (quarantined, quarantined_seqs) = self.quarantine.into_parts();
        WorkerOut {
            outputs,
            snapshot,
            pkts,
            busy_ns,
            forwarded,
            quarantined,
            quarantined_seqs,
            restarts: self.restarts,
            fallbacks: self.fallbacks,
            stats,
        }
    }
}

/// The observable result of processing one packet, tagged with its
/// global arrival sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqOutput {
    /// Global arrival index of the input packet.
    pub seq: u64,
    /// The shard that processed it.
    pub shard: usize,
    /// Packets emitted by `send`, in order.
    pub outputs: Vec<Packet>,
    /// Whether the packet was dropped.
    pub dropped: bool,
}

/// The merged result of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Per-packet results, sorted by arrival sequence.
    pub outputs: Vec<SeqOutput>,
    /// Merged state: per-flow maps unioned, log counters delta-summed,
    /// replicated state verified, keyed by variable name.
    pub merged: BTreeMap<String, Value>,
    /// Packets processed by each shard.
    pub per_shard_pkts: Vec<u64>,
    /// Busy (processing) nanoseconds per shard.
    pub busy_ns: Vec<u64>,
    /// Whether shards ran without cross-shard locking.
    pub partitioned: bool,
    /// Retained quarantine records, bounded by the policy's cap.
    pub quarantined: Vec<QuarantineRecord>,
    /// Arrival seqs of *all* quarantined packets (exact, sorted).
    pub quarantined_seqs: Vec<u64>,
    /// Arrival seqs dropped at dispatch after the ring retry deadline.
    pub dropped_seqs: Vec<u64>,
    /// Worker restarts performed by the supervisor.
    pub restarts: u64,
    /// Failed enqueue attempts (ring full) absorbed by dispatch backoff.
    pub retries: u64,
    /// Per-packet compiled→model fallbacks (each is a recorded
    /// divergence; the run continues).
    pub fallbacks: u64,
    /// Packets forwarded (processed and not dropped by the NF) —
    /// counted even when per-packet outputs are not retained
    /// ([`RunConfig::keep_outputs`] = false).
    pub forwarded: u64,
    /// New flows the skew-aware rebalancer migrated off overloaded
    /// shards (0 when rebalancing is off).
    pub migrations: u64,
    /// Wall-clock nanoseconds the dispatcher thread spent from first
    /// to last packet (threaded modes; 0 when dispatch is inlined
    /// into the worker loop, as in sequential and single modes).
    pub dispatch_ns: u64,
    /// The share of [`ShardRun::dispatch_ns`] spent in bounded backoff
    /// on full rings — worker-bound time, not dispatch work.
    /// `dispatch_ns - dispatch_wait_ns` is the active dispatch-plane
    /// cost: source pulls, hashing, binning, and ring pushes. This is
    /// the quantity batched dispatch amortizes (`--bench stream`).
    pub dispatch_wait_ns: u64,
    /// Telemetry-plane summary: per-shard latency/occupancy histograms,
    /// hot keys, and the flight recorder. `None` when telemetry is off
    /// (disabled config or disabled tracer).
    pub stats: Option<RunStats>,
}

impl ShardRun {
    /// Total packets processed.
    pub fn total_pkts(&self) -> u64 {
        self.per_shard_pkts.iter().sum()
    }

    /// The run's critical path: with partitioned shards the slowest
    /// shard bounds completion; under the global lock the work is
    /// serialised, so the critical path is the sum.
    pub fn makespan_ns(&self) -> u64 {
        if self.partitioned {
            self.busy_ns.iter().copied().max().unwrap_or(0)
        } else {
            self.busy_ns.iter().sum()
        }
    }

    /// The externally observable behaviour, shard assignment erased —
    /// what a differential oracle compares across shard counts.
    pub fn output_signature(&self) -> Vec<(u64, Vec<Packet>, bool)> {
        self.outputs
            .iter()
            .map(|o| (o.seq, o.outputs.clone(), o.dropped))
            .collect()
    }

    /// Packets offered to the run: processed + quarantined + dropped.
    /// Always equals the input length — the accounting invariant the
    /// robustness suite pins.
    pub fn offered(&self) -> u64 {
        self.total_pkts() + self.quarantined_seqs.len() as u64 + self.dropped_seqs.len() as u64
    }

    /// Sorted arrival seqs excluded from `outputs` (quarantined at eval
    /// or dropped at dispatch) — what a chaos oracle filters from the
    /// fault-free reference input before comparing.
    pub fn excluded_seqs(&self) -> Vec<u64> {
        let mut seqs: Vec<u64> = self
            .quarantined_seqs
            .iter()
            .chain(&self.dropped_seqs)
            .copied()
            .collect();
        seqs.sort_unstable();
        seqs
    }

    /// One view over the run's fault/supervision counters — what the
    /// CLI fault-summary block and [`stats_json`](Self::stats_json)
    /// both read.
    pub fn fault_summary(&self) -> FaultSummary {
        FaultSummary {
            quarantined: self.quarantined_seqs.len() as u64,
            dropped: self.dropped_seqs.len() as u64,
            restarts: self.restarts,
            retries: self.retries,
            fallbacks: self.fallbacks,
            migrations: self.migrations,
        }
    }

    /// The `--stats-json` document: run-level accounting plus the
    /// telemetry plane's per-shard detail. `None` when telemetry was
    /// off for the run.
    pub fn stats_json(&self) -> Option<nf_support::json::Value> {
        use nf_support::json::Value as J;
        let stats = self.stats.as_ref()?;
        let faults = self.fault_summary();
        let int = |v: u64| J::Int(i64::try_from(v).unwrap_or(i64::MAX));
        Some(J::Object(vec![
            ("packets".into(), int(self.total_pkts())),
            ("offered".into(), int(self.offered())),
            (
                "partitioned".into(),
                J::Str(if self.partitioned { "true" } else { "false" }.into()),
            ),
            ("quarantined".into(), int(faults.quarantined)),
            ("dropped".into(), int(faults.dropped)),
            ("restarts".into(), int(faults.restarts)),
            ("retries".into(), int(faults.retries)),
            ("fallbacks".into(), int(faults.fallbacks)),
            ("migrations".into(), int(faults.migrations)),
            ("makespan_ns".into(), int(self.makespan_ns())),
            ("telemetry".into(), stats.to_json(&self.per_shard_pkts, &self.busy_ns)),
        ]))
    }
}

/// What one worker hands back at join time.
struct WorkerOut {
    outputs: Vec<SeqOutput>,
    snapshot: BTreeMap<String, Value>,
    pkts: u64,
    busy_ns: u64,
    forwarded: u64,
    quarantined: Vec<QuarantineRecord>,
    quarantined_seqs: Vec<u64>,
    restarts: u64,
    fallbacks: u64,
    stats: Option<ShardStats>,
}

/// A sharded runtime instance for one NF.
pub struct ShardEngine {
    name: String,
    shards: usize,
    plan: ShardPlan,
    report: ShardingReport,
    tracer: Tracer,
    proto: BackendState,
    model: Option<Arc<Model>>,
    /// The compiled backend's per-packet escape hatch: the reference
    /// model plus the t=0 `ModelState` it was compiled against.
    fallback: Option<Arc<(Model, ModelState)>>,
    policy: SupervisorPolicy,
    telemetry: TelemetryConfig,
}

impl ShardEngine {
    /// Build an engine from NFL source: lints the program for the
    /// placement plan, then instantiates the selected backend. Shard
    /// count and tracer come from the [`Pipeline`].
    pub fn from_source(
        pipeline: &Pipeline,
        src: &str,
        backend: Backend,
    ) -> Result<ShardEngine, ShardError> {
        match backend {
            Backend::Interp => {
                let lint = nfl_lint::lint_source(pipeline.name(), src)
                    .map_err(ShardError::Build)?;
                // The lint analyses the (possibly socket-unfolded)
                // program; run the same text so state names line up.
                let program =
                    nfl_lang::parse_and_check(&lint.source).map_err(ShardError::Build)?;
                let nf_loop =
                    nfl_analysis::normalize(&program).map_err(|e| ShardError::Build(e.to_string()))?;
                let interp =
                    Interp::new(&nf_loop).map_err(|e| ShardError::Build(e.to_string()))?;
                Ok(ShardEngine {
                    name: pipeline.name().to_string(),
                    shards: pipeline.shards(),
                    plan: ShardPlan::from_report(&lint.sharding),
                    report: lint.sharding,
                    tracer: pipeline.tracer().clone(),
                    proto: BackendState::Interp(interp),
                    model: None,
                    fallback: None,
                    policy: SupervisorPolicy::default(),
                    telemetry: TelemetryConfig::default(),
                })
            }
            Backend::Model | Backend::Compiled => {
                let syn = pipeline
                    .synthesize(src)
                    .map_err(|e| ShardError::Build(e.to_string()))?;
                ShardEngine::from_synthesis(pipeline, &syn, backend)
            }
        }
    }

    /// Build an engine from an existing [`Synthesis`] (avoids
    /// re-running the pipeline when the caller already has one) for any
    /// backend: the interpreter runs the synthesis's normalised
    /// program, the model backend its synthesized model, and the
    /// compiled backend the model lowered by `nf-compile` against the
    /// program's initial configuration and state.
    pub fn from_synthesis(
        pipeline: &Pipeline,
        syn: &Synthesis,
        backend: Backend,
    ) -> Result<ShardEngine, ShardError> {
        let lint = nfl_lint::lint_program(&syn.name, &syn.nf_loop.program)
            .map_err(ShardError::Build)?;
        let interp =
            Interp::new(&syn.nf_loop).map_err(|e| ShardError::Build(e.to_string()))?;
        let tracer = pipeline.tracer().clone();
        let (proto, model, fallback) = match backend {
            Backend::Interp => (BackendState::Interp(interp), None, None),
            Backend::Model => {
                let init = nfactor_core::accuracy::initial_model_state(syn, &interp);
                (
                    BackendState::Model(init),
                    Some(Arc::new(syn.model.clone())),
                    None,
                )
            }
            Backend::Compiled => {
                let init = nfactor_core::accuracy::initial_model_state(syn, &interp);
                let t0 = Instant::now();
                let prog = nf_compile::compile(&syn.model, &init)
                    .map_err(|e| ShardError::Build(e.to_string()))?;
                tracer.observe_ns("compile.ns", t0.elapsed().as_nanos() as u64);
                tracer.count("compiled.nodes", prog.node_count() as u64);
                tracer.count("compiled.table.entries", prog.entry_count() as u64);
                let state = nf_compile::CompiledState::new(&prog);
                (
                    BackendState::Compiled {
                        prog: Arc::new(prog),
                        state,
                    },
                    None,
                    Some(Arc::new((syn.model.clone(), init))),
                )
            }
        };
        Ok(ShardEngine {
            name: syn.name.clone(),
            shards: pipeline.shards(),
            plan: ShardPlan::from_report(&lint.sharding),
            report: lint.sharding,
            tracer,
            proto,
            model,
            fallback,
            policy: SupervisorPolicy::default(),
            telemetry: TelemetryConfig::default(),
        })
    }

    /// The NF name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of shards this engine fans out to.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The placement plan in force.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The lint report the plan was derived from.
    pub fn report(&self) -> &ShardingReport {
        &self.report
    }

    /// The supervision policy in force.
    pub fn policy(&self) -> SupervisorPolicy {
        self.policy
    }

    /// Replace the supervision policy (restart threshold, quarantine
    /// cap, ring retry deadline).
    pub fn set_policy(&mut self, policy: SupervisorPolicy) {
        self.policy = policy;
    }

    /// The telemetry configuration in force.
    pub fn telemetry(&self) -> TelemetryConfig {
        self.telemetry
    }

    /// Replace the telemetry configuration (hot-key sketch capacity,
    /// flight-recorder depth, flush cadence, master switch).
    pub fn set_telemetry(&mut self, telemetry: TelemetryConfig) {
        self.telemetry = telemetry;
    }

    /// Whether runs collect telemetry: the config switch is on *and*
    /// the tracer records (a disabled tracer has no sink to flush to).
    fn telemetry_on(&self) -> bool {
        self.telemetry.enabled && self.tracer.is_enabled()
    }

    /// The unified entry point: pull packets from `source` in
    /// [`BatchConfig::size`] batches and execute them per `cfg` —
    /// threaded, sequential, or the single-shard reference; fault-free
    /// or under a deterministic [`FaultPlan`]; with or without
    /// per-packet output retention and skew-aware rebalancing.
    pub fn run_with<S>(&self, source: S, cfg: &RunConfig) -> Result<ShardRun, ShardError>
    where
        S: WorkloadSource<Item = Packet>,
    {
        let mut source = source;
        let faults = cfg.fault_plan.clone().unwrap_or_else(FaultPlan::new);
        match (cfg.mode, self.plan.mode().clone()) {
            (RunMode::Threaded, PlanMode::Partitioned(key)) => {
                self.run_partitioned_threaded(&key, &mut source, &faults, cfg)
            }
            (RunMode::Threaded, PlanMode::GlobalLock) => {
                self.run_global_threaded(&mut source, &faults, cfg)
            }
            (RunMode::Sequential, PlanMode::Partitioned(_)) => {
                self.run_sequential_n(self.shards, &mut source, &faults, cfg)
            }
            (RunMode::Sequential, PlanMode::GlobalLock) => {
                self.run_global_sequential(&mut source, &faults, cfg)
            }
            (RunMode::Single, _) => self.run_sequential_n(1, &mut source, &faults, cfg),
        }
    }

    /// Run threaded over an in-memory slice.
    #[deprecated(note = "use run_with(SliceSource::new(packets), &RunConfig::threaded())")]
    pub fn run(&self, packets: &[Packet]) -> Result<ShardRun, ShardError> {
        self.run_with(SliceSource::new(packets), &RunConfig::threaded())
    }

    /// Run threaded under a fault plan.
    #[deprecated(note = "use run_with with RunConfig::threaded().with_faults(..)")]
    pub fn run_faulted(
        &self,
        packets: &[Packet],
        faults: &FaultPlan,
    ) -> Result<ShardRun, ShardError> {
        self.run_with(
            SliceSource::new(packets),
            &RunConfig::threaded().with_faults(faults.clone()),
        )
    }

    /// Run the sharded dispatch sequentially on one thread.
    #[deprecated(note = "use run_with(SliceSource::new(packets), &RunConfig::sequential())")]
    pub fn run_sequential(&self, packets: &[Packet]) -> Result<ShardRun, ShardError> {
        self.run_with(SliceSource::new(packets), &RunConfig::sequential())
    }

    /// Run sequentially under a fault plan.
    #[deprecated(note = "use run_with with RunConfig::sequential().with_faults(..)")]
    pub fn run_sequential_faulted(
        &self,
        packets: &[Packet],
        faults: &FaultPlan,
    ) -> Result<ShardRun, ShardError> {
        self.run_with(
            SliceSource::new(packets),
            &RunConfig::sequential().with_faults(faults.clone()),
        )
    }

    /// The one-shard reference run.
    #[deprecated(note = "use run_with(SliceSource::new(packets), &RunConfig::single())")]
    pub fn run_single(&self, packets: &[Packet]) -> Result<ShardRun, ShardError> {
        self.run_with(SliceSource::new(packets), &RunConfig::single())
    }

    /// The one-shard reference run under a fault plan.
    #[deprecated(note = "use run_with with RunConfig::single().with_faults(..)")]
    pub fn run_single_faulted(
        &self,
        packets: &[Packet],
        faults: &FaultPlan,
    ) -> Result<ShardRun, ShardError> {
        self.run_with(
            SliceSource::new(packets),
            &RunConfig::single().with_faults(faults.clone()),
        )
    }

    /// A fresh supervised worker for shard `shard`.
    fn shard_worker(&self, shard: usize, faults: &FaultPlan) -> ShardWorker {
        ShardWorker {
            shard,
            state: self.proto.clone(),
            model: self.model.clone(),
            fallback: self.fallback.clone(),
            faults: faults.clone(),
            policy: self.policy,
            label: self.proto.label(),
            quarantine: Quarantine::new(self.policy.quarantine_cap),
            fail_streak: 0,
            restarts: 0,
            fallbacks: 0,
        }
    }

    fn run_partitioned_threaded(
        &self,
        key: &nfl_lint::DispatchKey,
        source: &mut dyn WorkloadSource<Item = Packet>,
        faults: &FaultPlan,
        run_cfg: &RunConfig,
    ) -> Result<ShardRun, ShardError> {
        let n = self.shards;
        let policy = self.policy;
        let telemetry_on = self.telemetry_on();
        let cfg = self.telemetry;
        let batch = run_cfg.batch.size.max(1);
        let ring_bins = (RING_CAP / batch).max(2);
        let keep_outputs = run_cfg.keep_outputs;
        let mut rebalancer = Rebalancer::new(
            &run_cfg.batch,
            n,
            threaded_high_water(&run_cfg.batch, ring_bins),
            n > 1,
        );
        type ScopeOut = (
            Vec<WorkerOut>,
            Vec<u64>,
            Vec<u64>,
            Vec<u64>,
            Vec<TopK<Vec<u64>>>,
            u64,
            u64,
        );
        let (outs, retries, dropped_seqs, dropped_per_shard, sketches, dispatch_ns, dispatch_wait_ns) =
            std::thread::scope(|scope| -> Result<ScopeOut, ShardError> {
                let mut producers = Vec::with_capacity(n);
                let mut handles = Vec::with_capacity(n);
                for w in 0..n {
                    let (tx, rx) = nf_support::spsc::ring::<Bin>(ring_bins);
                    producers.push(tx);
                    let mut worker = self.shard_worker(w, faults);
                    let tracer = self.tracer.clone();
                    let label = self.proto.label();
                    let handle = std::thread::Builder::new()
                        .name(format!("nf-shard-{w}"))
                        .spawn_scoped(scope, move || -> WorkerOut {
                            let mut outputs = Vec::new();
                            let (mut pkts, mut busy_ns) = (0u64, 0u64);
                            let mut forwarded = 0u64;
                            let wait_name = format!("shard.{w}.ring.wait.ns");
                            let mut tel =
                                telemetry_on.then(|| WorkerTelemetry::new(w, label, &cfg));
                            loop {
                                let wait = tracer.now();
                                let Some(bin) = rx.recv() else { break };
                                tracer.observe_ns(
                                    &wait_name,
                                    tracer.now().saturating_duration_since(wait).as_nanos()
                                        as u64,
                                );
                                if let Some(tel) = tel.as_mut() {
                                    // Bins still queued after this
                                    // dequeue — the backlog signal.
                                    tel.occupancy(rx.len() as u64);
                                }
                                for (seq, nth, pkt) in bin {
                                    let t0 = tracer.now();
                                    let step = worker.process(seq, nth, &pkt);
                                    let step_ns = tracer
                                        .now()
                                        .saturating_duration_since(t0)
                                        .as_nanos() as u64;
                                    busy_ns += step_ns;
                                    if let Some(tel) = tel.as_mut() {
                                        let outcome = match &step {
                                            Some((_, false)) => FlightOutcome::Forwarded,
                                            Some((_, true)) => FlightOutcome::Dropped,
                                            None => FlightOutcome::Quarantined,
                                        };
                                        tel.record(seq, step_ns, outcome, &pkt);
                                        tel.maybe_flush(&tracer);
                                    }
                                    if let Some((outs, dropped)) = step {
                                        pkts += 1;
                                        if !dropped {
                                            forwarded += 1;
                                        }
                                        if keep_outputs {
                                            outputs.push(SeqOutput {
                                                seq,
                                                shard: w,
                                                outputs: outs,
                                                dropped,
                                            });
                                        }
                                    }
                                }
                            }
                            tracer.count(&format!("shard.{w}.pkts"), pkts);
                            let stats = tel.map(|t| t.finish(&tracer));
                            worker.into_out(outputs, pkts, busy_ns, forwarded, stats)
                        })
                        .map_err(|e| ShardError::Thread(e.to_string()))?;
                    handles.push(handle);
                }
                let mut steered = vec![0u64; n];
                let mut retries = vec![0u64; n];
                let mut dispatch_wait_ns = 0u64;
                let mut dropped_seqs = Vec::new();
                let mut dropped_per_shard = vec![0u64; n];
                // The dispatcher-side hot-key sketches serve both the
                // telemetry plane and the rebalancer's divert decision.
                let mut sketches: Vec<TopK<Vec<u64>>> =
                    if telemetry_on || rebalancer.enabled {
                        (0..n).map(|_| TopK::new(cfg.hotkeys_k)).collect()
                    } else {
                        Vec::new()
                    };
                let mut fill: Vec<Histogram> = if telemetry_on {
                    (0..n).map(|_| Histogram::new(&BATCH_FILL_BOUNDS)).collect()
                } else {
                    Vec::new()
                };
                let mut bins: Vec<Bin> =
                    (0..n).map(|_| Vec::with_capacity(batch)).collect();
                let mut batch_buf: Vec<Packet> = Vec::with_capacity(batch);
                let mut loads = vec![0u64; n];
                let mut seq = 0u64;
                let mut source_err: Option<String> = None;
                let dispatch_span = self.tracer.span("shard.dispatch");
                let d0 = self.tracer.now();
                'dispatch: loop {
                    batch_buf.clear();
                    let got = match source.next_batch(&mut batch_buf, batch) {
                        Ok(g) => g,
                        Err(e) => {
                            source_err = Some(e.to_string());
                            break 'dispatch;
                        }
                    };
                    if got == 0 {
                        break;
                    }
                    for mut pkt in batch_buf.drain(..) {
                        let i = seq;
                        seq += 1;
                        let h = dispatch_hash(key, &pkt);
                        let hash_shard = if n > 1 { (h % n as u64) as usize } else { 0 };
                        let w = rebalancer.route(h, hash_shard);
                        if !sketches.is_empty() {
                            sketches[w].offer(dispatch_values(key, &pkt));
                        }
                        let nth = steered[w];
                        steered[w] += 1;
                        let (forced, garbage) = dispatch_faults(faults, w, nth);
                        if !simulate_dispatch(forced, &policy, &mut retries[w]) {
                            dropped_seqs.push(i);
                            dropped_per_shard[w] += 1;
                            continue;
                        }
                        if garbage {
                            scramble_packet(&mut pkt, i);
                        }
                        bins[w].push((i, nth, pkt));
                        if bins[w].len() >= batch
                            && flush_bin(
                                &mut bins[w],
                                batch,
                                &producers[w],
                                &policy,
                                &mut retries[w],
                                &mut dispatch_wait_ns,
                                fill.get_mut(w),
                                &mut dropped_seqs,
                                &mut dropped_per_shard[w],
                            )
                            .is_err()
                        {
                            // The worker exited early; its join below
                            // reports why.
                            break 'dispatch;
                        }
                    }
                    // Batch boundary: queued bins per ring are the load
                    // signal the rebalancer watches.
                    if rebalancer.enabled {
                        for (l, tx) in loads.iter_mut().zip(&producers) {
                            *l = tx.len() as u64;
                        }
                        rebalancer.boundary(&loads, &sketches);
                    }
                }
                for w in 0..n {
                    if flush_bin(
                        &mut bins[w],
                        batch,
                        &producers[w],
                        &policy,
                        &mut retries[w],
                        &mut dispatch_wait_ns,
                        fill.get_mut(w),
                        &mut dropped_seqs,
                        &mut dropped_per_shard[w],
                    )
                    .is_err()
                    {
                        break;
                    }
                }
                drop(producers);
                let dispatch_ns =
                    self.tracer.now().saturating_duration_since(d0).as_nanos() as u64;
                dispatch_span.end();
                for (w, h) in fill.iter().enumerate() {
                    if h.count > 0 {
                        self.tracer
                            .merge_histogram(&format!("shard.{w}.batch.fill"), h);
                    }
                }
                let mut outs = Vec::with_capacity(n);
                for (i, handle) in handles.into_iter().enumerate() {
                    match handle.join() {
                        Ok(out) => outs.push(out),
                        Err(payload) => {
                            return Err(ShardError::Thread(format!(
                                "shard {i} panicked: {}",
                                panic_message(payload.as_ref())
                            )))
                        }
                    }
                }
                if let Some(e) = source_err {
                    return Err(ShardError::Workload(e));
                }
                Ok((
                    outs,
                    retries,
                    dropped_seqs,
                    dropped_per_shard,
                    sketches,
                    dispatch_ns,
                    dispatch_wait_ns,
                ))
            })?;
        if rebalancer.migrations > 0 {
            self.tracer
                .count("shard.rebalance.migrations", rebalancer.migrations);
        }
        let stats_sketches = if telemetry_on { sketches } else { Vec::new() };
        let mut run = self.assemble(
            outs,
            true,
            retries,
            dropped_seqs,
            dropped_per_shard,
            stats_sketches,
            dispatch_ns,
            dispatch_wait_ns,
        )?;
        run.migrations = rebalancer.migrations;
        Ok(run)
    }

    fn run_global_threaded(
        &self,
        source: &mut dyn WorkloadSource<Item = Packet>,
        faults: &FaultPlan,
        run_cfg: &RunConfig,
    ) -> Result<ShardRun, ShardError> {
        let n = self.shards;
        let policy = self.policy;
        let telemetry_on = self.telemetry_on();
        let cfg = self.telemetry;
        let batch = run_cfg.batch.size.max(1);
        let ring_bins = (RING_CAP / batch).max(2);
        let keep_outputs = run_cfg.keep_outputs;
        let shared = Arc::new(Mutex::new(self.proto.clone()));
        let turn = Arc::new(AtomicU64::new(0));
        // Seqs that will never be processed (dropped at dispatch): a
        // waiter whose turn never comes checks here and advances the
        // ticket past them, so a drop cannot stall the run.
        let skipped = Arc::new(Mutex::new(BTreeSet::<u64>::new()));
        type ScopeOut = (Vec<WorkerOut>, Vec<u64>, Vec<u64>, Vec<u64>, u64, u64);
        let (mut outs, retries, mut dropped_seqs, dropped_per_shard, dispatch_ns, dispatch_wait_ns) =
            std::thread::scope(|scope| -> Result<ScopeOut, ShardError> {
                let mut producers = Vec::with_capacity(n);
                let mut handles = Vec::with_capacity(n);
                for w in 0..n {
                    let (tx, rx) = nf_support::spsc::ring::<Bin>(ring_bins);
                    producers.push(tx);
                    let shared = Arc::clone(&shared);
                    let turn = Arc::clone(&turn);
                    let skipped = Arc::clone(&skipped);
                    let model = self.model.clone();
                    let fallback = self.fallback.clone();
                    let faults = faults.clone();
                    let label = self.proto.label();
                    let tracer = self.tracer.clone();
                    let handle = std::thread::Builder::new()
                        .name(format!("nf-shard-{w}"))
                        .spawn_scoped(scope, move || -> Result<WorkerOut, String> {
                            let mut poison = PoisonTicket {
                                turn: Arc::clone(&turn),
                                armed: true,
                            };
                            let mut outputs = Vec::new();
                            let (mut pkts, mut busy_ns) = (0u64, 0u64);
                            let mut forwarded = 0u64;
                            let mut quarantine = Quarantine::new(policy.quarantine_cap);
                            let (mut fail_streak, mut restarts) = (0u32, 0u64);
                            let mut fallbacks = 0u64;
                            let mut tel =
                                telemetry_on.then(|| WorkerTelemetry::new(w, label, &cfg));
                            while let Some(bin) = rx.recv() {
                                if let Some(tel) = tel.as_mut() {
                                    tel.occupancy(rx.len() as u64);
                                }
                                for (seq, nth, pkt) in bin {
                                // Ticket lock: process strictly in arrival
                                // order so the run is bit-identical to the
                                // single-threaded reference. `u64::MAX` is
                                // the poison ticket a failing shard leaves
                                // behind so nobody spins forever.
                                let wait = tracer.now();
                                let mut backoff = Backoff::new();
                                loop {
                                    match turn.load(Ordering::Acquire) {
                                        t if t == seq => break,
                                        u64::MAX => {
                                            return Err(ABORTED.into());
                                        }
                                        t => {
                                            if backoff.yields() {
                                                let set = skipped
                                                    .lock()
                                                    .unwrap_or_else(|e| e.into_inner());
                                                if set.contains(&t) {
                                                    let _ = turn.compare_exchange(
                                                        t,
                                                        t + 1,
                                                        Ordering::AcqRel,
                                                        Ordering::Acquire,
                                                    );
                                                    continue;
                                                }
                                            }
                                            backoff.snooze();
                                        }
                                    }
                                }
                                let mut guard =
                                    shared.lock().unwrap_or_else(|e| e.into_inner());
                                tracer.observe_ns(
                                    "lock.wait.ns",
                                    tracer.now().saturating_duration_since(wait).as_nanos()
                                        as u64,
                                );
                                let t0 = tracer.now();
                                let step = supervised_step(
                                    &mut guard,
                                    model.as_deref(),
                                    fallback.as_deref(),
                                    w,
                                    nth,
                                    &pkt,
                                    &faults,
                                    &mut fallbacks,
                                );
                                match step {
                                    Ok((outs, dropped)) => {
                                        fail_streak = 0;
                                        drop(guard);
                                        turn.store(seq + 1, Ordering::Release);
                                        let step_ns = tracer
                                            .now()
                                            .saturating_duration_since(t0)
                                            .as_nanos()
                                            as u64;
                                        busy_ns += step_ns;
                                        if let Some(tel) = tel.as_mut() {
                                            let outcome = if dropped {
                                                FlightOutcome::Dropped
                                            } else {
                                                FlightOutcome::Forwarded
                                            };
                                            tel.record(seq, step_ns, outcome, &pkt);
                                            tel.maybe_flush(&tracer);
                                        }
                                        pkts += 1;
                                        if !dropped {
                                            forwarded += 1;
                                        }
                                        if keep_outputs {
                                            outputs.push(SeqOutput {
                                                seq,
                                                shard: w,
                                                outputs: outs,
                                                dropped,
                                            });
                                        }
                                    }
                                    Err(error) => {
                                        // Contained: quarantine, advance
                                        // the ticket, keep running.
                                        fail_streak += 1;
                                        if fail_streak >= policy.restart_after {
                                            guard.refresh();
                                            restarts += 1;
                                            fail_streak = 0;
                                        }
                                        drop(guard);
                                        turn.store(seq + 1, Ordering::Release);
                                        let step_ns = tracer
                                            .now()
                                            .saturating_duration_since(t0)
                                            .as_nanos()
                                            as u64;
                                        busy_ns += step_ns;
                                        if let Some(tel) = tel.as_mut() {
                                            tel.record(
                                                seq,
                                                step_ns,
                                                FlightOutcome::Quarantined,
                                                &pkt,
                                            );
                                            tel.maybe_flush(&tracer);
                                        }
                                        quarantine.push(QuarantineRecord {
                                            seq,
                                            shard: w,
                                            backend: label,
                                            error,
                                            packet: pkt.clone(),
                                        });
                                    }
                                }
                                }
                            }
                            poison.armed = false;
                            tracer.count(&format!("shard.{w}.pkts"), pkts);
                            let (quarantined, quarantined_seqs) = quarantine.into_parts();
                            let stats = tel.map(|t| t.finish(&tracer));
                            Ok(WorkerOut {
                                outputs,
                                snapshot: BTreeMap::new(),
                                pkts,
                                busy_ns,
                                forwarded,
                                quarantined,
                                quarantined_seqs,
                                restarts,
                                fallbacks,
                                stats,
                            })
                        })
                        .map_err(|e| ShardError::Thread(e.to_string()))?;
                    handles.push(handle);
                }
                let mut steered = vec![0u64; n];
                let mut retries = vec![0u64; n];
                let mut dispatch_wait_ns = 0u64;
                let mut dropped_seqs = Vec::new();
                let mut dropped_per_shard = vec![0u64; n];
                let mut fill: Vec<Histogram> = if telemetry_on {
                    (0..n).map(|_| Histogram::new(&BATCH_FILL_BOUNDS)).collect()
                } else {
                    Vec::new()
                };
                let mut bins: Vec<Bin> =
                    (0..n).map(|_| Vec::with_capacity(batch)).collect();
                let mut batch_buf: Vec<Packet> = Vec::with_capacity(batch);
                let mut seq = 0u64;
                let mut source_err: Option<String> = None;
                let dispatch_span = self.tracer.span("shard.dispatch");
                let d0 = self.tracer.now();
                'dispatch: loop {
                    batch_buf.clear();
                    let got = match source.next_batch(&mut batch_buf, batch) {
                        Ok(g) => g,
                        Err(e) => {
                            source_err = Some(e.to_string());
                            break 'dispatch;
                        }
                    };
                    if got == 0 {
                        break;
                    }
                    for mut pkt in batch_buf.drain(..) {
                        let i = seq;
                        seq += 1;
                        // Round-robin: the ticket serialises processing
                        // anyway.
                        let w = (i % n as u64) as usize;
                        let nth = steered[w];
                        steered[w] += 1;
                        let (forced, garbage) = dispatch_faults(faults, w, nth);
                        if !simulate_dispatch(forced, &policy, &mut retries[w]) {
                            // Record the hole in the ticket sequence
                            // before accounting, so waiters can skip it.
                            skipped
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .insert(i);
                            let _ = turn.compare_exchange(
                                i,
                                i + 1,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            );
                            dropped_seqs.push(i);
                            dropped_per_shard[w] += 1;
                            continue;
                        }
                        if garbage {
                            scramble_packet(&mut pkt, i);
                        }
                        bins[w].push((i, nth, pkt));
                        if bins[w].len() >= batch
                            && flush_bin_global(
                                &mut bins[w],
                                batch,
                                &producers[w],
                                &policy,
                                &mut retries[w],
                                &mut dispatch_wait_ns,
                                fill.get_mut(w),
                                &mut dropped_seqs,
                                &mut dropped_per_shard[w],
                                &skipped,
                                &turn,
                            )
                            .is_err()
                        {
                            break 'dispatch;
                        }
                    }
                }
                for w in 0..n {
                    if flush_bin_global(
                        &mut bins[w],
                        batch,
                        &producers[w],
                        &policy,
                        &mut retries[w],
                        &mut dispatch_wait_ns,
                        fill.get_mut(w),
                        &mut dropped_seqs,
                        &mut dropped_per_shard[w],
                        &skipped,
                        &turn,
                    )
                    .is_err()
                    {
                        break;
                    }
                }
                drop(producers);
                let dispatch_ns =
                    self.tracer.now().saturating_duration_since(d0).as_nanos() as u64;
                dispatch_span.end();
                for (w, h) in fill.iter().enumerate() {
                    if h.count > 0 {
                        self.tracer
                            .merge_histogram(&format!("shard.{w}.batch.fill"), h);
                    }
                }
                // Join everything, then report the root cause rather than
                // a bystander's abort.
                let mut outs = Vec::with_capacity(n);
                let mut aborted = false;
                let mut failure: Option<ShardError> = None;
                for (i, handle) in handles.into_iter().enumerate() {
                    match handle.join() {
                        Ok(Ok(out)) => outs.push(out),
                        Ok(Err(e)) if e == ABORTED => aborted = true,
                        Ok(Err(e)) => failure = failure.or(Some(ShardError::Runtime(e))),
                        Err(payload) => {
                            turn.store(u64::MAX, Ordering::Release);
                            failure = failure.or(Some(ShardError::Thread(format!(
                                "shard {i} panicked: {}",
                                panic_message(payload.as_ref())
                            ))));
                        }
                    }
                }
                if let Some(err) = failure {
                    return Err(err);
                }
                if aborted {
                    return Err(ShardError::Thread(
                        "worker aborted without a cause".into(),
                    ));
                }
                if let Some(e) = source_err {
                    return Err(ShardError::Workload(e));
                }
                Ok((
                    outs,
                    retries,
                    dropped_seqs,
                    dropped_per_shard,
                    dispatch_ns,
                    dispatch_wait_ns,
                ))
            })?;
        let mut outputs: Vec<SeqOutput> = outs.iter().flat_map(|o| o.outputs.clone()).collect();
        outputs.sort_by_key(|o| o.seq);
        let forwarded = outs.iter().map(|o| o.forwarded).sum();
        let merge_span = self.tracer.span("shard.merge");
        let m0 = self.tracer.now();
        let merged = shared.lock().unwrap_or_else(|e| e.into_inner()).snapshot();
        let merge_ns = self.tracer.now().saturating_duration_since(m0).as_nanos() as u64;
        merge_span.end();
        let per_shard_pkts = outs.iter().map(|o| o.pkts).collect();
        let busy_ns = outs.iter().map(|o| o.busy_ns).collect();
        let shard_stats: Vec<ShardStats> =
            outs.iter_mut().filter_map(|o| o.stats.take()).collect();
        let (quarantined, quarantined_seqs, restarts, fallbacks) =
            self.fold_faults(&mut outs, &retries, &dropped_per_shard);
        dropped_seqs.sort_unstable();
        let stats = (!shard_stats.is_empty()).then(|| {
            RunStats::assemble(
                shard_stats,
                Vec::new(),
                None,
                dispatch_ns,
                merge_ns,
                &self.tracer,
            )
        });
        Ok(ShardRun {
            outputs,
            merged,
            per_shard_pkts,
            busy_ns,
            partitioned: false,
            quarantined,
            quarantined_seqs,
            dropped_seqs,
            restarts,
            retries: retries.iter().sum(),
            fallbacks,
            forwarded,
            migrations: 0,
            dispatch_ns,
            dispatch_wait_ns,
            stats,
        })
    }

    fn run_sequential_n(
        &self,
        n: usize,
        source: &mut dyn WorkloadSource<Item = Packet>,
        faults: &FaultPlan,
        run_cfg: &RunConfig,
    ) -> Result<ShardRun, ShardError> {
        let telemetry_on = self.telemetry_on();
        let batch = run_cfg.batch.size.max(1);
        let mut workers: Vec<ShardWorker> =
            (0..n).map(|w| self.shard_worker(w, faults)).collect();
        let mut tels: Vec<Option<WorkerTelemetry>> = (0..n)
            .map(|w| {
                telemetry_on
                    .then(|| WorkerTelemetry::new(w, self.proto.label(), &self.telemetry))
            })
            .collect();
        // Hot keys are a property of the dispatch key; a global-lock
        // plan has none, so its profile is naturally empty.
        let key = self.plan.dispatch().cloned();
        let mut rebalancer = Rebalancer::new(
            &run_cfg.batch,
            n,
            sequential_high_water(&run_cfg.batch, batch),
            key.is_some() && n > 1,
        );
        let mut sketches: Vec<TopK<Vec<u64>>> =
            if key.is_some() && (telemetry_on || rebalancer.enabled) {
                (0..n).map(|_| TopK::new(self.telemetry.hotkeys_k)).collect()
            } else {
                Vec::new()
            };
        let mut fill: Vec<Histogram> = if telemetry_on {
            (0..n).map(|_| Histogram::new(&BATCH_FILL_BOUNDS)).collect()
        } else {
            Vec::new()
        };
        let mut outputs = Vec::new();
        let mut forwarded = 0u64;
        let mut pkts = vec![0u64; n];
        let mut busy = vec![0u64; n];
        let mut steered = vec![0u64; n];
        let mut retries = vec![0u64; n];
        let mut dropped_seqs = Vec::new();
        let mut dropped_per_shard = vec![0u64; n];
        let mut seq = 0u64;
        let mut batch_buf: Vec<Packet> = Vec::with_capacity(batch);
        // Per-round bin fill doubles as the (deterministic) load signal
        // the rebalancer watches in sequential mode.
        let mut round_fill = vec![0u64; n];
        loop {
            batch_buf.clear();
            let got = source
                .next_batch(&mut batch_buf, batch)
                .map_err(|e| ShardError::Workload(e.to_string()))?;
            if got == 0 {
                break;
            }
            round_fill.iter_mut().for_each(|c| *c = 0);
            for mut pkt in batch_buf.drain(..) {
                let i = seq;
                seq += 1;
                let w = match &key {
                    Some(k) if n > 1 => {
                        let h = dispatch_hash(k, &pkt);
                        rebalancer.route(h, (h % n as u64) as usize)
                    }
                    _ => 0,
                };
                if !sketches.is_empty() {
                    if let Some(k) = &key {
                        sketches[w].offer(dispatch_values(k, &pkt));
                    }
                }
                round_fill[w] += 1;
                let nth = steered[w];
                steered[w] += 1;
                let (forced, garbage) = dispatch_faults(faults, w, nth);
                if !simulate_dispatch(forced, &self.policy, &mut retries[w]) {
                    dropped_seqs.push(i);
                    dropped_per_shard[w] += 1;
                    continue;
                }
                if garbage {
                    scramble_packet(&mut pkt, i);
                }
                let t0 = self.tracer.now();
                let step = workers[w].process(i, nth, &pkt);
                let step_ns =
                    self.tracer.now().saturating_duration_since(t0).as_nanos() as u64;
                busy[w] += step_ns;
                if let Some(tel) = tels[w].as_mut() {
                    let outcome = match &step {
                        Some((_, false)) => FlightOutcome::Forwarded,
                        Some((_, true)) => FlightOutcome::Dropped,
                        None => FlightOutcome::Quarantined,
                    };
                    tel.record(i, step_ns, outcome, &pkt);
                    tel.maybe_flush(&self.tracer);
                }
                if let Some((outs, dropped)) = step {
                    pkts[w] += 1;
                    if !dropped {
                        forwarded += 1;
                    }
                    if run_cfg.keep_outputs {
                        outputs.push(SeqOutput {
                            seq: i,
                            shard: w,
                            outputs: outs,
                            dropped,
                        });
                    }
                }
            }
            for (h, &c) in fill.iter_mut().zip(&round_fill) {
                if c > 0 {
                    h.observe(c);
                }
            }
            rebalancer.boundary(&round_fill, &sketches);
        }
        for (w, count) in pkts.iter().enumerate() {
            self.tracer.count(&format!("shard.{w}.pkts"), *count);
        }
        for (w, h) in fill.iter().enumerate() {
            if h.count > 0 {
                self.tracer.merge_histogram(&format!("shard.{w}.batch.fill"), h);
            }
        }
        if rebalancer.migrations > 0 {
            self.tracer
                .count("shard.rebalance.migrations", rebalancer.migrations);
        }
        let outs: Vec<WorkerOut> = workers
            .into_iter()
            .zip(pkts)
            .zip(busy)
            .zip(tels)
            .map(|(((worker, pkts), busy_ns), tel)| {
                let stats = tel.map(|t| t.finish(&self.tracer));
                worker.into_out(Vec::new(), pkts, busy_ns, 0, stats)
            })
            .collect();
        let stats_sketches = if telemetry_on { sketches } else { Vec::new() };
        let mut run = self.assemble(
            outs,
            true,
            retries,
            dropped_seqs,
            dropped_per_shard,
            stats_sketches,
            0,
            0,
        )?;
        run.outputs = outputs;
        run.forwarded = forwarded;
        run.migrations = rebalancer.migrations;
        Ok(run)
    }

    fn run_global_sequential(
        &self,
        source: &mut dyn WorkloadSource<Item = Packet>,
        faults: &FaultPlan,
        run_cfg: &RunConfig,
    ) -> Result<ShardRun, ShardError> {
        let n = self.shards;
        let telemetry_on = self.telemetry_on();
        let batch = run_cfg.batch.size.max(1);
        // One shared evaluator; the worker's shard index is rewritten
        // per packet so faults and quarantine records land on the right
        // virtual shard.
        let mut worker = self.shard_worker(0, faults);
        let mut tels: Vec<Option<WorkerTelemetry>> = (0..n)
            .map(|w| {
                telemetry_on
                    .then(|| WorkerTelemetry::new(w, self.proto.label(), &self.telemetry))
            })
            .collect();
        let mut fill: Vec<Histogram> = if telemetry_on {
            (0..n).map(|_| Histogram::new(&BATCH_FILL_BOUNDS)).collect()
        } else {
            Vec::new()
        };
        let mut outputs = Vec::new();
        let mut forwarded = 0u64;
        let mut pkts = vec![0u64; n];
        let mut busy = vec![0u64; n];
        let mut steered = vec![0u64; n];
        let mut retries = vec![0u64; n];
        let mut quarantined_per_shard = vec![0u64; n];
        let mut dropped_seqs = Vec::new();
        let mut dropped_per_shard = vec![0u64; n];
        let mut seq = 0u64;
        let mut batch_buf: Vec<Packet> = Vec::with_capacity(batch);
        let mut round_fill = vec![0u64; n];
        loop {
            batch_buf.clear();
            let got = source
                .next_batch(&mut batch_buf, batch)
                .map_err(|e| ShardError::Workload(e.to_string()))?;
            if got == 0 {
                break;
            }
            round_fill.iter_mut().for_each(|c| *c = 0);
            for mut pkt in batch_buf.drain(..) {
                let i = seq;
                seq += 1;
                let w = (i % n as u64) as usize;
                round_fill[w] += 1;
                let nth = steered[w];
                steered[w] += 1;
                let (forced, garbage) = dispatch_faults(faults, w, nth);
                if !simulate_dispatch(forced, &self.policy, &mut retries[w]) {
                    dropped_seqs.push(i);
                    dropped_per_shard[w] += 1;
                    continue;
                }
                if garbage {
                    scramble_packet(&mut pkt, i);
                }
                worker.shard = w;
                let t0 = self.tracer.now();
                let step = worker.process(i, nth, &pkt);
                let step_ns =
                    self.tracer.now().saturating_duration_since(t0).as_nanos() as u64;
                busy[w] += step_ns;
                if let Some(tel) = tels[w].as_mut() {
                    let outcome = match &step {
                        Some((_, false)) => FlightOutcome::Forwarded,
                        Some((_, true)) => FlightOutcome::Dropped,
                        None => FlightOutcome::Quarantined,
                    };
                    tel.record(i, step_ns, outcome, &pkt);
                    tel.maybe_flush(&self.tracer);
                }
                if let Some((outs, dropped)) = step {
                    pkts[w] += 1;
                    if !dropped {
                        forwarded += 1;
                    }
                    if run_cfg.keep_outputs {
                        outputs.push(SeqOutput {
                            seq: i,
                            shard: w,
                            outputs: outs,
                            dropped,
                        });
                    }
                } else {
                    quarantined_per_shard[w] += 1;
                }
            }
            for (h, &c) in fill.iter_mut().zip(&round_fill) {
                if c > 0 {
                    h.observe(c);
                }
            }
        }
        for (w, count) in pkts.iter().enumerate() {
            self.tracer.count(&format!("shard.{w}.pkts"), *count);
        }
        for (w, h) in fill.iter().enumerate() {
            if h.count > 0 {
                self.tracer.merge_histogram(&format!("shard.{w}.batch.fill"), h);
            }
        }
        for (w, q) in quarantined_per_shard.iter().enumerate() {
            if *q > 0 {
                self.tracer.count(&format!("shard.{w}.quarantined"), *q);
            }
        }
        for (w, r) in retries.iter().enumerate() {
            if *r > 0 {
                self.tracer.count(&format!("shard.{w}.retries"), *r);
            }
        }
        for (w, d) in dropped_per_shard.iter().enumerate() {
            if *d > 0 {
                self.tracer.count(&format!("shard.{w}.dropped"), *d);
            }
        }
        if worker.restarts > 0 {
            self.tracer.count("shard.0.restarts", worker.restarts);
        }
        if worker.fallbacks > 0 {
            self.tracer.count("backend.fallbacks", worker.fallbacks);
        }
        let restarts = worker.restarts;
        let fallbacks = worker.fallbacks;
        let merge_span = self.tracer.span("shard.merge");
        let m0 = self.tracer.now();
        let merged = worker.state.snapshot();
        let merge_ns = self.tracer.now().saturating_duration_since(m0).as_nanos() as u64;
        merge_span.end();
        let shard_stats: Vec<ShardStats> = tels
            .into_iter()
            .flatten()
            .map(|t| t.finish(&self.tracer))
            .collect();
        let stats = (!shard_stats.is_empty()).then(|| {
            RunStats::assemble(shard_stats, Vec::new(), None, 0, merge_ns, &self.tracer)
        });
        let (mut quarantined, mut quarantined_seqs) = worker.quarantine.into_parts();
        quarantined.sort_by_key(|r| r.seq);
        quarantined.truncate(self.policy.quarantine_cap);
        quarantined_seqs.sort_unstable();
        dropped_seqs.sort_unstable();
        Ok(ShardRun {
            outputs,
            merged,
            per_shard_pkts: pkts,
            busy_ns: busy,
            partitioned: false,
            quarantined,
            quarantined_seqs,
            dropped_seqs,
            restarts,
            retries: retries.iter().sum(),
            fallbacks,
            forwarded,
            migrations: 0,
            dispatch_ns: 0,
            dispatch_wait_ns: 0,
            stats,
        })
    }

    /// Sort outputs, merge per-shard snapshots, fold the workers' fault
    /// accounting into the run, and assemble the telemetry plane's
    /// [`RunStats`] (hot-key sketches come from the dispatcher).
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        mut outs: Vec<WorkerOut>,
        partitioned: bool,
        retries: Vec<u64>,
        mut dropped_seqs: Vec<u64>,
        dropped_per_shard: Vec<u64>,
        sketches: Vec<TopK<Vec<u64>>>,
        dispatch_ns: u64,
        dispatch_wait_ns: u64,
    ) -> Result<ShardRun, ShardError> {
        let mut outputs: Vec<SeqOutput> = outs.iter().flat_map(|o| o.outputs.clone()).collect();
        outputs.sort_by_key(|o| o.seq);
        let initial = self.proto.snapshot();
        let merge_span = self.tracer.span("shard.merge");
        let m0 = self.tracer.now();
        let snapshots: Vec<&BTreeMap<String, Value>> =
            outs.iter().map(|o| &o.snapshot).collect();
        let merged = merge_states(&self.report, &initial, &snapshots)?;
        let merge_ns = self.tracer.now().saturating_duration_since(m0).as_nanos() as u64;
        merge_span.end();
        let per_shard_pkts = outs.iter().map(|o| o.pkts).collect();
        let busy_ns = outs.iter().map(|o| o.busy_ns).collect();
        let forwarded = outs.iter().map(|o| o.forwarded).sum();
        let shard_stats: Vec<ShardStats> =
            outs.iter_mut().filter_map(|o| o.stats.take()).collect();
        let (quarantined, quarantined_seqs, restarts, fallbacks) =
            self.fold_faults(&mut outs, &retries, &dropped_per_shard);
        dropped_seqs.sort_unstable();
        let stats = (!shard_stats.is_empty()).then(|| {
            RunStats::assemble(
                shard_stats,
                sketches,
                self.plan.dispatch(),
                dispatch_ns,
                merge_ns,
                &self.tracer,
            )
        });
        Ok(ShardRun {
            outputs,
            merged,
            per_shard_pkts,
            busy_ns,
            partitioned,
            quarantined,
            quarantined_seqs,
            dropped_seqs,
            restarts,
            retries: retries.iter().sum(),
            fallbacks,
            forwarded,
            migrations: 0,
            dispatch_ns,
            dispatch_wait_ns,
            stats,
        })
    }

    /// Drain the workers' quarantine/restart/fallback accounting,
    /// emitting nonzero per-shard supervision metrics along the way.
    /// Returns (records sorted by seq and capped, sorted seqs, restarts,
    /// fallbacks).
    fn fold_faults(
        &self,
        outs: &mut [WorkerOut],
        retries: &[u64],
        dropped_per_shard: &[u64],
    ) -> (Vec<QuarantineRecord>, Vec<u64>, u64, u64) {
        let mut records = Vec::new();
        let mut seqs = Vec::new();
        let mut restarts = 0u64;
        let mut fallbacks = 0u64;
        for (w, out) in outs.iter_mut().enumerate() {
            let q = out.quarantined_seqs.len() as u64;
            if q > 0 {
                self.tracer.count(&format!("shard.{w}.quarantined"), q);
            }
            if out.restarts > 0 {
                self.tracer.count(&format!("shard.{w}.restarts"), out.restarts);
            }
            records.append(&mut out.quarantined);
            seqs.append(&mut out.quarantined_seqs);
            restarts += out.restarts;
            fallbacks += out.fallbacks;
        }
        for (w, r) in retries.iter().enumerate() {
            if *r > 0 {
                self.tracer.count(&format!("shard.{w}.retries"), *r);
            }
        }
        for (w, d) in dropped_per_shard.iter().enumerate() {
            if *d > 0 {
                self.tracer.count(&format!("shard.{w}.dropped"), *d);
            }
        }
        if fallbacks > 0 {
            self.tracer.count("backend.fallbacks", fallbacks);
        }
        records.sort_by_key(|r| r.seq);
        records.truncate(self.policy.quarantine_cap);
        seqs.sort_unstable();
        (records, seqs, restarts, fallbacks)
    }
}

/// Merge per-shard state snapshots into one view, per the report's
/// verdicts.
fn merge_states(
    report: &ShardingReport,
    initial: &BTreeMap<String, Value>,
    shards: &[&BTreeMap<String, Value>],
) -> Result<BTreeMap<String, Value>, ShardError> {
    let mut merged = BTreeMap::new();
    for (name, init) in initial {
        let verdict = report.get(name).map(|s| s.verdict());
        let values: Vec<&Value> = shards.iter().filter_map(|s| s.get(name)).collect();
        let Some(first) = values.first() else {
            merged.insert(name.clone(), init.clone());
            continue;
        };
        let out = match verdict {
            Some(StateShard::PerFlow) => merge_partitioned_map(name, init, &values)?,
            Some(StateShard::LogOnly) => merge_log(name, init, &values)?,
            Some(StateShard::Shared) => (*first).clone(),
            // Read-only state and configs/consts (no verdict) must be
            // identical everywhere — drift means a placement bug.
            Some(StateShard::ReadOnly) | None => {
                if let Some(bad) = values.iter().find(|v| **v != *first) {
                    return Err(ShardError::Merge(format!(
                        "replicated `{name}` diverged across shards: {first:?} vs {bad:?}"
                    )));
                }
                (*first).clone()
            }
        };
        merged.insert(name.clone(), out);
    }
    Ok(merged)
}

/// Union a partitioned map's per-shard copies. Entries that changed
/// from their initial value must come from exactly one shard.
fn merge_partitioned_map(
    name: &str,
    init: &Value,
    values: &[&Value],
) -> Result<Value, ShardError> {
    let Value::Map(init_map) = init else {
        // A per-flow verdict on a non-map is unexpected; keep the first
        // copy rather than invent semantics.
        return Ok((*values[0]).clone());
    };
    let mut union = init_map.clone();
    for v in values {
        let Value::Map(m) = v else {
            return Err(ShardError::Merge(format!(
                "partitioned `{name}` is not a map on some shard"
            )));
        };
        for (k, val) in m {
            if init_map.get(k) == Some(val) {
                continue; // unchanged initial entry, owned by no one
            }
            match union.get(k) {
                Some(existing) if existing != val && init_map.get(k) != Some(existing) => {
                    return Err(ShardError::Merge(format!(
                        "partitioned `{name}` key {k:?} written by multiple shards"
                    )));
                }
                _ => {
                    union.insert(k.clone(), val.clone());
                }
            }
        }
    }
    // Entries deleted (map_remove) on their owning shard must not
    // survive via another shard's untouched initial copy.
    let mut removed: Vec<nfl_interp::ValueKey> = Vec::new();
    for k in init_map.keys() {
        if values.iter().any(|v| match v {
            Value::Map(m) => !m.contains_key(k),
            _ => false,
        }) {
            removed.push(k.clone());
        }
    }
    for k in removed {
        union.remove(&k);
    }
    Ok(Value::Map(union))
}

/// Merge log-only state by summing per-shard deltas over the initial
/// value (integers; integer-valued map entries likewise).
fn merge_log(name: &str, init: &Value, values: &[&Value]) -> Result<Value, ShardError> {
    match init {
        Value::Int(base) => {
            let mut total = *base;
            for v in values {
                let Value::Int(x) = v else {
                    return Err(ShardError::Merge(format!(
                        "log-only `{name}` is not an integer on some shard"
                    )));
                };
                total += x - base;
            }
            Ok(Value::Int(total))
        }
        Value::Map(init_map) => {
            let mut out = init_map.clone();
            for v in values {
                let Value::Map(m) = v else {
                    return Err(ShardError::Merge(format!(
                        "log-only `{name}` is not a map on some shard"
                    )));
                };
                for (k, val) in m {
                    let base = init_map.get(k).and_then(|b| b.as_int()).unwrap_or(0);
                    let Some(x) = val.as_int() else {
                        return Err(ShardError::Merge(format!(
                            "log-only `{name}` entry {k:?} is not an integer"
                        )));
                    };
                    let cur = out.get(k).and_then(|c| c.as_int()).unwrap_or(base);
                    out.insert(k.clone(), Value::Int(cur + (x - base)));
                }
            }
            Ok(Value::Map(out))
        }
        other => {
            // Non-numeric log state: all shards must agree or the merge
            // has no meaning.
            if let Some(bad) = values.iter().find(|v| **v != other) {
                return Err(ShardError::Merge(format!(
                    "log-only `{name}` has non-mergeable type and diverged: {bad:?}"
                )));
            }
            Ok(other.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_packet::{PacketGen, TcpFlags};

    fn engine_for(src: &str, shards: usize) -> ShardEngine {
        ShardEngine::from_source(&pipeline("rl", shards), src, Backend::Interp).unwrap()
    }

    fn pipeline(name: &str, shards: usize) -> Pipeline {
        match Pipeline::builder().name(name).shards(shards).build() {
            Ok(p) => p,
            Err(e) => unreachable!("builder: {e}"),
        }
    }

    const RATELIMITER_ISH: &str = r#"
        config MAX = 3;
        state buckets = map();
        state passed = 0;
        fn cb(pkt: packet) {
            let src = pkt.ip.src;
            if src not in buckets { buckets[src] = MAX; }
            if buckets[src] > 0 {
                buckets[src] = buckets[src] - 1;
                passed = passed + 1;
                send(pkt);
            } else {
                drop(pkt);
            }
        }
        fn main() { sniff(cb); }
    "#;

    #[test]
    fn threaded_matches_single_on_per_flow_nf() {
        let engine =
            ShardEngine::from_source(&pipeline("rl", 4), RATELIMITER_ISH, Backend::Interp)
                .unwrap();
        assert!(engine.plan().partitioned());
        let packets = PacketGen::new(42).batch(300);
        let sharded = engine.run_with(SliceSource::new(&packets), &RunConfig::threaded()).unwrap();
        let single = engine.run_with(SliceSource::new(&packets), &RunConfig::single()).unwrap();
        assert_eq!(sharded.output_signature(), single.output_signature());
        assert_eq!(sharded.merged, single.merged);
        assert_eq!(sharded.total_pkts(), 300);
        assert_eq!(sharded.per_shard_pkts.len(), 4);
    }

    #[test]
    fn sequential_matches_threaded() {
        let engine =
            ShardEngine::from_source(&pipeline("rl", 4), RATELIMITER_ISH, Backend::Interp)
                .unwrap();
        let packets = PacketGen::new(7).batch(200);
        let seq = engine.run_with(SliceSource::new(&packets), &RunConfig::sequential()).unwrap();
        let thr = engine.run_with(SliceSource::new(&packets), &RunConfig::threaded()).unwrap();
        assert_eq!(seq.output_signature(), thr.output_signature());
        assert_eq!(seq.merged, thr.merged);
        assert!(seq.partitioned);
    }

    #[test]
    fn global_lock_matches_single_on_shared_nf() {
        let src = r#"
            state next = 0;
            state m = map();
            fn cb(pkt: packet) {
                if pkt.ip.src in m { send(pkt); } else {
                    m[pkt.ip.src] = next;
                    next = next + 1;
                    drop(pkt);
                }
            }
            fn main() { sniff(cb); }
        "#;
        let engine = ShardEngine::from_source(&pipeline("alloc", 4), src, Backend::Interp).unwrap();
        assert!(!engine.plan().partitioned());
        let packets = PacketGen::new(3).batch(250);
        let sharded = engine.run_with(SliceSource::new(&packets), &RunConfig::threaded()).unwrap();
        let single = engine.run_with(SliceSource::new(&packets), &RunConfig::single()).unwrap();
        assert_eq!(sharded.output_signature(), single.output_signature());
        assert_eq!(sharded.merged, single.merged);
        assert!(!sharded.partitioned);
    }

    #[test]
    fn log_counters_delta_sum_across_shards() {
        let engine =
            ShardEngine::from_source(&pipeline("rl", 4), RATELIMITER_ISH, Backend::Interp)
                .unwrap();
        let packets = PacketGen::new(9).batch(120);
        let sharded = engine.run_with(SliceSource::new(&packets), &RunConfig::threaded()).unwrap();
        let single = engine.run_with(SliceSource::new(&packets), &RunConfig::single()).unwrap();
        // `passed` is log-only: per-shard copies must sum to the
        // single-threaded count.
        assert_eq!(sharded.merged.get("passed"), single.merged.get("passed"));
        let sent = sharded.outputs.iter().filter(|o| !o.dropped).count() as i64;
        assert_eq!(sharded.merged.get("passed"), Some(&Value::Int(sent)));
    }

    #[test]
    fn map_remove_does_not_resurrect_across_shards() {
        // Every packet toggles its flow's entry: insert on first sight,
        // remove on second. With entries created and removed on the
        // owning shard, the merged map must equal the single-threaded
        // result (no resurrection from other shards' initial copies).
        let src = r#"
            state m = map();
            fn cb(pkt: packet) {
                let k = pkt.ip.src;
                if k in m { map_remove(m, k); drop(pkt); } else { m[k] = 1; send(pkt); }
            }
            fn main() { sniff(cb); }
        "#;
        let engine = ShardEngine::from_source(&pipeline("toggle", 4), src, Backend::Interp).unwrap();
        let packets = PacketGen::new(5).batch(300);
        let sharded = engine.run_with(SliceSource::new(&packets), &RunConfig::threaded()).unwrap();
        let single = engine.run_with(SliceSource::new(&packets), &RunConfig::single()).unwrap();
        assert_eq!(sharded.merged, single.merged);
        assert_eq!(sharded.output_signature(), single.output_signature());
    }

    #[test]
    fn tracer_records_per_shard_metrics() {
        let tracer = Tracer::enabled();
        let p = match Pipeline::builder()
            .name("rl")
            .shards(2)
            .tracer(tracer.clone())
            .build()
        {
            Ok(p) => p,
            Err(e) => unreachable!("builder: {e}"),
        };
        let engine = ShardEngine::from_source(&p, RATELIMITER_ISH, Backend::Interp).unwrap();
        let packets = PacketGen::new(1).batch(50);
        engine.run_with(SliceSource::new(&packets), &RunConfig::threaded()).unwrap();
        let metrics = tracer.metrics();
        let total: u64 = (0..2)
            .filter_map(|w| metrics.counter(&format!("shard.{w}.pkts")))
            .sum();
        assert_eq!(total, 50);
    }

    /// The chaos oracle: everything the faulted run did not exclude
    /// (quarantine or dispatch drop) must match, positionally, a
    /// fault-free reference run over the surviving packets — outputs
    /// and merged state alike.
    fn assert_matches_reference(engine: &ShardEngine, packets: &[Packet], run: &ShardRun) {
        let excluded = run.excluded_seqs();
        let kept: Vec<Packet> = packets
            .iter()
            .enumerate()
            .filter(|(i, _)| excluded.binary_search(&(*i as u64)).is_err())
            .map(|(_, p)| p.clone())
            .collect();
        let reference = engine.run_with(SliceSource::new(&kept), &RunConfig::single()).unwrap();
        assert_eq!(run.outputs.len(), reference.outputs.len());
        for (got, want) in run.outputs.iter().zip(&reference.outputs) {
            assert_eq!(got.outputs, want.outputs);
            assert_eq!(got.dropped, want.dropped);
        }
        assert_eq!(run.merged, reference.merged);
    }

    #[test]
    fn injected_panic_is_quarantined_not_fatal() {
        // Before supervision this run died with `ShardError::Thread`;
        // now the packet is quarantined and everything else proceeds.
        let engine =
            ShardEngine::from_source(&pipeline("rl", 4), RATELIMITER_ISH, Backend::Interp)
                .unwrap();
        let packets = PacketGen::new(42).batch(300);
        let faults = FaultPlan::parse("panic@1:3").unwrap();
        let run = engine.run_with(SliceSource::new(&packets), &RunConfig::threaded().with_faults(faults.clone())).unwrap();
        assert_eq!(run.quarantined_seqs.len(), 1);
        assert_eq!(run.quarantined.len(), 1);
        assert_eq!(run.quarantined[0].shard, 1);
        assert!(run.quarantined[0].error.contains("injected fault: panic"));
        assert_eq!(run.offered(), 300);
        assert_matches_reference(&engine, &packets, &run);
    }

    #[test]
    fn organic_mid_fire_error_rolls_back_partial_writes() {
        // `total` is bumped before the missing-key read faults; without
        // journal rollback the counter would leak one per bad packet.
        let src = r#"
            state total = 0;
            state m = map();
            fn cb(pkt: packet) {
                total = total + 1;
                if m[pkt.ip.src] > 0 { send(pkt); } else { drop(pkt); }
            }
            fn main() { sniff(cb); }
        "#;
        let engine =
            ShardEngine::from_source(&pipeline("leak", 1), src, Backend::Interp).unwrap();
        let packets = PacketGen::new(8).batch(10);
        let run = engine.run_with(SliceSource::new(&packets), &RunConfig::single()).unwrap();
        assert_eq!(run.total_pkts(), 0);
        assert_eq!(run.quarantined_seqs.len(), 10);
        assert_eq!(run.offered(), 10);
        assert_eq!(run.merged.get("total"), Some(&Value::Int(0)));
        // Every third consecutive failure trips a supervised restart.
        assert_eq!(run.restarts, 3);
    }

    #[test]
    fn consecutive_injected_errors_trip_a_restart() {
        let engine =
            ShardEngine::from_source(&pipeline("rl", 2), RATELIMITER_ISH, Backend::Interp)
                .unwrap();
        let packets = PacketGen::new(7).batch(200);
        let faults = FaultPlan::parse("err@0:0,err@0:1,err@0:2").unwrap();
        let run = engine.run_with(SliceSource::new(&packets), &RunConfig::threaded().with_faults(faults.clone())).unwrap();
        assert_eq!(run.quarantined_seqs.len(), 3);
        assert_eq!(run.restarts, 1);
        assert_matches_reference(&engine, &packets, &run);
    }

    #[test]
    fn compiled_error_falls_back_to_model_and_continues() {
        let engine =
            ShardEngine::from_source(&pipeline("rl", 2), RATELIMITER_ISH, Backend::Compiled)
                .unwrap();
        let packets = PacketGen::new(11).batch(120);
        let faults = FaultPlan::parse("err@0:2,err@1:5").unwrap();
        let run = engine.run_with(SliceSource::new(&packets), &RunConfig::threaded().with_faults(faults.clone())).unwrap();
        // The compiled engine's injected errors retried on the model
        // evaluator: nothing quarantined, outputs exactly fault-free.
        assert_eq!(run.fallbacks, 2);
        assert!(run.quarantined_seqs.is_empty());
        let clean = engine.run_with(SliceSource::new(&packets), &RunConfig::threaded()).unwrap();
        assert_eq!(run.output_signature(), clean.output_signature());
        assert_eq!(run.merged, clean.merged);
    }

    #[test]
    fn global_lock_quarantine_advances_the_ticket() {
        // A quarantined seq under the ticket lock must hand the turn to
        // the next seq or the run deadlocks.
        let src = r#"
            state next = 0;
            state m = map();
            fn cb(pkt: packet) {
                if pkt.ip.src in m { send(pkt); } else {
                    m[pkt.ip.src] = next;
                    next = next + 1;
                    drop(pkt);
                }
            }
            fn main() { sniff(cb); }
        "#;
        let engine =
            ShardEngine::from_source(&pipeline("alloc", 4), src, Backend::Interp).unwrap();
        assert!(!engine.plan().partitioned());
        let packets = PacketGen::new(3).batch(100);
        // Round-robin: shard 1's packet 0 is seq 1, shard 2's packet 5
        // is seq 2 + 4*5 = 22.
        let faults = FaultPlan::parse("panic@1:0,err@2:5").unwrap();
        let run = engine.run_with(SliceSource::new(&packets), &RunConfig::threaded().with_faults(faults.clone())).unwrap();
        assert_eq!(run.quarantined_seqs, vec![1, 22]);
        assert_matches_reference(&engine, &packets, &run);
        let seq = engine.run_with(SliceSource::new(&packets), &RunConfig::sequential().with_faults(faults.clone())).unwrap();
        assert_eq!(run.output_signature(), seq.output_signature());
        assert_eq!(run.merged, seq.merged);
    }

    #[test]
    fn ring_overflow_drops_past_deadline_with_accounting() {
        let engine =
            ShardEngine::from_source(&pipeline("rl", 2), RATELIMITER_ISH, Backend::Interp)
                .unwrap();
        let packets = PacketGen::new(5).batch(100);
        // The default overflow burst outlasts the injected deadline:
        // the packet drops, with retry accounting.
        let plan = FaultPlan::parse("ring-overflow@0:1").unwrap();
        let run = engine.run_with(SliceSource::new(&packets), &RunConfig::threaded().with_faults(plan.clone())).unwrap();
        assert_eq!(run.dropped_seqs.len(), 1);
        assert_eq!(run.offered(), 100);
        assert!(run.retries > u64::from(INJECTED_RING_DEADLINE));
        assert_matches_reference(&engine, &packets, &run);
        // A bounded burst is absorbed by backoff retries instead.
        let plan = FaultPlan::parse("ring-overflow@0:1:64").unwrap();
        let run = engine.run_with(SliceSource::new(&packets), &RunConfig::threaded().with_faults(plan.clone())).unwrap();
        assert!(run.dropped_seqs.is_empty());
        assert!(run.retries >= 64);
        assert_eq!(run.total_pkts(), 100);
    }

    /// A source that yields a few packets then fails, for the
    /// mid-stream error path.
    struct FailingSource {
        left: usize,
    }

    impl WorkloadSource for FailingSource {
        type Item = Packet;

        fn next_batch(
            &mut self,
            out: &mut Vec<Packet>,
            max: usize,
        ) -> Result<usize, nf_support::workload::WorkloadError> {
            if self.left == 0 {
                return Err(nf_support::workload::WorkloadError::at(
                    640,
                    "truncated record",
                ));
            }
            let n = self.left.min(max);
            let gen = PacketGen::new(9).batch(n);
            out.extend(gen);
            self.left -= n;
            Ok(n)
        }
    }

    #[test]
    fn batch_size_does_not_change_behaviour() {
        let engine = engine_for(RATELIMITER_ISH, 4);
        let packets = PacketGen::new(13).batch(400);
        let base = engine
            .run_with(SliceSource::new(&packets), &RunConfig::single())
            .unwrap();
        for size in [1usize, 7, 32, 256] {
            let batch = BatchConfig { size, ..BatchConfig::default() };
            for mode in [RunMode::Threaded, RunMode::Sequential] {
                let cfg = RunConfig { mode, ..RunConfig::threaded().with_batch(batch) };
                let run = engine.run_with(SliceSource::new(&packets), &cfg).unwrap();
                assert_eq!(
                    run.output_signature(),
                    base.output_signature(),
                    "batch {size} {mode:?}"
                );
                assert_eq!(run.merged, base.merged, "batch {size} {mode:?}");
                assert_eq!(run.total_pkts(), 400);
                assert_eq!(run.forwarded, base.forwarded);
            }
        }
    }

    #[test]
    fn rebalancing_migrates_new_flows_and_preserves_outputs() {
        let engine = engine_for(RATELIMITER_ISH, 4);
        // One heavy flow interleaved with a stream of fresh sources:
        // the heavy hitter keeps its shard hot, so new flows hashing
        // there get pinned elsewhere.
        let mut packets = Vec::new();
        for i in 0..600u32 {
            let src = if i % 2 == 0 { 0x0a00_0001 } else { 0x2000_0000 + i };
            packets.push(Packet::tcp(src, 1000, 0x0a00_00fe, 80, TcpFlags(TcpFlags::SYN)));
        }
        let single = engine
            .run_with(SliceSource::new(&packets), &RunConfig::single())
            .unwrap();
        let batch = BatchConfig { size: 32, high_water: 1, ..BatchConfig::default() };
        let cfg = RunConfig::sequential().with_batch(batch).with_rebalance(true);
        let run = engine.run_with(SliceSource::new(&packets), &cfg).unwrap();
        assert!(run.migrations > 0, "skewed load should migrate new flows");
        assert_eq!(run.fault_summary().migrations, run.migrations);
        assert_eq!(run.output_signature(), single.output_signature());
        assert_eq!(run.merged, single.merged);
        // Rebalancing in the threaded dispatcher preserves the same
        // invariant (divert timing is racy, placement is not observable).
        let tcfg = RunConfig::threaded().with_batch(batch).with_rebalance(true);
        let trun = engine.run_with(SliceSource::new(&packets), &tcfg).unwrap();
        assert_eq!(trun.output_signature(), single.output_signature());
        assert_eq!(trun.merged, single.merged);
    }

    #[test]
    fn keep_outputs_off_still_counts_forwarded() {
        let engine = engine_for(RATELIMITER_ISH, 2);
        let packets = PacketGen::new(5).batch(300);
        let kept = engine
            .run_with(SliceSource::new(&packets), &RunConfig::threaded())
            .unwrap();
        let mut cfg = RunConfig::threaded();
        cfg.keep_outputs = false;
        let lean = engine.run_with(SliceSource::new(&packets), &cfg).unwrap();
        assert!(lean.outputs.is_empty());
        assert_eq!(lean.total_pkts(), kept.total_pkts());
        let kept_forwarded =
            kept.outputs.iter().filter(|o| !o.dropped).count() as u64;
        assert_eq!(kept.forwarded, kept_forwarded);
        assert_eq!(lean.forwarded, kept_forwarded);
    }

    #[test]
    fn workload_error_surfaces_mid_run() {
        let engine = engine_for(RATELIMITER_ISH, 2);
        for cfg in [RunConfig::threaded(), RunConfig::sequential()] {
            let err = engine
                .run_with(FailingSource { left: 70 }, &cfg)
                .unwrap_err();
            match err {
                ShardError::Workload(m) => {
                    assert!(m.contains("byte offset 640"), "{m}")
                }
                other => panic!("expected workload error, got {other:?}"),
            }
        }
    }
}
