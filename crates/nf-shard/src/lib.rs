//! # nf-shard — sharded packet-processing runtime
//!
//! Executes an NF across `N` worker shards through one of three
//! [`Backend`]s — the NFL interpreter, the synthesized model
//! evaluator, or the model compiled to a flattened dispatch engine by
//! `nf-compile` — with state placed according to `nfl-lint`'s
//! [`ShardingReport`](nfl_lint::ShardingReport):
//!
//! * **per-flow** maps are partitioned — the lint-derived
//!   [`DispatchKey`](nfl_lint::DispatchKey) hashes exactly the packet
//!   fields that key the map (bare `ip.src` for a rate limiter, a
//!   direction-canonicalised 4-tuple for a firewall's pinholes), so
//!   every access to an entry happens on the shard that owns it;
//! * **read-only** state replicates to every shard at startup;
//! * **log-only** counters keep independent per-shard copies that are
//!   delta-summed after the run;
//! * **shared** state (or a per-flow map whose key shape could not be
//!   resolved) drops the NF to a single instance behind a ticket-
//!   ordered global lock — slower, but bit-identical to the
//!   single-threaded run.
//!
//! Workers are `std::thread`s fed over the `nf_support::spsc` rings;
//! per-shard metrics (`shard.N.pkts` counters, `shard.N.ring.wait.ns`
//! and `lock.wait.ns` histograms) flow into the session's `nf-trace`
//! tracer. There is no work stealing by design: moving a packet off
//! its hash-assigned shard would abandon the flow-state locality the
//! dispatch exists to provide.
//!
//! The runtime is **supervised** ([`supervise`]): each packet's eval is
//! isolated behind `catch_unwind` with journal-based state rollback, a
//! failing packet is quarantined instead of aborting the run, a shard
//! that fails repeatedly is rebuilt with state handoff, and a
//! deterministic [`nf_support::fault`] plan can inject
//! panic/error/delay/ring-overflow/garbage faults at chosen
//! `(shard, nth-packet)` points — the chaos differential suite's
//! substrate.
//!
//! The runtime is also **observable** ([`telemetry`]): workers record
//! eval latency, ring occupancy, and a bounded per-packet flight
//! recorder into private buffers merged at join, the dispatcher
//! profiles hot dispatch keys with a space-saving sketch, and the run
//! surfaces it all as `shard.N.*` histograms/labels (the `nfactor top`
//! live view) and a [`RunStats`] document (`--stats-json`,
//! `--flight-out`). Telemetry never changes what a run computes.
//!
//! Packets reach the engine through a pull-based
//! [`WorkloadSource`](nf_support::workload::WorkloadSource) — an
//! in-memory slice, the seeded generator, or a `.nfw` binary trace —
//! dispatched in configurable batches ([`BatchConfig`]) under one
//! unified entry point, [`ShardEngine::run_with`]:
//!
//! ```no_run
//! use nfactor_core::Pipeline;
//! use nf_shard::{Backend, RunConfig, ShardEngine, SliceSource};
//!
//! let pipeline = Pipeline::builder().name("rl").shards(4).build()?;
//! let engine = ShardEngine::from_source(&pipeline, "...nfl source...", Backend::Interp)?;
//! let packets = nf_packet::PacketGen::new(1).batch(1000);
//! let run = engine.run_with(SliceSource::new(&packets), &RunConfig::threaded())?;
//! assert_eq!(run.total_pkts(), 1000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod dispatch;
pub mod engine;
pub mod plan;
pub mod supervise;
pub mod telemetry;

pub use dispatch::{dispatch_hash, dispatch_values, shard_of};
pub use engine::{
    Backend, BatchConfig, FaultSummary, RunConfig, RunMode, SeqOutput, ShardEngine, ShardError,
    ShardRun,
};
pub use plan::{Placement, PlanMode, ShardPlan};
pub use supervise::{panic_message, quarantine_to_json, QuarantineRecord, SupervisorPolicy};
pub use telemetry::{
    render_top, FlightEvent, FlightOutcome, RunStats, ShardStats, TelemetryConfig,
};
pub use nf_support::workload::{SliceSource, WorkloadError, WorkloadSource};
