//! From verdicts to placement: turning a [`ShardingReport`] into an
//! executable [`ShardPlan`].
//!
//! The lint says *what kind* of state each variable is; the plan says
//! *where it lives* when the NF runs on `n` shards:
//!
//! | verdict    | placement                                          |
//! |------------|----------------------------------------------------|
//! | per-flow   | partitioned — each shard owns the entries its      |
//! |            | dispatch hash steers to it                         |
//! | read-only  | replicated — copied into every shard at startup    |
//! | log-only   | per-shard — independent copies, merged offline     |
//! | shared     | global — one copy behind an ordered lock           |
//!
//! The plan also combines the per-map [`DispatchKey`]s into one NF-wide
//! dispatch. Hashing a *subset* of a map's key fields is always sound
//! (the shard stays a function of the entry key), so plain keys combine
//! by field intersection; a symmetric key must be used exactly as
//! derived, so any mix of symmetric with other shapes falls back to the
//! global lock, as does any per-flow map whose key shape the lint could
//! not resolve.

use nf_packet::Field;
use nfl_lint::sharding::is_flow_field;
use nfl_lint::{DispatchKey, ShardingReport, StateShard};
use std::collections::BTreeSet;

/// Where one state variable lives at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Per-flow map: entries partitioned across shards by the dispatch
    /// hash.
    Partitioned,
    /// Read-only: replicated into every shard at startup.
    Replicated,
    /// Log-only: independent per-shard copies, aggregated after the
    /// run.
    PerShardMerged,
    /// Shared: a single copy behind the global ordered lock.
    GlobalLocked,
}

impl Placement {
    /// Lowercase label for tables.
    pub fn as_str(self) -> &'static str {
        match self {
            Placement::Partitioned => "partitioned",
            Placement::Replicated => "replicated",
            Placement::PerShardMerged => "per-shard",
            Placement::GlobalLocked => "global-lock",
        }
    }

    fn of(verdict: StateShard) -> Placement {
        match verdict {
            StateShard::PerFlow => Placement::Partitioned,
            StateShard::ReadOnly => Placement::Replicated,
            StateShard::LogOnly => Placement::PerShardMerged,
            StateShard::Shared => Placement::GlobalLocked,
        }
    }
}

/// How the engine executes the NF across shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanMode {
    /// Every shard runs independently; packets are steered by the
    /// dispatch key.
    Partitioned(DispatchKey),
    /// At least one state needs cross-shard coupling: one program
    /// instance behind a lock, packets processed in arrival order.
    GlobalLock,
}

/// The executable placement decision for one NF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    states: Vec<(String, StateShard, Placement)>,
    mode: PlanMode,
    /// Why the plan fell back to the global lock (empty when
    /// partitioned).
    fallback_reason: String,
}

/// The dispatch used when the NF has no per-flow map at all (stateless
/// or log-only NFs): any stable distribution is correct, so spread load
/// over the full flow tuple.
fn full_tuple() -> DispatchKey {
    DispatchKey::new(
        vec![
            Field::IpSrc,
            Field::IpDst,
            Field::IpProto,
            Field::TcpSport,
            Field::TcpDport,
        ],
        false,
    )
}

impl ShardPlan {
    /// Derive the plan for `report`. Infallible: un-partitionable NFs
    /// get a correct (if slower) global-lock plan, never an error.
    pub fn from_report(report: &ShardingReport) -> ShardPlan {
        let states: Vec<(String, StateShard, Placement)> = report
            .states()
            .iter()
            .map(|s| (s.var().to_string(), s.verdict(), Placement::of(s.verdict())))
            .collect();

        let mut fallback = String::new();
        if !report.shardable() {
            let culprit = report
                .states()
                .iter()
                .find(|s| s.verdict() == StateShard::Shared)
                .map(|s| s.var().to_string())
                .unwrap_or_default();
            fallback = format!("state `{culprit}` is shared across flows");
        }

        let mode = if fallback.is_empty() {
            match combine_dispatch(report) {
                Ok(d) => PlanMode::Partitioned(d),
                Err(why) => {
                    fallback = why;
                    PlanMode::GlobalLock
                }
            }
        } else {
            PlanMode::GlobalLock
        };

        // Under the global lock every state is effectively global; keep
        // the per-verdict placements in the table (they say what *would*
        // partition) but the mode is what the engine obeys.
        ShardPlan {
            states,
            mode,
            fallback_reason: fallback,
        }
    }

    /// Per-state placements, in declaration order.
    pub fn states(&self) -> &[(String, StateShard, Placement)] {
        &self.states
    }

    /// The execution mode.
    pub fn mode(&self) -> &PlanMode {
        &self.mode
    }

    /// The dispatch key, when the plan partitions.
    pub fn dispatch(&self) -> Option<&DispatchKey> {
        match &self.mode {
            PlanMode::Partitioned(d) => Some(d),
            PlanMode::GlobalLock => None,
        }
    }

    /// Whether packets fan out across shards without locking.
    pub fn partitioned(&self) -> bool {
        matches!(self.mode, PlanMode::Partitioned(_))
    }

    /// Why the plan is global-locked (empty when partitioned).
    pub fn fallback_reason(&self) -> &str {
        &self.fallback_reason
    }

    /// Human-readable placement table for the CLI.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        match &self.mode {
            PlanMode::Partitioned(d) => {
                let _ = writeln!(out, "mode: partitioned [dispatch: {}]", d.render());
            }
            PlanMode::GlobalLock => {
                let _ = writeln!(out, "mode: global-lock ({})", self.fallback_reason);
            }
        }
        if self.states.is_empty() {
            let _ = writeln!(out, "  (no state)");
            return out;
        }
        let width = self.states.iter().map(|(v, _, _)| v.len()).max().unwrap_or(0);
        for (var, verdict, placement) in &self.states {
            let _ = writeln!(
                out,
                "  {var:<width$}  {:<9}  {}",
                verdict.as_str(),
                placement.as_str(),
            );
        }
        out
    }
}

/// Combine the per-map dispatch keys into one NF-wide dispatch, or say
/// why that is impossible.
fn combine_dispatch(report: &ShardingReport) -> Result<DispatchKey, String> {
    let mut plain: Option<BTreeSet<Field>> = None;
    let mut symmetric: Option<DispatchKey> = None;
    let mut any_map = false;
    for s in report.states() {
        if s.verdict() != StateShard::PerFlow || s.key_sites() == 0 {
            continue;
        }
        any_map = true;
        let Some(d) = s.dispatch() else {
            return Err(format!(
                "per-flow map `{}` has no derivable dispatch key",
                s.var()
            ));
        };
        if d.symmetric() {
            match &symmetric {
                None => symmetric = Some(d.clone()),
                Some(prev) if prev == d => {}
                Some(_) => {
                    return Err(format!(
                        "map `{}` needs a different symmetric dispatch",
                        s.var()
                    ));
                }
            }
        } else {
            let fields: BTreeSet<Field> = d.fields().iter().copied().collect();
            plain = Some(match plain {
                None => fields,
                Some(acc) => acc.intersection(&fields).copied().collect(),
            });
        }
    }
    if !any_map {
        return Ok(full_tuple());
    }
    match (plain, symmetric) {
        (None, Some(sym)) => Ok(sym),
        (Some(fields), None) => {
            if fields.is_empty() {
                return Err("per-flow maps share no common dispatch field".into());
            }
            // Canonical field order keeps the combined key stable
            // whatever order the maps were declared in.
            let ordered: Vec<Field> = Field::ALL
                .iter()
                .copied()
                .filter(|f| is_flow_field(*f) && fields.contains(f))
                .collect();
            Ok(DispatchKey::new(ordered, false))
        }
        (Some(_), Some(_)) => {
            Err("mixing symmetric and plain per-flow maps cannot share one dispatch".into())
        }
        (None, None) => Ok(full_tuple()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfl_lint::lint_source;

    fn plan_of(src: &str) -> ShardPlan {
        ShardPlan::from_report(&lint_source("t", src).unwrap().sharding)
    }

    #[test]
    fn per_flow_nf_partitions() {
        let p = plan_of(
            r#"
            state buckets = map();
            fn cb(pkt: packet) {
                let src = pkt.ip.src;
                if src not in buckets { buckets[src] = 1; }
                if buckets[src] > 0 { send(pkt); }
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert!(p.partitioned());
        assert_eq!(p.dispatch().unwrap().fields(), &[Field::IpSrc]);
        assert!(p.render_table().contains("partitioned"));
    }

    #[test]
    fn shared_state_forces_global_lock() {
        let p = plan_of(
            r#"
            state next = 0;
            state m = map();
            fn cb(pkt: packet) {
                if next in m { drop(pkt); } else { m[next] = 1; send(pkt); }
                next = next + 1;
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert!(!p.partitioned());
        assert!(p.fallback_reason().contains("shared"), "{}", p.fallback_reason());
        assert!(p.render_table().contains("global-lock"));
    }

    #[test]
    fn underivable_dispatch_forces_global_lock() {
        let p = plan_of(
            r#"
            state m = map();
            fn cb(pkt: packet) {
                let k = hash(pkt.ip.src) % 64;
                m[k] = 1;
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert!(!p.partitioned());
        assert!(
            p.fallback_reason().contains("no derivable dispatch"),
            "{}",
            p.fallback_reason()
        );
    }

    #[test]
    fn plain_keys_combine_by_intersection() {
        // One map keyed by (src, sport), another by src alone: src is
        // in both entry keys, so dispatching on src alone is sound for
        // both.
        let p = plan_of(
            r#"
            state a = map();
            state b = map();
            fn cb(pkt: packet) {
                a[(pkt.ip.src, pkt.tcp.sport)] = 1;
                b[pkt.ip.src] = 1;
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert!(p.partitioned());
        assert_eq!(p.dispatch().unwrap().fields(), &[Field::IpSrc]);
    }

    #[test]
    fn disjoint_plain_keys_force_global_lock() {
        let p = plan_of(
            r#"
            state a = map();
            state b = map();
            fn cb(pkt: packet) {
                a[pkt.ip.src] = 1;
                b[pkt.tcp.dport] = 1;
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert!(!p.partitioned());
        assert!(
            p.fallback_reason().contains("no common dispatch field"),
            "{}",
            p.fallback_reason()
        );
    }

    #[test]
    fn stateless_nf_uses_full_tuple() {
        let p = plan_of(
            r#"
            fn cb(pkt: packet) { send(pkt); }
            fn main() { sniff(cb); }
        "#,
        );
        assert!(p.partitioned());
        assert_eq!(p.dispatch().unwrap().fields().len(), 5);
    }
}
