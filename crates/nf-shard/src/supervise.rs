//! The supervision layer: quarantine records, restart/backoff policy,
//! and the panic-capture plumbing the engine's per-packet isolation is
//! built on.
//!
//! A fault-tolerant shard runtime has three jobs this module supports:
//!
//! 1. **Contain** — a packet whose eval panics or errors must not take
//!    the run down. The engine wraps each eval in
//!    [`quiet_catch_unwind`] (a `catch_unwind` whose panic output is
//!    suppressed, because an *injected* or *contained* panic is not an
//!    emergency worth a stderr backtrace) and rolls partial state
//!    writes back from a pre-image journal.
//! 2. **Account** — every contained failure becomes a
//!    [`QuarantineRecord`] carrying the packet, the error, and where it
//!    happened. Records are bounded by
//!    [`SupervisorPolicy::quarantine_cap`] (the *count* of failures is
//!    always exact; only the retained records are capped) and render to
//!    JSON whose `trace` form `nfactor run --workload` can replay
//!    directly — a quarantined packet is a ready-made fuzz/ddmin input.
//! 3. **Recover** — after [`SupervisorPolicy::restart_after`]
//!    consecutive failures on one shard the engine rebuilds that
//!    shard's evaluator from scratch and hands the persistent state
//!    snapshot over, clearing any derived caches a misbehaving packet
//!    may have corrupted.

use nf_packet::{Field, Packet};
use nf_support::json::{ToJson, Value as Json};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

/// Knobs for the shard supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Rebuild a shard's evaluator (with state handoff) after this many
    /// *consecutive* quarantined packets.
    pub restart_after: u32,
    /// Retain at most this many full quarantine records per run; the
    /// quarantined *count* is always exact.
    pub quarantine_cap: usize,
    /// If set, a dispatch that still cannot enqueue after this many
    /// backoff attempts drops the packet with accounting instead of
    /// retrying forever. `None` (the default) retries indefinitely —
    /// under real load a draining worker always makes room, and
    /// deterministic tests must not drop packets by timing accident.
    pub ring_deadline: Option<u32>,
}

impl Default for SupervisorPolicy {
    fn default() -> SupervisorPolicy {
        SupervisorPolicy {
            restart_after: 3,
            quarantine_cap: 64,
            ring_deadline: None,
        }
    }
}

/// The retry deadline applied to an *injected* ring-overflow fault when
/// the policy sets none: large enough that a plan exercising
/// retry-with-backoff (small forced-full count) never drops, small
/// enough that the default overflow injection
/// (`fault::DEFAULT_OVERFLOW_ATTEMPTS`) reliably exercises
/// drop-with-accounting.
pub const INJECTED_RING_DEADLINE: u32 = 4096;

/// One contained per-packet failure.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineRecord {
    /// Global arrival sequence number of the failing packet.
    pub seq: u64,
    /// The shard on which the failure happened.
    pub shard: usize,
    /// Which backend was evaluating (`"interp"`, `"model"`,
    /// `"compiled"`).
    pub backend: &'static str,
    /// The captured error or panic message.
    pub error: String,
    /// The offending packet, exactly as the worker saw it.
    pub packet: Packet,
}

/// A packet as a `field path -> value` JSON object — the same shape
/// `nfactor run --workload` accepts in a `trace` array.
pub(crate) fn packet_to_json(pkt: &Packet) -> Json {
    let mut fields = Vec::new();
    for f in Field::ALL {
        if let Ok(v) = pkt.get(f) {
            fields.push((f.path().to_string(), Json::Int(v as i64)));
        }
    }
    Json::Object(fields)
}

impl ToJson for QuarantineRecord {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("seq".into(), Json::Int(self.seq as i64)),
            ("shard".into(), Json::Int(self.shard as i64)),
            ("backend".into(), Json::Str(self.backend.into())),
            ("error".into(), Json::Str(self.error.clone())),
            ("packet".into(), packet_to_json(&self.packet)),
        ])
    }
}

/// Render a run's quarantine as one JSON document (`nfactor run
/// --quarantine-out`). The top-level `trace` key holds the quarantined
/// packets in workload-trace form, so the dump itself is a valid
/// `--workload` file: feeding it back replays exactly the packets that
/// failed, which is the input `nf-fuzz`'s ddmin minimizer wants.
pub fn quarantine_to_json(records: &[QuarantineRecord], total: u64) -> Json {
    Json::Object(vec![
        ("quarantined".into(), Json::Int(total as i64)),
        (
            "records".into(),
            Json::Array(records.iter().map(|r| r.to_json()).collect()),
        ),
        (
            "trace".into(),
            Json::Array(records.iter().map(|r| packet_to_json(&r.packet)).collect()),
        ),
    ])
}

/// Bounded quarantine buffer: retains up to `cap` full records while
/// tracking the arrival seq of *every* push exactly (the seqs are what
/// accounting and the chaos oracle need; the full records are for
/// humans and replay, so capping them bounds memory without losing the
/// count).
#[derive(Debug, Default)]
pub(crate) struct Quarantine {
    records: Vec<QuarantineRecord>,
    seqs: Vec<u64>,
    cap: usize,
}

impl Quarantine {
    pub(crate) fn new(cap: usize) -> Quarantine {
        Quarantine {
            records: Vec::new(),
            seqs: Vec::new(),
            cap,
        }
    }

    pub(crate) fn push(&mut self, r: QuarantineRecord) {
        self.seqs.push(r.seq);
        if self.records.len() < self.cap {
            self.records.push(r);
        }
    }

    pub(crate) fn into_parts(self) -> (Vec<QuarantineRecord>, Vec<u64>) {
        (self.records, self.seqs)
    }
}

/// Extract a readable message from a panic payload (the satellite fix
/// for the old `"worker panicked"` join-site message that discarded
/// both the payload and the shard index).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

thread_local! {
    /// Set while a supervised eval runs, so the process-wide panic hook
    /// knows a panic here is contained and should not spam stderr.
    static SUPPRESS_PANIC_OUTPUT: std::cell::Cell<bool> =
        const { std::cell::Cell::new(false) };
}

static QUIET_HOOK: Once = Once::new();

/// Run `f`, catching any panic and returning its message.
///
/// While `f` runs, this thread's panics print nothing: a process-wide
/// hook (installed once, delegating to whatever hook was registered
/// before for every *other* thread/context) checks a thread-local
/// suppression flag. Contained panics are reported through the
/// quarantine, not the console.
pub(crate) fn quiet_catch_unwind<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    QUIET_HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(|s| s.get()) {
                prev(info);
            }
        }));
    });
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    result.map_err(|p| panic_message(p.as_ref()))
}

/// Deterministically corrupt a packet in flight (the `garbage` fault):
/// every field is overwritten from a seeded SplitMix64 stream, clamped
/// to its domain. The worker quarantines the packet before eval, so the
/// exact corruption only matters for the quarantine record.
pub(crate) fn scramble_packet(pkt: &mut Packet, seed: u64) {
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0xD1B5_4A32_D192_ED03);
    for f in Field::ALL {
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 29;
        let _ = pkt.set(f, x % (f.max_value() + 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_packet::PacketGen;

    #[test]
    fn panic_messages_survive_both_payload_shapes() {
        let e = quiet_catch_unwind(|| -> () { panic!("static str") }).unwrap_err();
        assert_eq!(e, "static str");
        let e =
            quiet_catch_unwind(|| -> () { panic!("formatted {}", 7) }).unwrap_err();
        assert_eq!(e, "formatted 7");
        assert_eq!(quiet_catch_unwind(|| 41 + 1), Ok(42));
    }

    #[test]
    fn quarantine_caps_records_but_counts_everything() {
        let pkt = PacketGen::new(1).batch(1).pop().unwrap();
        let mut q = Quarantine::new(2);
        for seq in 0..5 {
            q.push(QuarantineRecord {
                seq,
                shard: 0,
                backend: "interp",
                error: "boom".into(),
                packet: pkt.clone(),
            });
        }
        let (records, seqs) = q.into_parts();
        assert_eq!(records.len(), 2);
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn quarantine_dump_trace_is_a_replayable_workload() {
        let pkt = PacketGen::new(2).batch(1).pop().unwrap();
        let rec = QuarantineRecord {
            seq: 3,
            shard: 1,
            backend: "compiled",
            error: "injected".into(),
            packet: pkt.clone(),
        };
        let dump = quarantine_to_json(&[rec], 1);
        // The trace entries round-trip through Field::from_path + set —
        // the exact contract load_workload enforces.
        let Some(Json::Array(trace)) = dump.get("trace") else {
            panic!("dump lacks trace array")
        };
        assert_eq!(trace.len(), 1);
        let Json::Object(fields) = &trace[0] else {
            panic!("trace entry not an object")
        };
        let mut rebuilt = PacketGen::new(99).batch(1).pop().unwrap();
        for (path, v) in fields {
            let f = Field::from_path(path).expect("known field path");
            let Json::Int(n) = v else { panic!("non-int field") };
            rebuilt.set(f, *n as u64).expect("settable value");
        }
        for f in Field::ALL {
            assert_eq!(rebuilt.get(f).ok(), pkt.get(f).ok(), "{}", f.path());
        }
    }

    #[test]
    fn scramble_is_deterministic_and_changes_the_packet() {
        let base = PacketGen::new(3).batch(1).pop().unwrap();
        let mut a = base.clone();
        let mut b = base.clone();
        scramble_packet(&mut a, 17);
        scramble_packet(&mut b, 17);
        assert_eq!(a, b);
        assert_ne!(a, base);
        let mut c = base.clone();
        scramble_packet(&mut c, 18);
        assert_ne!(a, c);
    }
}
