//! The shard telemetry plane: per-shard latency histograms, ring
//! occupancy, a hot-key profiler, and a bounded flight recorder.
//!
//! Telemetry is recorded **off the hot path**: each worker owns a
//! [`WorkerTelemetry`] of private buffers — no shared-sink lock per
//! packet — and folds them into the run's `nf-trace` tracer every
//! [`TelemetryConfig::flush_every`] packets plus once at join, where
//! they surface as `shard.N.eval.ns` / `shard.N.ring.occupancy`
//! histograms for the live `nfactor top` view. At join the engine also
//! assembles a [`RunStats`] (`nfactor run --stats-json`) carrying the
//! full per-shard summaries, the dispatcher's space-saving top-K over
//! dispatch-key values ([`HotKey`], exported as `shard.N.hotkeys` —
//! the input the ROADMAP's skew-aware rebalancing consumes), and the
//! merged flight recorder: the last N per-packet events, replayable as
//! a `--workload` via the dump's `trace` key exactly like quarantine
//! records.
//!
//! Everything here is observation only: with telemetry enabled or
//! disabled, a run's outputs and merged state are identical, and under
//! a `MockClock` the recorded numbers themselves are deterministic in
//! the sequential modes — the differential and chaos suites run with
//! telemetry on.

use crate::supervise::packet_to_json;
use nf_packet::Packet;
use nf_support::json::Value;
use nf_support::ring::RingLog;
use nf_support::sketch::TopK;
use nf_trace::{Histogram, MetricsSnapshot, Tracer, DEFAULT_NS_BUCKETS};
use nfl_lint::DispatchKey;
use std::fmt::Write as _;

/// Bucket bounds for ring-occupancy histograms: queue depth sampled at
/// dequeue, from an empty ring up to the full `RING_CAP`.
pub const OCCUPANCY_BUCKETS: [u64; 8] = [0, 1, 2, 4, 16, 64, 256, 1024];

/// Knobs for the telemetry plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch. Effective telemetry additionally requires the
    /// engine's tracer to be recording — with a disabled tracer there
    /// is nowhere to flush to and nothing is collected.
    pub enabled: bool,
    /// Tracked keys per shard in the hot-key profiler (the space-saving
    /// sketch's capacity).
    pub hotkeys_k: usize,
    /// Flight-recorder capacity: per-packet events retained per worker
    /// while running, and in the merged run-level recorder.
    pub flight_cap: usize,
    /// Worker-local histogram flush cadence, in packets. Lower values
    /// make `nfactor top` fresher; higher values take the shared sink
    /// lock less often.
    pub flush_every: u64,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            enabled: true,
            hotkeys_k: 8,
            flight_cap: 64,
            flush_every: 64,
        }
    }
}

/// What happened to one packet, as the flight recorder saw it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightOutcome {
    /// Evaluated normally and emitted at least one packet.
    Forwarded,
    /// Evaluated normally and dropped.
    Dropped,
    /// Contained failure: the packet was quarantined.
    Quarantined,
}

impl FlightOutcome {
    /// Lowercase label for JSON and tables.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightOutcome::Forwarded => "forwarded",
            FlightOutcome::Dropped => "dropped",
            FlightOutcome::Quarantined => "quarantined",
        }
    }
}

/// One flight-recorder entry: everything needed to say, after a fault,
/// what the runtime was doing just before.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Global arrival sequence number.
    pub seq: u64,
    /// The shard that evaluated the packet.
    pub shard: usize,
    /// Backend label (`"interp"`, `"model"`, `"compiled"`).
    pub backend: &'static str,
    /// How the evaluation ended.
    pub outcome: FlightOutcome,
    /// Eval latency in nanoseconds.
    pub latency_ns: u64,
    /// The input packet, for replay.
    pub packet: Packet,
}

impl FlightEvent {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("seq".into(), Value::Int(self.seq as i64)),
            ("shard".into(), Value::Int(self.shard as i64)),
            ("backend".into(), Value::Str(self.backend.into())),
            ("outcome".into(), Value::Str(self.outcome.as_str().into())),
            (
                "latency_ns".into(),
                Value::Int(i64::try_from(self.latency_ns).unwrap_or(i64::MAX)),
            ),
            ("packet".into(), packet_to_json(&self.packet)),
        ])
    }
}

/// Per-worker telemetry buffers. Lives on the worker thread (or the
/// sequential driver); nothing here takes a lock until
/// [`flush`](Self::flush) folds the pending histograms into the tracer.
#[derive(Debug)]
pub struct WorkerTelemetry {
    shard: usize,
    backend: &'static str,
    flush_every: u64,
    eval_name: String,
    occupancy_name: String,
    /// Cumulative histograms, handed over at join.
    eval: Histogram,
    occupancy: Histogram,
    /// Not-yet-flushed observations since the last tracer merge.
    pending_eval: Histogram,
    pending_occupancy: Histogram,
    flight: RingLog<FlightEvent>,
    since_flush: u64,
}

impl WorkerTelemetry {
    /// Buffers for shard `shard` running `backend`.
    pub fn new(shard: usize, backend: &'static str, cfg: &TelemetryConfig) -> WorkerTelemetry {
        WorkerTelemetry {
            shard,
            backend,
            flush_every: cfg.flush_every.max(1),
            eval_name: format!("shard.{shard}.eval.ns"),
            occupancy_name: format!("shard.{shard}.ring.occupancy"),
            eval: Histogram::new(&DEFAULT_NS_BUCKETS),
            occupancy: Histogram::new(&OCCUPANCY_BUCKETS),
            pending_eval: Histogram::new(&DEFAULT_NS_BUCKETS),
            pending_occupancy: Histogram::new(&OCCUPANCY_BUCKETS),
            flight: RingLog::new(cfg.flight_cap),
            since_flush: 0,
        }
    }

    /// Record one evaluated packet: eval latency plus a flight-recorder
    /// entry.
    pub fn record(&mut self, seq: u64, latency_ns: u64, outcome: FlightOutcome, pkt: &Packet) {
        self.pending_eval.observe(latency_ns);
        self.flight.push(FlightEvent {
            seq,
            shard: self.shard,
            backend: self.backend,
            outcome,
            latency_ns,
            packet: pkt.clone(),
        });
        self.since_flush += 1;
    }

    /// Record the ring depth observed at dequeue (threaded modes only;
    /// the sequential simulations have no rings).
    pub fn occupancy(&mut self, depth: u64) {
        self.pending_occupancy.observe(depth);
    }

    /// Flush to the tracer if the cadence says so.
    pub fn maybe_flush(&mut self, tracer: &Tracer) {
        if self.since_flush >= self.flush_every {
            self.flush(tracer);
        }
    }

    /// Fold all pending observations into the tracer's shared registry
    /// (one lock acquisition per non-empty histogram) and into the
    /// cumulative per-worker totals.
    pub fn flush(&mut self, tracer: &Tracer) {
        if self.pending_eval.count > 0 {
            tracer.merge_histogram(&self.eval_name, &self.pending_eval);
            self.eval.merge(&self.pending_eval);
            self.pending_eval = Histogram::new(&DEFAULT_NS_BUCKETS);
        }
        if self.pending_occupancy.count > 0 {
            tracer.merge_histogram(&self.occupancy_name, &self.pending_occupancy);
            self.occupancy.merge(&self.pending_occupancy);
            self.pending_occupancy = Histogram::new(&OCCUPANCY_BUCKETS);
        }
        self.since_flush = 0;
    }

    /// Final flush, then hand the cumulative buffers over for the run's
    /// [`RunStats`].
    pub fn finish(mut self, tracer: &Tracer) -> ShardStats {
        self.flush(tracer);
        ShardStats {
            shard: self.shard,
            eval: self.eval,
            occupancy: self.occupancy,
            hotkeys: Vec::new(),
            hotkeys_total: 0,
            flight: self.flight,
        }
    }
}

/// One tracked hot dispatch key, rendered for humans and JSON.
#[derive(Debug, Clone)]
pub struct HotKey {
    /// `field=value` pairs of the dispatch-key values, comma-joined
    /// (canonical direction for symmetric keys).
    pub key: String,
    /// Estimated packet count (never below the true count).
    pub count: u64,
    /// Maximum overestimate inherited from sketch evictions.
    pub err: u64,
}

/// Per-shard telemetry summary at join time.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// The shard index.
    pub shard: usize,
    /// Eval-latency histogram (nanoseconds).
    pub eval: Histogram,
    /// Ring occupancy sampled at dequeue (empty in sequential modes).
    pub occupancy: Histogram,
    /// Hot dispatch keys steered to this shard, heaviest first.
    pub hotkeys: Vec<HotKey>,
    /// Total packets the hot-key sketch observed for this shard.
    pub hotkeys_total: u64,
    /// This worker's slice of the flight recorder.
    pub flight: RingLog<FlightEvent>,
}

impl ShardStats {
    fn to_json(&self, pkts: u64, busy_ns: u64) -> Value {
        let hotkeys = Value::Object(vec![
            (
                "total".into(),
                Value::Int(i64::try_from(self.hotkeys_total).unwrap_or(i64::MAX)),
            ),
            (
                "top".into(),
                Value::Array(
                    self.hotkeys
                        .iter()
                        .map(|h| {
                            Value::Object(vec![
                                ("key".into(), Value::Str(h.key.clone())),
                                (
                                    "count".into(),
                                    Value::Int(i64::try_from(h.count).unwrap_or(i64::MAX)),
                                ),
                                (
                                    "err".into(),
                                    Value::Int(i64::try_from(h.err).unwrap_or(i64::MAX)),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        Value::Object(vec![
            ("shard".into(), Value::Int(self.shard as i64)),
            ("pkts".into(), Value::Int(i64::try_from(pkts).unwrap_or(i64::MAX))),
            (
                "busy_ns".into(),
                Value::Int(i64::try_from(busy_ns).unwrap_or(i64::MAX)),
            ),
            ("eval_ns".into(), self.eval.to_json()),
            ("ring_occupancy".into(), self.occupancy.to_json()),
            ("hotkeys".into(), hotkeys),
        ])
    }
}

/// Run-level telemetry: what `--stats-json` serialises and the flight
/// recorder dump is cut from.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Per-shard summaries, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Wall-clock nanoseconds the dispatcher spent steering packets
    /// (threaded modes; 0 in the sequential simulations, where dispatch
    /// and eval interleave on one thread).
    pub dispatch_ns: u64,
    /// Wall-clock nanoseconds merging per-shard state at join.
    pub merge_ns: u64,
}

impl RunStats {
    /// Assemble run stats: attach the dispatcher's hot-key sketches to
    /// their shards, render key values against the dispatch key's field
    /// names, and publish a compact `shard.N.hotkeys` label per shard
    /// into the tracer (so `nfactor top` can show the hot flows without
    /// the stats file).
    pub fn assemble(
        mut shards: Vec<ShardStats>,
        sketches: Vec<TopK<Vec<u64>>>,
        key: Option<&DispatchKey>,
        dispatch_ns: u64,
        merge_ns: u64,
        tracer: &Tracer,
    ) -> RunStats {
        shards.sort_by_key(|s| s.shard);
        if let Some(key) = key {
            for (w, sketch) in sketches.into_iter().enumerate() {
                let Some(stats) = shards.iter_mut().find(|s| s.shard == w) else {
                    continue;
                };
                stats.hotkeys_total = sketch.total();
                stats.hotkeys = sketch
                    .entries()
                    .into_iter()
                    .map(|e| HotKey {
                        key: render_key(key, &e.key),
                        count: e.count,
                        err: e.err,
                    })
                    .collect();
                if !stats.hotkeys.is_empty() {
                    let label: String = stats
                        .hotkeys
                        .iter()
                        .take(4)
                        .map(|h| format!("{}:{}", h.key, h.count))
                        .collect::<Vec<_>>()
                        .join(" ");
                    tracer.label(&format!("shard.{w}.hotkeys"), &label);
                }
            }
        }
        RunStats {
            shards,
            dispatch_ns,
            merge_ns,
        }
    }

    /// The run's stats document (`--stats-json`). `per_shard_pkts` and
    /// `busy_ns` come from the owning `ShardRun`.
    pub fn to_json(&self, per_shard_pkts: &[u64], busy_ns: &[u64]) -> Value {
        let shards = self
            .shards
            .iter()
            .map(|s| {
                s.to_json(
                    per_shard_pkts.get(s.shard).copied().unwrap_or(0),
                    busy_ns.get(s.shard).copied().unwrap_or(0),
                )
            })
            .collect();
        Value::Object(vec![
            (
                "dispatch_ns".into(),
                Value::Int(i64::try_from(self.dispatch_ns).unwrap_or(i64::MAX)),
            ),
            (
                "merge_ns".into(),
                Value::Int(i64::try_from(self.merge_ns).unwrap_or(i64::MAX)),
            ),
            ("shards".into(), Value::Array(shards)),
        ])
    }

    /// The merged flight recorder: every worker's retained events,
    /// sorted by arrival seq, keeping the `cap` most recent overall.
    pub fn flight(&self, cap: usize) -> (Vec<FlightEvent>, u64) {
        let recorded: u64 = self.shards.iter().map(|s| s.flight.pushed()).sum();
        let mut events: Vec<FlightEvent> = self
            .shards
            .iter()
            .flat_map(|s| s.flight.iter().cloned())
            .collect();
        events.sort_by_key(|e| e.seq);
        let cap = cap.max(1);
        if events.len() > cap {
            events.drain(..events.len() - cap);
        }
        (events, recorded)
    }

    /// The flight-recorder dump (`--flight-out`). Like quarantine
    /// dumps, the top-level `trace` key is a valid `--workload` file:
    /// replaying it re-runs exactly the packets the recorder last saw.
    pub fn flight_json(&self, cap: usize) -> Value {
        let (events, recorded) = self.flight(cap);
        Value::Object(vec![
            (
                "recorded".into(),
                Value::Int(i64::try_from(recorded).unwrap_or(i64::MAX)),
            ),
            ("retained".into(), Value::Int(events.len() as i64)),
            (
                "records".into(),
                Value::Array(events.iter().map(FlightEvent::to_json).collect()),
            ),
            (
                "trace".into(),
                Value::Array(events.iter().map(|e| packet_to_json(&e.packet)).collect()),
            ),
        ])
    }
}

/// Render one sketch key (dispatch-key values) as `field=value` pairs.
fn render_key(key: &DispatchKey, values: &[u64]) -> String {
    key.fields()
        .iter()
        .zip(values)
        .map(|(f, v)| format!("{}={}", f.path(), v))
        .collect::<Vec<_>>()
        .join(",")
}

/// Render the `nfactor top` table from a metrics snapshot: one row per
/// shard that has an eval histogram, plus hot-key lines underneath.
///
/// `interval_ms` is the polling interval when `snapshot` is a
/// [`MetricsSnapshot::delta`] (live mode, rates are per-interval);
/// `None` renders cumulative totals (`--once`).
pub fn render_top(snapshot: &MetricsSnapshot, interval_ms: Option<u64>) -> String {
    let mut shards: Vec<usize> = snapshot
        .histograms
        .keys()
        .filter_map(|k| {
            k.strip_prefix("shard.")?
                .strip_suffix(".eval.ns")?
                .parse()
                .ok()
        })
        .collect();
    shards.sort_unstable();
    let mut out = String::new();
    if shards.is_empty() {
        out.push_str("(no shard telemetry yet)\n");
        return out;
    }
    let _ = writeln!(
        out,
        "{:<6} {:>8} {:>10} {:>10} {:>10} {:>10} {:>6} {:>6}",
        "shard", "pkts", "rate/s", "p50(us)", "p99(us)", "max(us)", "ring", "quar"
    );
    for w in &shards {
        let h = &snapshot.histograms[&format!("shard.{w}.eval.ns")];
        let rate = match interval_ms {
            Some(ms) if ms > 0 => format!("{}", h.count.saturating_mul(1000) / ms),
            _ => "-".into(),
        };
        let ring = snapshot
            .histograms
            .get(&format!("shard.{w}.ring.occupancy"))
            .map(|o| o.p99().to_string())
            .unwrap_or_else(|| "-".into());
        let quar = snapshot
            .counter(&format!("shard.{w}.quarantined"))
            .map(|q| q.to_string())
            .unwrap_or_else(|| "0".into());
        let _ = writeln!(
            out,
            "{:<6} {:>8} {:>10} {:>10} {:>10} {:>10} {:>6} {:>6}",
            w,
            h.count,
            rate,
            h.p50() / 1_000,
            h.p99() / 1_000,
            h.max / 1_000,
            ring,
            quar
        );
    }
    for w in &shards {
        if let Some(label) = snapshot.labels.get(&format!("shard.{w}.hotkeys")) {
            let _ = writeln!(out, "hot[{w}]  {label}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_packet::PacketGen;

    #[test]
    fn worker_telemetry_flushes_on_cadence_and_at_finish() {
        let tracer = Tracer::enabled();
        let cfg = TelemetryConfig {
            flush_every: 4,
            ..TelemetryConfig::default()
        };
        let mut tel = WorkerTelemetry::new(1, "interp", &cfg);
        let pkt = PacketGen::new(1).batch(1).pop().unwrap();
        for seq in 0..6u64 {
            tel.record(seq, 1_500, FlightOutcome::Forwarded, &pkt);
            tel.maybe_flush(&tracer);
        }
        // 4 of 6 observations flushed on cadence; 2 pending.
        let mid = tracer.metrics();
        assert_eq!(mid.histograms["shard.1.eval.ns"].count, 4);
        let stats = tel.finish(&tracer);
        assert_eq!(tracer.metrics().histograms["shard.1.eval.ns"].count, 6);
        assert_eq!(stats.eval.count, 6);
        assert_eq!(stats.flight.len(), 6);
    }

    #[test]
    fn flight_merge_keeps_most_recent_by_seq() {
        let tracer = Tracer::disabled();
        let cfg = TelemetryConfig {
            flight_cap: 3,
            ..TelemetryConfig::default()
        };
        let pkt = PacketGen::new(2).batch(1).pop().unwrap();
        let mut a = WorkerTelemetry::new(0, "interp", &cfg);
        let mut b = WorkerTelemetry::new(1, "interp", &cfg);
        for seq in 0..10u64 {
            let tel = if seq % 2 == 0 { &mut a } else { &mut b };
            tel.record(seq, 100, FlightOutcome::Forwarded, &pkt);
        }
        let stats = RunStats::assemble(
            vec![a.finish(&tracer), b.finish(&tracer)],
            Vec::new(),
            None,
            0,
            0,
            &tracer,
        );
        let (events, recorded) = stats.flight(3);
        assert_eq!(recorded, 10);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
        // The dump is valid JSON with a replayable trace.
        let dump = stats.flight_json(3);
        let rendered = dump.render();
        let parsed = Value::parse(&rendered).expect("flight dump re-parses");
        let Some(Value::Array(trace)) = parsed.get("trace") else {
            panic!("flight dump lacks a trace array");
        };
        assert_eq!(trace.len(), 3);
    }

    #[test]
    fn render_top_shows_each_shard_row() {
        let tracer = Tracer::enabled();
        let cfg = TelemetryConfig::default();
        let pkt = PacketGen::new(3).batch(1).pop().unwrap();
        for w in 0..2 {
            let mut tel = WorkerTelemetry::new(w, "interp", &cfg);
            tel.record(0, 2_000_000, FlightOutcome::Forwarded, &pkt);
            tel.occupancy(5);
            tel.finish(&tracer);
        }
        tracer.count("shard.1.quarantined", 2);
        let table = render_top(&tracer.metrics(), None);
        assert!(table.contains("shard"), "{table}");
        let rows: Vec<&str> = table.lines().collect();
        assert!(rows.len() >= 3, "{table}");
        assert!(rows[2].trim_start().starts_with('1'), "{table}");
        assert!(rows[2].trim_end().ends_with('2'), "quarantine column: {table}");
    }
}
