//! Temporary review check: mirror-pair single-endpoint keys.

use nf_packet::{Field, PacketGen};
use nf_shard::{Backend, ShardEngine};
use nfactor_core::Pipeline;

#[test]
fn single_field_mirror_pair_diverges() {
    let src = r#"
        state m = map();
        fn cb(pkt: packet) {
            if pkt.ip.dst in m { send(pkt); } else { drop(pkt); }
            m[pkt.ip.src] = 1;
        }
        fn main() { sniff(cb); }
    "#;
    let pipeline = Pipeline::builder().name("rev").shards(4).build().unwrap();
    let engine = ShardEngine::from_source(&pipeline, src, Backend::Interp).unwrap();
    eprintln!("plan: {}", engine.plan().render_table());
    assert!(engine.plan().partitioned(), "expected partitioned plan");

    // Packet 1: A -> B  (records m[A]); Packet 2: C -> A (probe dst=A).
    let mut gen = PacketGen::new(1);
    let mut packets = Vec::new();
    for (s, d) in [(5u64, 3u64), (7, 5)] {
        let mut p = gen.next_packet();
        p.set(Field::IpSrc, s).unwrap();
        p.set(Field::IpDst, d).unwrap();
        packets.push(p);
    }
    let single = engine.run_single(&packets).unwrap();
    let sharded = engine.run(&packets).unwrap();
    eprintln!(
        "single: {:?}",
        single.outputs.iter().map(|o| o.dropped).collect::<Vec<_>>()
    );
    eprintln!(
        "sharded: {:?} (shards {:?})",
        sharded.outputs.iter().map(|o| o.dropped).collect::<Vec<_>>(),
        sharded.outputs.iter().map(|o| o.shard).collect::<Vec<_>>()
    );
    assert_eq!(
        sharded.output_signature(),
        single.output_signature(),
        "sharded diverged from single-threaded"
    );
}
