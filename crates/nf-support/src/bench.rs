//! A `harness = false` micro-benchmark runner.
//!
//! API shape follows criterion's narrow waist — groups, `bench_function`,
//! a [`Bencher`] with `iter` — so bench files port with local edits only.
//! Each benchmark is warmed up, then timed for a fixed number of samples
//! of auto-calibrated batch size. Results print as a table and are
//! written as `BENCH_<name>.json` (override the directory with
//! `NF_BENCH_DIR`), giving the repo a machine-readable perf trajectory.
//!
//! Run via `cargo bench` (each `[[bench]]` target calls
//! [`Harness::from_args`]) or `cargo bench -- <filter>` to select
//! benchmarks by substring.

use crate::json::Value;
use std::time::{Duration, Instant};

/// Re-export of the optimizer barrier used around benchmark inputs.
pub use std::hint::black_box;

/// One measured benchmark result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id, `group/name`.
    pub id: String,
    /// Number of timed samples.
    pub samples: u32,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Mean time per iteration in nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample, ns/iter.
    pub min_ns: f64,
    /// Slowest sample, ns/iter.
    pub max_ns: f64,
}

/// Passed to benchmark closures; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    warmup: Duration,
    samples: u32,
    result: Option<(u32, u64, f64, f64, f64)>,
}

impl Bencher {
    /// Measure `f`, running it in calibrated batches.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup, and calibrate the batch size so one sample costs
        // roughly warmup/samples but at least one iteration.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = self.warmup.as_nanos() as f64 / warm_iters.max(1) as f64;
        let target_sample_ns = 10_000_000.0; // 10 ms per sample
        let batch = ((target_sample_ns / per_iter).ceil() as u64).clamp(1, 1_000_000);

        let mut total_ns = 0f64;
        let mut min_ns = f64::INFINITY;
        let mut max_ns = 0f64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            total_ns += ns;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
        }
        self.result = Some((
            self.samples,
            batch,
            total_ns / f64::from(self.samples),
            min_ns,
            max_ns,
        ));
    }
}

/// A named group of benchmarks sharing configuration.
pub struct Group<'h> {
    harness: &'h mut Harness,
    name: String,
    samples: u32,
}

impl Group<'_> {
    /// Set the number of timed samples per benchmark (criterion's
    /// `sample_size`).
    pub fn sample_size(&mut self, n: u32) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Run one benchmark under this group.
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnOnce(&mut Bencher)) {
        let id = format!("{}/{}", self.name, name.as_ref());
        if !self.harness.filter_matches(&id) {
            return;
        }
        let mut b = Bencher {
            warmup: self.harness.warmup,
            samples: self.samples,
            result: None,
        };
        f(&mut b);
        let (samples, batch, mean, min, max) =
            b.result.expect("benchmark closure must call Bencher::iter");
        let m = Measurement {
            id,
            samples,
            iters_per_sample: batch,
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
        };
        eprintln!(
            "bench {:<44} {:>12}  ({} samples × {} iters, {:.0}..{:.0} ns)",
            m.id,
            fmt_ns(m.mean_ns),
            m.samples,
            m.iters_per_sample,
            m.min_ns,
            m.max_ns
        );
        self.harness.results.push(m);
    }

    /// Criterion-compatible spelling: bench with a displayed input.
    pub fn bench_with_input<I>(
        &mut self,
        name: impl AsRef<str>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.bench_function(name, |b| f(b, input));
    }

    /// No-op, kept for criterion API compatibility.
    pub fn finish(&mut self) {}
}

/// The per-binary benchmark harness; owns config and collected results.
pub struct Harness {
    name: String,
    warmup: Duration,
    filter: Option<String>,
    results: Vec<Measurement>,
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

impl Harness {
    /// Create a harness with an explicit config.
    pub fn new(name: &str) -> Harness {
        Harness {
            name: name.to_string(),
            warmup: Duration::from_millis(300),
            filter: None,
            results: Vec::new(),
        }
    }

    /// Create a harness from CLI args, skipping cargo's `--bench` flag
    /// and treating the first free argument as a name filter. This is
    /// the entry point for `harness = false` bench targets.
    pub fn from_args(name: &str) -> Harness {
        let mut h = Harness::new(name);
        for arg in std::env::args().skip(1) {
            if arg.starts_with('-') {
                continue; // --bench and friends
            }
            h.filter = Some(arg);
            break;
        }
        if let Ok(ms) = std::env::var("NF_BENCH_WARMUP_MS") {
            if let Ok(ms) = ms.parse::<u64>() {
                h.warmup = Duration::from_millis(ms);
            }
        }
        h
    }

    /// Override the warmup period.
    pub fn warmup(&mut self, d: Duration) -> &mut Self {
        self.warmup = d;
        self
    }

    fn filter_matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> Group<'_> {
        Group {
            name: name.as_ref().to_string(),
            samples: 20,
            harness: self,
        }
    }

    /// Serialize collected results to the report JSON. The `meta` block
    /// stamps every `BENCH_*.json` with the git revision, UTC timestamp
    /// and cargo profile, so the perf trajectory across PRs is
    /// attributable to a specific commit and build.
    pub fn report_json(&self) -> Value {
        Value::Object(vec![
            ("bench".into(), Value::Str(self.name.clone())),
            ("meta".into(), run_meta()),
            (
                "results".into(),
                Value::Array(
                    self.results
                        .iter()
                        .map(|m| {
                            Value::Object(vec![
                                ("name".into(), Value::Str(m.id.clone())),
                                ("samples".into(), Value::Int(i64::from(m.samples))),
                                (
                                    "iters_per_sample".into(),
                                    Value::Int(m.iters_per_sample as i64),
                                ),
                                ("mean_ns".into(), Value::Float(m.mean_ns)),
                                ("min_ns".into(), Value::Float(m.min_ns)),
                                ("max_ns".into(), Value::Float(m.max_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Write `BENCH_<name>.json` and print the summary footer. Call last
    /// from the bench target's `main`.
    pub fn finish(self) {
        let dir = std::env::var("NF_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.name));
        let body = self.report_json().render_pretty();
        match std::fs::write(&path, body) {
            Ok(()) => eprintln!(
                "bench {}: {} results -> {}",
                self.name,
                self.results.len(),
                path.display()
            ),
            Err(e) => eprintln!("bench {}: could not write {}: {e}", self.name, path.display()),
        }
    }
}

/// Run metadata stamped into every bench report.
fn run_meta() -> Value {
    Value::Object(vec![
        ("git_rev".into(), Value::Str(git_rev())),
        ("timestamp_utc".into(), Value::Str(utc_now())),
        (
            "profile".into(),
            Value::Str(
                if cfg!(debug_assertions) { "debug" } else { "release" }.to_string(),
            ),
        ),
    ])
}

/// Current `HEAD` revision, or `"unknown"` outside a git checkout.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The current UTC time as ISO-8601 (`2026-08-06T12:34:56Z`), computed
/// from the Unix epoch with the standard civil-from-days algorithm — no
/// external time crate.
fn utc_now() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_secs() as i64;
    let days = secs.div_euclid(86_400);
    let tod = secs.rem_euclid(86_400);
    let (y, m, d) = civil_from_days(days);
    format!(
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}Z",
        tod / 3600,
        (tod % 3600) / 60,
        tod % 60
    )
}

/// Days since 1970-01-01 → (year, month, day) in the proleptic Gregorian
/// calendar (Howard Hinnant's `civil_from_days`).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_from_days_matches_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year start
        assert_eq!(civil_from_days(19_782), (2024, 2, 29)); // leap day
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
    }

    #[test]
    fn utc_now_is_iso8601_shaped() {
        let ts = utc_now();
        // 2026-08-06T12:34:56Z
        assert_eq!(ts.len(), 20, "{ts}");
        assert_eq!(&ts[4..5], "-");
        assert_eq!(&ts[10..11], "T");
        assert!(ts.ends_with('Z'));
    }

    #[test]
    fn report_json_carries_run_meta() {
        let h = Harness::new("meta-test");
        let json = h.report_json();
        let meta = json.get("meta").expect("meta block present");
        for key in ["git_rev", "timestamp_utc", "profile"] {
            assert!(
                matches!(meta.get(key), Some(Value::Str(s)) if !s.is_empty()),
                "missing/empty meta.{key}"
            );
        }
        let profile = match meta.get("profile") {
            Some(Value::Str(s)) => s.clone(),
            _ => unreachable!(),
        };
        assert!(profile == "debug" || profile == "release");
    }

    #[test]
    fn measures_and_reports() {
        let mut h = Harness::new("selftest");
        h.warmup(Duration::from_millis(5));
        let mut g = h.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.finish();
        assert_eq!(h.results.len(), 1);
        let m = &h.results[0];
        assert_eq!(m.id, "grp/sum");
        assert!(m.mean_ns > 0.0);
        assert!(m.min_ns <= m.mean_ns && m.mean_ns <= m.max_ns);
        let json = h.report_json().render();
        assert!(json.contains("\"grp/sum\""), "{json}");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut h = Harness::new("selftest2");
        h.warmup(Duration::from_millis(1));
        h.filter = Some("only-this".to_string());
        let mut g = h.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("skipped", |b| b.iter(|| 1 + 1));
        g.finish();
        assert!(h.results.is_empty());
    }
}
