//! Work budgets for pipeline stages — wall-clock deadline plus
//! path / step / solver-call caps.
//!
//! The paper's vendor workflow (§4) runs NFactor unattended over
//! arbitrary NF sources, so every stage must terminate inside a bound
//! and degrade gracefully when it can't finish: Table 2 reports the
//! un-sliced snort exploration as "> 1000 paths" precisely because the
//! run was cut off by a budget. A [`Budget`] makes that cut-off a
//! first-class input: the pipeline threads one value through slicing
//! and symbolic execution, and on exhaustion returns a *partial* model
//! stamped `Completeness::Truncated { reason }` instead of hanging or
//! aborting.
//!
//! The deadline is fixed at construction time ([`Budget::with_timeout`]
//! calls `Instant::now()`), so one `Budget` covers the whole pipeline
//! run it was built for — slicing overruns eat into the symbolic
//! execution's remaining time, exactly like a request deadline.

use std::time::{Duration, Instant};

/// Resource limits for a pipeline run. `Default`/[`Budget::unlimited`]
/// imposes nothing; each cap is opt-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Absolute wall-clock deadline (set via [`Budget::with_timeout`]).
    pub deadline: Option<Instant>,
    /// Cap on symbolic execution paths (tightens `PathLimits::max_paths`).
    pub max_paths: Option<usize>,
    /// Cap on per-path symbolic steps (tightens `PathLimits::max_steps`).
    pub max_steps: Option<usize>,
    /// Cap on SMT-lite solver invocations across the whole exploration.
    pub max_solver_calls: Option<usize>,
}

impl Budget {
    /// A budget that never exhausts.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// True when no cap of any kind is set.
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::default()
    }

    /// Set a wall-clock deadline `timeout` from *now*.
    pub fn with_timeout(mut self, timeout: Duration) -> Budget {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// [`Budget::with_timeout`] in milliseconds (the CLI's `--timeout-ms`).
    pub fn with_timeout_ms(self, ms: u64) -> Budget {
        self.with_timeout(Duration::from_millis(ms))
    }

    /// Cap the number of explored paths.
    pub fn with_max_paths(mut self, n: usize) -> Budget {
        self.max_paths = Some(n);
        self
    }

    /// Cap the number of symbolic steps per path.
    pub fn with_max_steps(mut self, n: usize) -> Budget {
        self.max_steps = Some(n);
        self
    }

    /// Cap the number of solver calls.
    pub fn with_max_solver_calls(mut self, n: usize) -> Budget {
        self.max_solver_calls = Some(n);
        self
    }

    /// Has the wall-clock deadline passed?
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Time left before the deadline (`None` when no deadline is set).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.expired());
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn zero_timeout_expires_immediately() {
        let b = Budget::unlimited().with_timeout(Duration::from_millis(0));
        assert!(b.expired());
        assert_eq!(b.remaining(), Some(Duration::from_millis(0)));
        assert!(!b.is_unlimited());
    }

    #[test]
    fn generous_timeout_not_yet_expired() {
        let b = Budget::unlimited().with_timeout(Duration::from_secs(3600));
        assert!(!b.expired());
        assert!(b.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn caps_compose() {
        let b = Budget::unlimited()
            .with_max_paths(10)
            .with_max_steps(100)
            .with_max_solver_calls(5);
        assert_eq!(b.max_paths, Some(10));
        assert_eq!(b.max_steps, Some(100));
        assert_eq!(b.max_solver_calls, Some(5));
        assert!(!b.expired());
    }
}
