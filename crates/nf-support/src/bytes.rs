//! Byte-buffer helpers for wire-format emission.
//!
//! Wire buffers are plain `Vec<u8>`; [`PutBytes`] adds the big-endian
//! append methods header emitters use (the slice of the `bytes` crate's
//! `BufMut` surface the workspace actually exercised).

/// Big-endian append operations on a growable byte buffer.
pub trait PutBytes {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a `u16` big-endian.
    fn put_u16(&mut self, v: u16);
    /// Append a `u32` big-endian.
    fn put_u32(&mut self, v: u32);
    /// Append a `u64` big-endian.
    fn put_u64(&mut self, v: u64);
    /// Append a byte slice.
    fn put_slice(&mut self, s: &[u8]);
}

impl PutBytes for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

/// Advance a borrowed byte slice past `n` parsed bytes.
pub fn advance(buf: &mut &[u8], n: usize) {
    *buf = &buf[n..];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_appends() {
        let mut b: Vec<u8> = Vec::new();
        b.put_u8(0xab);
        b.put_u16(0x0102);
        b.put_u32(0x03040506);
        b.put_u64(0x0708090a0b0c0d0e);
        b.put_slice(&[0xff]);
        assert_eq!(
            b,
            [0xab, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0xa, 0xb, 0xc, 0xd, 0xe, 0xff]
        );
    }

    #[test]
    fn advance_moves_window() {
        let data = [1u8, 2, 3, 4];
        let mut view: &[u8] = &data;
        advance(&mut view, 2);
        assert_eq!(view, &[3, 4]);
    }
}
