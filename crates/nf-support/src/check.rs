//! A minimal property-testing harness.
//!
//! The shape follows QuickCheck: a [`Gen`] pairs a generator closure with
//! a shrinker, [`check`] runs a property over many generated inputs, and
//! on failure shrinks the counterexample with a bounded number of
//! candidate steps before panicking with the minimal input found.
//!
//! Determinism: the RNG seed is derived from the property name and
//! [`Config::seed`], so a failing case reproduces under
//! `cargo test <name>` with no ambient state. Properties are plain
//! closures that panic on failure (`assert!`/`assert_eq!` work as-is);
//! the harness catches the unwind, which keeps ported test bodies
//! idiomatic Rust instead of a macro DSL.

use crate::rng::Rng;
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Base seed mixed with the property name.
    pub seed: u64,
    /// Maximum number of shrink candidates to try after a failure.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            seed: 0x4e46_6163746f72, // "NFactor"
            max_shrink_steps: 2048,
        }
    }
}

impl Config {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }
}

type GenFn<T> = Rc<dyn Fn(&mut Rng) -> T>;
type ShrinkFn<T> = Rc<dyn Fn(&T) -> Vec<T>>;

/// A value generator with an attached shrinker.
#[derive(Clone)]
pub struct Gen<T> {
    gen: GenFn<T>,
    shrink: ShrinkFn<T>,
}

impl<T: Clone + 'static> Gen<T> {
    /// Build from a raw closure; no shrinking.
    pub fn new(f: impl Fn(&mut Rng) -> T + 'static) -> Gen<T> {
        Gen {
            gen: Rc::new(f),
            shrink: Rc::new(|_| Vec::new()),
        }
    }

    /// Attach a shrinker producing smaller candidate values.
    pub fn with_shrink(self, f: impl Fn(&T) -> Vec<T> + 'static) -> Gen<T> {
        Gen {
            gen: self.gen,
            shrink: Rc::new(f),
        }
    }

    /// Draw one value.
    pub fn sample(&self, rng: &mut Rng) -> T {
        (self.gen)(rng)
    }

    /// Shrink candidates for a value, smallest-first by construction.
    pub fn shrink(&self, v: &T) -> Vec<T> {
        (self.shrink)(v)
    }

    /// Transform generated values. `map` cannot invert `f`, so mapped
    /// generators drop shrinking unless the caller re-attaches a
    /// target-domain shrinker with [`Gen::with_shrink`]. (The tuple/vec
    /// combinators below keep structural shrinking.)
    pub fn map<U: Clone + 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let g = self.gen;
        Gen {
            gen: Rc::new(move |rng| f(g(rng))),
            shrink: Rc::new(|_| Vec::new()),
        }
    }

    /// A generator that always yields `v`.
    pub fn just(v: T) -> Gen<T> {
        Gen::new(move |_| v.clone())
    }

    /// Choose uniformly between alternative generators of the same type.
    pub fn one_of(choices: Vec<Gen<T>>) -> Gen<T> {
        assert!(!choices.is_empty(), "one_of(empty)");
        let shrinkers: Vec<ShrinkFn<T>> = choices.iter().map(|g| g.shrink.clone()).collect();
        let gens: Vec<GenFn<T>> = choices.iter().map(|g| g.gen.clone()).collect();
        Gen {
            gen: Rc::new(move |rng| {
                let i = rng.gen_index(gens.len());
                gens[i](rng)
            }),
            // A value could have come from any branch; union the
            // candidates each branch's shrinker offers.
            shrink: Rc::new(move |v| shrinkers.iter().flat_map(|s| s(v)).collect()),
        }
    }
}

/// Shrink candidates for an integer: 0, then binary steps toward 0.
fn shrink_i64(v: i64) -> Vec<i64> {
    if v == 0 {
        return Vec::new();
    }
    let mut out = vec![0];
    let mut step = v;
    loop {
        step /= 2;
        let cand = v - step;
        if cand == v || out.contains(&cand) {
            break;
        }
        out.push(cand);
        if step == 0 {
            break;
        }
    }
    out
}

/// Uniform `i64` in `[lo, hi]`, shrinking toward the in-range value
/// closest to zero.
pub fn int_range(lo: i64, hi: i64) -> Gen<i64> {
    let origin = lo.max(0).min(hi);
    Gen::new(move |rng| rng.gen_range_i64(lo, hi)).with_shrink(move |&v| {
        shrink_i64(v - origin)
            .into_iter()
            .map(|d| origin + d)
            .filter(|c| (lo..=hi).contains(c) && *c != v)
            .collect()
    })
}

/// Uniform `u64` in `[lo, hi]`, shrinking toward `lo`.
pub fn uint_range(lo: u64, hi: u64) -> Gen<u64> {
    Gen::new(move |rng| rng.gen_range_u64(lo, hi)).with_shrink(move |&v| {
        let mut out = Vec::new();
        if v > lo {
            out.push(lo);
            let mut step = v - lo;
            loop {
                step /= 2;
                let cand = v - step;
                if cand != v && cand > lo && !out.contains(&cand) {
                    out.push(cand);
                }
                if step == 0 {
                    break;
                }
            }
        }
        out
    })
}

/// Any `u8`.
pub fn any_u8() -> Gen<u8> {
    uint_range(0, u8::MAX as u64).map_int(|v| v as u8)
}

/// Any `u16`.
pub fn any_u16() -> Gen<u16> {
    uint_range(0, u16::MAX as u64).map_int(|v| v as u16)
}

/// Any `u32`.
pub fn any_u32() -> Gen<u32> {
    uint_range(0, u32::MAX as u64).map_int(|v| v as u32)
}

/// Any `u64`.
pub fn any_u64() -> Gen<u64> {
    uint_range(0, u64::MAX)
}

/// Any `i64`.
pub fn any_i64() -> Gen<i64> {
    int_range(i64::MIN, i64::MAX)
}

/// Either boolean, shrinking `true` to `false`.
pub fn any_bool() -> Gen<bool> {
    Gen::new(|rng| rng.gen_bool(0.5))
        .with_shrink(|&v| if v { vec![false] } else { Vec::new() })
}

impl Gen<u64> {
    /// Integer-preserving map that keeps the unsigned shrinker working by
    /// shrinking in the source domain and converting candidates.
    pub fn map_int<U: Clone + 'static>(self, f: impl Fn(u64) -> U + 'static + Copy) -> Gen<U>
    where
        U: Into<u64>,
    {
        let g = self.gen.clone();
        let s = self.shrink.clone();
        Gen {
            gen: Rc::new(move |rng| f(g(rng))),
            shrink: Rc::new(move |v: &U| {
                let back: u64 = (*v).clone().into();
                s(&back).into_iter().map(f).collect()
            }),
        }
    }
}

/// Vector of `inner`, with length drawn from `[min_len, max_len]`.
/// Shrinks by dropping chunks, dropping single elements, then shrinking
/// elements pointwise.
pub fn vec_of<T: Clone + 'static>(inner: Gen<T>, min_len: usize, max_len: usize) -> Gen<Vec<T>> {
    assert!(min_len <= max_len);
    let inner2 = inner.clone();
    Gen::new(move |rng| {
        let n = rng.gen_range_u64(min_len as u64, max_len as u64) as usize;
        (0..n).map(|_| inner.sample(rng)).collect()
    })
    .with_shrink(move |v: &Vec<T>| {
        let mut out: Vec<Vec<T>> = Vec::new();
        // Halves first (biggest cuts).
        if v.len() > min_len {
            let half = (v.len() / 2).max(min_len);
            if half < v.len() {
                out.push(v[..half].to_vec());
                out.push(v[v.len() - half..].to_vec());
            }
            // Then drop one element at a time.
            for i in 0..v.len() {
                if v.len() - 1 >= min_len {
                    let mut smaller = v.clone();
                    smaller.remove(i);
                    out.push(smaller);
                }
            }
        }
        // Then shrink elements in place.
        for (i, e) in v.iter().enumerate() {
            for cand in inner2.shrink(e) {
                let mut copy = v.clone();
                copy[i] = cand;
                out.push(copy);
            }
        }
        out
    })
}

/// Pair generator with component-wise shrinking.
pub fn tuple2<A: Clone + 'static, B: Clone + 'static>(ga: Gen<A>, gb: Gen<B>) -> Gen<(A, B)> {
    let (ga2, gb2) = (ga.clone(), gb.clone());
    Gen::new(move |rng| (ga.sample(rng), gb.sample(rng))).with_shrink(move |(a, b)| {
        let mut out = Vec::new();
        for ca in ga2.shrink(a) {
            out.push((ca, b.clone()));
        }
        for cb in gb2.shrink(b) {
            out.push((a.clone(), cb));
        }
        out
    })
}

/// Triple generator with component-wise shrinking.
pub fn tuple3<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static>(
    ga: Gen<A>,
    gb: Gen<B>,
    gc: Gen<C>,
) -> Gen<(A, B, C)> {
    let (ga2, gb2, gc2) = (ga.clone(), gb.clone(), gc.clone());
    Gen::new(move |rng| (ga.sample(rng), gb.sample(rng), gc.sample(rng))).with_shrink(
        move |(a, b, c)| {
            let mut out = Vec::new();
            for ca in ga2.shrink(a) {
                out.push((ca, b.clone(), c.clone()));
            }
            for cb in gb2.shrink(b) {
                out.push((a.clone(), cb, c.clone()));
            }
            for cc in gc2.shrink(c) {
                out.push((a.clone(), b.clone(), cc));
            }
            out
        },
    )
}

/// String of characters drawn from `charset`, length in
/// `[min_len, max_len]`. Shrinks by shortening and by moving characters
/// toward the front of the charset.
pub fn string_of(charset: &'static str, min_len: usize, max_len: usize) -> Gen<String> {
    let chars: Vec<char> = charset.chars().collect();
    assert!(!chars.is_empty());
    let chars2 = chars.clone();
    Gen::new(move |rng| {
        let n = rng.gen_range_u64(min_len as u64, max_len as u64) as usize;
        (0..n).map(|_| *rng.choose(&chars)).collect()
    })
    .with_shrink(move |s: &String| {
        let v: Vec<char> = s.chars().collect();
        let mut out = Vec::new();
        if v.len() > min_len {
            out.push(v[..v.len() - 1].iter().collect());
            if v.len() / 2 >= min_len {
                out.push(v[..v.len() / 2].iter().collect());
            }
        }
        if let Some(first) = chars2.first() {
            for (i, c) in v.iter().enumerate() {
                if c != first {
                    let mut copy = v.clone();
                    copy[i] = *first;
                    out.push(copy.into_iter().collect());
                }
            }
        }
        out
    })
}

/// Printable-ASCII string (space through `~`), the workhorse replacement
/// for proptest's `"\\PC*"` pattern.
pub fn ascii_printable(max_len: usize) -> Gen<String> {
    string_of(
        " !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~",
        0,
        max_len,
    )
}

/// Lowercase identifier: one `[a-z]` head and `[a-z0-9_]` tail of length
/// up to `max_tail`.
pub fn identifier(max_tail: usize) -> Gen<String> {
    let head = string_of("abcdefghijklmnopqrstuvwxyz", 1, 1);
    let tail = string_of("abcdefghijklmnopqrstuvwxyz0123456789_", 0, max_tail);
    tuple2(head, tail).map(|(h, t)| format!("{h}{t}"))
}

/// Recursive generator: `depth` levels of `branch` over `leaf`. The
/// closure receives the generator for the next-smaller depth.
pub fn recursive<T: Clone + 'static>(
    leaf: Gen<T>,
    depth: u32,
    branch: impl Fn(Gen<T>) -> Gen<T>,
) -> Gen<T> {
    let mut g = leaf;
    for _ in 0..depth {
        g = branch(g);
    }
    g
}

/// Outcome of one property execution.
fn run_once<T>(prop: &impl Fn(&T), input: &T) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| prop(input))) {
        Ok(()) => Ok(()),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panic (non-string payload)".to_string());
            Err(msg)
        }
    }
}

/// Run `prop` over `cfg.cases` inputs drawn from `gen`; on failure,
/// shrink and panic with the minimal counterexample.
///
/// `name` seeds the RNG (mixed with `cfg.seed`) and labels the report.
pub fn check<T: Clone + Debug + 'static>(name: &str, cfg: &Config, gen: &Gen<T>, prop: impl Fn(&T)) {
    let mut seed = cfg.seed;
    for b in name.bytes() {
        seed = seed.wrapping_mul(0x100000001b3).wrapping_add(u64::from(b));
    }
    let mut rng = Rng::new(seed);
    for case in 0..cfg.cases {
        let input = gen.sample(&mut rng);
        if let Err(first_msg) = run_once(&prop, &input) {
            let (min_input, min_msg, steps) = shrink_failure(cfg, gen, &prop, input, first_msg);
            panic!(
                "property '{name}' failed (case {case}/{}, {steps} shrink steps)\n\
                 minimal input: {min_input:?}\n\
                 failure: {min_msg}",
                cfg.cases
            );
        }
    }
}

fn shrink_failure<T: Clone + Debug + 'static>(
    cfg: &Config,
    gen: &Gen<T>,
    prop: &impl Fn(&T),
    mut current: T,
    mut msg: String,
) -> (T, String, u32) {
    let mut steps = 0;
    'outer: while steps < cfg.max_shrink_steps {
        for cand in gen.shrink(&current) {
            steps += 1;
            if steps >= cfg.max_shrink_steps {
                break 'outer;
            }
            if let Err(m) = run_once(prop, &cand) {
                current = cand;
                msg = m;
                continue 'outer;
            }
        }
        break; // no candidate still fails: local minimum
    }
    (current, msg, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let cfg = Config::with_cases(64);
        check("nonneg", &cfg, &uint_range(0, 100), |&v| assert!(v <= 100));
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        let cfg = Config::with_cases(256);
        let gen = int_range(0, 10_000);
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("le-500", &cfg, &gen, |&v| assert!(v <= 500));
        }));
        let msg = result
            .unwrap_err()
            .downcast_ref::<String>()
            .cloned()
            .unwrap();
        // The minimal failing integer is 501.
        assert!(msg.contains("minimal input: 501"), "{msg}");
    }

    #[test]
    fn vec_shrinks_toward_empty() {
        let cfg = Config::with_cases(64);
        let gen = vec_of(int_range(0, 9), 0, 20);
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("short", &cfg, &gen, |v: &Vec<i64>| assert!(v.len() < 3));
        }));
        let msg = result
            .unwrap_err()
            .downcast_ref::<String>()
            .cloned()
            .unwrap();
        // Minimal counterexample is a length-3 vector of zeros.
        assert!(msg.contains("[0, 0, 0]"), "{msg}");
    }

    #[test]
    fn deterministic_given_name_and_seed() {
        // Two identically-named runs must see identical inputs.
        use std::cell::RefCell;
        let cfg = Config::with_cases(16);
        let gen = any_u64();
        let a = RefCell::new(Vec::new());
        check("det", &cfg, &gen, |&v| a.borrow_mut().push(v));
        let b = RefCell::new(Vec::new());
        check("det", &cfg, &gen, |&v| b.borrow_mut().push(v));
        assert_eq!(*a.borrow(), *b.borrow());
        assert_eq!(a.borrow().len(), 16);
    }

    #[test]
    fn identifier_shape() {
        let mut rng = Rng::new(1);
        let gen = identifier(6);
        for _ in 0..200 {
            let s = gen.sample(&mut rng);
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(s.len() <= 7);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn one_of_draws_all_branches() {
        let mut rng = Rng::new(2);
        let gen = Gen::one_of(vec![Gen::just(1i64), Gen::just(2), Gen::just(3)]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(gen.sample(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
