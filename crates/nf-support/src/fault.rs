//! Deterministic fault injection for the shard runtime.
//!
//! A [`FaultPlan`] is a finite set of [`FaultPoint`]s, each addressed by
//! `(shard, nth)` — *the `nth` packet shard `shard` handles*, counting
//! from 0 in that shard's own arrival order. Addressing by per-shard
//! ordinal (rather than global sequence number) makes a plan
//! deterministic across every execution mode: a shard receives its
//! packets in the same order whether the run is threaded, simulated
//! sequentially, or collapsed to a single shard, so the same plan
//! always hits the same packets.
//!
//! Plans are written in a tiny spec grammar (`nfactor run
//! --fault-plan <spec>`):
//!
//! ```text
//! plan  := point (',' point)*
//! point := kind '@' shard ':' nth (':' arg)?
//! kind  := 'panic' | 'err' | 'delay' | 'ring-overflow' | 'garbage'
//! shard := decimal shard index ('*' = every shard)
//! nth   := decimal per-shard packet ordinal, 0-based
//! arg   := decimal (delay: microseconds, default 200;
//!                   ring-overflow: forced-full attempts, default 2^20)
//! ```
//!
//! The kinds:
//!
//! * `panic` — the worker panics mid-eval; the supervision layer must
//!   catch it, roll back, and quarantine the packet.
//! * `err` — the evaluator reports a synthetic runtime error; on the
//!   compiled backend this exercises the compiled→model fallback, on
//!   the other backends the quarantine.
//! * `delay` — the worker stalls before eval (exposes ordering bugs and
//!   ring back-pressure; never changes observable output).
//! * `ring-overflow` — the dispatcher sees the shard's ring as full for
//!   `arg` consecutive attempts (exercises bounded retry-with-backoff
//!   and, past the retry deadline, drop-with-accounting).
//! * `garbage` — the packet is scrambled in flight (simulated memory
//!   corruption); the worker detects and quarantines it without eval.
//!
//! [`FaultPlan::random`] derives a seeded plan from the [`Rng`], so
//! property tests can sweep arbitrary plans reproducibly.

use crate::rng::Rng;
use std::collections::BTreeMap;
use std::fmt;

/// What to inject at a fault point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the worker's eval path.
    Panic,
    /// Synthetic evaluator error (string error, no unwinding).
    EvalError,
    /// Stall the worker for the given number of microseconds.
    Delay(u64),
    /// Dispatcher sees the ring as full for this many attempts.
    RingOverflow(u64),
    /// Scramble the packet in flight; detected and quarantined.
    Garbage,
}

impl FaultKind {
    /// The spec-grammar keyword.
    pub fn keyword(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::EvalError => "err",
            FaultKind::Delay(_) => "delay",
            FaultKind::RingOverflow(_) => "ring-overflow",
            FaultKind::Garbage => "garbage",
        }
    }

    /// Whether the fault is injected on the dispatcher side (before the
    /// packet reaches a worker).
    pub fn dispatch_side(&self) -> bool {
        matches!(self, FaultKind::RingOverflow(_) | FaultKind::Garbage)
    }
}

/// Where a fault applies: one shard, or every shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShardSel {
    /// A specific shard index.
    One(usize),
    /// Every shard (`*` in the spec).
    Any,
}

impl ShardSel {
    fn matches(&self, shard: usize) -> bool {
        match self {
            ShardSel::One(s) => *s == shard,
            ShardSel::Any => true,
        }
    }
}

/// One injection: do `kind` when shard `shard` handles its `nth`
/// packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPoint {
    /// Which shard(s) the fault targets.
    pub shard: ShardSel,
    /// The per-shard packet ordinal (0-based) the fault fires on.
    pub nth: u64,
    /// What to inject.
    pub kind: FaultKind,
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.shard {
            ShardSel::One(s) => write!(f, "{}@{s}:{}", self.kind.keyword(), self.nth)?,
            ShardSel::Any => write!(f, "{}@*:{}", self.kind.keyword(), self.nth)?,
        }
        match self.kind {
            FaultKind::Delay(us) => write!(f, ":{us}"),
            FaultKind::RingOverflow(n) => write!(f, ":{n}"),
            _ => Ok(()),
        }
    }
}

/// Default stall for `delay` points without an argument (µs).
pub const DEFAULT_DELAY_US: u64 = 200;
/// Default forced-full attempts for `ring-overflow` points without an
/// argument — far past any sane retry deadline, so the packet drops.
pub const DEFAULT_OVERFLOW_ATTEMPTS: u64 = 1 << 20;

/// A deterministic set of fault points.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    points: Vec<FaultPoint>,
    /// `(shard, nth) -> indices into points` for exact-shard points;
    /// wildcard points are indexed by `nth` alone.
    exact: BTreeMap<(usize, u64), Vec<usize>>,
    any: BTreeMap<u64, Vec<usize>>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Add one fault point.
    pub fn push(&mut self, p: FaultPoint) {
        let i = self.points.len();
        match p.shard {
            ShardSel::One(s) => self.exact.entry((s, p.nth)).or_default().push(i),
            ShardSel::Any => self.any.entry(p.nth).or_default().push(i),
        }
        self.points.push(p);
    }

    /// All points, in insertion order.
    pub fn points(&self) -> &[FaultPoint] {
        &self.points
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The faults that fire when `shard` handles its `nth` packet, in
    /// insertion order. The point indices already encode the shard
    /// match: exact entries are keyed by `(shard, nth)`, wildcard
    /// entries by `nth` alone and match every shard.
    pub fn at(&self, shard: usize, nth: u64) -> impl Iterator<Item = FaultKind> + '_ {
        debug_assert!(self
            .exact
            .get(&(shard, nth))
            .map(|v| v.iter().all(|&i| self.points[i].shard.matches(shard)))
            .unwrap_or(true));
        let mut idx: Vec<usize> = self
            .exact
            .get(&(shard, nth))
            .into_iter()
            .chain(self.any.get(&nth))
            .flatten()
            .copied()
            .collect();
        idx.sort_unstable();
        idx.into_iter().map(|i| self.points[i].kind)
    }

    /// Shorthand: does any *eval-side* fault fire at `(shard, nth)`?
    pub fn fires(&self, shard: usize, nth: u64) -> bool {
        self.at(shard, nth).next().is_some()
    }

    /// Parse the spec grammar (see the module docs). Whitespace around
    /// points is tolerated; an empty spec is an empty plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for raw in spec.split(',') {
            let point = raw.trim();
            if point.is_empty() {
                continue;
            }
            let (kind_kw, addr) = point
                .split_once('@')
                .ok_or_else(|| format!("fault point `{point}`: expected kind@shard:nth"))?;
            let mut parts = addr.split(':');
            let shard_raw = parts
                .next()
                .ok_or_else(|| format!("fault point `{point}`: missing shard"))?;
            let nth_raw = parts
                .next()
                .ok_or_else(|| format!("fault point `{point}`: missing packet ordinal"))?;
            let arg_raw = parts.next();
            if parts.next().is_some() {
                return Err(format!("fault point `{point}`: too many `:` segments"));
            }
            let shard = if shard_raw == "*" {
                ShardSel::Any
            } else {
                ShardSel::One(shard_raw.parse::<usize>().map_err(|_| {
                    format!("fault point `{point}`: bad shard `{shard_raw}`")
                })?)
            };
            let nth = nth_raw
                .parse::<u64>()
                .map_err(|_| format!("fault point `{point}`: bad ordinal `{nth_raw}`"))?;
            let arg = match arg_raw {
                Some(a) => Some(a.parse::<u64>().map_err(|_| {
                    format!("fault point `{point}`: bad argument `{a}`")
                })?),
                None => None,
            };
            let kind = match kind_kw.trim() {
                "panic" => FaultKind::Panic,
                "err" => FaultKind::EvalError,
                "delay" => FaultKind::Delay(arg.unwrap_or(DEFAULT_DELAY_US)),
                "ring-overflow" => {
                    FaultKind::RingOverflow(arg.unwrap_or(DEFAULT_OVERFLOW_ATTEMPTS))
                }
                "garbage" => FaultKind::Garbage,
                other => {
                    return Err(format!(
                        "fault point `{point}`: unknown kind `{other}` \
                         (panic, err, delay, ring-overflow, garbage)"
                    ))
                }
            };
            if !matches!(kind, FaultKind::Delay(_) | FaultKind::RingOverflow(_))
                && arg.is_some()
            {
                return Err(format!(
                    "fault point `{point}`: `{kind_kw}` takes no argument"
                ));
            }
            plan.push(FaultPoint { shard, nth, kind });
        }
        Ok(plan)
    }

    /// Render back to the spec grammar (parse ∘ render is identity).
    pub fn render(&self) -> String {
        self.points
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }

    /// A seeded random plan: `count` points over `shards` shards and
    /// per-shard ordinals below `max_nth`. Same seed, same plan.
    pub fn random(seed: u64, shards: usize, max_nth: u64, count: usize) -> FaultPlan {
        let mut rng = Rng::new(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..count {
            let shard = ShardSel::One(rng.gen_index(shards.max(1)));
            let nth = rng.gen_below(max_nth.max(1));
            let kind = match rng.gen_below(5) {
                0 => FaultKind::Panic,
                1 => FaultKind::EvalError,
                2 => FaultKind::Delay(rng.gen_below(300) + 1),
                3 => FaultKind::RingOverflow(DEFAULT_OVERFLOW_ATTEMPTS),
                _ => FaultKind::Garbage,
            };
            plan.push(FaultPoint { shard, nth, kind });
        }
        plan
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_roundtrip() {
        let spec = "panic@1:3,err@0:7,delay@*:2:500,ring-overflow@2:10:64,garbage@3:0";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.points().len(), 5);
        assert_eq!(plan.render(), spec);
        assert_eq!(FaultPlan::parse(&plan.render()).unwrap(), plan);
    }

    #[test]
    fn addressing_is_per_shard_ordinal() {
        let plan = FaultPlan::parse("panic@1:3").unwrap();
        assert!(plan.fires(1, 3));
        assert!(!plan.fires(1, 2));
        assert!(!plan.fires(0, 3));
        let wild = FaultPlan::parse("garbage@*:5").unwrap();
        assert!(wild.fires(0, 5) && wild.fires(7, 5));
        assert!(!wild.fires(7, 4));
    }

    #[test]
    fn defaults_applied_when_argument_omitted() {
        let plan = FaultPlan::parse("delay@0:1,ring-overflow@0:2").unwrap();
        assert_eq!(
            plan.points()[0].kind,
            FaultKind::Delay(DEFAULT_DELAY_US)
        );
        assert_eq!(
            plan.points()[1].kind,
            FaultKind::RingOverflow(DEFAULT_OVERFLOW_ATTEMPTS)
        );
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "panic",
            "panic@",
            "panic@x:1",
            "panic@1:y",
            "panic@1:2:3",
            "boom@1:2",
            "err@1:2:9",
            "panic@1:2:3:4",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ").unwrap().is_empty());
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = FaultPlan::random(99, 4, 50, 8);
        let b = FaultPlan::random(99, 4, 50, 8);
        assert_eq!(a, b);
        assert_eq!(a.points().len(), 8);
        let c = FaultPlan::random(100, 4, 50, 8);
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn multiple_faults_at_one_point_fire_in_insertion_order() {
        let plan = FaultPlan::parse("delay@0:1:50,panic@0:1").unwrap();
        let kinds: Vec<FaultKind> = plan.at(0, 1).collect();
        assert_eq!(kinds, vec![FaultKind::Delay(50), FaultKind::Panic]);
    }
}
