//! A small JSON document type with rendering and parsing.
//!
//! [`Value`] replaces the `serde` derives the workspace used to carry:
//! model types implement [`ToJson`] / [`FromJson`] by hand, which keeps
//! the wire format explicit and reviewable (the `.nfm` text format in
//! `nf-model::text` remains the human-facing serialization; JSON is the
//! machine-facing one, used by bench reports and model interchange).
//!
//! Objects preserve insertion order (they are association lists, not
//! hash maps) so rendering is deterministic.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (JSON numbers without fraction/exponent).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// Errors from [`Value::parse`] or [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input where parsing failed (0 for conversion
    /// errors).
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// A conversion (non-parse) error.
    pub fn msg(m: impl Into<String>) -> JsonError {
        JsonError {
            msg: m.into(),
            offset: 0,
        }
    }
}

/// Serialize a type to a [`Value`].
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Value;
}

/// Deserialize a type from a [`Value`].
pub trait FromJson: Sized {
    /// Rebuild from JSON; errors carry a message naming the ill-formed
    /// part.
    fn from_json(v: &Value) -> Result<Self, JsonError>;
}

impl Value {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required-field lookup with a typed error.
    pub fn field(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::msg(format!("missing field '{key}'")))
    }

    /// The integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(es) => Some(es),
            _ => None,
        }
    }

    /// Render to compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * depth),
                " ".repeat(w * (depth + 1)),
            ),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::Float(v) => {
                if v.is_finite() {
                    // Keep a float marker so the value re-parses as a
                    // float, not an integer.
                    let s = format!("{v}");
                    let has_marker = s.contains(['.', 'e', 'E']);
                    out.push_str(&s);
                    if !has_marker {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/inf
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(es) => {
                if es.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    e.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (full input must be consumed).
    pub fn parse(src: &str) -> Result<Value, JsonError> {
        let bytes = src.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                msg: "trailing input".into(),
                offset: pos,
            });
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err(msg: impl Into<String>, pos: usize) -> JsonError {
    JsonError {
        msg: msg.into(),
        offset: pos,
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(err(format!("expected '{}'", c as char), *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut es = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(es));
            }
            loop {
                es.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(es));
                    }
                    _ => return Err(err("expected ',' or ']'", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(err("expected ',' or '}'", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(err(format!("expected '{lit}'"), *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let s = std::str::from_utf8(hex)
                            .map_err(|_| err("bad \\u escape", *pos))?;
                        let cp = u32::from_str_radix(s, 16)
                            .map_err(|_| err("bad \\u escape", *pos))?;
                        // Surrogates are replaced; the workspace never
                        // emits them.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| err("invalid utf-8", *pos))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    let mut is_float = false;
    if b.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).unwrap();
    if text.is_empty() || text == "-" {
        return Err(err("expected a value", start));
    }
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| err("bad number", start))
    } else {
        // Fall back to float on i64 overflow.
        match text.parse::<i64>() {
            Ok(v) => Ok(Value::Int(v)),
            Err(_) => text
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| err("bad number", start)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Str("hello \"world\"\n\t\\".into()),
            Value::Str("unicode: ⊤ λ".into()),
        ] {
            assert_eq!(Value::parse(&v.render()).unwrap(), v, "{}", v.render());
        }
    }

    #[test]
    fn float_roundtrips() {
        for f in [0.5, -123.25, 1e18] {
            let v = Value::Float(f);
            match Value::parse(&v.render()).unwrap() {
                Value::Float(g) => assert_eq!(g, f),
                other => panic!("expected float, got {other:?}"),
            }
        }
        // Whole floats keep a fraction marker so the type survives.
        assert_eq!(Value::Float(3.0).render(), "3.0");
    }

    #[test]
    fn containers_roundtrip() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::Int(1), Value::Null])),
            ("b".into(), Value::Object(vec![])),
            ("empty".into(), Value::Array(vec![])),
        ]);
        assert_eq!(Value::parse(&v.render()).unwrap(), v);
        assert_eq!(Value::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Value::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        match &v {
            Value::Object(fields) => {
                assert_eq!(fields[0].0, "z");
                assert_eq!(fields[1].0, "a");
            }
            _ => unreachable!(),
        }
        assert_eq!(v.get("z"), Some(&Value::Int(1)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_errors_carry_offsets() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        let e = Value::parse("[1, oops]").unwrap_err();
        assert!(e.offset >= 4, "{e}");
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Value::parse(" { \"k\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(
            v,
            Value::Object(vec![(
                "k".into(),
                Value::Array(vec![Value::Int(1), Value::Int(2)])
            )])
        );
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(
            Value::parse("\"\\u0041\\u00e9\"").unwrap(),
            Value::Str("Aé".into())
        );
    }
}
