//! In-tree support substrate for the NFactor workspace.
//!
//! The NFactor pipeline (slicing → symbolic execution → model
//! refactoring) is pure in-memory program analysis; nothing in it needs a
//! crates.io dependency. This crate supplies, with zero external
//! dependencies, the four facilities the workspace previously pulled from
//! the network, so a clean checkout builds and tests fully offline:
//!
//! * [`rng`] — a seeded SplitMix64 / xoshiro256** PRNG (replaces `rand`).
//! * [`check`] — a minimal property-testing harness with generators,
//!   bounded shrinking, and deterministic seeds (replaces `proptest`).
//! * [`bench`] — a `harness = false` micro-benchmark runner with warmup /
//!   iteration control and JSON reports (replaces `criterion`).
//! * [`json`] — a small JSON `Value` with `render` / `parse` and the
//!   [`json::ToJson`] / [`json::FromJson`] traits model types implement by
//!   hand (replaces the `serde` derives).
//! * [`bytes`] — big-endian append helpers for `Vec<u8>` wire buffers
//!   (replaces the `bytes` crate).
//! * [`budget`] — wall-clock / path / solver-call budgets threaded
//!   through the pipeline for graceful degradation under a deadline.
//! * [`spsc`] — a bounded single-producer/single-consumer ring buffer
//!   (the `nf-shard` dispatcher→worker queues).
//! * [`fault`] — a seeded, deterministic fault-injection plan
//!   (panic/error/delay/ring-overflow/garbage points) consumed by the
//!   `nf-shard` supervisor and the chaos differential suite.
//! * [`sketch`] — a space-saving top-K frequency sketch (the `nf-shard`
//!   hot-key profiler behind `shard.N.hotkeys`).
//! * [`ring`] — a bounded overwrite-oldest ring log (the `nf-shard`
//!   flight recorder's storage).
//! * [`workload`] — the pull-based [`workload::WorkloadSource`] trait and
//!   the length-prefixed record framing behind the `.nfw` trace format
//!   (the `nf-shard` streaming packet path).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod budget;
pub mod bytes;
pub mod check;
pub mod fault;
pub mod json;
pub mod ring;
pub mod rng;
pub mod sketch;
pub mod spsc;
pub mod workload;

pub use budget::Budget;
pub use fault::{FaultKind, FaultPlan};
pub use json::{FromJson, JsonError, ToJson, Value};
pub use rng::Rng;
pub use workload::{SliceSource, WorkloadError, WorkloadSource};
