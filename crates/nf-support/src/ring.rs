//! A bounded overwrite-oldest ring log — the storage behind the shard
//! runtime's flight recorder.
//!
//! Unlike [`crate::spsc`] (a channel), a [`RingLog`] is a plain
//! single-owner container: pushes past capacity silently evict the
//! oldest entry, and the total number of pushes is tracked so a reader
//! can tell how much history was shed. Iteration is oldest-first.

use std::collections::VecDeque;

/// A bounded log retaining only the most recent `capacity` entries.
#[derive(Debug, Clone)]
pub struct RingLog<T> {
    cap: usize,
    buf: VecDeque<T>,
    pushed: u64,
}

impl<T> RingLog<T> {
    /// An empty log retaining at most `capacity` entries (clamped up
    /// to 1).
    pub fn new(capacity: usize) -> RingLog<T> {
        let cap = capacity.max(1);
        RingLog { cap, buf: VecDeque::with_capacity(cap), pushed: 0 }
    }

    /// Append `value`, evicting the oldest retained entry when full.
    pub fn push(&mut self, value: T) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(value);
        self.pushed += 1;
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum retained entries.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total pushes over the log's lifetime (`pushed - len` entries
    /// have been evicted).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Iterate retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Consume the log, yielding retained entries oldest-first.
    pub fn into_vec(self) -> Vec<T> {
        self.buf.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_only_the_newest_entries() {
        let mut r = RingLog::new(3);
        for i in 0..10 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.pushed(), 10);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(r.into_vec(), vec![7, 8, 9]);
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut r = RingLog::new(0);
        r.push('a');
        r.push('b');
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.into_vec(), vec!['b']);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut r = RingLog::new(8);
        r.push(1);
        r.push(2);
        assert!(!r.is_empty());
        assert_eq!(r.len(), 2);
        assert_eq!(r.pushed(), 2);
    }
}
