//! Seeded pseudo-random number generation.
//!
//! [`Rng`] is xoshiro256** (Blackman & Vigna) seeded through SplitMix64,
//! the standard pairing: SplitMix64 expands an arbitrary 64-bit seed into
//! the 256-bit xoshiro state without fixed points, and xoshiro256** passes
//! BigCrush while running in a handful of cycles per draw. Everything the
//! workspace draws — packets, property-test inputs — flows through this
//! one deterministic generator, so a seed reproduces a run exactly on any
//! platform.

/// Advance a SplitMix64 state and return the next output.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A seeded xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed (SplitMix64 expansion).
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot
        // produce four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e3779b97f4a7c15;
        }
        Rng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `u8`.
    pub fn gen_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// A uniform `u16`.
    pub fn gen_u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// A uniform `u64` in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire-style widening multiply with rejection to avoid
    /// modulo bias.
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below(0)");
        // Lemire's widening-multiply method: hi of x*n is uniform in
        // [0, n) once draws in the biased sliver (lo < (-n) mod n) are
        // rejected.
        let threshold = n.wrapping_neg() % n;
        loop {
            let wide = u128::from(self.next_u64()) * u128::from(n);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// A uniform `u64` in the inclusive range `[lo, hi]`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_below(span + 1)
    }

    /// A uniform `i64` in the inclusive range `[lo, hi]`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = lo.abs_diff(hi);
        if span == u64::MAX {
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.gen_below(span + 1) as i64)
    }

    /// A uniform `usize` in `[0, n)`. Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_below(n as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 bits of mantissa: draw a uniform float in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// Fill a byte slice with uniform bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        let mut chunks = out.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, pool: &'a [T]) -> &'a T {
        &pool[self.gen_index(pool.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Cross-checked against the reference C implementation seeded via
        // splitmix64(0): state = {e220a8397b1dcdaf, 6e789e6aa1b965f4,
        // 06c45d188009454f, f88bb8a8724c81ec}.
        let mut sm = 0u64;
        assert_eq!(splitmix64(&mut sm), 0xe220a8397b1dcdaf);
        assert_eq!(splitmix64(&mut sm), 0x6e789e6aa1b965f4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..2000 {
            let v = r.gen_range_u64(10, 20);
            assert!((10..=20).contains(&v));
            let w = r.gen_range_i64(-5, 5);
            assert!((-5..=5).contains(&w));
            let i = r.gen_index(3);
            assert!(i < 3);
        }
    }

    #[test]
    fn full_range_draws() {
        let mut r = Rng::new(9);
        let _ = r.gen_range_u64(0, u64::MAX);
        let _ = r.gen_range_i64(i64::MIN, i64::MAX);
    }

    #[test]
    fn bool_bias_roughly_holds() {
        let mut r = Rng::new(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }

    #[test]
    fn fill_covers_tail() {
        let mut r = Rng::new(5);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        // 13 bytes from a seeded draw: all-zero is (2^-104)-improbable.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_below_is_unbiased_over_small_modulus() {
        let mut r = Rng::new(11);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[r.gen_below(3) as usize] += 1;
        }
        for c in counts {
            assert!((9000..11000).contains(&c), "skewed: {counts:?}");
        }
    }
}
