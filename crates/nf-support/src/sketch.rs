//! A space-saving top-K frequency sketch (Metwally et al.), the
//! zero-dependency hot-key profiler behind `nf-shard`'s
//! `shard.N.hotkeys` telemetry.
//!
//! The sketch keeps at most `cap` counters. An offered key that is
//! already tracked increments its counter; a new key takes a free slot
//! while one exists, and otherwise *replaces* the minimum-count slot,
//! inheriting its count as the new entry's error bound. Two guarantees
//! follow, both pinned by property tests:
//!
//! * **No undercounting:** for every tracked key, `count >=` the key's
//!   true frequency (the inherited minimum can only overestimate).
//! * **Heavy hitters are present:** any key whose true frequency
//!   exceeds `total / cap` (the [`TopK::guarantee`] threshold) is
//!   guaranteed to be tracked — the property skew-aware shard
//!   rebalancing relies on.
//!
//! `cap` is small (8–16 for the shard profiler), so slots are a plain
//! `Vec` scanned linearly: one cache line beats a heap for these sizes,
//! and the structure stays allocation-free after construction apart
//! from key clones.

/// One tracked key with its (over-)estimate and error bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopEntry<K> {
    /// The tracked key.
    pub key: K,
    /// Estimated frequency; never below the true frequency.
    pub count: u64,
    /// Maximum overestimate (the count inherited when the key evicted
    /// a previous minimum). `count - err` is a lower bound on the true
    /// frequency.
    pub err: u64,
}

/// The space-saving sketch. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct TopK<K> {
    cap: usize,
    slots: Vec<TopEntry<K>>,
    total: u64,
}

impl<K: Eq + Clone> TopK<K> {
    /// A sketch tracking at most `cap` keys (`cap` is clamped up to 1).
    pub fn new(cap: usize) -> TopK<K> {
        let cap = cap.max(1);
        TopK { cap, slots: Vec::with_capacity(cap), total: 0 }
    }

    /// Count one occurrence of `key`.
    pub fn offer(&mut self, key: K) {
        self.offer_n(key, 1);
    }

    /// Count `n` occurrences of `key` at once.
    pub fn offer_n(&mut self, key: K, n: u64) {
        if n == 0 {
            return;
        }
        self.total += n;
        if let Some(slot) = self.slots.iter_mut().find(|s| s.key == key) {
            slot.count += n;
            return;
        }
        if self.slots.len() < self.cap {
            self.slots.push(TopEntry { key, count: n, err: 0 });
            return;
        }
        // Evict the current minimum; the newcomer inherits its count as
        // the error bound (it may have occurred up to `min` times while
        // untracked, never more). `None` only with a zero-cap sketch,
        // which tracks nothing by construction.
        if let Some(min) = self.slots.iter_mut().min_by_key(|s| s.count) {
            min.key = key;
            min.err = min.count;
            min.count += n;
        }
    }

    /// Total observations offered.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of keys currently tracked.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The heavy-hitter threshold: any key with true frequency strictly
    /// above `total / cap` is guaranteed to be tracked.
    pub fn guarantee(&self) -> u64 {
        self.total / self.cap as u64
    }

    /// True when `key` is currently tracked.
    pub fn contains(&self, key: &K) -> bool {
        self.slots.iter().any(|s| s.key == *key)
    }

    /// The estimated count for `key`, if tracked.
    pub fn estimate(&self, key: &K) -> Option<u64> {
        self.slots.iter().find(|s| s.key == *key).map(|s| s.count)
    }

    /// Tracked entries, heaviest first (ties keep insertion order).
    pub fn entries(&self) -> Vec<TopEntry<K>> {
        let mut out = self.slots.clone();
        out.sort_by(|a, b| b.count.cmp(&a.count));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut s = TopK::new(4);
        for k in ["a", "b", "a", "c", "a", "b"] {
            s.offer(k);
        }
        assert_eq!(s.estimate(&"a"), Some(3));
        assert_eq!(s.estimate(&"b"), Some(2));
        assert_eq!(s.estimate(&"c"), Some(1));
        assert_eq!(s.total(), 6);
        let e = s.entries();
        assert_eq!(e[0].key, "a");
        assert_eq!(e[0].err, 0, "no eviction happened, estimates are exact");
    }

    #[test]
    fn eviction_inherits_minimum_as_error() {
        let mut s = TopK::new(2);
        s.offer(1u64);
        s.offer(2);
        s.offer(2);
        s.offer(3); // evicts key 1 (count 1): key 3 enters at count 2, err 1
        assert!(!s.contains(&1));
        assert_eq!(s.estimate(&3), Some(2));
        assert_eq!(s.entries().iter().find(|e| e.key == 3).unwrap().err, 1);
    }

    #[test]
    fn heavy_hitter_survives_noise() {
        let mut s = TopK::new(4);
        for i in 0..300u64 {
            s.offer(1000); // the hot key, every other packet
            s.offer(i); // 300 distinct cold keys
        }
        assert!(s.contains(&1000));
        assert!(s.estimate(&1000).unwrap() >= 300, "never undercounts");
    }

    #[test]
    fn cap_clamped_and_offer_zero_is_noop() {
        let mut s: TopK<u8> = TopK::new(0);
        s.offer_n(7, 0);
        assert!(s.is_empty());
        assert_eq!(s.total(), 0);
        s.offer(7);
        assert_eq!(s.len(), 1);
    }
}
