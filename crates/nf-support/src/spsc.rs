//! A bounded single-producer/single-consumer ring buffer.
//!
//! The shard runtime (`nf-shard`) feeds each worker thread through one of
//! these rings: the dispatcher is the only producer and the worker the
//! only consumer, so the ring needs no multi-producer machinery — just a
//! fixed slot array and two monotonically increasing cursors. The
//! producer alone advances `tail`, the consumer alone advances `head`;
//! each side reads the other's cursor with `Acquire` ordering, which is
//! the entire synchronisation protocol for the *cursors*.
//!
//! This crate is `#![forbid(unsafe_code)]`, so the slot array cannot be
//! the usual `UnsafeCell` construction. Each slot is instead a
//! `Mutex<Option<T>>`: the cursor protocol guarantees a slot is never
//! contended (the producer only touches slots it owns, i.e. `tail - head
//! < capacity`, and the consumer only touches published ones), so every
//! slot lock is uncontended in steady state and compiles down to one
//! atomic exchange — "lock-free-ish", which is all the shard engine
//! needs. Poisoning is impossible to observe from outside (no user code
//! runs under the lock), but is still handled without panicking.
//!
//! Blocking operations back off by spinning briefly and then yielding
//! the thread; there are no condvars, so a ring never deadlocks on a
//! lost wakeup. Dropping either endpoint disconnects the channel:
//! `recv` drains what was already published, `send` fails fast.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Error returned by [`Producer::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError {
    /// The ring is full; the value is handed back.
    Full,
    /// The consumer is gone; the value is handed back.
    Disconnected,
}

/// Error returned by [`Consumer::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing published right now.
    Empty,
    /// The producer is gone and everything published has been drained.
    Disconnected,
}

struct Shared<T> {
    slots: Vec<Mutex<Option<T>>>,
    /// Next sequence number the consumer will take.
    head: AtomicUsize,
    /// Next sequence number the producer will fill.
    tail: AtomicUsize,
    producer_gone: AtomicBool,
    consumer_gone: AtomicBool,
}

impl<T> Shared<T> {
    fn slot(&self, seq: usize) -> &Mutex<Option<T>> {
        &self.slots[seq % self.slots.len()]
    }
}

/// Take the slot lock, recovering from (unobservable) poisoning.
fn lock<T>(m: &Mutex<Option<T>>) -> std::sync::MutexGuard<'_, Option<T>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Bounded exponential backoff: spin with doubling pause lengths for
/// the first few rounds, then yield the thread on every further round.
///
/// Shared by the ring's blocking `send`/`recv` loops and the shard
/// supervisor's bounded retry path (`nf-shard`): the *pause* is bounded
/// (it never grows past a thread yield, so a waiting side reacts
/// quickly once the other side makes progress), while the caller
/// decides how many rounds to spend before giving up — the ring's
/// blocking operations retry forever, the supervisor's dispatch retry
/// drops with accounting past its deadline.
#[derive(Debug, Default)]
pub struct Backoff {
    round: u32,
}

impl Backoff {
    /// A fresh backoff at round 0.
    pub fn new() -> Backoff {
        Backoff { round: 0 }
    }

    /// Rounds spent so far.
    pub fn rounds(&self) -> u32 {
        self.round
    }

    /// Whether the next [`snooze`](Backoff::snooze) will yield the
    /// thread rather than spin.
    pub fn yields(&self) -> bool {
        self.round >= SPIN_ROUNDS
    }

    /// Wait one round: spin `2^round` times while `round <
    /// SPIN_ROUNDS`, otherwise yield.
    pub fn snooze(&mut self) {
        if self.round < SPIN_ROUNDS {
            for _ in 0..(1u32 << self.round) {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        self.round = self.round.saturating_add(1);
    }

    /// Back to round 0 (progress was made).
    pub fn reset(&mut self) {
        self.round = 0;
    }
}

/// Rounds spent spinning before [`Backoff`] switches to yielding.
const SPIN_ROUNDS: u32 = 6;

/// The sending half; exactly one per ring.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; exactly one per ring.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

/// Create a ring with room for `capacity` in-flight values
/// (`capacity` is clamped up to 1).
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let capacity = capacity.max(1);
    let shared = Arc::new(Shared {
        slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        producer_gone: AtomicBool::new(false),
        consumer_gone: AtomicBool::new(false),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
        },
        Consumer { shared },
    )
}

impl<T> Producer<T> {
    /// Publish `value` if there is room, without blocking.
    pub fn try_send(&self, value: T) -> Result<(), (T, TrySendError)> {
        let s = &*self.shared;
        if s.consumer_gone.load(Ordering::Acquire) {
            return Err((value, TrySendError::Disconnected));
        }
        let tail = s.tail.load(Ordering::Relaxed);
        let head = s.head.load(Ordering::Acquire);
        if tail - head >= s.slots.len() {
            return Err((value, TrySendError::Full));
        }
        *lock(s.slot(tail)) = Some(value);
        s.tail.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Publish `value`, blocking (spin + yield) while the ring is full.
    /// Fails only when the consumer has been dropped.
    pub fn send(&self, mut value: T) -> Result<(), T> {
        let mut backoff = Backoff::new();
        loop {
            match self.try_send(value) {
                Ok(()) => return Ok(()),
                Err((v, TrySendError::Disconnected)) => return Err(v),
                Err((v, TrySendError::Full)) => {
                    value = v;
                    backoff.snooze();
                }
            }
        }
    }

    /// In-flight values right now (racy, for metrics only).
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.tail
            .load(Ordering::Relaxed)
            .saturating_sub(s.head.load(Ordering::Relaxed))
    }

    /// Whether the ring is currently empty (racy, for metrics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.shared.producer_gone.store(true, Ordering::Release);
    }
}

impl<T> Consumer<T> {
    /// Take the oldest published value, without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let s = &*self.shared;
        let head = s.head.load(Ordering::Relaxed);
        let tail = s.tail.load(Ordering::Acquire);
        if head == tail {
            return if s.producer_gone.load(Ordering::Acquire)
                // Re-check: the producer may have published between our
                // tail load and its drop-flag store.
                && s.tail.load(Ordering::Acquire) == head
            {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            };
        }
        let value = lock(s.slot(head)).take();
        s.head.store(head + 1, Ordering::Release);
        match value {
            Some(v) => Ok(v),
            // Unreachable under the cursor protocol; surface it as a
            // disconnect rather than panicking in a worker thread.
            None => Err(TryRecvError::Disconnected),
        }
    }

    /// Take the oldest published value, blocking (spin + yield) while
    /// the ring is empty. Returns `None` once the producer is gone and
    /// the ring is drained.
    pub fn recv(&self) -> Option<T> {
        let mut backoff = Backoff::new();
        loop {
            match self.try_recv() {
                Ok(v) => return Some(v),
                Err(TryRecvError::Disconnected) => return None,
                Err(TryRecvError::Empty) => backoff.snooze(),
            }
        }
    }

    /// In-flight values right now (racy, for metrics only).
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.tail
            .load(Ordering::Relaxed)
            .saturating_sub(s.head.load(Ordering::Relaxed))
    }

    /// Whether the ring is currently empty (racy, for metrics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.consumer_gone.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_within_capacity() {
        let (tx, rx) = ring(4);
        for i in 0..4 {
            tx.try_send(i).unwrap();
        }
        assert_eq!(tx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.try_recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn full_ring_rejects_then_accepts() {
        let (tx, rx) = ring(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err((3, TrySendError::Full)));
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(3));
    }

    #[test]
    fn drop_producer_drains_then_disconnects() {
        let (tx, rx) = ring(4);
        tx.try_send(7).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn drop_consumer_fails_send() {
        let (tx, rx) = ring(4);
        drop(rx);
        assert_eq!(tx.try_send(1), Err((1, TrySendError::Disconnected)));
        assert_eq!(tx.send(2), Err(2));
    }

    #[test]
    fn capacity_clamped_to_one() {
        let (tx, rx) = ring::<u32>(0);
        assert_eq!(tx.capacity(), 1);
        tx.try_send(9).unwrap();
        assert_eq!(tx.try_send(10), Err((10, TrySendError::Full)));
        assert_eq!(rx.try_recv(), Ok(9));
    }

    #[test]
    fn cross_thread_stream_is_lossless_and_ordered() {
        const N: u64 = 50_000;
        let (tx, rx) = ring(64);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.send(i).unwrap();
            }
        });
        let mut expect = 0u64;
        while let Some(v) = rx.recv() {
            assert_eq!(v, expect);
            expect += 1;
        }
        assert_eq!(expect, N);
        producer.join().unwrap();
    }

    #[test]
    fn backoff_spins_then_yields() {
        let mut b = Backoff::new();
        assert_eq!(b.rounds(), 0);
        assert!(!b.yields());
        for _ in 0..SPIN_ROUNDS {
            b.snooze();
        }
        assert!(b.yields());
        b.snooze();
        assert_eq!(b.rounds(), SPIN_ROUNDS + 1);
        b.reset();
        assert_eq!(b.rounds(), 0);
        assert!(!b.yields());
    }

    /// A consumer that sleeps between takes must not starve the
    /// producer forever: the producer's full-ring backoff yields, the
    /// consumer eventually drains a slot, and every value arrives in
    /// order. Pinned for the supervisor's bounded-retry path, which
    /// reuses the same [`Backoff`].
    #[test]
    fn slow_consumer_never_permanently_starves_producer() {
        const N: u64 = 100;
        let (tx, rx) = ring(2);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Some(v) = rx.recv() {
            std::thread::sleep(std::time::Duration::from_micros(200));
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..N).collect::<Vec<_>>());
    }

    #[test]
    fn wraparound_reuses_slots() {
        let (tx, rx) = ring(3);
        for i in 0..100 {
            tx.try_send(i).unwrap();
            assert_eq!(rx.try_recv(), Ok(i));
        }
        assert!(rx.is_empty() && tx.is_empty());
    }
}
