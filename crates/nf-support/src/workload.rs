//! Pull-based streaming workload sources.
//!
//! The sharded runtime used to take its whole workload as an in-memory
//! slice, which caps a run at whatever fits in RAM. A
//! [`WorkloadSource`] instead hands the engine items a bounded batch at
//! a time, so a million-packet trace streams through a constant-size
//! buffer. The trait is generic over the item type — this crate sits
//! below the packet crate, so the packet-specific sources (the seeded
//! generator, `.nfw` binary traces, JSON traces) implement it one layer
//! up; [`SliceSource`] covers the in-memory case for any `Clone` item.
//!
//! The module also provides the length-prefixed record framing the
//! `.nfw` trace format is built on: [`write_record`] / [`read_record`]
//! move opaque byte records through any `io::Write` / `io::Read`,
//! tracking byte offsets so a truncated or corrupt file is reported as
//! *where* it broke, not just *that* it broke.

use std::io::{Read, Write};

/// Largest record [`read_record`] will accept. A corrupt length prefix
/// otherwise turns into a multi-gigabyte allocation; real packet
/// records are a few dozen bytes.
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// An error while pulling from a workload source: what went wrong and,
/// when the source is positional (a file, a byte stream), at which byte
/// offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadError {
    /// Byte offset of the failing record, when the source has one.
    pub offset: Option<u64>,
    /// What went wrong.
    pub msg: String,
}

impl WorkloadError {
    /// An error with no meaningful byte offset.
    pub fn msg(msg: impl Into<String>) -> WorkloadError {
        WorkloadError { offset: None, msg: msg.into() }
    }

    /// An error anchored at a byte offset.
    pub fn at(offset: u64, msg: impl Into<String>) -> WorkloadError {
        WorkloadError { offset: Some(offset), msg: msg.into() }
    }
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.offset {
            Some(o) => write!(f, "byte offset {o}: {}", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A pull-based stream of workload items.
///
/// The consumer repeatedly calls [`next_batch`](Self::next_batch) with
/// a bounded `max`; the source appends up to `max` items to `out` and
/// returns how many it appended. Zero means the stream is exhausted —
/// a source must keep returning zero once it has ended.
pub trait WorkloadSource {
    /// The item type the source yields (packets, for the shard engine).
    type Item;

    /// Append up to `max` items to `out`, returning the number
    /// appended; `Ok(0)` signals end of stream. `out` is not cleared —
    /// the caller owns the buffer and its reuse policy.
    fn next_batch(
        &mut self,
        out: &mut Vec<Self::Item>,
        max: usize,
    ) -> Result<usize, WorkloadError>;

    /// Total items this source expects to yield, when known up front
    /// (a counted trace file, a sized generator). Purely advisory.
    fn size_hint(&self) -> Option<u64> {
        None
    }
}

impl<S: WorkloadSource + ?Sized> WorkloadSource for &mut S {
    type Item = S::Item;

    fn next_batch(
        &mut self,
        out: &mut Vec<Self::Item>,
        max: usize,
    ) -> Result<usize, WorkloadError> {
        (**self).next_batch(out, max)
    }

    fn size_hint(&self) -> Option<u64> {
        (**self).size_hint()
    }
}

impl<S: WorkloadSource + ?Sized> WorkloadSource for Box<S> {
    type Item = S::Item;

    fn next_batch(
        &mut self,
        out: &mut Vec<Self::Item>,
        max: usize,
    ) -> Result<usize, WorkloadError> {
        (**self).next_batch(out, max)
    }

    fn size_hint(&self) -> Option<u64> {
        (**self).size_hint()
    }
}

/// A [`WorkloadSource`] over a borrowed in-memory slice; items are
/// cloned out in order.
#[derive(Debug)]
pub struct SliceSource<'a, T> {
    items: &'a [T],
    pos: usize,
}

impl<'a, T> SliceSource<'a, T> {
    /// A source yielding `items` front to back.
    pub fn new(items: &'a [T]) -> SliceSource<'a, T> {
        SliceSource { items, pos: 0 }
    }
}

impl<T: Clone> WorkloadSource for SliceSource<'_, T> {
    type Item = T;

    fn next_batch(&mut self, out: &mut Vec<T>, max: usize) -> Result<usize, WorkloadError> {
        let n = max.min(self.items.len() - self.pos);
        out.extend_from_slice(&self.items[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.items.len() as u64)
    }
}

/// Append one length-prefixed record (`u32` big-endian length, then the
/// payload bytes) to `w`.
pub fn write_record(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "record too long")
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)
}

/// Read one length-prefixed record from `r` into `buf` (cleared first).
///
/// `offset` must hold the reader's current byte position and is
/// advanced past the record on success. Returns `Ok(true)` with the
/// payload in `buf`, `Ok(false)` on clean end-of-stream at a record
/// boundary, and an offset-stamped [`WorkloadError`] when the stream
/// ends mid-record or the length prefix is implausible.
pub fn read_record(
    r: &mut impl Read,
    offset: &mut u64,
    buf: &mut Vec<u8>,
) -> Result<bool, WorkloadError> {
    let mut len_bytes = [0u8; 4];
    match read_exact_or_eof(r, &mut len_bytes) {
        Ok(0) => return Ok(false),
        Ok(4) => {}
        Ok(n) => {
            return Err(WorkloadError::at(
                *offset,
                format!("truncated record: {n} of 4 length-prefix bytes"),
            ));
        }
        Err(e) => return Err(WorkloadError::at(*offset, format!("read failed: {e}"))),
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_RECORD_LEN {
        return Err(WorkloadError::at(
            *offset,
            format!("implausible record length {len} (max {MAX_RECORD_LEN})"),
        ));
    }
    buf.clear();
    buf.resize(len as usize, 0);
    r.read_exact(buf).map_err(|e| {
        WorkloadError::at(
            *offset,
            format!("truncated record: expected {len} payload bytes: {e}"),
        )
    })?;
    *offset += 4 + u64::from(len);
    Ok(true)
}

/// Fill `buf` from `r`, tolerating end-of-stream: returns how many
/// bytes were actually read (0 = clean EOF before the first byte).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_source_yields_in_bounded_batches() {
        let items: Vec<u32> = (0..10).collect();
        let mut src = SliceSource::new(&items);
        assert_eq!(src.size_hint(), Some(10));
        let mut out = Vec::new();
        assert_eq!(src.next_batch(&mut out, 4).unwrap(), 4);
        assert_eq!(src.next_batch(&mut out, 4).unwrap(), 4);
        assert_eq!(src.next_batch(&mut out, 4).unwrap(), 2);
        assert_eq!(src.next_batch(&mut out, 4).unwrap(), 0, "stays exhausted");
        assert_eq!(out, items);
    }

    #[test]
    fn records_round_trip() {
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![7], vec![1, 2, 3], vec![0xFF; 300]];
        let mut bytes = Vec::new();
        for p in &payloads {
            write_record(&mut bytes, p).unwrap();
        }
        let mut r = bytes.as_slice();
        let mut offset = 0u64;
        let mut buf = Vec::new();
        for p in &payloads {
            assert!(read_record(&mut r, &mut offset, &mut buf).unwrap());
            assert_eq!(&buf, p);
        }
        assert!(!read_record(&mut r, &mut offset, &mut buf).unwrap());
        assert_eq!(offset, bytes.len() as u64);
    }

    #[test]
    fn truncation_reports_the_byte_offset() {
        let mut bytes = Vec::new();
        write_record(&mut bytes, &[1, 2, 3, 4]).unwrap();
        write_record(&mut bytes, &[5, 6, 7, 8]).unwrap();
        // Cut mid-way through the second record's payload.
        bytes.truncate(8 + 4 + 2);
        let mut r = bytes.as_slice();
        let mut offset = 0u64;
        let mut buf = Vec::new();
        assert!(read_record(&mut r, &mut offset, &mut buf).unwrap());
        let err = read_record(&mut r, &mut offset, &mut buf).unwrap_err();
        assert_eq!(err.offset, Some(8), "error anchored at the bad record");
        assert!(err.msg.contains("truncated"), "{err}");
        // Cut inside a length prefix instead.
        let mut r = &bytes[..10][..];
        let mut offset = 0u64;
        assert!(read_record(&mut r, &mut offset, &mut buf).unwrap());
        let err = read_record(&mut r, &mut offset, &mut buf).unwrap_err();
        assert_eq!(err.offset, Some(8));
        assert!(err.msg.contains("length-prefix"), "{err}");
    }

    #[test]
    fn implausible_length_is_rejected_not_allocated() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut r = bytes.as_slice();
        let mut offset = 0u64;
        let mut buf = Vec::new();
        let err = read_record(&mut r, &mut offset, &mut buf).unwrap_err();
        assert!(err.msg.contains("implausible"), "{err}");
    }
}
