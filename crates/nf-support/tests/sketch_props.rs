//! Property tests for the space-saving top-K sketch: the two guarantees
//! the shard hot-key profiler depends on, checked against exact counts
//! over randomized skewed streams, plus pinned regression cases.

use nf_support::check::{check, uint_range, vec_of, Config};
use nf_support::sketch::TopK;
use std::collections::BTreeMap;

fn exact_counts(stream: &[u64]) -> BTreeMap<u64, u64> {
    let mut m = BTreeMap::new();
    for &k in stream {
        *m.entry(k).or_insert(0u64) += 1;
    }
    m
}

/// Run a stream through a sketch of capacity `cap` and assert the
/// space-saving invariants against the exact counts.
fn assert_invariants(stream: &[u64], cap: usize) {
    let mut sketch = TopK::new(cap);
    for &k in stream {
        sketch.offer(k);
    }
    let truth = exact_counts(stream);
    assert_eq!(sketch.total(), stream.len() as u64);

    // Never undercounts: every tracked key's estimate is at least the
    // true count, and estimate - err never exceeds it.
    for e in sketch.entries() {
        let true_count = truth.get(&e.key).copied().unwrap_or(0);
        assert!(
            e.count >= true_count,
            "estimate {} undercounts key {} (true {})",
            e.count,
            e.key,
            true_count
        );
        assert!(
            e.count - e.err <= true_count,
            "lower bound {} overshoots key {} (true {})",
            e.count - e.err,
            e.key,
            true_count
        );
    }

    // Heavy hitters are present: any key strictly above total/cap is
    // guaranteed tracked.
    let threshold = sketch.guarantee();
    for (&k, &c) in &truth {
        if c > threshold {
            assert!(
                sketch.contains(&k),
                "key {k} with count {c} > guarantee {threshold} was evicted"
            );
        }
    }
}

#[test]
fn prop_sketch_never_undercounts_heavy_hitters() {
    // Keys drawn from a small range so eviction churn is constant; the
    // quadratic key map skews mass toward low values.
    let streams = vec_of(uint_range(0, 900), 0, 400);
    check("sketch_invariants", &Config::with_cases(150), &streams, |raw| {
        let stream: Vec<u64> = raw.iter().map(|&v| (v * v) / 300).collect();
        for cap in [1, 2, 8] {
            assert_invariants(&stream, cap);
        }
    });
}

#[test]
fn prop_sketch_is_exact_below_capacity() {
    // At most 8 distinct keys into a cap-16 sketch: no eviction ever
    // happens, so every estimate is exact with zero error.
    let streams = vec_of(uint_range(0, 7), 0, 200);
    check("sketch_exact", &Config::with_cases(100), &streams, |stream| {
        let mut sketch = TopK::new(16);
        for &k in stream {
            sketch.offer(k);
        }
        let truth = exact_counts(stream);
        assert_eq!(sketch.len(), truth.len());
        for (&k, &c) in &truth {
            assert_eq!(sketch.estimate(&k), Some(c));
        }
        for e in sketch.entries() {
            assert_eq!(e.err, 0);
        }
    });
}

/// Pinned eviction-churn case: a full rotation of distinct keys ending
/// with a returning heavy hitter. Exercises the inherit-minimum path
/// deterministically.
#[test]
fn regression_rotating_keys_keep_the_heavy_hitter() {
    let mut stream = Vec::new();
    for round in 0..50u64 {
        stream.push(7); // heavy: appears every round
        stream.push(100 + round); // 50 one-shot keys churn the slots
    }
    assert_invariants(&stream, 4);
    let mut sketch = TopK::new(4);
    for &k in &stream {
        sketch.offer(k);
    }
    assert_eq!(sketch.entries()[0].key, 7, "heavy hitter ranks first");
}

/// Pinned adversarial case for cap = 1: every key shares one slot, so
/// the single estimate must equal the stream length (pure inheritance).
#[test]
fn regression_single_slot_inherits_everything() {
    let stream: Vec<u64> = (0..30).collect();
    assert_invariants(&stream, 1);
    let mut sketch = TopK::new(1);
    for &k in &stream {
        sketch.offer(k);
    }
    let e = &sketch.entries()[0];
    assert_eq!(e.key, 29);
    assert_eq!(e.count, 30);
    assert_eq!(e.err, 29);
}
