//! TCP hidden-state substrate — §3.2 "Hidden States" of the paper.
//!
//! Socket-API NFs like *balance* (Figure 3) keep their forwarding state
//! inside the OS: *"each TCP connection has its own state transition
//! diagram … and data packets without 3-way handshake established would
//! be dropped. Analyzing an NF program itself does not capture these
//! stateful behaviors. We propose to fall back to analyzing packet level
//! operations by unfolding these wrapped-up functions (e.g., listen(),
//! connect()). NFactor replaces these functions/system calls with packet
//! level operation together with the TCP state transition."*
//!
//! * [`fsm`] — the reference TCP connection state machine (RFC-793
//!   shaped), plus a connection table driven by packets. The unfolded
//!   NFL program encodes the same transitions; tests cross-validate.
//! * [`unfold`] — the Figure 4d → Figure 5 transformation: rewrite a
//!   nested-loop socket NF into a single per-packet loop whose TCP state
//!   lives in an explicit `state` map that slicing and symbolic
//!   execution can see.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fsm;
pub mod unfold;

pub use fsm::{ConnTable, TcpAction, TcpEvent, TcpState};
pub use unfold::{unfold_sockets, UnfoldError};
