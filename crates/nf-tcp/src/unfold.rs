//! Socket-call unfolding: Figure 4d → Figure 5.
//!
//! Input: a nested-loop socket NF shaped like *balance* (Figure 3):
//!
//! ```text
//! fn main() {
//!     let lfd = listen(PORT);
//!     while true {
//!         let cfd = accept(lfd);
//!         …backend selection…            // e.g. let srv = servers[idx];
//!         if fork() == 0 {
//!             let sfd = connect(ip, port);
//!             while true {
//!                 let which = select2(cfd, sfd);
//!                 if which == 0 { relay client→server } else { relay server→client }
//!             }
//!         }
//!     }
//! }
//! ```
//!
//! Output: a single packet-processing loop (Figure 5) in which the OS's
//! hidden TCP state is an explicit `state` map — `__tcp : flow → fsm
//! code` — driven by the same transitions as [`crate::fsm`]:
//!
//! * SYN for a new flow ⇒ run the *backend selection* statements (hoisted
//!   verbatim from the accept loop), record the chosen backend, answer
//!   SYN-ACK, `__tcp[k] = SYN_RCVD`;
//! * ACK in `SYN_RCVD` ⇒ `ESTABLISHED` (control message processing);
//! * data in `ESTABLISHED` ⇒ relay to the recorded backend (the inner
//!   relay loop's job, now per-packet);
//! * FIN/RST ⇒ tear down;
//! * anything else — in particular **data without a completed
//!   handshake** — is dropped, exactly the hidden behaviour §3.2 says
//!   pure program analysis would miss.
//!
//! The transformation is source-to-source: extracted fragments are
//! re-rendered and spliced into the Figure 5 template, then re-parsed
//! and type-checked, so downstream analyses see an ordinary NFL program.

use nfl_analysis::normalize::{detect_structure, Structure};
use nfl_lang::pretty::expr_to_string;
use nfl_lang::{parse_and_check, Expr, ExprKind, Program, Stmt, StmtKind};
use std::fmt;

/// Errors raised by the unfolding pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnfoldError {
    /// The program is not a nested-loop socket NF.
    NotNestedLoop,
    /// The nested loop doesn't match the balance template.
    Template(String),
    /// The generated program failed to parse/check (internal error).
    Generated(String),
}

impl fmt::Display for UnfoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnfoldError::NotNestedLoop => {
                write!(f, "program is not a nested-loop socket NF (Figure 4d)")
            }
            UnfoldError::Template(m) => write!(f, "unsupported socket template: {m}"),
            UnfoldError::Generated(m) => write!(f, "generated program invalid: {m}"),
        }
    }
}

impl std::error::Error for UnfoldError {}

fn call_of<'e>(e: &'e Expr, name: &str) -> Option<&'e [Expr]> {
    if let ExprKind::Call(n, args) = &e.kind {
        if n == name {
            return Some(args);
        }
    }
    None
}

struct Extracted {
    listen_port: String,
    selection: Vec<Stmt>,
    backend_ip: String,
    backend_port: String,
}

fn extract(program: &Program) -> Result<Extracted, UnfoldError> {
    let main = program
        .function("main")
        .ok_or(UnfoldError::NotNestedLoop)?;
    // let lfd = listen(PORT);
    let mut listen_port = None;
    for s in &main.body {
        if let StmtKind::Let { value, .. } = &s.kind {
            if let Some(args) = call_of(value, "listen") {
                listen_port = Some(expr_to_string(&args[0]));
            }
        }
    }
    let listen_port =
        listen_port.ok_or_else(|| UnfoldError::Template("no `listen(port)`".into()))?;
    // The accept loop.
    let accept_loop = main
        .body
        .iter()
        .find_map(|s| match &s.kind {
            StmtKind::While { cond, body }
                if matches!(cond.kind, ExprKind::Bool(true)) =>
            {
                Some(body)
            }
            _ => None,
        })
        .ok_or_else(|| UnfoldError::Template("no accept loop".into()))?;
    // Partition the accept loop: `let cfd = accept(..)`, selection
    // statements, `if fork() == 0 { … }`.
    let mut selection: Vec<Stmt> = Vec::new();
    let mut fork_body: Option<&Vec<Stmt>> = None;
    for s in accept_loop {
        match &s.kind {
            StmtKind::Let { value, .. } if call_of(value, "accept").is_some() => {}
            StmtKind::If { cond, then_branch, .. } => {
                let is_fork = matches!(
                    &cond.kind,
                    ExprKind::Binary(nfl_lang::BinOp::Eq, a, _)
                        if call_of(a, "fork").is_some()
                );
                if is_fork {
                    fork_body = Some(then_branch);
                } else {
                    selection.push(s.clone());
                }
            }
            _ => selection.push(s.clone()),
        }
    }
    let fork_body =
        fork_body.ok_or_else(|| UnfoldError::Template("no `if fork() == 0` body".into()))?;
    // let sfd = connect(ip, port);
    let mut backend = None;
    for s in fork_body {
        if let StmtKind::Let { value, .. } = &s.kind {
            if let Some(args) = call_of(value, "connect") {
                backend = Some((expr_to_string(&args[0]), expr_to_string(&args[1])));
            }
        }
    }
    let (backend_ip, backend_port) =
        backend.ok_or_else(|| UnfoldError::Template("no `connect(ip, port)`".into()))?;
    Ok(Extracted {
        listen_port,
        selection,
        backend_ip,
        backend_port,
    })
}

fn render_stmts(stmts: &[Stmt], indent: &str) -> String {
    let tmp = Program {
        functions: vec![nfl_lang::Function {
            name: "__tmp".into(),
            params: vec![],
            body: stmts.to_vec(),
            span: Default::default(),
        }],
        ..Program::default()
    };
    let text = nfl_lang::pretty::program_to_string(&tmp);
    text.lines()
        .skip_while(|l| !l.contains("fn __tmp"))
        .skip(1)
        .take_while(|l| !l.starts_with('}'))
        .map(|l| format!("{indent}{}\n", l.trim_start()))
        .collect()
}

/// Unfold a nested-loop socket NF into the Figure 5 single-loop form.
///
/// The result is a fresh, type-checked [`Program`] whose declarations are
/// the original's plus `__tcp` (flow → TCP-FSM code, encodings from
/// [`crate::fsm::TcpState`]) and `__backend` / `__client` NAT-style maps.
pub fn unfold_sockets(program: &Program) -> Result<Program, UnfoldError> {
    if detect_structure(program) != Structure::NestedLoop {
        return Err(UnfoldError::NotNestedLoop);
    }
    let ex = extract(program)?;
    // Preserve the original declarations verbatim.
    let mut decls = String::new();
    for (kw, items) in [
        ("const", &program.consts),
        ("config", &program.configs),
        ("state", &program.states),
    ] {
        for it in items {
            decls.push_str(&format!(
                "{kw} {} = {};\n",
                it.name,
                expr_to_string(&it.init)
            ));
        }
    }
    // Keep helper functions (minus main).
    let mut helpers = String::new();
    for f in &program.functions {
        if f.name == "main" {
            continue;
        }
        let tmp = Program {
            functions: vec![f.clone()],
            ..Program::default()
        };
        helpers.push_str(&nfl_lang::pretty::program_to_string(&tmp));
    }
    let selection = render_stmts(&ex.selection, "                    ");
    let src = format!(
        r#"{decls}
# Hidden OS state, made explicit (paper §3.2 / Figure 5):
state __tcp = map();      # flow 4-tuple -> TCP FSM code (2=SYN_RCVD, 3=ESTABLISHED)
state __backend = map();  # client flow -> chosen backend (ip, port)
state __client = map();   # (client ip, port) -> address the client targeted

{helpers}
fn main() {{
    while true {{
        let pkt = recv();
        if pkt.ip.proto != 6 {{
            # A TCP socket never delivers non-TCP traffic.
            return;
        }}
        let k = (pkt.ip.src, pkt.tcp.sport, pkt.ip.dst, pkt.tcp.dport);
        if pkt.tcp.dport == {port} {{
            # Client-to-NF direction.
            if k not in __tcp {{
                if pkt.tcp.flags & 2 != 0 {{
                    # SYN: passive open. Run the accept-loop's backend
                    # selection, record the mapping, answer SYN-ACK.
{selection}
                    __backend[k] = ({bip}, {bport});
                    __client[(pkt.ip.src, pkt.tcp.sport)] = (pkt.ip.dst, pkt.tcp.dport);
                    __tcp[k] = 2;
                    let csrc = pkt.ip.src;
                    let csport = pkt.tcp.sport;
                    pkt.ip.src = pkt.ip.dst;
                    pkt.tcp.sport = pkt.tcp.dport;
                    pkt.ip.dst = csrc;
                    pkt.tcp.dport = csport;
                    pkt.tcp.flags = 18;
                    send(pkt);
                }}
                # else: no handshake -> hidden-state drop.
            }} else {{
                let st = __tcp[k];
                if pkt.tcp.flags & 4 != 0 {{
                    # RST tears the connection down.
                    map_remove(__tcp, k);
                    map_remove(__backend, k);
                    return;
                }}
                if st != 3 {{
                    # ProcessCtrlMsg: ACK completes the handshake.
                    if pkt.tcp.flags & 16 != 0 {{
                        __tcp[k] = 3;
                    }}
                }} else {{
                    if pkt.tcp.flags & 1 != 0 {{
                        # FIN: passive close.
                        map_remove(__tcp, k);
                        map_remove(__backend, k);
                        return;
                    }}
                    # ProcessDataMsg: relay to the chosen backend.
                    let b = __backend[k];
                    pkt.ip.dst = b[0];
                    pkt.tcp.dport = b[1];
                    send(pkt);
                }}
            }}
        }} else {{
            # NF-to-client direction: backend replies relayed back with
            # the NF's address restored.
            let ck = (pkt.ip.dst, pkt.tcp.dport);
            if ck in __client {{
                let nfaddr = __client[ck];
                pkt.ip.src = nfaddr[0];
                pkt.tcp.sport = nfaddr[1];
                send(pkt);
            }}
            # else: unknown reverse flow -> drop.
        }}
    }}
}}
"#,
        decls = decls,
        helpers = helpers,
        port = ex.listen_port,
        selection = selection,
        bip = ex.backend_ip,
        bport = ex.backend_port,
    );
    parse_and_check(&src).map_err(UnfoldError::Generated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::{ConnTable, TcpAction};
    use nf_packet::wire::{parse_ipv4, TcpFlags};
    use nf_packet::Packet;
    use nfl_analysis::normalize::normalize;
    use nfl_interp::Interp;
    use nfl_lang::parse;

    /// The balance-like NF of the paper's Figure 3, in NFL.
    pub const BALANCE_SRC: &str = r#"
        config LB_PORT = 80;
        config servers = [(1.1.1.1, 8080), (2.2.2.2, 8080)];
        state idx = 0;
        fn main() {
            let lfd = listen(LB_PORT);
            while true {
                let cfd = accept(lfd);
                let srv = servers[idx];
                idx = (idx + 1) % len(servers);
                if fork() == 0 {
                    let sfd = connect(srv[0], srv[1]);
                    while true {
                        let which = select2(cfd, sfd);
                        if which == 0 {
                            let buf = sock_read(cfd);
                            sock_write(sfd, buf);
                        } else {
                            let buf2 = sock_read(sfd);
                            sock_write(cfd, buf2);
                        }
                    }
                }
            }
        }
    "#;

    fn client_pkt(flags: TcpFlags, payload: usize) -> Packet {
        let mut p = Packet::tcp(
            parse_ipv4("10.0.0.1").unwrap(),
            5555,
            parse_ipv4("3.3.3.3").unwrap(),
            80,
            flags,
        );
        p.payload = vec![0xaa; payload];
        p
    }

    #[test]
    fn unfolds_to_one_loop() {
        let p = parse(BALANCE_SRC).unwrap();
        let q = unfold_sockets(&p).unwrap();
        assert_eq!(detect_structure(&q), Structure::OneLoop);
        // Hidden state materialised.
        assert!(q.states.iter().any(|s| s.name == "__tcp"));
        assert!(q.states.iter().any(|s| s.name == "__backend"));
        // Original RR state preserved.
        assert!(q.states.iter().any(|s| s.name == "idx"));
        // No socket builtins remain.
        let text = nfl_lang::pretty::program_to_string(&q);
        for sock in ["listen(", "accept(", "connect(", "sock_read", "select2", "fork("] {
            assert!(!text.contains(sock), "{sock} survived:\n{text}");
        }
    }

    #[test]
    fn non_nested_program_rejected() {
        let p = parse(
            "fn cb(pkt: packet) { send(pkt); } fn main() { sniff(cb); }",
        )
        .unwrap();
        assert_eq!(unfold_sockets(&p), Err(UnfoldError::NotNestedLoop));
    }

    #[test]
    fn unfolded_program_runs_handshake_then_relays() {
        let p = parse(BALANCE_SRC).unwrap();
        let q = unfold_sockets(&p).unwrap();
        let pl = normalize(&q).unwrap();
        let mut i = Interp::new(&pl).unwrap();

        // Data before handshake: dropped (the §3.2 hidden behaviour).
        let early = i.process(&client_pkt(TcpFlags::ack(), 50)).unwrap();
        assert!(early.dropped, "no handshake yet");

        // SYN: answered with SYN-ACK.
        let syn = i.process(&client_pkt(TcpFlags::syn(), 0)).unwrap();
        assert_eq!(syn.outputs.len(), 1);
        let synack = &syn.outputs[0];
        assert_eq!(synack.tcp_flags().unwrap().0, 18, "SYN|ACK");
        assert_eq!(synack.ip_dst, parse_ipv4("10.0.0.1").unwrap());

        // ACK completes the handshake (control message — no forward).
        let ack = i.process(&client_pkt(TcpFlags::ack(), 0)).unwrap();
        assert!(ack.dropped);

        // Data now relays to backend #0 (round robin started at 0).
        let data = i.process(&client_pkt(TcpFlags::ack(), 100)).unwrap();
        assert_eq!(data.outputs.len(), 1);
        assert_eq!(data.outputs[0].ip_dst, parse_ipv4("1.1.1.1").unwrap());
        assert_eq!(
            data.outputs[0].get(nf_packet::Field::TcpDport).unwrap(),
            8080
        );

        // The RR index advanced exactly once (at the SYN).
        assert_eq!(
            i.global("idx"),
            Some(&nfl_interp::Value::Int(1)),
            "round-robin advanced"
        );
    }

    #[test]
    fn second_connection_gets_next_backend() {
        let p = parse(BALANCE_SRC).unwrap();
        let q = unfold_sockets(&p).unwrap();
        let pl = normalize(&q).unwrap();
        let mut i = Interp::new(&pl).unwrap();
        // Connection 1 handshake.
        i.process(&client_pkt(TcpFlags::syn(), 0)).unwrap();
        i.process(&client_pkt(TcpFlags::ack(), 0)).unwrap();
        // Connection 2 from a different client port.
        let mut syn2 = client_pkt(TcpFlags::syn(), 0);
        syn2.set(nf_packet::Field::TcpSport, 6666).unwrap();
        i.process(&syn2).unwrap();
        let mut ack2 = client_pkt(TcpFlags::ack(), 0);
        ack2.set(nf_packet::Field::TcpSport, 6666).unwrap();
        i.process(&ack2).unwrap();
        let mut data2 = client_pkt(TcpFlags::ack(), 10);
        data2.set(nf_packet::Field::TcpSport, 6666).unwrap();
        let out = i.process(&data2).unwrap();
        assert_eq!(
            out.outputs[0].ip_dst,
            parse_ipv4("2.2.2.2").unwrap(),
            "second connection to second backend"
        );
    }

    #[test]
    fn rst_tears_down_requires_new_handshake() {
        let p = parse(BALANCE_SRC).unwrap();
        let q = unfold_sockets(&p).unwrap();
        let pl = normalize(&q).unwrap();
        let mut i = Interp::new(&pl).unwrap();
        i.process(&client_pkt(TcpFlags::syn(), 0)).unwrap();
        i.process(&client_pkt(TcpFlags::ack(), 0)).unwrap();
        i.process(&client_pkt(TcpFlags::rst(), 0)).unwrap();
        let data = i.process(&client_pkt(TcpFlags::ack(), 10)).unwrap();
        assert!(data.dropped, "connection gone after RST");
    }

    #[test]
    fn unfolded_nfl_agrees_with_reference_fsm() {
        // Drive the generated NFL program and the Rust ConnTable with the
        // same packet sequence; forwarding decisions must agree once the
        // handshake diverges (the NFL LB answers SYN-ACK itself, which
        // ConnTable reports as ReplySynAck).
        let p = parse(BALANCE_SRC).unwrap();
        let q = unfold_sockets(&p).unwrap();
        let pl = normalize(&q).unwrap();
        let mut i = Interp::new(&pl).unwrap();
        let mut t = ConnTable::default();
        let seq = [
            (TcpFlags::ack(), 20),  // out-of-state data
            (TcpFlags::syn(), 0),   // open
            (TcpFlags::ack(), 0),   // complete
            (TcpFlags::ack(), 30),  // data
            (TcpFlags::fin_ack(), 0),
            (TcpFlags::ack(), 10),  // data after FIN
        ];
        for (flags, payload) in seq {
            let pkt = client_pkt(flags, payload);
            let nfl = i.process(&pkt).unwrap();
            let fsm = t.on_packet(&pkt);
            let nfl_forwards = !nfl.dropped;
            let fsm_accepts = matches!(fsm, TcpAction::Accept | TcpAction::ReplySynAck);
            // The pure ACK completing the handshake is a control message:
            // the FSM accepts it, the LB forwards nothing. Data packets
            // and out-of-state packets must agree exactly.
            if payload > 0 {
                assert_eq!(
                    nfl_forwards, fsm_accepts,
                    "disagreement on {flags} len={payload}"
                );
            }
        }
    }
}
