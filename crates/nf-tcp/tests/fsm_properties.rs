//! Property tests of the TCP connection state machine.

use nf_packet::wire::{parse_ipv4, TcpFlags};
use nf_packet::Packet;
use nf_tcp::{ConnTable, TcpAction, TcpEvent, TcpState};
use proptest::prelude::*;

fn flags_strategy() -> impl Strategy<Value = TcpFlags> {
    (0u8..64).prop_map(TcpFlags)
}

fn pkt(flags: TcpFlags, payload: usize, sport: u16) -> Packet {
    let mut p = Packet::tcp(
        parse_ipv4("10.0.0.1").unwrap(),
        sport,
        parse_ipv4("3.3.3.3").unwrap(),
        80,
        flags,
    );
    p.payload = vec![0; payload];
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any packet sequence keeps the table consistent and never panics.
    #[test]
    fn fsm_total_under_random_sequences(
        seq in proptest::collection::vec((flags_strategy(), 0usize..64, 1u16..4), 0..64)
    ) {
        let mut t = ConnTable::default();
        for (flags, payload, sport) in seq {
            let _ = t.on_packet(&pkt(flags, payload, sport));
        }
        // Every tracked connection is in a non-CLOSED state by table
        // invariant (CLOSED entries are removed).
        prop_assert!(t.len() <= 3, "at most one per sport pool");
    }

    /// Data is only ever accepted on flows that completed a handshake
    /// at some earlier point of the sequence.
    #[test]
    fn data_accept_implies_prior_handshake(
        seq in proptest::collection::vec((flags_strategy(), 0usize..32), 1..48)
    ) {
        let mut t = ConnTable::default();
        let mut established_seen = false;
        for (flags, payload) in seq {
            let p = pkt(flags, payload, 1000);
            let key = nf_packet::FlowKey::of(&p).unwrap();
            let action = t.on_packet(&p);
            if t.state(&key) == TcpState::Established {
                established_seen = true;
            }
            if payload > 0
                && TcpEvent::classify(flags, payload) == TcpEvent::Data
                && action == TcpAction::Accept
            {
                prop_assert!(
                    established_seen,
                    "data accepted without any prior handshake"
                );
            }
        }
    }

    /// RST always leaves the flow untracked.
    #[test]
    fn rst_always_clears(
        pre in proptest::collection::vec((flags_strategy(), 0usize..16), 0..16)
    ) {
        let mut t = ConnTable::default();
        for (flags, payload) in pre {
            t.on_packet(&pkt(flags, payload, 1000));
        }
        t.on_packet(&pkt(TcpFlags::rst(), 0, 1000));
        let key = nf_packet::FlowKey::of(&pkt(TcpFlags::rst(), 0, 1000)).unwrap();
        prop_assert_eq!(t.state(&key), TcpState::Closed);
    }
}

/// transition() is deterministic and never produces an invalid encoding.
#[test]
fn transition_codes_stay_valid() {
    use nf_tcp::fsm::transition;
    let all_states = (0..=10).filter_map(TcpState::from_code);
    let events = [
        TcpEvent::Syn,
        TcpEvent::SynAck,
        TcpEvent::Ack,
        TcpEvent::Fin,
        TcpEvent::Rst,
        TcpEvent::Data,
    ];
    for s in all_states {
        for e in events {
            let (next, _) = transition(s, e);
            assert!(TcpState::from_code(next.code()).is_some());
            // Second application from the same inputs is identical.
            assert_eq!(transition(s, e), transition(s, e));
        }
    }
}
