//! Property tests of the TCP connection state machine.

use nf_packet::wire::{parse_ipv4, TcpFlags};
use nf_packet::Packet;
use nf_support::check::{check, tuple2, tuple3, uint_range, vec_of, Config, Gen};
use nf_tcp::{ConnTable, TcpAction, TcpEvent, TcpState};

fn flags_gen() -> Gen<TcpFlags> {
    uint_range(0, 63).map(|v| TcpFlags(v as u8))
}

fn pkt(flags: TcpFlags, payload: usize, sport: u16) -> Packet {
    let mut p = Packet::tcp(
        parse_ipv4("10.0.0.1").unwrap(),
        sport,
        parse_ipv4("3.3.3.3").unwrap(),
        80,
        flags,
    );
    p.payload = vec![0; payload];
    p
}

/// Any packet sequence keeps the table consistent and never panics.
#[test]
fn fsm_total_under_random_sequences() {
    let cfg = Config::with_cases(256);
    let step = tuple3(
        flags_gen(),
        uint_range(0, 63).map(|v| v as usize),
        uint_range(1, 3).map_int(|v| v as u16),
    );
    let seq = vec_of(step, 0, 63);
    check("fsm_total_under_random_sequences", &cfg, &seq, |seq| {
        let mut t = ConnTable::default();
        for (flags, payload, sport) in seq {
            let _ = t.on_packet(&pkt(*flags, *payload, *sport));
        }
        // Every tracked connection is in a non-CLOSED state by table
        // invariant (CLOSED entries are removed).
        assert!(t.len() <= 3, "at most one per sport pool");
    });
}

/// Data is only ever accepted on flows that completed a handshake
/// at some earlier point of the sequence.
#[test]
fn data_accept_implies_prior_handshake() {
    let cfg = Config::with_cases(256);
    let step = tuple2(flags_gen(), uint_range(0, 31).map(|v| v as usize));
    let seq = vec_of(step, 1, 47);
    check("data_accept_implies_prior_handshake", &cfg, &seq, |seq| {
        let mut t = ConnTable::default();
        let mut established_seen = false;
        for (flags, payload) in seq {
            let p = pkt(*flags, *payload, 1000);
            let key = nf_packet::FlowKey::of(&p).unwrap();
            let action = t.on_packet(&p);
            if t.state(&key) == TcpState::Established {
                established_seen = true;
            }
            if *payload > 0
                && TcpEvent::classify(*flags, *payload) == TcpEvent::Data
                && action == TcpAction::Accept
            {
                assert!(
                    established_seen,
                    "data accepted without any prior handshake"
                );
            }
        }
    });
}

/// RST always leaves the flow untracked.
#[test]
fn rst_always_clears() {
    let cfg = Config::with_cases(256);
    let step = tuple2(flags_gen(), uint_range(0, 15).map(|v| v as usize));
    let pre = vec_of(step, 0, 15);
    check("rst_always_clears", &cfg, &pre, |pre| {
        let mut t = ConnTable::default();
        for (flags, payload) in pre {
            t.on_packet(&pkt(*flags, *payload, 1000));
        }
        t.on_packet(&pkt(TcpFlags::rst(), 0, 1000));
        let key = nf_packet::FlowKey::of(&pkt(TcpFlags::rst(), 0, 1000)).unwrap();
        assert_eq!(t.state(&key), TcpState::Closed);
    });
}

/// transition() is deterministic and never produces an invalid encoding.
#[test]
fn transition_codes_stay_valid() {
    use nf_tcp::fsm::transition;
    let all_states = (0..=10).filter_map(TcpState::from_code);
    let events = [
        TcpEvent::Syn,
        TcpEvent::SynAck,
        TcpEvent::Ack,
        TcpEvent::Fin,
        TcpEvent::Rst,
        TcpEvent::Data,
    ];
    for s in all_states {
        for e in events {
            let (next, _) = transition(s, e);
            assert!(TcpState::from_code(next.code()).is_some());
            // Second application from the same inputs is identical.
            assert_eq!(transition(s, e), transition(s, e));
        }
    }
}
