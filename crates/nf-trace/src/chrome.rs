//! Chrome trace-event-format JSON emission.
//!
//! The output object `{"traceEvents": [...], "displayTimeUnit": "ms"}`
//! loads directly in `chrome://tracing` or <https://ui.perfetto.dev>.
//! Spans become `"ph": "X"` (complete) events, instants become
//! `"ph": "i"` with thread scope; `ts`/`dur` are microseconds as the
//! format requires. Each recording thread gets its own `tid` plus a
//! `"ph": "M"` `thread_name` metadata event, so shard workers render as
//! separate rows in the viewer instead of collapsing onto one track.

use crate::tracer::TraceEvent;
use nf_support::json::Value;

fn micros(ns: u64) -> Value {
    Value::Float(ns as f64 / 1_000.0)
}

fn int(v: usize) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// Render recorded events as a Chrome trace-event JSON object.
///
/// `threads[i]` names the thread behind `tid == i` (see
/// [`crate::Tracer::thread_names`]); one `thread_name` metadata event
/// is emitted per entry ahead of the timed events.
pub fn trace_json(events: &[TraceEvent], threads: &[String]) -> Value {
    let mut rendered: Vec<Value> = threads
        .iter()
        .enumerate()
        .map(|(i, name)| {
            Value::Object(vec![
                ("name".into(), Value::Str("thread_name".into())),
                ("ph".into(), Value::Str("M".into())),
                ("pid".into(), Value::Int(1)),
                ("tid".into(), int(i)),
                (
                    "args".into(),
                    Value::Object(vec![("name".into(), Value::Str(name.clone()))]),
                ),
            ])
        })
        .collect();
    rendered.extend(events.iter().map(|e| {
        let mut fields: Vec<(String, Value)> = vec![
            ("name".into(), Value::Str(e.name.clone())),
            ("cat".into(), Value::Str("nfactor".into())),
            (
                "ph".into(),
                Value::Str(if e.dur_ns.is_some() { "X" } else { "i" }.into()),
            ),
            ("ts".into(), micros(e.ts_ns)),
        ];
        match e.dur_ns {
            Some(dur) => fields.push(("dur".into(), micros(dur))),
            // Instant events need a scope; "t" = thread.
            None => fields.push(("s".into(), Value::Str("t".into()))),
        }
        fields.push(("pid".into(), Value::Int(1)));
        fields.push(("tid".into(), int(e.tid)));
        if !e.args.is_empty() {
            let args = e
                .args
                .iter()
                .map(|(k, v)| (k.clone(), Value::Int(*v)))
                .collect();
            fields.push(("args".into(), Value::Object(args)));
        }
        Value::Object(fields)
    }));
    Value::Object(vec![
        ("traceEvents".into(), Value::Array(rendered)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, ts_ns: u64, dur_ns: u64, depth: usize, tid: usize) -> TraceEvent {
        TraceEvent { name: name.into(), ts_ns, dur_ns: Some(dur_ns), depth, tid, args: Vec::new() }
    }

    #[test]
    fn spans_render_as_complete_events_in_micros() {
        let json = trace_json(&[span("stage", 2_000, 1_500, 0, 0)], &[]);
        let text = json.render();
        let parsed = Value::parse(&text).expect("valid JSON");
        let Value::Object(top) = parsed else { panic!("expected object") };
        assert_eq!(top[0].0, "traceEvents");
        let Value::Array(events) = &top[0].1 else { panic!("expected array") };
        assert_eq!(events.len(), 1);
        let Value::Object(ev) = &events[0] else { panic!("expected object") };
        let get = |k: &str| ev.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone());
        assert_eq!(get("name"), Some(Value::Str("stage".into())));
        assert_eq!(get("ph"), Some(Value::Str("X".into())));
        assert_eq!(get("ts"), Some(Value::Float(2.0)));
        assert_eq!(get("dur"), Some(Value::Float(1.5)));
        assert_eq!(get("pid"), Some(Value::Int(1)));
        assert_eq!(get("tid"), Some(Value::Int(0)));
    }

    #[test]
    fn instants_get_thread_scope_and_args() {
        let ev = TraceEvent {
            name: "symex.path".into(),
            ts_ns: 0,
            dur_ns: None,
            depth: 2,
            tid: 0,
            args: vec![("index".into(), 7)],
        };
        let text = trace_json(&[ev], &[]).render_pretty();
        assert!(text.contains("\"ph\": \"i\""));
        assert!(text.contains("\"s\": \"t\""));
        assert!(text.contains("\"index\": 7"));
    }

    #[test]
    fn threads_emit_metadata_and_per_event_tids() {
        let events = [span("dispatch", 0, 10, 0, 0), span("worker.step", 2, 5, 0, 1)];
        let names = ["main".to_string(), "shard-1".to_string()];
        let text = trace_json(&events, &names).render_pretty();
        assert!(text.contains("\"ph\": \"M\""));
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("\"shard-1\""));
        assert!(text.contains("\"tid\": 1"));
        // Metadata events come first so viewers name rows before use.
        let parsed = Value::parse(&text).expect("valid JSON");
        let Value::Object(top) = parsed else { panic!("expected object") };
        let Value::Array(all) = &top[0].1 else { panic!("expected array") };
        assert_eq!(all.len(), 4);
        let Value::Object(first) = &all[0] else { panic!("expected object") };
        assert_eq!(first[0].1, Value::Str("thread_name".into()));
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let text = trace_json(&[], &[]).render();
        let parsed = Value::parse(&text).expect("valid JSON");
        let Value::Object(top) = parsed else { panic!("expected object") };
        assert_eq!(top.len(), 2);
    }
}
