//! The wall-clock abstraction behind all nf-trace timing.
//!
//! Every duration the tracer reports comes from a [`Clock`], never from
//! a bare `Instant::now()`. Production code uses [`SystemClock`]; tests
//! swap in a [`MockClock`] to get byte-identical timings across runs.
//!
//! Both clocks hand out real [`std::time::Instant`] values (the mock
//! offsets a base instant captured at construction), so durations,
//! comparisons, and `Budget` deadline arithmetic work unchanged
//! whichever clock is behind the tracer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A source of monotonic time.
///
/// Implementations must be cheap to query and safe to share across
/// threads; the tracer stores one behind an `Arc<dyn Clock>`.
pub trait Clock: Send + Sync {
    /// The current instant according to this clock.
    fn now(&self) -> Instant;
}

/// The real monotonic wall clock (`Instant::now`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// A deterministic clock for tests.
///
/// Advances by a fixed `tick_ns` on every [`Clock::now`] call (so two
/// reads are never equal, like a real clock) and can be advanced
/// explicitly with [`MockClock::advance`]. Because the same sequence of
/// `now()` calls always yields the same sequence of instants, any
/// metrics or trace output derived from a `MockClock` is byte-identical
/// across runs.
#[derive(Debug)]
pub struct MockClock {
    base: Instant,
    offset_ns: AtomicU64,
    tick_ns: u64,
}

impl MockClock {
    /// A mock clock that advances `tick_ns` nanoseconds per `now()` call.
    pub fn new(tick_ns: u64) -> MockClock {
        MockClock { base: Instant::now(), offset_ns: AtomicU64::new(0), tick_ns }
    }

    /// Advance the clock by `d` without consuming a tick.
    pub fn advance(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.offset_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total simulated nanoseconds elapsed since construction.
    pub fn elapsed_ns(&self) -> u64 {
        self.offset_ns.load(Ordering::Relaxed)
    }
}

impl Clock for MockClock {
    fn now(&self) -> Instant {
        let t = self.offset_ns.fetch_add(self.tick_ns, Ordering::Relaxed) + self.tick_ns;
        self.base + Duration::from_nanos(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_clock_ticks_monotonically() {
        let c = MockClock::new(100);
        let a = c.now();
        let b = c.now();
        assert!(b > a);
        assert_eq!(b.duration_since(a), Duration::from_nanos(100));
        assert_eq!(c.elapsed_ns(), 200);
    }

    #[test]
    fn mock_clock_advance_adds_time() {
        let c = MockClock::new(1);
        let a = c.now();
        c.advance(Duration::from_micros(5));
        let b = c.now();
        assert_eq!(b.duration_since(a), Duration::from_nanos(5001));
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock;
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
