//! nf-trace — structured tracing, metrics, and per-stage profiling for
//! the NFactor pipeline.
//!
//! The paper's vendor workflow (§4) runs NFactor unattended over
//! arbitrary NF sources, and its whole evaluation (Table 2) is
//! *measurement*: path counts, exploration time, sliced-vs-original
//! cost. This crate makes that measurement a first-class substrate in
//! the `nf-support` zero-dependency style:
//!
//! * [`clock`] — a mockable [`Clock`] trait behind all timing:
//!   [`SystemClock`] for production, [`MockClock`] for byte-identical
//!   metrics in tests.
//! * [`tracer`] — the explicit [`Tracer`] handle, threaded through the
//!   pipeline alongside `Budget` (no globals, no thread-locals). It
//!   records hierarchical wall-clock [`Span`]s, point-in-time events,
//!   and a metrics registry of counters, gauges, string labels, and
//!   fixed-bucket histograms under stable dotted names
//!   (`symex.paths.explored`, `pipeline.stage.slice.ns`, …).
//! * [`metrics`] — the [`MetricsSnapshot`] with deterministic sorted
//!   rendering: a name→value table for humans, JSON (via
//!   `nf_support::json`) for machines.
//! * [`chrome`] — Chrome trace-event-format JSON emission, loadable in
//!   `chrome://tracing` / Perfetto.
//!
//! A disabled tracer ([`Tracer::disabled`], the `Default`) records
//! nothing and costs only the clock reads the pipeline already needs
//! for its Table 2 timings, so instrumentation stays in the code
//! unconditionally and sinks are opt-in per run.
//!
//! ```
//! use nf_trace::Tracer;
//!
//! let tracer = Tracer::enabled();
//! let span = tracer.span("pipeline.stage.slice");
//! tracer.count("slice.pdg.edges", 42);
//! span.end();
//! assert!(tracer.balanced());
//! assert_eq!(tracer.metrics().counters.get("slice.pdg.edges"), Some(&42));
//! assert!(tracer.metrics().counters.contains_key("pipeline.stage.slice.ns"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod clock;
pub mod metrics;
pub mod tracer;

pub use clock::{Clock, MockClock, SystemClock};
pub use metrics::{Histogram, MetricsSnapshot, DEFAULT_NS_BUCKETS};
pub use tracer::{Span, TraceEvent, Tracer};
