//! The metrics registry: counters, gauges, labels, and fixed-bucket
//! histograms under stable dotted names.
//!
//! All four families live in `BTreeMap`s, so every rendering — the
//! human table and the JSON object — is sorted by name and fully
//! deterministic given deterministic inputs.

use nf_support::json::Value;
use std::collections::BTreeMap;

/// Default histogram bucket upper bounds, in nanoseconds: a geometric
/// ladder from 1 µs to 10 s. Observations above the last bound land in
/// an overflow bucket.
pub const DEFAULT_NS_BUCKETS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// A fixed-bucket histogram of `u64` observations (typically
/// nanoseconds).
///
/// `counts[i]` is the number of observations `<= bounds[i]`; the final
/// extra slot of `counts` is the overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds of each bucket, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; one longer than `bounds`
    /// (the last slot counts overflow).
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
}

impl Histogram {
    /// An empty histogram over the given ascending bucket bounds.
    pub fn new(bounds: &[u64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        if let Some(slot) = self.counts.get_mut(idx) {
            *slot += 1;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Mean observed value, or 0 when empty.
    pub fn mean(&self) -> u64 {
        if self.count == 0 { 0 } else { self.sum / self.count }
    }

    fn to_json(&self) -> Value {
        let buckets = self
            .bounds
            .iter()
            .map(|b| i64::try_from(*b).unwrap_or(i64::MAX))
            .map(Value::Int)
            .collect();
        let counts = self
            .counts
            .iter()
            .map(|c| i64::try_from(*c).unwrap_or(i64::MAX))
            .map(Value::Int)
            .collect();
        Value::Object(vec![
            ("count".into(), int_json(self.count)),
            ("sum".into(), int_json(self.sum)),
            ("bounds".into(), Value::Array(buckets)),
            ("counts".into(), Value::Array(counts)),
        ])
    }
}

fn int_json(v: u64) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// An immutable snapshot of every metric a `Tracer` has recorded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters (`symex.paths.explored`, `*.ns` span totals, …).
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins signed gauges (`budget.remaining_ms`, …).
    pub gauges: BTreeMap<String, i64>,
    /// Last-write-wins string labels (`pipeline.truncated.reason`, …).
    pub labels: BTreeMap<String, String>,
    /// Fixed-bucket histograms (`fuzz.case.ns`, …).
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// True when no metric of any family has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.labels.is_empty()
            && self.histograms.is_empty()
    }

    /// Counter value by name, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Render a sorted `name  value` table, one metric per line.
    ///
    /// Histograms are flattened to `<name>.count/.sum/.mean` rows so the
    /// table stays one scalar per line.
    pub fn render_table(&self) -> String {
        let mut rows: Vec<(String, String)> = Vec::new();
        for (k, v) in &self.counters {
            rows.push((k.clone(), v.to_string()));
        }
        for (k, v) in &self.gauges {
            rows.push((k.clone(), v.to_string()));
        }
        for (k, v) in &self.labels {
            rows.push((k.clone(), v.clone()));
        }
        for (k, h) in &self.histograms {
            rows.push((format!("{k}.count"), h.count.to_string()));
            rows.push((format!("{k}.sum"), h.sum.to_string()));
            rows.push((format!("{k}.mean"), h.mean().to_string()));
        }
        rows.sort();
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in rows {
            out.push_str(&format!("{k:<width$}  {v}\n"));
        }
        out
    }

    /// Machine-readable JSON: one sorted object per metric family.
    pub fn to_json(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), int_json(*v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Value::Int(*v)))
            .collect();
        let labels = self
            .labels
            .iter()
            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.to_json()))
            .collect();
        Value::Object(vec![
            ("counters".into(), Value::Object(counters)),
            ("gauges".into(), Value::Object(gauges)),
            ("labels".into(), Value::Object(labels)),
            ("histograms".into(), Value::Object(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let mut h = Histogram::new(&[10, 100]);
        h.observe(10); // first bucket (inclusive)
        h.observe(11); // second bucket
        h.observe(100); // second bucket (inclusive)
        h.observe(101); // overflow
        assert_eq!(h.counts, vec![1, 2, 1]);
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 222);
        assert_eq!(h.mean(), 55);
    }

    #[test]
    fn table_is_sorted_and_aligned() {
        let mut m = MetricsSnapshot::default();
        m.counters.insert("b.count".into(), 2);
        m.counters.insert("a.count".into(), 1);
        m.gauges.insert("c.gauge".into(), -5);
        m.labels.insert("d.label".into(), "why".into());
        let t = m.render_table();
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a.count"));
        assert!(lines[1].starts_with("b.count"));
        assert!(lines[2].contains("-5"));
        assert!(lines[3].ends_with("why"));
    }

    #[test]
    fn json_shape_has_all_four_families() {
        let mut m = MetricsSnapshot::default();
        m.counters.insert("x".into(), 7);
        let mut h = Histogram::new(&DEFAULT_NS_BUCKETS);
        h.observe(500);
        m.histograms.insert("lat".into(), h);
        let rendered = m.to_json().render();
        let parsed = Value::parse(&rendered).expect("round-trip");
        let obj = match parsed {
            Value::Object(kvs) => kvs,
            other => panic!("expected object, got {other:?}"),
        };
        let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["counters", "gauges", "labels", "histograms"]);
    }
}
