//! The metrics registry: counters, gauges, labels, and fixed-bucket
//! histograms under stable dotted names.
//!
//! All four families live in `BTreeMap`s, so every rendering — the
//! human table and the JSON object — is sorted by name and fully
//! deterministic given deterministic inputs.

use nf_support::json::Value;
use std::collections::BTreeMap;

/// Default histogram bucket upper bounds, in nanoseconds: a geometric
/// ladder from 1 µs to 10 s. Observations above the last bound land in
/// an overflow bucket.
pub const DEFAULT_NS_BUCKETS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// A fixed-bucket histogram of `u64` observations (typically
/// nanoseconds).
///
/// `counts[i]` is the number of observations `<= bounds[i]`; the final
/// extra slot of `counts` is the overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds of each bucket, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; one longer than `bounds`
    /// (the last slot counts overflow).
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Largest observed value (0 when empty); also the upper edge used
    /// when interpolating quantiles inside the overflow bucket.
    pub max: u64,
}

impl Histogram {
    /// An empty histogram over the given ascending bucket bounds.
    pub fn new(bounds: &[u64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        if let Some(slot) = self.counts.get_mut(idx) {
            *slot += 1;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one. Matching bucket bounds
    /// merge count-for-count; mismatched bounds are re-bucketed at each
    /// source bucket's upper edge (overflow at the source maximum), so
    /// the merge never loses observations either way.
    pub fn merge(&mut self, other: &Histogram) {
        if self.bounds == other.bounds {
            for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                *a += b;
            }
        } else {
            for (i, &c) in other.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let v = other.bounds.get(i).copied().unwrap_or(other.max);
                let idx = self
                    .bounds
                    .iter()
                    .position(|&b| v <= b)
                    .unwrap_or(self.bounds.len());
                self.counts[idx] += c;
            }
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Mean observed value, or 0 when empty.
    pub fn mean(&self) -> u64 {
        if self.count == 0 { 0 } else { self.sum / self.count }
    }

    /// Bucket-interpolated quantile estimate for `q` in `[0, 1]`
    /// (clamped); 0 when empty.
    ///
    /// The observation of rank `ceil(q * count)` is located in its
    /// bucket and linearly interpolated between the bucket's edges
    /// (the overflow bucket's upper edge is the observed maximum). The
    /// estimate is therefore always bounded by the edges of the bucket
    /// the rank falls in, and monotone in `q` — both pinned by property
    /// tests.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if rank <= seen + c {
                let lo = if i == 0 { 0 } else { self.bounds[i - 1] };
                let hi = self.bounds.get(i).copied().unwrap_or(self.max);
                // The true values in this bucket never exceed the
                // observed maximum, so tighten the upper edge.
                let hi = hi.min(self.max).max(lo);
                let within = (rank - seen) as f64 / c as f64;
                return lo + ((hi - lo) as f64 * within).round() as u64;
            }
            seen += c;
        }
        self.max
    }

    /// Median estimate (`quantile(0.50)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate (`quantile(0.90)`).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate (`quantile(0.99)`).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// JSON summary: totals, interpolated percentiles, and the raw
    /// bucket layout (`bounds`/`counts`) for downstream tooling.
    pub fn to_json(&self) -> Value {
        let buckets = self
            .bounds
            .iter()
            .map(|b| i64::try_from(*b).unwrap_or(i64::MAX))
            .map(Value::Int)
            .collect();
        let counts = self
            .counts
            .iter()
            .map(|c| i64::try_from(*c).unwrap_or(i64::MAX))
            .map(Value::Int)
            .collect();
        Value::Object(vec![
            ("count".into(), int_json(self.count)),
            ("sum".into(), int_json(self.sum)),
            ("max".into(), int_json(self.max)),
            ("p50".into(), int_json(self.p50())),
            ("p90".into(), int_json(self.p90())),
            ("p99".into(), int_json(self.p99())),
            ("bounds".into(), Value::Array(buckets)),
            ("counts".into(), Value::Array(counts)),
        ])
    }
}

fn int_json(v: u64) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// An immutable snapshot of every metric a `Tracer` has recorded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters (`symex.paths.explored`, `*.ns` span totals, …).
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins signed gauges (`budget.remaining_ms`, …).
    pub gauges: BTreeMap<String, i64>,
    /// Last-write-wins string labels (`pipeline.truncated.reason`, …).
    pub labels: BTreeMap<String, String>,
    /// Fixed-bucket histograms (`fuzz.case.ns`, …).
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// True when no metric of any family has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.labels.is_empty()
            && self.histograms.is_empty()
    }

    /// Counter value by name, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The change since `earlier`: counters and histogram counts are
    /// subtracted (saturating), gauges and labels keep their current
    /// values (they are last-write-wins, so a delta is meaningless).
    ///
    /// This is what the live `nfactor top` view renders each poll to
    /// turn cumulative totals into interval rates. A metric absent from
    /// `earlier` — or a histogram whose bounds changed — passes through
    /// unchanged. A delta histogram's `max` keeps the cumulative
    /// maximum (the interval maximum is not recoverable from buckets).
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for (k, v) in &self.counters {
            let prev = earlier.counters.get(k).copied().unwrap_or(0);
            out.counters.insert(k.clone(), v.saturating_sub(prev));
        }
        out.gauges = self.gauges.clone();
        out.labels = self.labels.clone();
        for (k, h) in &self.histograms {
            let d = match earlier.histograms.get(k) {
                Some(p) if p.bounds == h.bounds && p.count <= h.count => {
                    let mut d = h.clone();
                    for (a, b) in d.counts.iter_mut().zip(&p.counts) {
                        *a = a.saturating_sub(*b);
                    }
                    d.count = h.count - p.count;
                    d.sum = h.sum.saturating_sub(p.sum);
                    d
                }
                _ => h.clone(),
            };
            out.histograms.insert(k.clone(), d);
        }
        out
    }

    /// Render a sorted `name  value` table, one metric per line.
    ///
    /// Histograms are flattened to `<name>.count/.mean/.p50/.p99/.max`
    /// rows so the table stays one scalar per line while still reading
    /// as a latency summary.
    pub fn render_table(&self) -> String {
        let mut rows: Vec<(String, String)> = Vec::new();
        for (k, v) in &self.counters {
            rows.push((k.clone(), v.to_string()));
        }
        for (k, v) in &self.gauges {
            rows.push((k.clone(), v.to_string()));
        }
        for (k, v) in &self.labels {
            rows.push((k.clone(), v.clone()));
        }
        for (k, h) in &self.histograms {
            rows.push((format!("{k}.count"), h.count.to_string()));
            rows.push((format!("{k}.mean"), h.mean().to_string()));
            rows.push((format!("{k}.p50"), h.p50().to_string()));
            rows.push((format!("{k}.p99"), h.p99().to_string()));
            rows.push((format!("{k}.max"), h.max.to_string()));
        }
        rows.sort();
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in rows {
            out.push_str(&format!("{k:<width$}  {v}\n"));
        }
        out
    }

    /// Machine-readable JSON: one sorted object per metric family.
    pub fn to_json(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), int_json(*v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Value::Int(*v)))
            .collect();
        let labels = self
            .labels
            .iter()
            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.to_json()))
            .collect();
        Value::Object(vec![
            ("counters".into(), Value::Object(counters)),
            ("gauges".into(), Value::Object(gauges)),
            ("labels".into(), Value::Object(labels)),
            ("histograms".into(), Value::Object(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let mut h = Histogram::new(&[10, 100]);
        h.observe(10); // first bucket (inclusive)
        h.observe(11); // second bucket
        h.observe(100); // second bucket (inclusive)
        h.observe(101); // overflow
        assert_eq!(h.counts, vec![1, 2, 1]);
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 222);
        assert_eq!(h.mean(), 55);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = Histogram::new(&[100, 200]);
        for v in [50, 100, 150, 200] {
            h.observe(v);
        }
        // rank(0.5) = 2 → second of two observations in bucket (0,100]:
        // interpolation reaches the bucket's upper edge.
        assert_eq!(h.p50(), 100);
        // rank(0.99) = 4 → top of bucket (100,200].
        assert_eq!(h.p99(), 200);
        assert_eq!(h.max, 200);
        assert_eq!(h.quantile(0.0), h.quantile(0.001));
        let empty = Histogram::new(&[100]);
        assert_eq!(empty.quantile(0.5), 0);
    }

    #[test]
    fn quantile_overflow_bucket_uses_observed_max() {
        let mut h = Histogram::new(&[10]);
        h.observe(5_000); // overflow
        assert_eq!(h.p99(), 5_000);
        assert_eq!(h.p50(), 5_000);
    }

    #[test]
    fn merge_matching_bounds_adds_counts() {
        let mut a = Histogram::new(&[10, 100]);
        a.observe(5);
        let mut b = Histogram::new(&[10, 100]);
        b.observe(50);
        b.observe(500);
        a.merge(&b);
        assert_eq!(a.counts, vec![1, 1, 1]);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 555);
        assert_eq!(a.max, 500);
    }

    #[test]
    fn merge_mismatched_bounds_rebuckets_at_upper_edges() {
        let mut a = Histogram::new(&[1_000]);
        let mut b = Histogram::new(&[10, 100]);
        b.observe(5); // folded at edge 10
        b.observe(2_000); // overflow, folded at b.max = 2000
        a.merge(&b);
        assert_eq!(a.counts, vec![1, 1]);
        assert_eq!(a.count, 2);
        assert_eq!(a.max, 2_000);
    }

    #[test]
    fn delta_subtracts_counters_and_histograms() {
        let mut before = MetricsSnapshot::default();
        before.counters.insert("pkts".into(), 10);
        let mut h0 = Histogram::new(&[100]);
        h0.observe(50);
        before.histograms.insert("lat".into(), h0);

        let mut after = before.clone();
        *after.counters.get_mut("pkts").unwrap() = 25;
        after.counters.insert("fresh".into(), 3);
        after.histograms.get_mut("lat").unwrap().observe(70);
        after.gauges.insert("depth".into(), 4);

        let d = after.delta(&before);
        assert_eq!(d.counter("pkts"), Some(15));
        assert_eq!(d.counter("fresh"), Some(3));
        assert_eq!(d.gauges.get("depth"), Some(&4));
        let lat = &d.histograms["lat"];
        assert_eq!(lat.count, 1);
        assert_eq!(lat.sum, 70);
        assert_eq!(lat.counts, vec![1, 0]);
    }

    #[test]
    fn table_is_sorted_and_aligned() {
        let mut m = MetricsSnapshot::default();
        m.counters.insert("b.count".into(), 2);
        m.counters.insert("a.count".into(), 1);
        m.gauges.insert("c.gauge".into(), -5);
        m.labels.insert("d.label".into(), "why".into());
        let t = m.render_table();
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a.count"));
        assert!(lines[1].starts_with("b.count"));
        assert!(lines[2].contains("-5"));
        assert!(lines[3].ends_with("why"));
    }

    #[test]
    fn json_shape_has_all_four_families() {
        let mut m = MetricsSnapshot::default();
        m.counters.insert("x".into(), 7);
        let mut h = Histogram::new(&DEFAULT_NS_BUCKETS);
        h.observe(500);
        m.histograms.insert("lat".into(), h);
        let rendered = m.to_json().render();
        let parsed = Value::parse(&rendered).expect("round-trip");
        let obj = match parsed {
            Value::Object(kvs) => kvs,
            other => panic!("expected object, got {other:?}"),
        };
        let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["counters", "gauges", "labels", "histograms"]);
    }
}
