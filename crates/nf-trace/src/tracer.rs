//! The [`Tracer`] handle: hierarchical spans plus the metrics registry.
//!
//! A `Tracer` is an explicit value threaded through the pipeline
//! alongside `Budget` — no globals, no thread-locals. Cloning is cheap
//! (two `Arc` bumps); all clones share one sink, so spans opened deep in
//! `nfl-symex` land in the same trace as the pipeline-stage spans that
//! contain them.
//!
//! A *disabled* tracer (no sink) still answers [`Tracer::now`] from its
//! clock, so pipeline timing always flows through one mockable source,
//! but records nothing and skips all allocation.

use crate::clock::{Clock, SystemClock};
use crate::metrics::{Histogram, MetricsSnapshot, DEFAULT_NS_BUCKETS};
use nf_support::json::Value;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One recorded trace event: a completed span (`dur_ns` set) or an
/// instant event (`dur_ns` empty).
///
/// Timestamps are nanoseconds since the tracer's origin, so they are
/// deterministic under a mock clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Stable dotted event name (`pipeline.stage.slice`, `symex.path`, …).
    pub name: String,
    /// Start time, nanoseconds since the tracer origin.
    pub ts_ns: u64,
    /// Duration in nanoseconds for spans; `None` for instant events.
    pub dur_ns: Option<u64>,
    /// Nesting depth at the time the event was recorded (0 = top level).
    pub depth: usize,
    /// Dense index of the recording thread (0 = first thread to record;
    /// single-threaded runs therefore always read 0). Maps into
    /// [`Tracer::thread_names`].
    pub tid: usize,
    /// Optional integer arguments (path index, constraint count, …).
    pub args: Vec<(String, i64)>,
}

#[derive(Default)]
struct Sink {
    events: Vec<TraceEvent>,
    /// Stack of currently-open spans: (name, start_ns).
    open: Vec<(String, u64)>,
    /// Recording threads in first-record order; the position is the
    /// event `tid` and the name (when the thread has one) feeds the
    /// Chrome `thread_name` metadata.
    threads: Vec<(std::thread::ThreadId, Option<String>)>,
    metrics: MetricsSnapshot,
}

impl Sink {
    /// The dense tid for the calling thread, registering it on first
    /// use.
    fn tid_for_current(&mut self) -> usize {
        let cur = std::thread::current();
        let id = cur.id();
        if let Some(i) = self.threads.iter().position(|(t, _)| *t == id) {
            return i;
        }
        self.threads.push((id, cur.name().map(String::from)));
        self.threads.len() - 1
    }
}

/// The tracing handle. See the [module docs](self) for the threading
/// model.
#[derive(Clone)]
pub struct Tracer {
    clock: Arc<dyn Clock>,
    origin: Instant,
    sink: Option<Arc<Mutex<Sink>>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.sink.is_some())
            .finish()
    }
}

impl Default for Tracer {
    /// The default tracer is disabled: always safe to thread through.
    fn default() -> Tracer {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A tracer with no sink: records nothing, but still tells time via
    /// the system clock so instrumented code has one timing source.
    pub fn disabled() -> Tracer {
        Tracer { clock: Arc::new(SystemClock), origin: Instant::now(), sink: None }
    }

    /// A recording tracer on the system clock.
    pub fn enabled() -> Tracer {
        Tracer::with_clock(Arc::new(SystemClock))
    }

    /// A recording tracer on an explicit clock (tests pass a
    /// [`crate::MockClock`] here for deterministic output).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Tracer {
        let origin = clock.now();
        Tracer { clock, origin, sink: Some(Arc::new(Mutex::new(Sink::default()))) }
    }

    /// True when this tracer records events and metrics.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The current instant according to this tracer's clock.
    ///
    /// Instrumented code uses this instead of `Instant::now()` so all
    /// timing — including `Budget` deadline checks — is mockable.
    pub fn now(&self) -> Instant {
        self.clock.now()
    }

    fn with_sink<R>(&self, f: impl FnOnce(&mut Sink) -> R) -> Option<R> {
        let sink = self.sink.as_ref()?;
        match sink.lock() {
            Ok(mut guard) => Some(f(&mut guard)),
            // A poisoned sink means a panic elsewhere; drop the record
            // rather than propagate.
            Err(_) => None,
        }
    }

    fn ns_since_origin(&self, t: Instant) -> u64 {
        u64::try_from(t.saturating_duration_since(self.origin).as_nanos()).unwrap_or(u64::MAX)
    }

    /// Open a hierarchical span. Close it with [`Span::end`] to get the
    /// elapsed wall-clock `Duration`; dropping the guard closes it too.
    ///
    /// On close, the span is recorded as a trace event and its duration
    /// is added to the `<name>.ns` counter, so per-stage totals
    /// (`pipeline.stage.slice.ns`, …) fall out of the span tree.
    pub fn span(&self, name: impl Into<String>) -> Span {
        let start = self.clock.now();
        let name = if self.sink.is_some() {
            let name = name.into();
            let ts = self.ns_since_origin(start);
            self.with_sink(|s| s.open.push((name.clone(), ts)));
            Some(name)
        } else {
            None
        };
        Span { tracer: self.clone(), start, name }
    }

    /// Record an instant (zero-duration) event.
    pub fn instant(&self, name: &str) {
        self.instant_with(name, &[]);
    }

    /// Record an instant event with integer arguments.
    pub fn instant_with(&self, name: &str, args: &[(&str, i64)]) {
        if self.sink.is_none() {
            return;
        }
        let ts = self.ns_since_origin(self.clock.now());
        let args: Vec<(String, i64)> = args.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        self.with_sink(|s| {
            let depth = s.open.len();
            let tid = s.tid_for_current();
            s.events.push(TraceEvent { name: name.to_string(), ts_ns: ts, dur_ns: None, depth, tid, args });
        });
    }

    /// Add `delta` to the counter `name`.
    pub fn count(&self, name: &str, delta: u64) {
        self.with_sink(|s| {
            *s.metrics.counters.entry(name.to_string()).or_insert(0) += delta;
        });
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn gauge(&self, name: &str, value: i64) {
        self.with_sink(|s| {
            s.metrics.gauges.insert(name.to_string(), value);
        });
    }

    /// Set the string label `name` to `value` (last write wins).
    pub fn label(&self, name: &str, value: &str) {
        self.with_sink(|s| {
            s.metrics.labels.insert(name.to_string(), value.to_string());
        });
    }

    /// Record `ns` into the fixed-bucket histogram `name`
    /// (default nanosecond buckets, 1 µs – 10 s).
    pub fn observe_ns(&self, name: &str, ns: u64) {
        self.with_sink(|s| {
            s.metrics
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Histogram::new(&DEFAULT_NS_BUCKETS))
                .observe(ns);
        });
    }

    /// Fold a locally-accumulated histogram into the registry under
    /// `name` in one lock acquisition.
    ///
    /// This is the off-hot-path flush: shard workers batch observations
    /// into a private [`Histogram`] and merge it here every few dozen
    /// packets, instead of taking the sink lock per packet. A no-op for
    /// an empty histogram or a disabled tracer.
    pub fn merge_histogram(&self, name: &str, h: &Histogram) {
        if h.count == 0 {
            return;
        }
        self.with_sink(|s| {
            s.metrics
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Histogram::new(&h.bounds))
                .merge(h);
        });
    }

    /// Snapshot of all metrics recorded so far (empty when disabled).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.with_sink(|s| s.metrics.clone()).unwrap_or_default()
    }

    /// All recorded trace events so far (empty when disabled).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.with_sink(|s| s.events.clone()).unwrap_or_default()
    }

    /// Number of spans currently open (0 when disabled).
    pub fn open_spans(&self) -> usize {
        self.with_sink(|s| s.open.len()).unwrap_or(0)
    }

    /// True when every opened span has been closed.
    pub fn balanced(&self) -> bool {
        self.open_spans() == 0
    }

    /// Display names of every thread that has recorded an event, in
    /// `tid` order. Unnamed threads render as `thread-<tid>`.
    pub fn thread_names(&self) -> Vec<String> {
        self.with_sink(|s| {
            s.threads
                .iter()
                .enumerate()
                .map(|(i, (_, name))| name.clone().unwrap_or_else(|| format!("thread-{i}")))
                .collect()
        })
        .unwrap_or_default()
    }

    /// Chrome trace-event-format JSON for everything recorded so far.
    pub fn trace_json(&self) -> Value {
        crate::chrome::trace_json(&self.events(), &self.thread_names())
    }
}

/// Guard for an open span. [`Span::end`] (or drop) closes it and
/// records the elapsed time; early returns via `?` therefore still
/// leave the trace balanced.
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    start: Instant,
    /// `Some` while open on an enabled tracer; taken on close.
    name: Option<String>,
}

impl Span {
    /// Close the span and return its wall-clock duration.
    ///
    /// The duration is measured even on a disabled tracer, so callers
    /// can use one code path for both tracing and their own metrics
    /// (e.g. Table 2's slicing/exploration times).
    pub fn end(mut self) -> Duration {
        self.close()
    }

    fn close(&mut self) -> Duration {
        let end = self.tracer.clock.now();
        let dur = end.saturating_duration_since(self.start);
        if let Some(name) = self.name.take() {
            let dur_ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
            self.tracer.with_sink(|s| {
                // Pop the matching open entry nearest the top; a miss
                // (foreign pop) is recorded at depth 0 rather than lost.
                let (ts_ns, depth) = match s.open.iter().rposition(|(n, _)| *n == name) {
                    Some(i) => {
                        let (_, ts) = s.open.remove(i);
                        (ts, i)
                    }
                    None => (self.tracer.ns_since_origin(self.start), 0),
                };
                let tid = s.tid_for_current();
                s.events.push(TraceEvent {
                    name: name.clone(),
                    ts_ns,
                    dur_ns: Some(dur_ns),
                    depth,
                    tid,
                    args: Vec::new(),
                });
                *s.metrics.counters.entry(format!("{name}.ns")).or_insert(0) += dur_ns;
            });
        }
        dur
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.name.is_some() {
            self.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;

    #[test]
    fn disabled_tracer_records_nothing_but_tells_time() {
        let t = Tracer::disabled();
        let span = t.span("x");
        t.count("c", 1);
        t.instant("i");
        let dur = span.end();
        assert!(dur >= Duration::ZERO);
        assert!(t.metrics().is_empty());
        assert!(t.events().is_empty());
        assert!(t.balanced());
    }

    #[test]
    fn span_close_records_event_and_ns_counter() {
        let clock = Arc::new(MockClock::new(100));
        let t = Tracer::with_clock(clock);
        let span = t.span("stage");
        let dur = span.end();
        assert_eq!(dur, Duration::from_nanos(100));
        let events = t.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "stage");
        assert_eq!(events[0].dur_ns, Some(100));
        assert_eq!(events[0].depth, 0);
        assert_eq!(t.metrics().counter("stage.ns"), Some(100));
        assert!(t.balanced());
    }

    #[test]
    fn nested_spans_get_increasing_depth() {
        let t = Tracer::with_clock(Arc::new(MockClock::new(10)));
        let outer = t.span("outer");
        let inner = t.span("inner");
        assert_eq!(t.open_spans(), 2);
        inner.end();
        outer.end();
        let events = t.events();
        // Inner closes first, so it is recorded first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[1].depth, 0);
        // Inner is contained within outer on the timeline.
        let (o, i) = (&events[1], &events[0]);
        assert!(i.ts_ns >= o.ts_ns);
        assert!(i.ts_ns + i.dur_ns.unwrap() <= o.ts_ns + o.dur_ns.unwrap());
    }

    #[test]
    fn dropping_a_span_closes_it() {
        let t = Tracer::with_clock(Arc::new(MockClock::new(1)));
        {
            let _span = t.span("scoped");
        }
        assert!(t.balanced());
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn clones_share_one_sink() {
        let t = Tracer::with_clock(Arc::new(MockClock::new(1)));
        let t2 = t.clone();
        t2.count("shared", 3);
        assert_eq!(t.metrics().counter("shared"), Some(3));
    }

    #[test]
    fn gauges_and_labels_are_last_write_wins() {
        let t = Tracer::enabled();
        t.gauge("g", 1);
        t.gauge("g", -2);
        t.label("l", "a");
        t.label("l", "b");
        let m = t.metrics();
        assert_eq!(m.gauges.get("g"), Some(&-2));
        assert_eq!(m.labels.get("l").map(String::as_str), Some("b"));
    }

    #[test]
    fn instant_events_carry_args_and_depth() {
        let t = Tracer::with_clock(Arc::new(MockClock::new(1)));
        let span = t.span("outer");
        t.instant_with("mark", &[("index", 4)]);
        span.end();
        let events = t.events();
        assert_eq!(events[0].name, "mark");
        assert_eq!(events[0].dur_ns, None);
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[0].args, vec![("index".to_string(), 4)]);
    }
}
