//! Property tests for nf-trace: span balance invariants, metrics
//! determinism under a mock clock, and Chrome trace-event JSON shape.

use nf_support::check::{check, uint_range, vec_of, Config};
use nf_support::json::Value;
use nf_trace::{MockClock, Tracer, DEFAULT_NS_BUCKETS};
use std::sync::Arc;

/// Interpret an op sequence against a fresh mock-clock tracer.
///
/// `op % 4`: 0 = open span, 1 = close newest span, 2 = instant event,
/// 3 = counter bump. `(op / 4) % 3` picks one of three span names, so
/// same-name nesting and interleaved closes are exercised. Returns the
/// tracer (all spans closed) plus how many opens/instants ran.
fn interpret(ops: &[u64]) -> (Tracer, usize, usize) {
    let tracer = Tracer::with_clock(Arc::new(MockClock::new(50)));
    let names = ["a", "b", "c"];
    let mut stack = Vec::new();
    let mut opens = 0;
    let mut instants = 0;
    for &op in ops {
        match op % 4 {
            0 => {
                stack.push(tracer.span(names[(op / 4) as usize % names.len()]));
                opens += 1;
            }
            1 => {
                if let Some(span) = stack.pop() {
                    span.end();
                }
            }
            2 => {
                tracer.instant_with("mark", &[("op", op as i64)]);
                instants += 1;
            }
            _ => tracer.count("ops.seen", 1),
        }
    }
    // Close any still-open spans (drop order: newest first).
    while let Some(span) = stack.pop() {
        span.end();
    }
    (tracer, opens, instants)
}

#[test]
fn prop_spans_always_balance() {
    let ops = vec_of(uint_range(0, 15), 0, 40);
    check("spans_balance", &Config::with_cases(200), &ops, |ops| {
        let (tracer, opens, instants) = interpret(ops);
        assert!(tracer.balanced(), "open spans left after closing all guards");
        let events = tracer.events();
        assert_eq!(events.len(), opens + instants);
        // Every opened span produced exactly one complete event, and
        // its duration is on the timeline (end >= start).
        let spans: Vec<_> = events.iter().filter(|e| e.dur_ns.is_some()).collect();
        assert_eq!(spans.len(), opens);
        for e in &events {
            if let Some(dur) = e.dur_ns {
                assert!(dur > 0, "mock clock ticks, so spans cannot be zero-length");
            }
        }
    });
}

#[test]
fn prop_metrics_and_trace_deterministic_under_mock_clock() {
    let ops = vec_of(uint_range(0, 15), 0, 40);
    check("metrics_deterministic", &Config::with_cases(100), &ops, |ops| {
        let (t1, _, _) = interpret(ops);
        let (t2, _, _) = interpret(ops);
        assert_eq!(t1.metrics().render_table(), t2.metrics().render_table());
        assert_eq!(
            t1.metrics().to_json().render_pretty(),
            t2.metrics().to_json().render_pretty()
        );
        assert_eq!(
            t1.trace_json().render_pretty(),
            t2.trace_json().render_pretty()
        );
    });
}

#[test]
fn prop_chrome_json_round_trips_with_expected_shape() {
    let ops = vec_of(uint_range(0, 15), 0, 30);
    check("chrome_shape", &Config::with_cases(100), &ops, |ops| {
        let (tracer, opens, instants) = interpret(ops);
        let text = tracer.trace_json().render_pretty();
        let parsed = Value::parse(&text).expect("trace JSON must re-parse");
        let all = match parsed.get("traceEvents") {
            Some(Value::Array(es)) => es.clone(),
            other => panic!("traceEvents must be an array, got {other:?}"),
        };
        // `thread_name` metadata events lead; timed events follow.
        let (meta, events): (Vec<_>, Vec<_>) = all
            .iter()
            .partition(|ev| ev.get("ph") == Some(&Value::Str("M".into())));
        assert_eq!(events.len(), opens + instants);
        if opens + instants > 0 {
            assert_eq!(meta.len(), 1, "single-threaded run names exactly one thread");
            assert_eq!(events[0].get("tid"), Some(&Value::Int(0)));
        }
        for ev in &events {
            assert!(matches!(ev.get("name"), Some(Value::Str(_))));
            assert!(matches!(ev.get("ts"), Some(Value::Float(_))));
            match ev.get("ph") {
                Some(Value::Str(ph)) if ph == "X" => {
                    assert!(matches!(ev.get("dur"), Some(Value::Float(_))));
                }
                Some(Value::Str(ph)) if ph == "i" => {
                    assert_eq!(ev.get("s"), Some(&Value::Str("t".into())));
                }
                other => panic!("unexpected ph: {other:?}"),
            }
        }
    });
}

#[test]
fn prop_histogram_totals_match_observations() {
    let obs = vec_of(uint_range(0, 20_000_000_000), 0, 50);
    check("histogram_totals", &Config::with_cases(200), &obs, |obs| {
        let tracer = Tracer::enabled();
        for &v in obs {
            tracer.observe_ns("lat", v);
        }
        let metrics = tracer.metrics();
        if obs.is_empty() {
            assert!(metrics.histograms.is_empty());
            return;
        }
        let h = metrics.histograms.get("lat").expect("histogram recorded");
        assert_eq!(h.count, obs.len() as u64);
        assert_eq!(h.sum, obs.iter().fold(0u64, |a, &b| a.saturating_add(b)));
        assert_eq!(h.counts.iter().sum::<u64>(), h.count);
        assert_eq!(h.counts.len(), DEFAULT_NS_BUCKETS.len() + 1);
    });
}
