//! Property tests for bucket-interpolated histogram quantiles: monotone
//! in `q`, bounded by the edges of the bucket the rank falls in, and
//! exact at the extremes. Pinned regression cases cover the overflow
//! bucket and single-observation histograms.

use nf_support::check::{check, uint_range, vec_of, Config};
use nf_trace::{Histogram, MetricsSnapshot, DEFAULT_NS_BUCKETS};

const QS: [f64; 9] = [0.0, 0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0];

fn build(obs: &[u64]) -> Histogram {
    let mut h = Histogram::new(&DEFAULT_NS_BUCKETS);
    for &v in obs {
        h.observe(v);
    }
    h
}

/// The edges of the bucket holding the observation of rank
/// `ceil(q * count)`, computed independently of `Histogram::quantile`.
fn rank_bucket_edges(h: &Histogram, q: f64) -> (u64, u64) {
    let rank = ((q * h.count as f64).ceil() as u64).clamp(1, h.count);
    let mut seen = 0u64;
    for (i, &c) in h.counts.iter().enumerate() {
        if rank <= seen + c && c > 0 {
            let lo = if i == 0 { 0 } else { h.bounds[i - 1] };
            let hi = h.bounds.get(i).copied().unwrap_or(h.max);
            return (lo, hi);
        }
        seen += c;
    }
    (0, h.max)
}

#[test]
fn prop_quantiles_monotone_in_q() {
    let obs = vec_of(uint_range(0, 20_000_000_000), 1, 60);
    check("quantile_monotone", &Config::with_cases(200), &obs, |obs| {
        let h = build(obs);
        let values: Vec<u64> = QS.iter().map(|&q| h.quantile(q)).collect();
        for w in values.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be monotone in q: {values:?}");
        }
        assert_eq!(h.quantile(1.0), h.max, "q=1 is exactly the maximum");
    });
}

#[test]
fn prop_quantiles_bounded_by_bucket_edges() {
    let obs = vec_of(uint_range(0, 20_000_000_000), 1, 60);
    check("quantile_bounded", &Config::with_cases(200), &obs, |obs| {
        let h = build(obs);
        let true_max = *obs.iter().max().expect("non-empty");
        assert_eq!(h.max, true_max);
        for &q in &QS {
            let v = h.quantile(q);
            let (lo, hi) = rank_bucket_edges(&h, q);
            assert!(
                v >= lo && v <= hi,
                "quantile({q}) = {v} escapes its bucket [{lo}, {hi}]"
            );
            assert!(v <= true_max, "quantile({q}) = {v} above observed max {true_max}");
        }
    });
}

#[test]
fn prop_delta_histogram_matches_interval_observations() {
    // Observing A then B: delta(after, before) must equal a histogram
    // of B alone in counts, count, and sum (max stays cumulative).
    let obs = vec_of(uint_range(0, 20_000_000_000), 2, 60);
    check("delta_interval", &Config::with_cases(150), &obs, |obs| {
        let split = obs.len() / 2;
        let (a, b) = obs.split_at(split);
        let mut before = MetricsSnapshot::default();
        before.histograms.insert("lat".into(), build(a));
        let mut after = MetricsSnapshot::default();
        after.histograms.insert("lat".into(), build(obs));
        let d = after.delta(&before);
        let got = &d.histograms["lat"];
        let want = build(b);
        assert_eq!(got.counts, want.counts);
        assert_eq!(got.count, want.count);
        assert_eq!(got.sum, want.sum);
    });
}

/// Pinned: everything in the overflow bucket interpolates against the
/// observed maximum, not infinity.
#[test]
fn regression_overflow_bucket_quantiles() {
    let top = DEFAULT_NS_BUCKETS[DEFAULT_NS_BUCKETS.len() - 1];
    let h = build(&[top + 1, top + 500, top + 1_000]);
    assert_eq!(h.quantile(1.0), top + 1_000);
    for &q in &QS {
        let v = h.quantile(q);
        assert!(v >= top && v <= top + 1_000, "quantile({q}) = {v}");
    }
}

/// Pinned: one observation pins every quantile to its bucket, with
/// q = 1 exactly the value.
#[test]
fn regression_single_observation() {
    let h = build(&[5_000]);
    assert_eq!(h.quantile(1.0), 5_000);
    assert_eq!(h.max, 5_000);
    for &q in &QS {
        let v = h.quantile(q);
        assert!(v >= 1_000 && v <= 5_000, "quantile({q}) = {v} outside (1000, 5000]");
    }
}
