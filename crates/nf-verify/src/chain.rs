//! Service-chain policy composition — the paper's §4 PGA application.
//!
//! *"Consider two service chaining policies: `{FW, IDS}` and `{LB}`.
//! What should be the right order after composition, `{FW, IDS, LB}` or
//! `{FW, LB, IDS}`? … PGA … generates the input and output space
//! constraints of each NF based on its behavior model."*
//!
//! The models make the answer computable: an NF that **rewrites** a
//! field must come *after* any NF that **matches** on that field,
//! otherwise the match sees translated values the policy never spoke
//! about. [`recommend_order`] extracts per-model field footprints
//! (matched / rewritten), builds the interference constraints, and
//! topologically sorts — reporting the paper's `{FW, IDS, LB}` for the
//! motivating example because the LB rewrites `ip.dst`/`tcp.dport`,
//! which both the FW and the IDS match on.

use nf_model::{FlowAction, Model};
use nf_packet::Field;
use nfl_symex::SymVal;
use std::collections::BTreeSet;
use std::fmt;

/// The field footprint of one model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Fields any entry matches on.
    pub matched: BTreeSet<Field>,
    /// Fields any forwarding entry rewrites.
    pub rewritten: BTreeSet<Field>,
}

fn fields_of(term: &SymVal, out: &mut BTreeSet<Field>) {
    for v in term.free_vars() {
        if let Some(path) = v.strip_prefix("pkt.") {
            if let Some(f) = Field::from_path(path) {
                out.insert(f);
            }
        }
    }
}

/// Compute a model's matched/rewritten field sets.
pub fn footprint(model: &Model) -> Footprint {
    let mut fp = Footprint::default();
    for t in &model.tables {
        for e in &t.entries {
            for lit in e.flow_match.iter().chain(&e.state_match) {
                fields_of(lit, &mut fp.matched);
            }
            if let FlowAction::Forward { rewrites } = &e.flow_action {
                for (f, _) in rewrites {
                    fp.rewritten.insert(*f);
                }
            }
        }
    }
    fp
}

/// The composition decision for one candidate chain.
#[derive(Debug, Clone)]
pub struct ChainReport {
    /// NF names in the recommended order.
    pub order: Vec<String>,
    /// Human-readable constraints that forced the order
    /// (`"LB rewrites ip.dst which IDS matches → IDS before LB"`).
    pub constraints: Vec<String>,
    /// True when some constraint set is cyclic and the order is a
    /// best-effort (the operator must split the chain).
    pub has_conflict: bool,
}

impl fmt::Display for ChainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "recommended order: {{{}}}", self.order.join(", "))?;
        for c in &self.constraints {
            writeln!(f, "  - {c}")?;
        }
        if self.has_conflict {
            writeln!(f, "  ! conflicting constraints — order is best-effort")?;
        }
        Ok(())
    }
}

/// Recommend an order for `nfs` (name, model). Precedence: if A rewrites
/// a field B matches on, B goes before A (B must see pre-rewrite
/// headers). Ties keep the given order, so policy-specified partial
/// orders (`{FW, IDS}`) survive composition.
pub fn recommend_order(nfs: &[(&str, &Model)]) -> ChainReport {
    let fps: Vec<Footprint> = nfs.iter().map(|(_, m)| footprint(m)).collect();
    let n = nfs.len();
    // edge a→b means "a must run before b".
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut constraints = Vec::new();
    for (a, fa) in fps.iter().enumerate() {
        for (b, fb) in fps.iter().enumerate() {
            if a == b {
                continue;
            }
            let clash: Vec<Field> = fb
                .rewritten
                .intersection(&fa.matched)
                .copied()
                .collect();
            // b rewrites fields a matches ⇒ a before b (but only if a
            // does not itself rewrite fields b matches — that would be a
            // cycle reported below).
            if !clash.is_empty() {
                edges.push((a, b));
                constraints.push(format!(
                    "{} rewrites {} which {} matches on → {} before {}",
                    nfs[b].0,
                    clash
                        .iter()
                        .map(|f| f.path().to_string())
                        .collect::<Vec<_>>()
                        .join(", "),
                    nfs[a].0,
                    nfs[a].0,
                    nfs[b].0
                ));
            }
        }
    }
    // Kahn's algorithm, stable w.r.t. the input order.
    let mut indeg = vec![0usize; n];
    for &(_, b) in &edges {
        indeg[b] += 1;
    }
    let mut order = Vec::new();
    let mut placed = vec![false; n];
    let mut has_conflict = false;
    while order.len() < n {
        let next = (0..n).find(|&i| !placed[i] && indeg[i] == 0);
        match next {
            Some(i) => {
                placed[i] = true;
                order.push(nfs[i].0.to_string());
                for &(a, b) in &edges {
                    if a == i && !placed[b] {
                        indeg[b] -= 1;
                    }
                }
            }
            None => {
                // Cycle: place the first unplaced NF and continue.
                has_conflict = true;
                let i = (0..n).find(|&i| !placed[i]).unwrap();
                placed[i] = true;
                indeg[i] = 0;
                order.push(nfs[i].0.to_string());
                for &(a, b) in &edges {
                    if a == i && !placed[b] && indeg[b] > 0 {
                        indeg[b] -= 1;
                    }
                }
            }
        }
    }
    ChainReport {
        order,
        constraints,
        has_conflict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfactor_core::Pipeline;

    fn model_of(name: &str, src: &str) -> Model {
        Pipeline::builder()
            .name(name)
            .build()
            .unwrap()
            .synthesize(src).unwrap().model
    }

    #[test]
    fn paper_example_fw_ids_lb() {
        let fw = model_of("FW", &nf_corpus::firewall::source());
        let ids = model_of("IDS", &nf_corpus::snort::source(5));
        let lb = model_of("LB", &nf_corpus::fig1_lb::source());
        let report = recommend_order(&[("FW", &fw), ("IDS", &ids), ("LB", &lb)]);
        // The paper's question: {FW, IDS, LB} or {FW, LB, IDS}? The LB
        // rewrites addresses/ports the FW and IDS match on, so it goes
        // last.
        assert_eq!(
            report.order,
            vec!["FW".to_string(), "IDS".to_string(), "LB".to_string()],
            "{report}"
        );
        assert!(!report.has_conflict);
        assert!(
            report.constraints.iter().any(|c| c.contains("LB rewrites")),
            "{report}"
        );
    }

    #[test]
    fn footprints_are_sensible() {
        let lb = model_of("LB", &nf_corpus::fig1_lb::source());
        let fp = footprint(&lb);
        assert!(fp.rewritten.contains(&Field::IpDst));
        assert!(fp.rewritten.contains(&Field::TcpDport));
        assert!(fp.matched.contains(&Field::TcpDport));
        let fw = model_of("FW", &nf_corpus::firewall::source());
        let ffw = footprint(&fw);
        assert!(ffw.rewritten.is_empty(), "firewalls do not rewrite");
        assert!(ffw.matched.contains(&Field::IpSrc));
    }

    #[test]
    fn stable_when_no_interference() {
        let fw = model_of("FW", &nf_corpus::firewall::source());
        let report = recommend_order(&[("A", &fw), ("B", &fw)]);
        assert_eq!(report.order, vec!["A".to_string(), "B".to_string()]);
        assert!(report.constraints.is_empty());
    }

    #[test]
    fn cycle_detected_between_mutual_rewriters() {
        let lb = model_of("LB", &nf_corpus::fig1_lb::source());
        let nat = model_of("NAT", &nf_corpus::nat::source());
        // Both rewrite addresses both match on → conflict expected.
        let report = recommend_order(&[("LB", &lb), ("NAT", &nat)]);
        assert!(report.has_conflict, "{report}");
        assert_eq!(report.order.len(), 2);
    }
}
