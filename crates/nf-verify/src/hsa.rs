//! Stateful header-space analysis over NFactor models.
//!
//! Classic HSA (Kazemian et al., NSDI'12) pushes *header spaces* —
//! symbolic sets of packets — through match/action rules. The paper's §4
//! extends it with state: the transfer function becomes `T(h, p, s)`.
//! Here a [`HeaderSpace`] is a conjunction of per-field interval sets,
//! and a [`StatefulNf`] is a synthesized [`Model`] paired with a concrete
//! state snapshot (the `s` of the transfer function). Applying the NF
//! refines the space through each entry's flow *and* state match and
//! rewrites the matching part, yielding the reachable output spaces —
//! state-dependent reachability that stateless HSA cannot express
//! (e.g. "replies reach the client *only after* the client's flow opened
//! the pinhole").

use nf_model::{Entry, FlowAction, Model, ModelState};
use nf_packet::Field;
use nfl_interp::Value;
use nfl_lang::BinOp;
use nfl_symex::SymVal;
use std::collections::BTreeMap;
use std::fmt;

/// A set of (lo, hi) inclusive ranges, kept disjoint and sorted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalSet {
    ranges: Vec<(u64, u64)>,
}

impl IntervalSet {
    /// The full domain of a field.
    pub fn full(field: Field) -> IntervalSet {
        IntervalSet {
            ranges: vec![(0, field.max_value())],
        }
    }

    /// A single point.
    pub fn point(v: u64) -> IntervalSet {
        IntervalSet {
            ranges: vec![(v, v)],
        }
    }

    /// A single inclusive range.
    pub fn range(lo: u64, hi: u64) -> IntervalSet {
        if lo > hi {
            IntervalSet { ranges: vec![] }
        } else {
            IntervalSet {
                ranges: vec![(lo, hi)],
            }
        }
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Intersect with another set.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        for &(a1, a2) in &self.ranges {
            for &(b1, b2) in &other.ranges {
                let lo = a1.max(b1);
                let hi = a2.min(b2);
                if lo <= hi {
                    out.push((lo, hi));
                }
            }
        }
        IntervalSet { ranges: out }
    }

    /// Remove a point (for `!=` literals).
    pub fn remove_point(&self, v: u64) -> IntervalSet {
        let mut out = Vec::new();
        for &(lo, hi) in &self.ranges {
            if v < lo || v > hi {
                out.push((lo, hi));
            } else {
                if lo < v {
                    out.push((lo, v - 1));
                }
                if v < hi {
                    out.push((v + 1, hi));
                }
            }
        }
        IntervalSet { ranges: out }
    }

    /// Does the set contain `v`?
    pub fn contains(&self, v: u64) -> bool {
        self.ranges.iter().any(|&(lo, hi)| lo <= v && v <= hi)
    }

    /// Number of values in the set (saturating).
    pub fn size(&self) -> u64 {
        self.ranges
            .iter()
            .map(|&(lo, hi)| hi - lo + 1)
            .fold(0u64, u64::saturating_add)
    }
}

/// A header space: per-field interval sets (unconstrained fields are
/// implicit full domains).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HeaderSpace {
    fields: BTreeMap<Field, IntervalSet>,
}

impl HeaderSpace {
    /// The space of all packets.
    pub fn all() -> HeaderSpace {
        HeaderSpace::default()
    }

    /// Constrain one field to a set.
    pub fn with(mut self, field: Field, set: IntervalSet) -> HeaderSpace {
        self.fields.insert(field, set);
        self
    }

    /// Constrain one field to a point.
    pub fn with_point(self, field: Field, v: u64) -> HeaderSpace {
        self.with(field, IntervalSet::point(v))
    }

    /// The constraint on a field (full domain if unconstrained).
    pub fn get(&self, field: Field) -> IntervalSet {
        self.fields
            .get(&field)
            .cloned()
            .unwrap_or_else(|| IntervalSet::full(field))
    }

    /// Is the space empty (some field has no allowed value)?
    pub fn is_empty(&self) -> bool {
        self.fields.values().any(|s| s.is_empty())
    }

    /// Does a concrete packet lie in the space?
    pub fn contains_packet(&self, pkt: &nf_packet::Packet) -> bool {
        self.fields.iter().all(|(f, set)| {
            pkt.get(*f).map(|v| set.contains(v)).unwrap_or(false)
        })
    }
}

impl fmt::Display for HeaderSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.fields.is_empty() {
            return write!(f, "⊤");
        }
        let parts: Vec<String> = self
            .fields
            .iter()
            .map(|(fld, set)| {
                let rs: Vec<String> = set
                    .ranges
                    .iter()
                    .map(|&(lo, hi)| {
                        if lo == hi {
                            lo.to_string()
                        } else {
                            format!("{lo}..={hi}")
                        }
                    })
                    .collect();
                format!("{fld}∈{{{}}}", rs.join(","))
            })
            .collect();
        write!(f, "{}", parts.join(" ∧ "))
    }
}

/// A model plus the concrete state snapshot it is verified under — the
/// `(model, s)` of `T(h, p, s)`.
#[derive(Debug, Clone)]
pub struct StatefulNf {
    /// The synthesized model.
    pub model: Model,
    /// The state snapshot (configs + scalars + maps).
    pub state: ModelState,
}

/// One output of pushing a space through an NF.
#[derive(Debug, Clone)]
pub struct TransferResult {
    /// The sub-space of the input that took this entry.
    pub matched: HeaderSpace,
    /// The transformed space leaving the NF (`None` for drops).
    pub output: Option<HeaderSpace>,
    /// Which `(table, entry)` produced it.
    pub via: (usize, usize),
}

impl StatefulNf {
    /// Apply the NF as a transfer function to `space`; returns the
    /// per-entry results. Unsupported match forms fail *closed for
    /// verification soundness of reach queries*: the entry is reported
    /// with the unrefined space (over-approximation).
    pub fn transfer(&self, space: &HeaderSpace) -> Vec<TransferResult> {
        let mut out = Vec::new();
        let mut remaining = vec![space.clone()];
        for (ti, table) in self.model.tables.iter().enumerate() {
            if !self.config_holds(&table.config) {
                continue;
            }
            for (ei, entry) in table.entries.iter().enumerate() {
                let mut next_remaining = Vec::new();
                for rem in remaining.drain(..) {
                    let (hits, misses) = self.refine(&rem, entry);
                    for h in hits {
                        if h.is_empty() {
                            continue;
                        }
                        let output = match &entry.flow_action {
                            FlowAction::Drop => None,
                            FlowAction::Forward { rewrites } => {
                                Some(self.rewrite_space(&h, rewrites))
                            }
                        };
                        out.push(TransferResult {
                            matched: h,
                            output,
                            via: (ti, ei),
                        });
                    }
                    next_remaining.extend(misses.into_iter().filter(|m| !m.is_empty()));
                }
                remaining = next_remaining;
                if remaining.is_empty() {
                    return out;
                }
            }
        }
        // Leftover space hits the default drop.
        for rem in remaining {
            if !rem.is_empty() {
                out.push(TransferResult {
                    matched: rem,
                    output: None,
                    via: (usize::MAX, usize::MAX),
                });
            }
        }
        out
    }

    /// All header spaces that can *traverse* the NF (forwarded outputs).
    pub fn reachable_through(&self, space: &HeaderSpace) -> Vec<HeaderSpace> {
        self.transfer(space)
            .into_iter()
            .filter_map(|r| r.output)
            .collect()
    }

    fn config_holds(&self, config: &[SymVal]) -> bool {
        config.iter().all(|lit| {
            match self
                .state
                .eval(lit, &nf_packet::Packet::default())
            {
                Ok(Value::Bool(b)) => b,
                _ => true, // unknown config literal: keep the table
            }
        })
    }

    /// Split `space` into (sub-spaces matching `entry`, sub-spaces
    /// missing it).
    fn refine(&self, space: &HeaderSpace, entry: &Entry) -> (Vec<HeaderSpace>, Vec<HeaderSpace>) {
        // State match first: literals that don't reference the packet
        // evaluate concretely under the snapshot.
        let mut packet_dependent_state: Vec<&SymVal> = Vec::new();
        for lit in &entry.state_match {
            if lit.mentions_prefix("pkt.") {
                packet_dependent_state.push(lit);
                continue;
            }
            match self.state.eval(lit, &nf_packet::Packet::default()) {
                Ok(Value::Bool(true)) => {}
                Ok(Value::Bool(false)) => return (vec![], vec![space.clone()]),
                _ => {} // unknown: over-approximate as matching
            }
        }
        let mut hit = space.clone();
        let mut misses: Vec<HeaderSpace> = Vec::new();
        for lit in &entry.flow_match {
            match self.apply_literal(&hit, lit) {
                Some((h, m)) => {
                    if let Some(m) = m {
                        misses.push(m);
                    }
                    hit = h;
                    if hit.is_empty() {
                        misses.push(space.clone());
                        return (vec![], misses);
                    }
                }
                None => { /* unsupported literal: keep over-approx */ }
            }
        }
        // Packet-dependent state literals: map memberships keyed on
        // packet fields — expand against the concrete map contents.
        let mut hits = vec![hit];
        for lit in packet_dependent_state {
            let mut expanded = Vec::new();
            for h in hits {
                match self.apply_state_literal(&h, lit) {
                    Some((sub_hits, sub_miss)) => {
                        expanded.extend(sub_hits);
                        misses.extend(sub_miss);
                    }
                    None => expanded.push(h), // over-approximate
                }
            }
            hits = expanded;
        }
        (hits, misses)
    }

    /// Apply a flow literal of shape `pkt.f ⋈ const-expr` (including
    /// prefix-mask forms `(pkt.f & MASK) ⋈ NET` for contiguous masks);
    /// returns `(matching space, non-matching remainder)` or `None` if
    /// the form is unsupported.
    fn apply_literal(
        &self,
        space: &HeaderSpace,
        lit: &SymVal,
    ) -> Option<(HeaderSpace, Option<HeaderSpace>)> {
        if let Some(result) = self.apply_prefix_literal(space, lit) {
            return Some(result);
        }
        let (field, op, value) = self.field_cmp_const(lit)?;
        let cur = space.get(field);
        let (hit_set, miss_set) = match op {
            BinOp::Eq => (
                cur.intersect(&IntervalSet::point(value)),
                cur.remove_point(value),
            ),
            BinOp::Ne => (
                cur.remove_point(value),
                cur.intersect(&IntervalSet::point(value)),
            ),
            BinOp::Lt => (
                cur.intersect(&IntervalSet::range(0, value.saturating_sub(1))),
                cur.intersect(&IntervalSet::range(value, u64::MAX)),
            ),
            BinOp::Le => (
                cur.intersect(&IntervalSet::range(0, value)),
                cur.intersect(&IntervalSet::range(value + 1, u64::MAX)),
            ),
            BinOp::Gt => (
                cur.intersect(&IntervalSet::range(value + 1, u64::MAX)),
                cur.intersect(&IntervalSet::range(0, value)),
            ),
            BinOp::Ge => (
                cur.intersect(&IntervalSet::range(value, u64::MAX)),
                cur.intersect(&IntervalSet::range(0, value.saturating_sub(1))),
            ),
            _ => return None,
        };
        let hit = space.clone().with(field, hit_set);
        let miss = if miss_set.is_empty() {
            None
        } else {
            Some(space.clone().with(field, miss_set))
        };
        Some((hit, miss))
    }

    /// Handle `(pkt.f & MASK) == NET` and its negation for *contiguous*
    /// (CIDR-style) masks: the matching set is the single range
    /// `[NET&MASK, (NET&MASK) | !MASK]`.
    fn apply_prefix_literal(
        &self,
        space: &HeaderSpace,
        lit: &SymVal,
    ) -> Option<(HeaderSpace, Option<HeaderSpace>)> {
        let SymVal::Bin(op, a, b) = lit else {
            return None;
        };
        if !matches!(op, BinOp::Eq | BinOp::Ne) {
            return None;
        }
        // One side is (pkt.f & mask); the other evaluates concretely.
        let (masked, rhs) = match (&**a, &**b) {
            (SymVal::Bin(BinOp::BitAnd, _, _), _) => (&**a, &**b),
            (_, SymVal::Bin(BinOp::BitAnd, _, _)) => (&**b, &**a),
            _ => return None,
        };
        let SymVal::Bin(BinOp::BitAnd, ma, mb) = masked else {
            return None;
        };
        let dummy = nf_packet::Packet::default();
        let (field, mask) = match (&**ma, &**mb) {
            (SymVal::Var(v), m) if v.starts_with("pkt.") => (
                Field::from_path(&v["pkt.".len()..])?,
                self.state.eval(m, &dummy).ok()?.as_int()?,
            ),
            (m, SymVal::Var(v)) if v.starts_with("pkt.") => (
                Field::from_path(&v["pkt.".len()..])?,
                self.state.eval(m, &dummy).ok()?.as_int()?,
            ),
            _ => return None,
        };
        let rhs_val = self.state.eval(rhs, &dummy).ok()?.as_int()?;
        let mask = mask as u64 & field.max_value();
        // Contiguous high-bits mask? (mask | (mask >> 1) ... yields no
        // holes ⇔ mask+lowbits+1 is a power of two span.)
        let inv = !mask & field.max_value();
        if mask & (inv + 1) != 0 && inv != field.max_value() {
            // e.g. 0xff00ff00 — not CIDR, bail to over-approximation.
            if (inv + 1) & inv != 0 {
                return None;
            }
        }
        if (inv + 1) & inv != 0 {
            return None; // !mask not of form 2^k - 1
        }
        let base = (rhs_val as u64) & mask;
        let lo = base;
        let hi = base | inv;
        let cur = space.get(field);
        let in_range = cur.intersect(&IntervalSet::range(lo, hi));
        let below = if lo > 0 {
            cur.intersect(&IntervalSet::range(0, lo - 1))
        } else {
            IntervalSet::range(1, 0)
        };
        let above = cur.intersect(&IntervalSet::range(hi + 1, u64::MAX));
        let mut outside = below;
        outside.ranges.extend(above.ranges);
        let (hit_set, miss_set) = if *op == BinOp::Eq {
            (in_range, outside)
        } else {
            (outside, in_range)
        };
        let hit = space.clone().with(field, hit_set);
        let miss = if miss_set.is_empty() {
            None
        } else {
            Some(space.clone().with(field, miss_set))
        };
        Some((hit, miss))
    }

    /// Decompose `pkt.f ⋈ rhs` where rhs evaluates concretely under the
    /// snapshot (configs, state scalars).
    fn field_cmp_const(&self, lit: &SymVal) -> Option<(Field, BinOp, u64)> {
        let SymVal::Bin(op, a, b) = lit else {
            return None;
        };
        let (field_side, const_side, op) = match (&**a, &**b) {
            (SymVal::Var(v), rhs) if v.starts_with("pkt.") => (v, rhs, *op),
            (lhs, SymVal::Var(v)) if v.starts_with("pkt.") => (v, lhs, flip(*op)),
            _ => return None,
        };
        let field = Field::from_path(field_side.strip_prefix("pkt.")?)?;
        let value = self
            .state
            .eval(const_side, &nf_packet::Packet::default())
            .ok()?
            .as_int()?;
        u64::try_from(value).ok().map(|v| (field, op, v))
    }

    /// Expand a packet-keyed map-membership literal against concrete map
    /// contents: `(pkt.a, pkt.b) in m` matches exactly the point
    /// sub-spaces of the stored keys.
    fn apply_state_literal(
        &self,
        space: &HeaderSpace,
        lit: &SymVal,
    ) -> Option<(Vec<HeaderSpace>, Vec<HeaderSpace>)> {
        let (negated, map, key) = match lit {
            SymVal::MapContains(m, k) => (false, m, k),
            SymVal::Not(inner) => match &**inner {
                SymVal::MapContains(m, k) => (true, m, k),
                _ => return None,
            },
            _ => return None,
        };
        // Key must be a tuple/var of packet fields.
        let fields: Vec<Field> = match &**key {
            SymVal::Tuple(es) => es
                .iter()
                .map(|e| match e {
                    SymVal::Var(v) if v.starts_with("pkt.") => {
                        Field::from_path(&v["pkt.".len()..])
                    }
                    _ => None,
                })
                .collect::<Option<Vec<_>>>()?,
            SymVal::Var(v) if v.starts_with("pkt.") => {
                vec![Field::from_path(&v["pkt.".len()..])?]
            }
            _ => return None,
        };
        let entries = self.state.maps.get(map)?;
        // Point spaces for each stored key.
        let mut points = Vec::new();
        for k in entries.keys() {
            let vals: Vec<u64> = match k {
                nfl_interp::ValueKey::Tuple(t) => {
                    t.iter().map(|v| *v as u64).collect()
                }
                nfl_interp::ValueKey::Int(v) => vec![*v as u64],
                _ => continue,
            };
            if vals.len() != fields.len() {
                continue;
            }
            let mut sub = space.clone();
            let mut ok = true;
            for (f, v) in fields.iter().zip(&vals) {
                let refined = sub.get(*f).intersect(&IntervalSet::point(*v));
                if refined.is_empty() {
                    ok = false;
                    break;
                }
                sub = sub.with(*f, refined);
            }
            if ok {
                points.push(sub);
            }
        }
        if negated {
            // Complement of finitely many points: subtract each point
            // from the space field-wise (approximate by removing the
            // first key field's points — sound for disjointness checks).
            let mut miss_space = space.clone();
            for k in entries.keys() {
                if let nfl_interp::ValueKey::Tuple(t) = k {
                    if let (Some(f), Some(v)) = (fields.first(), t.first()) {
                        miss_space =
                            miss_space.clone().with(*f, miss_space.get(*f).remove_point(*v as u64));
                    }
                } else if let nfl_interp::ValueKey::Int(v) = k {
                    if let Some(f) = fields.first() {
                        miss_space =
                            miss_space.clone().with(*f, miss_space.get(*f).remove_point(*v as u64));
                    }
                }
            }
            Some((vec![miss_space], points))
        } else {
            Some((points, vec![space.clone()]))
        }
    }

    /// Apply rewrites to a matching space. Rewrites to values computable
    /// under the snapshot become points; anything else leaves the field
    /// unconstrained (over-approximation).
    fn rewrite_space(&self, space: &HeaderSpace, rewrites: &[(Field, SymVal)]) -> HeaderSpace {
        let mut out = space.clone();
        for (field, term) in rewrites {
            match self.state.eval(term, &nf_packet::Packet::default()) {
                Ok(Value::Int(v)) if v >= 0 => {
                    out = out.with(*field, IntervalSet::point(v as u64));
                }
                _ => {
                    out = out.with(*field, IntervalSet::full(*field));
                }
            }
        }
        out
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Push a space through a chain of stateful NFs; returns the spaces
/// emerging from the far end.
pub fn chain_reachable(chain: &[StatefulNf], input: &HeaderSpace) -> Vec<HeaderSpace> {
    let mut spaces = vec![input.clone()];
    for nf in chain {
        let mut next = Vec::new();
        for s in &spaces {
            next.extend(nf.reachable_through(s));
        }
        spaces = next;
        if spaces.is_empty() {
            break;
        }
    }
    spaces
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfactor_core::Pipeline;
    use nfl_interp::Value;

    fn fw_nf(pinholes: Vec<(u32, u16, u32, u16)>) -> StatefulNf {
        let syn = Pipeline::builder()
            .name("fw")
            .build()
            .unwrap()
            .synthesize(&nf_corpus::firewall::source())
            .unwrap();
        let mut state = ModelState::default()
            .with_config("PROTECTED_NET", Value::Int(0x0a000000))
            .with_config("PROTECTED_MASK", Value::Int(0xff000000))
            .with_config("ALLOW_PORT", Value::Int(80))
            .with_scalar("out_count", Value::Int(0))
            .with_scalar("in_count", Value::Int(0))
            .with_scalar("blocked_count", Value::Int(0))
            .with_map("pinholes");
        for (a, b, c, d) in pinholes {
            state.maps.get_mut("pinholes").unwrap().insert(
                nfl_interp::ValueKey::Tuple(vec![
                    i64::from(a),
                    i64::from(b),
                    i64::from(c),
                    i64::from(d),
                ]),
                Value::Int(1),
            );
        }
        StatefulNf {
            model: syn.model,
            state,
        }
    }

    #[test]
    fn interval_set_algebra() {
        let a = IntervalSet::range(10, 20);
        let b = IntervalSet::range(15, 30);
        assert_eq!(a.intersect(&b), IntervalSet::range(15, 20));
        let holed = a.remove_point(15);
        assert!(!holed.contains(15));
        assert!(holed.contains(14) && holed.contains(16));
        assert_eq!(holed.size(), 10);
        assert!(IntervalSet::range(5, 4).is_empty());
    }

    #[test]
    fn stateless_fraction_of_firewall() {
        // With NO pinholes, outside traffic reaches inside only on the
        // allow port.
        let nf = fw_nf(vec![]);
        let outside = HeaderSpace::all().with(
            Field::IpSrc,
            IntervalSet::range(0x0b000000, 0xffffffff), // not 10/8
        );
        let through = nf.reachable_through(&outside);
        assert!(!through.is_empty());
        for space in &through {
            assert!(
                space.get(Field::TcpDport).contains(80),
                "only port 80 passes: {space}"
            );
            assert_eq!(space.get(Field::TcpDport).size(), 1);
        }
    }

    #[test]
    fn stateful_pinhole_admits_reply() {
        // Pinhole: 8.8.8.8:443 -> 10.0.0.5:5000 (reverse of an outbound
        // flow). The reply space reaches; other ports still blocked.
        let nf = fw_nf(vec![(0x08080808, 443, 0x0a000005, 5000)]);
        let reply = HeaderSpace::all()
            .with_point(Field::IpSrc, 0x08080808)
            .with_point(Field::TcpSport, 443)
            .with_point(Field::IpDst, 0x0a000005)
            .with_point(Field::TcpDport, 5000);
        assert!(
            !nf.reachable_through(&reply).is_empty(),
            "pinholed reply passes"
        );
        let other = HeaderSpace::all()
            .with_point(Field::IpSrc, 0x08080808)
            .with_point(Field::TcpSport, 444)
            .with_point(Field::IpDst, 0x0a000005)
            .with_point(Field::TcpDport, 5000);
        assert!(
            nf.reachable_through(&other).is_empty(),
            "non-pinholed port still blocked — stateless HSA cannot tell these apart"
        );
    }

    #[test]
    fn outbound_always_passes() {
        let nf = fw_nf(vec![]);
        let inside = HeaderSpace::all()
            .with(Field::IpSrc, IntervalSet::range(0x0a000000, 0x0affffff))
            .with_point(Field::TcpDport, 9999);
        assert!(!nf.reachable_through(&inside).is_empty());
    }

    #[test]
    fn transfer_partitions_input() {
        // Matched spaces plus the default-drop leftover must cover the
        // whole input for a total model.
        let nf = fw_nf(vec![]);
        let input = HeaderSpace::all().with_point(Field::IpSrc, 0x0b000001);
        let results = nf.transfer(&input);
        assert!(!results.is_empty());
        let drops = results.iter().filter(|r| r.output.is_none()).count();
        let fwds = results.iter().filter(|r| r.output.is_some()).count();
        assert!(drops > 0 && fwds > 0, "{results:?}");
    }

    #[test]
    fn chain_composes() {
        let fw = fw_nf(vec![]);
        let outside = HeaderSpace::all()
            .with(Field::IpSrc, IntervalSet::range(0x0b000000, 0xffffffff))
            .with_point(Field::TcpDport, 80);
        let through = chain_reachable(&[fw.clone(), fw], &outside);
        assert!(!through.is_empty(), "port 80 passes two firewalls");
    }

    #[test]
    fn header_space_display_and_membership() {
        let hs = HeaderSpace::all().with_point(Field::TcpDport, 80);
        let pkt = nf_packet::Packet::tcp(1, 2, 3, 80, nf_packet::TcpFlags::syn());
        assert!(hs.contains_packet(&pkt));
        let pkt2 = nf_packet::Packet::tcp(1, 2, 3, 81, nf_packet::TcpFlags::syn());
        assert!(!hs.contains_packet(&pkt2));
        assert!(hs.to_string().contains("tcp.dport"));
    }
}
