//! Applications of synthesized NF models — the paper's §4.
//!
//! *"NFactor is a tool that can be used to model a variety of NFs. The
//! model is useful for many network management applications such as
//! verification, troubleshooting, and service deployment."*
//!
//! * [`hsa`] — **Network Verification**: the stateful extension of
//!   header-space analysis. "Each rule is modeled as a network transfer
//!   function `T(h, p, s)`, where `h` is the packet header, `p` is the
//!   port, and `s` is the state in the model. With the extended transfer
//!   function, we can handle stateful verification." Header spaces are
//!   per-field interval sets; models apply as transfer functions under a
//!   concrete state snapshot; reachability composes across chains.
//! * [`chain`] — **Service Policy Composition**: PGA-style reconciliation
//!   of `{FW, IDS}` and `{LB}` — "It generates the input and output
//!   space constraints of each NF based on its behavior model" — here as
//!   a rewrites-vs-matches interference analysis that orders the chain.
//! * [`testgen`] — **Testing**: BUZZ-style generation of test packets
//!   from the model ("the NFactor model can be used to guide the
//!   generation of testing packets"), replayed against the concrete NF
//!   for compliance checking.
//! * [`modeldiff`] — the §6 future work: behavioural comparison of the
//!   synthesized model against a hand-written one, reproducing §2.2's
//!   finding that manual models miss the `mode` configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod hsa;
pub mod modeldiff;
pub mod testgen;

pub use chain::{recommend_order, ChainReport};
pub use hsa::{HeaderSpace, StatefulNf, TransferResult};
pub use modeldiff::{behavioural_diff, manual_lb_model, DiffReport};
pub use testgen::{compliance_test, ComplianceReport, TestPacket};
