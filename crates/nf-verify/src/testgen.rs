//! BUZZ-style model-guided test generation — the paper's §4 Testing.
//!
//! *"BUZZ creates the testing packets by using the NF models. However,
//! their model is generated manually from domain knowledge so it may not
//! be complete or even accurate. NFactor is complementary to BUZZ: the
//! NFactor model can be used to guide the generation of testing
//! packets."*
//!
//! For every model entry we ask the SMT-lite solver for a concrete packet
//! satisfying the entry's flow match (with configs pinned to the
//! deployment's values). Entries guarded by state (`k in nat`) get a
//! *setup sequence*: the generator walks the model FSM and first emits
//! packets driving the mutating transition that establishes the state.
//! Each test is replayed against the concrete NF (the interpreter), and
//! the observed action is checked against the model's promise —
//! compliance testing.

use nf_model::{Entry, Model};
use nf_packet::{Field, Packet};
use nfactor_core::accuracy::initial_model_state;
use nfactor_core::Synthesis;
use nfl_interp::Interp;
use nfl_symex::{Solver, SymVal};
use std::collections::HashMap;
use std::fmt;

/// One generated test.
#[derive(Debug, Clone)]
pub struct TestPacket {
    /// Which `(table, entry)` the test targets.
    pub target: (usize, usize),
    /// Setup packets to drive the NF into the required state.
    pub setup: Vec<Packet>,
    /// The probe packet itself.
    pub probe: Packet,
    /// Whether the model says the probe is forwarded.
    pub expect_forward: bool,
}

/// Result of replaying generated tests against the concrete NF.
#[derive(Debug, Clone)]
pub struct ComplianceReport {
    /// Tests generated and executed.
    pub tests: Vec<TestPacket>,
    /// Entries for which no test could be generated (unsatisfiable or
    /// outside the solver fragment).
    pub ungenerated: usize,
    /// `(test index, expected forward?, observed forward?)` mismatches.
    pub violations: Vec<(usize, bool, bool)>,
}

impl ComplianceReport {
    /// Did every generated test behave as the model promised?
    pub fn compliant(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for ComplianceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} tests generated ({} entries ungeneratable), {} violations",
            self.tests.len(),
            self.ungenerated,
            self.violations.len()
        )
    }
}

/// Build a packet from a solver assignment of `pkt.*` variables.
fn packet_of_model(assignment: &HashMap<String, i64>) -> Packet {
    let mut pkt = Packet::tcp(0x0a000001, 40000, 0x0b000001, 80, nf_packet::TcpFlags(0));
    for (var, value) in assignment {
        if let Some(path) = var.strip_prefix("pkt.") {
            if let Some(field) = Field::from_path(path) {
                if *value >= 0 {
                    let _ = pkt.set(field, *value as u64);
                }
            }
        }
    }
    pkt
}

fn field_domain(var: &str) -> (i64, i64) {
    if let Some(path) = var.strip_prefix("pkt.") {
        if let Some(f) = Field::from_path(path) {
            return (0, f.max_value().min(i64::MAX as u64) as i64);
        }
    }
    (0, i64::MAX / 4)
}

/// Substitute pinned configuration values into a term so the solver sees
/// concrete constants where the deployment has them.
fn pin_configs(term: &SymVal, configs: &HashMap<String, i64>) -> SymVal {
    match term {
        SymVal::Var(v) => {
            if let Some(c) = v.strip_prefix("cfg:") {
                if let Some(val) = configs.get(c) {
                    return SymVal::Int(*val);
                }
            }
            term.clone()
        }
        SymVal::Tuple(es) => SymVal::Tuple(es.iter().map(|e| pin_configs(e, configs)).collect()),
        SymVal::Array(es) => SymVal::Array(es.iter().map(|e| pin_configs(e, configs)).collect()),
        SymVal::Bin(op, a, b) => SymVal::bin(
            *op,
            pin_configs(a, configs),
            pin_configs(b, configs),
        ),
        SymVal::Not(a) => SymVal::negate(pin_configs(a, configs)),
        SymVal::Neg(a) => SymVal::Neg(Box::new(pin_configs(a, configs))),
        SymVal::Hash(a) => SymVal::Hash(Box::new(pin_configs(a, configs))),
        SymVal::Min(a, b) => SymVal::Min(
            Box::new(pin_configs(a, configs)),
            Box::new(pin_configs(b, configs)),
        ),
        SymVal::Max(a, b) => SymVal::Max(
            Box::new(pin_configs(a, configs)),
            Box::new(pin_configs(b, configs)),
        ),
        SymVal::MapGet(m, k) => {
            SymVal::MapGet(m.clone(), Box::new(pin_configs(k, configs)))
        }
        SymVal::MapContains(m, k) => {
            SymVal::MapContains(m.clone(), Box::new(pin_configs(k, configs)))
        }
        SymVal::ArrayGet(a, b) => SymVal::ArrayGet(
            Box::new(pin_configs(a, configs)),
            Box::new(pin_configs(b, configs)),
        ),
        SymVal::Proj(a, i) => SymVal::Proj(Box::new(pin_configs(a, configs)), *i),
        other => other.clone(),
    }
}

/// The map-membership requirements of an entry's state match:
/// `(map name, key fields, polarity)` — key must be a tuple (or single
/// var) of packet fields for setup synthesis to work.
fn membership_requirements(entry: &Entry) -> Vec<(String, Vec<Field>, bool)> {
    let mut out = Vec::new();
    for lit in &entry.state_match {
        let (map, key, polarity) = match lit {
            SymVal::MapContains(m, k) => (m, k, true),
            SymVal::Not(inner) => match &**inner {
                SymVal::MapContains(m, k) => (m, k, false),
                _ => continue,
            },
            _ => continue,
        };
        let fields: Option<Vec<Field>> = match &**key {
            SymVal::Tuple(es) => es
                .iter()
                .map(|e| match e {
                    SymVal::Var(v) if v.starts_with("pkt.") => {
                        Field::from_path(&v["pkt.".len()..])
                    }
                    _ => None,
                })
                .collect(),
            SymVal::Var(v) if v.starts_with("pkt.") => {
                Field::from_path(&v["pkt.".len()..]).map(|f| vec![f])
            }
            _ => None,
        };
        if let Some(fields) = fields {
            out.push((map.clone(), fields, polarity));
        }
    }
    out
}

/// Does the entry insert into `map` (making it a setup *donor*)?
fn inserts_into(entry: &Entry, map: &str) -> bool {
    entry
        .state_action
        .map_ops
        .iter()
        .any(|op| matches!(op, nfl_symex::MapOp::Insert { map: m, .. } if m == map))
}

/// Generate a probe for one entry from its flow match alone. Returns
/// `None` when unsatisfiable or outside the solver fragment.
fn generate_probe(
    entry: &Entry,
    configs: &HashMap<String, i64>,
    extra: &[SymVal],
    solver: &Solver,
) -> Option<Packet> {
    let mut constraints: Vec<SymVal> = entry
        .flow_match
        .iter()
        .map(|l| pin_configs(l, configs))
        .collect();
    constraints.extend_from_slice(extra);
    let assignment = solver.model(&constraints, field_domain)?;
    Some(packet_of_model(&assignment))
}

/// Generate tests for every entry of `model`, with `configs` pinned and
/// `initial` as the NF's starting state. Entries whose state match
/// requires map membership get a BUZZ-style *setup sequence*: a donor
/// entry that inserts into the required map is probed first; the model
/// is stepped to learn the inserted key; the probe's key fields are then
/// pinned to that key.
pub fn generate_tests(
    model: &Model,
    configs: &HashMap<String, i64>,
    initial: &nf_model::ModelState,
) -> (Vec<TestPacket>, usize) {
    let solver = Solver;
    let mut tests = Vec::new();
    let mut ungenerated = 0usize;
    // Pre-generate donor probes: entries with no membership requirement
    // that insert into some map.
    let donors: Vec<(Packet, &Entry)> = model
        .tables
        .iter()
        .flat_map(|t| &t.entries)
        .filter(|e| membership_requirements(e).iter().all(|(_, _, pos)| !pos))
        .filter_map(|e| generate_probe(e, configs, &[], &solver).map(|p| (p, e)))
        .collect();
    for (ti, table) in model.tables.iter().enumerate() {
        // Skip tables whose config condition contradicts the pins.
        let cfg_lits: Vec<SymVal> = table
            .config
            .iter()
            .map(|l| pin_configs(l, configs))
            .collect();
        if solver.check(&cfg_lits) == nfl_symex::Verdict::Unsat {
            continue;
        }
        for (ei, entry) in table.entries.iter().enumerate() {
            let requirements = membership_requirements(entry);
            let positives: Vec<_> = requirements.iter().filter(|(_, _, p)| *p).collect();
            let (setup, extra_constraints): (Vec<Packet>, Vec<SymVal>) = if positives
                .is_empty()
            {
                (Vec::new(), Vec::new())
            } else {
                // One positive requirement supported per entry (NF
                // entries in the corpus never need two distinct maps
                // pre-populated by different flows).
                let (map, key_fields, _) = positives[0];
                let Some((donor_pkt, _)) = donors
                    .iter()
                    .find(|(_, d)| inserts_into(d, map))
                else {
                    ungenerated += 1;
                    continue;
                };
                // Step the model to learn the key the donor installs.
                let mut st = initial.clone();
                if st.step(model, donor_pkt).is_err() {
                    ungenerated += 1;
                    continue;
                }
                let Some(entries) = st.maps.get(map.as_str()) else {
                    ungenerated += 1;
                    continue;
                };
                let Some(first_key) = entries.keys().next() else {
                    ungenerated += 1;
                    continue;
                };
                let key_vals: Vec<i64> = match first_key {
                    nfl_interp::ValueKey::Tuple(t) => t.clone(),
                    nfl_interp::ValueKey::Int(v) => vec![*v],
                    _ => {
                        ungenerated += 1;
                        continue;
                    }
                };
                if key_vals.len() != key_fields.len() {
                    ungenerated += 1;
                    continue;
                }
                let pins: Vec<SymVal> = key_fields
                    .iter()
                    .zip(&key_vals)
                    .map(|(f, v)| {
                        SymVal::Bin(
                            nfl_lang::BinOp::Eq,
                            Box::new(SymVal::Var(format!("pkt.{}", f.path()))),
                            Box::new(SymVal::Int(*v)),
                        )
                    })
                    .collect();
                (vec![donor_pkt.clone()], pins)
            };
            let Some(probe) = generate_probe(entry, configs, &extra_constraints, &solver)
            else {
                ungenerated += 1;
                continue;
            };
            tests.push(TestPacket {
                target: (ti, ei),
                setup,
                probe,
                expect_forward: !entry.flow_action.is_drop(),
            });
        }
    }
    (tests, ungenerated)
}

/// Generate tests from a synthesis and replay them against the concrete
/// NF — §4's compliance testing, with the model guiding packet creation.
pub fn compliance_test(syn: &Synthesis) -> Result<ComplianceReport, String> {
    // Pin configs to the deployment's declared initial values.
    let interp0 = Interp::new(&syn.nf_loop).map_err(|e| e.to_string())?;
    let model_state = initial_model_state(syn, &interp0);
    let configs: HashMap<String, i64> = model_state
        .configs
        .iter()
        .filter_map(|(k, v)| v.as_int().map(|i| (k.clone(), i)))
        .collect();
    let (tests, ungenerated) = generate_tests(&syn.model, &configs, &model_state);
    let mut violations = Vec::new();
    for (i, t) in tests.iter().enumerate() {
        // Fresh NF per test so state setup is controlled.
        let mut interp = Interp::new(&syn.nf_loop).map_err(|e| e.to_string())?;
        for s in &t.setup {
            interp.process(s).map_err(|e| e.to_string())?;
        }
        let r = interp.process(&t.probe).map_err(|e| e.to_string())?;
        let observed_forward = !r.dropped;
        // State-guarded pairs share the probe packet, so a setup that
        // already forwards makes "expect" ambiguous only when the entry
        // is drop-on-established — compare directly; mismatches are
        // violations by definition of the model.
        if observed_forward != t.expect_forward {
            violations.push((i, t.expect_forward, observed_forward));
        }
    }
    Ok(ComplianceReport {
        tests,
        ungenerated,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfactor_core::Pipeline;

    #[test]
    fn firewall_compliance_holds() {
        let syn = Pipeline::builder()
            .name("fw")
            .build()
            .unwrap()
            .synthesize(&nf_corpus::firewall::source())
        .unwrap();
        let report = compliance_test(&syn).unwrap();
        assert!(!report.tests.is_empty());
        assert!(report.compliant(), "{report}: {:?}", report.violations);
    }

    #[test]
    fn nat_compliance_holds_with_setup() {
        let syn = Pipeline::builder()
            .name("nat")
            .build()
            .unwrap()
            .synthesize(&nf_corpus::nat::source())
            .unwrap();
        let report = compliance_test(&syn).unwrap();
        assert!(report.compliant(), "{report}: {:?}", report.violations);
        // At least one generated test needed a state setup packet.
        assert!(
            report.tests.iter().any(|t| !t.setup.is_empty()),
            "NAT's existing-connection entry needs setup"
        );
    }

    #[test]
    fn snort_compliance_covers_block_and_forward() {
        let syn = Pipeline::builder()
            .name("snort")
            .build()
            .unwrap()
            .synthesize(&nf_corpus::snort::source(8))
        .unwrap();
        let report = compliance_test(&syn).unwrap();
        assert!(report.compliant(), "{report}: {:?}", report.violations);
        let fwd = report.tests.iter().filter(|t| t.expect_forward).count();
        let drop = report.tests.iter().filter(|t| !t.expect_forward).count();
        assert!(fwd >= 1 && drop >= 1, "fwd={fwd} drop={drop}");
    }

    #[test]
    fn generated_probe_satisfies_match() {
        let syn = Pipeline::builder()
            .name("fw")
            .build()
            .unwrap()
            .synthesize(&nf_corpus::firewall::source())
        .unwrap();
        let report = compliance_test(&syn).unwrap();
        // Spot-check: every probe targeting a forward entry is actually
        // forwarded by a fresh NF when its setup ran (already asserted
        // by compliance, but verify the probe structure too).
        for t in &report.tests {
            assert!(t.probe.get(Field::IpSrc).is_ok());
        }
    }

    #[test]
    fn detects_noncompliant_implementation() {
        // Synthesize the model from one NF but replay against a *broken*
        // variant — compliance must fail (this is the point of §4's
        // compliance testing).
        let good = Pipeline::builder()
            .name("fw")
            .build()
            .unwrap()
            .synthesize(&nf_corpus::firewall::source())
        .unwrap();
        let broken_src = nf_corpus::firewall::source()
            .replace("if pkt.tcp.dport == ALLOW_PORT {", "if pkt.tcp.dport == 81 {");
        let broken = Pipeline::builder()
            .name("fw-broken")
            .build()
            .unwrap()
            .synthesize(&broken_src).unwrap();
        // Replay good-model tests on the broken implementation.
        let interp_ok = Interp::new(&broken.nf_loop).unwrap();
        let model_state = initial_model_state(&good, &interp_ok);
        let configs: HashMap<String, i64> = model_state
            .configs
            .iter()
            .filter_map(|(k, v)| v.as_int().map(|i| (k.clone(), i)))
            .collect();
        let (tests, _) = generate_tests(&good.model, &configs, &model_state);
        let mut violations = 0;
        for t in &tests {
            let mut interp = Interp::new(&broken.nf_loop).unwrap();
            for s in &t.setup {
                interp.process(s).unwrap();
            }
            let r = interp.process(&t.probe).unwrap();
            if r.dropped == t.expect_forward {
                violations += 1;
            }
        }
        assert!(violations > 0, "broken allow-port must be caught");
    }
}
